//! # c1p — parallel consecutive-ones testing via Tutte decomposition
//!
//! A from-scratch reproduction of **Annexstein & Swaminathan, "On testing
//! consecutive-ones property in parallel"** (SPAA 1995; DAM 88, 1998): a
//! divide-and-conquer C1P solver whose combine step computes Whitney
//! switches on the Tutte decompositions of partial realizations — the
//! paper's alternative to PQ-trees — plus everything the paper builds on
//! or compares against, each implemented in its own crate:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`matrix`] | ensembles, verifiers, Tucker transform/obstructions, workload generators |
//! | [`graph`] | multigraphs, 2-connectivity, Whitney switches, reference Tutte decomposition |
//! | [`tutte`] | fast Tutte decomposition of gp-realizations (interlacement classes) |
//! | [`pram`] | work/depth-instrumented PRAM primitives on rayon |
//! | [`pqtree`] | the Booth–Lueker baseline |
//! | [`core_alg`] | the paper's `Path-Realization` algorithm, sequential and parallel |
//! | [`cert`] | Tucker-witness rejection certificates |
//! | [`incremental`] | streaming sessions with differential re-solve and rollback |
//! | [`engine`] | batched, caching solve service + the `c1pd` wire front-end |
//!
//! # Quickstart
//!
//! Decide C1P and get a witness atom order (the paper's Fig. 2 matrix):
//!
//! ```
//! use c1p::matrix::io::parse_ensemble;
//!
//! let ens = parse_ensemble(
//!     "1000100\n1001100\n0010011\n0010001\n1001101\n0100101\n0110101\n0010111\n",
//! ).unwrap();
//! let order = c1p::solve(&ens).expect("the paper's running example is C1P");
//! c1p::matrix::verify_linear(&ens, &order).unwrap();
//! ```
//!
//! Non-C1P inputs return an evidence-carrying [`Rejection`]; with
//! [`solve_certified`] the rejection names a concrete Tucker submatrix
//! that the solver-independent [`cert::verify_witness`] re-checks:
//!
//! ```
//! let bad = c1p::matrix::tucker::m_iv(); // Tucker's M_IV obstruction
//! let cert = c1p::solve_certified(&bad).unwrap_err();
//! assert_eq!(cert.witness.family, c1p::matrix::tucker::TuckerFamily::MIV);
//! c1p::cert::verify_witness(&bad, &cert.witness).unwrap();
//! ```

pub use c1p_cert::{
    certify_rejection, solve_certified, solve_par_certified, CertifiedRejection, TuckerWitness,
};
pub use c1p_core::circular::solve_circular;
pub use c1p_core::interval_graphs;
pub use c1p_core::parallel::{solve_par, solve_par_with};
pub use c1p_core::{solve, solve_with, Config, RejectSite, Rejection, SolveStats};
pub use c1p_engine::{Engine, EngineConfig, EngineError, EngineStats, Verdict};
pub use c1p_incremental::{IncrementalSolver, IncrementalStats, PushVerdict};

/// Ensembles, matrices, verifiers and workload generators.
pub use c1p_matrix as matrix;

/// General graph substrate (reference implementations).
pub use c1p_graph as graph;

/// Fast Tutte decomposition of gp-realizations.
pub use c1p_tutte as tutte;

/// PRAM cost model and parallel primitives.
pub use c1p_pram as pram;

/// The Booth–Lueker PQ-tree baseline.
pub use c1p_pqtree as pqtree;

/// The divide-and-conquer solver internals.
pub use c1p_core as core_alg;

/// Tucker-witness certificates for rejections.
pub use c1p_cert as cert;

/// The batched, caching solve service and its wire protocol (`c1pd`).
pub use c1p_engine as engine;

/// Incremental sessions: streaming column pushes with differential
/// per-component re-solve, certified rejection and rollback.
pub use c1p_incremental as incremental;

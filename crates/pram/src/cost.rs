//! The work/depth cost algebra.
//!
//! `Cost` values model what a CRCW PRAM charges: *work* = total operations,
//! *depth* = parallel time. Sequential composition adds both; parallel
//! composition adds work and takes the max depth. The implied processor
//! count at a target time `T` is `work / T` (Brent), which experiment E2
//! compares against the paper's `p·log log n / log n` bound.

use std::ops::Add;

/// Modelled PRAM cost: total work and parallel depth (time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Total operations across all processors.
    pub work: u64,
    /// Parallel time (critical path length).
    pub depth: u64,
}

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost { work: 0, depth: 0 };

    /// A constant-time step of `work` total operations executed by `work`
    /// processors in one time unit.
    pub fn step(work: u64) -> Cost {
        Cost { work, depth: 1 }
    }

    /// An explicit (work, depth) charge.
    pub fn of(work: u64, depth: u64) -> Cost {
        Cost { work, depth }
    }

    /// Sequential composition: this, then `next`.
    #[must_use]
    pub fn seq(self, next: Cost) -> Cost {
        Cost { work: self.work + next.work, depth: self.depth + next.depth }
    }

    /// Parallel composition: this alongside `other`.
    #[must_use]
    pub fn par(self, other: Cost) -> Cost {
        Cost { work: self.work + other.work, depth: self.depth.max(other.depth) }
    }

    /// Parallel composition over many costs.
    pub fn par_all(costs: impl IntoIterator<Item = Cost>) -> Cost {
        costs.into_iter().fold(Cost::ZERO, Cost::par)
    }

    /// Brent's bound: processors needed to achieve time `target_depth`
    /// given this work/depth (`⌈work/target⌉`, never below 1 when work>0).
    pub fn processors_for(self, target_depth: u64) -> u64 {
        if self.work == 0 {
            return 0;
        }
        self.work.div_ceil(target_depth.max(1)).max(1)
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        self.seq(rhs)
    }
}

/// `⌈log2(n)⌉`, with `log2ceil(0) = log2ceil(1) = 0` — the standard depth
/// factor of scan/pointer-jumping primitives.
pub fn log2ceil(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra() {
        let a = Cost::of(10, 2);
        let b = Cost::of(5, 7);
        assert_eq!(a.seq(b), Cost::of(15, 9));
        assert_eq!(a.par(b), Cost::of(15, 7));
        assert_eq!(a + b, Cost::of(15, 9));
        assert_eq!(Cost::par_all([a, b, Cost::step(1)]), Cost::of(16, 7));
    }

    #[test]
    fn brent() {
        assert_eq!(Cost::of(100, 4).processors_for(10), 10);
        assert_eq!(Cost::of(100, 4).processors_for(3), 34);
        assert_eq!(Cost::ZERO.processors_for(10), 0);
        assert_eq!(Cost::of(5, 1).processors_for(0), 5);
    }

    #[test]
    fn log2ceil_values() {
        assert_eq!(log2ceil(0), 0);
        assert_eq!(log2ceil(1), 0);
        assert_eq!(log2ceil(2), 1);
        assert_eq!(log2ceil(3), 2);
        assert_eq!(log2ceil(1024), 10);
        assert_eq!(log2ceil(1025), 11);
    }
}

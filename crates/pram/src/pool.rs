//! Thread-pool control for the speedup experiments (E3): run a closure on
//! a rayon pool with a fixed number of worker threads, so self-relative
//! speedup can be measured at 1, 2, 4, 8 threads.

/// Builds a dedicated rayon pool with `threads` workers. Measurement
/// loops should build once and `install` per rep — pool construction
/// and teardown (thread spawn/join) otherwise lands inside the timed
/// region.
pub fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build thread pool")
}

/// Runs `f` on a dedicated rayon thread pool with `threads` workers.
/// All rayon parallelism inside `f` is confined to that pool.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    pool(threads).install(f)
}

/// The number of logical CPUs rayon would use by default.
pub fn default_parallelism() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_restricts_thread_count() {
        let inside = with_threads(2, rayon::current_num_threads);
        assert_eq!(inside, 2);
    }

    #[test]
    fn work_runs_inside_pool() {
        let sum: u64 = with_threads(3, || (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn single_thread_pool() {
        let inside = with_threads(1, rayon::current_num_threads);
        assert_eq!(inside, 1);
    }
}

//! # c1p-pram: PRAM-style parallel primitives with a work/depth cost model
//!
//! The paper analyzes its algorithm on a CRCW PRAM (Theorem 9:
//! `O(log² n)` time, `p·log log n / log n` processors). A 1995 PRAM cannot
//! be run directly, so this crate separates the two things a PRAM analysis
//! talks about:
//!
//! * **modelled cost** — every primitive returns a [`Cost`] recording the
//!   work and depth (parallel time) the corresponding PRAM primitive would
//!   charge, composing sequentially (`seq`: work +, depth +) and in
//!   parallel (`par`: work +, depth max). Experiment E2 validates the
//!   paper's bounds from these counters.
//! * **wall-clock execution** — the primitives actually run in parallel on
//!   rayon (chunked to amortize task overhead), so experiment E3 can report
//!   honest multicore speedups.
//!
//! Primitives provided (with their classical sources as cited by the
//! paper): prefix scan, compaction, parallel sorting, pointer-jumping list
//! ranking, Euler tours of trees (Tarjan–Vishkin \[17\]), and connected
//! components by hooking (used where the paper invokes tree contraction
//! \[16\] to find connected column sets — see DESIGN.md §4).

pub mod components;
pub mod cost;
pub mod euler;
pub mod list_rank;
pub mod pool;
pub mod scan;
pub mod sort;

pub use cost::Cost;
pub use pool::{pool, with_threads};

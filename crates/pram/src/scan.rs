//! Parallel prefix scan and compaction — the workhorse primitives the
//! paper's Step 7 invokes ("may require a prefix scan … easily computed
//! within resource bounds").
//!
//! The implementation is the classic two-pass chunked scan: per-chunk local
//! sums in parallel, a (short) scan across chunk sums, then per-chunk
//! prefixes in parallel. Modelled PRAM cost: `O(n)` work, `O(log n)` depth.

use crate::cost::{log2ceil, Cost};
use rayon::prelude::*;

/// Minimum elements per rayon task; below this, run sequentially.
const CHUNK: usize = 1 << 14;

/// Exclusive prefix sum: `out[i] = Σ_{j<i} xs[j]`, plus the total and the
/// modelled cost.
pub fn prefix_sum(xs: &[u64]) -> (Vec<u64>, u64, Cost) {
    let n = xs.len();
    let cost = Cost::of(n as u64, 1 + log2ceil(n));
    if n == 0 {
        return (Vec::new(), 0, cost);
    }
    if n <= CHUNK {
        let mut out = Vec::with_capacity(n);
        let mut acc = 0u64;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        return (out, acc, cost);
    }
    let n_chunks = n.div_ceil(CHUNK);
    let sums: Vec<u64> = (0..n_chunks)
        .into_par_iter()
        .map(|c| xs[c * CHUNK..((c + 1) * CHUNK).min(n)].iter().sum())
        .collect();
    let mut offsets = Vec::with_capacity(n_chunks);
    let mut acc = 0u64;
    for &s in &sums {
        offsets.push(acc);
        acc += s;
    }
    let mut out = vec![0u64; n];
    out.par_chunks_mut(CHUNK).enumerate().for_each(|(c, chunk)| {
        let mut local = offsets[c];
        let base = c * CHUNK;
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = local;
            local += xs[base + i];
        }
    });
    (out, acc, cost)
}

/// Parallel stable compaction: keeps elements where `keep` is true,
/// preserving order. Modelled cost: scan + scatter = `O(n)` work,
/// `O(log n)` depth.
pub fn compact<T: Copy + Send + Sync>(xs: &[T], keep: &[bool]) -> (Vec<T>, Cost) {
    assert_eq!(xs.len(), keep.len());
    let flags: Vec<u64> = keep.par_iter().with_min_len(CHUNK).map(|&k| k as u64).collect();
    let (pos, total, scan_cost) = prefix_sum(&flags);
    let mut out = vec![None; total as usize];
    // scatter (each target written once — safe to parallelize by source chunks)
    let out_ptr = SyncPtr(out.as_mut_ptr());
    xs.par_iter().enumerate().with_min_len(CHUNK).for_each(|(i, &x)| {
        if keep[i] {
            // SAFETY: pos is strictly increasing on kept indices, so each
            // target slot is written by exactly one source index.
            unsafe { out_ptr.write(pos[i] as usize, Some(x)) };
        }
    });
    let out: Vec<T> = out.into_iter().map(|o| o.expect("every slot written")).collect();
    let cost = scan_cost.seq(Cost::step(xs.len() as u64));
    (out, cost)
}

/// A raw pointer that may be shared across parallel scatter tasks;
/// callers guarantee disjoint target indices. The one shared copy of
/// this unsafe primitive (the parallel divide in `c1p-core` reuses it).
pub struct SyncPtr<T>(pub *mut T);
unsafe impl<T> Sync for SyncPtr<T> {}
unsafe impl<T> Send for SyncPtr<T> {}
impl<T> SyncPtr<T> {
    /// Writes `v` at offset `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the pointed-to allocation and written
    /// by at most one thread.
    pub unsafe fn write(&self, i: usize, v: T) {
        unsafe { *self.0.add(i) = v };
    }
}

/// Parallel map with unit cost per element: `O(n)` work, `O(1)` depth.
pub fn par_map<T: Send + Sync, U: Send>(
    xs: &[T],
    f: impl Fn(&T) -> U + Send + Sync,
) -> (Vec<U>, Cost) {
    let out: Vec<U> = xs.par_iter().with_min_len(CHUNK).map(f).collect();
    (out, Cost::step(xs.len() as u64))
}

/// Parallel max-by-key reduction. `O(n)` work, `O(log n)` depth.
pub fn par_max_by_key<T: Copy + Send + Sync, K: Ord + Send>(
    xs: &[T],
    key: impl Fn(&T) -> K + Send + Sync,
) -> (Option<T>, Cost) {
    let out = xs
        .par_iter()
        .with_min_len(CHUNK)
        .map(|x| (key(x), x))
        .max_by(|a, b| a.0.cmp(&b.0))
        .map(|(_, &x)| x);
    (out, Cost::of(xs.len() as u64, 1 + log2ceil(xs.len())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_small() {
        let (out, total, cost) = prefix_sum(&[3, 1, 4, 1, 5]);
        assert_eq!(out, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
        assert_eq!(cost.work, 5);
        assert!(cost.depth >= 1);
    }

    #[test]
    fn prefix_sum_empty() {
        let (out, total, _) = prefix_sum(&[]);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn prefix_sum_large_matches_sequential() {
        let xs: Vec<u64> = (0..100_000u64).map(|i| i % 7).collect();
        let (out, total, _) = prefix_sum(&xs);
        let mut acc = 0;
        for i in 0..xs.len() {
            assert_eq!(out[i], acc, "mismatch at {i}");
            acc += xs[i];
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn compact_keeps_order() {
        let xs: Vec<u32> = (0..1000).collect();
        let keep: Vec<bool> = xs.iter().map(|x| x % 3 == 0).collect();
        let (out, _) = compact(&xs, &keep);
        let expect: Vec<u32> = xs.iter().copied().filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_applies() {
        let (out, cost) = par_map(&[1, 2, 3], |x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(cost, Cost::step(3));
    }

    #[test]
    fn max_by_key_finds_max() {
        let (m, _) = par_max_by_key(&[3u32, 9, 2, 9, 1], |&x| x);
        assert_eq!(m, Some(9));
        let (none, _) = par_max_by_key::<u32, u32>(&[], |&x| x);
        assert_eq!(none, None);
    }
}

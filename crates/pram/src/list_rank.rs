//! List ranking by pointer jumping (Wyllie) — the primitive underlying the
//! Euler-tour techniques the paper invokes for Step 5 (Tarjan–Vishkin \[17\]).
//!
//! Given a successor array describing disjoint linked lists, computes each
//! node's distance to the end of its list. Genuinely parallel: every round
//! doubles pointers across all nodes with rayon; `⌈log n⌉` rounds, so the
//! modelled cost is `O(n log n)` work, `O(log n)` depth (the paper's cited
//! techniques shave the work to `O(n)`, which changes constants only).

use crate::cost::{log2ceil, Cost};
use rayon::prelude::*;

/// Sentinel for "no successor" (end of list).
pub const NIL: u32 = u32::MAX;

/// Computes, for every node, its distance (number of links) to the end of
/// its list. `next[v] == NIL` marks list tails (rank 0).
///
/// Returns `(ranks, cost)`.
pub fn list_rank(next: &[u32]) -> (Vec<u32>, Cost) {
    let n = next.len();
    let mut ptr: Vec<u32> = next.to_vec();
    let mut rank: Vec<u32> = next.iter().map(|&nx| if nx == NIL { 0 } else { 1 }).collect();
    let rounds = log2ceil(n.max(1)) + 1;
    for _ in 0..rounds {
        let (new_rank, new_ptr): (Vec<u32>, Vec<u32>) = (0..n)
            .into_par_iter()
            .with_min_len(1 << 12)
            .map(|v| {
                let p = ptr[v];
                if p == NIL {
                    (rank[v], NIL)
                } else {
                    (rank[v] + rank[p as usize], ptr[p as usize])
                }
            })
            .unzip();
        rank = new_rank;
        ptr = new_ptr;
    }
    debug_assert!(ptr.iter().all(|&p| p == NIL), "all pointers collapse to NIL");
    let cost = Cost::of((n as u64) * rounds.max(1), rounds.max(1));
    (rank, cost)
}

/// Positions within a *single* list with head `head`: `pos[head] = 0`,
/// increasing toward the tail. Nodes not on the list get `NIL`.
pub fn list_positions(next: &[u32], head: u32) -> (Vec<u32>, Cost) {
    let (ranks, cost) = list_rank(next);
    let head_rank = ranks[head as usize];
    let pos: Vec<u32> = (0..next.len())
        .into_par_iter()
        .with_min_len(1 << 12)
        .map(|v| if ranks[v] > head_rank { NIL } else { head_rank - ranks[v] })
        .collect();
    (pos, cost.seq(Cost::step(next.len() as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chain() {
        // 3 -> 1 -> 4 -> 0 -> NIL ; node 2 isolated
        let mut next = vec![NIL; 5];
        next[3] = 1;
        next[1] = 4;
        next[4] = 0;
        next[2] = NIL;
        let (ranks, cost) = list_rank(&next);
        assert_eq!(ranks[3], 3);
        assert_eq!(ranks[1], 2);
        assert_eq!(ranks[4], 1);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[2], 0);
        assert!(cost.depth <= 8);
    }

    #[test]
    fn long_chain() {
        let n = 10_000;
        let mut next = vec![NIL; n];
        for (v, nx) in next.iter_mut().enumerate().take(n - 1) {
            *nx = (v + 1) as u32;
        }
        let (ranks, cost) = list_rank(&next);
        for (v, &r) in ranks.iter().enumerate() {
            assert_eq!(r as usize, n - 1 - v);
        }
        // depth must be logarithmic, not linear
        assert!(cost.depth <= 2 * (log2ceil(n) + 1));
    }

    #[test]
    fn many_small_lists() {
        // pairs: 0->1, 2->3, ...
        let n = 100;
        let mut next = vec![NIL; n];
        for v in (0..n).step_by(2) {
            next[v] = (v + 1) as u32;
        }
        let (ranks, _) = list_rank(&next);
        for (v, &r) in ranks.iter().enumerate() {
            assert_eq!(r, (v % 2 == 0) as u32);
        }
    }

    #[test]
    fn empty() {
        let (ranks, _) = list_rank(&[]);
        assert!(ranks.is_empty());
    }
}

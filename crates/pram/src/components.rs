//! Connected components by parallel hooking + pointer jumping — the
//! Shiloach–Vishkin style CRCW primitive. The paper's Step 2 (Case 2)
//! identifies "maximally connected collections of columns" with tree
//! contraction \[16\]; hooking computes the same components within the same
//! `O(log n)`-depth budget (DESIGN.md §4) and is what our parallel driver
//! uses on the column–atom bipartite graph.

use crate::cost::{log2ceil, Cost};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Connected-component labels (smallest-id representative) of an undirected
/// graph given as an edge list over `n` vertices. Runs hooking rounds with
/// CAS-min, each followed by full pointer jumping, until stable.
///
/// Modelled cost: `O((n + m) log n)` work, `O(log² n)` depth (each of the
/// `O(log n)` rounds does an `O(log n)`-depth jump).
pub fn connected_components(n: usize, edges: &[(u32, u32)]) -> (Vec<u32>, Cost) {
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        // hook: for each edge, point the larger root at the smaller root
        let changed: bool = edges
            .par_iter()
            .with_min_len(1 << 12)
            .map(|&(u, v)| {
                let ru = labels[u as usize].load(Ordering::Relaxed);
                let rv = labels[v as usize].load(Ordering::Relaxed);
                if ru == rv {
                    return false;
                }
                let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
                // CAS-min onto the larger representative
                let slot = &labels[hi as usize];
                let mut cur = slot.load(Ordering::Relaxed);
                loop {
                    if cur <= lo {
                        break;
                    }
                    match slot.compare_exchange_weak(cur, lo, Ordering::Relaxed, Ordering::Relaxed)
                    {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
                true
            })
            .reduce(|| false, |a, b| a | b);
        // jump: full path compression
        let mut jumping = true;
        while jumping {
            jumping = (0..n)
                .into_par_iter()
                .with_min_len(1 << 12)
                .map(|v| {
                    let l = labels[v].load(Ordering::Relaxed);
                    let ll = labels[l as usize].load(Ordering::Relaxed);
                    if ll < l {
                        labels[v].store(ll, Ordering::Relaxed);
                        true
                    } else {
                        false
                    }
                })
                .reduce(|| false, |a, b| a | b);
        }
        if !changed {
            break;
        }
        if rounds > (2 * log2ceil(n.max(2)) + 4) * 4 {
            // safety valve — hooking converges in O(log n) rounds
            break;
        }
    }
    let out: Vec<u32> = labels.into_iter().map(AtomicU32::into_inner).collect();
    let lg = log2ceil(n.max(2));
    let cost = Cost::of(((n + edges.len()) as u64) * rounds, rounds * lg.max(1));
    (out, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        let (labels, _) = connected_components(6, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[5], 5);
        // representatives are minima
        assert_eq!(labels[0], 0);
        assert_eq!(labels[3], 3);
    }

    #[test]
    fn empty_graph() {
        let (labels, _) = connected_components(4, &[]);
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn long_path_converges() {
        let n = 20_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let (labels, cost) = connected_components(n, &edges);
        assert!(labels.iter().all(|&l| l == 0));
        assert!(cost.depth < 4000, "depth {} should be polylog", cost.depth);
    }

    #[test]
    fn random_graph_matches_sequential() {
        let n = 500;
        let mut seed = 42u64;
        let mut next = |m: usize| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as usize) % m
        };
        let edges: Vec<(u32, u32)> =
            (0..300).map(|_| (next(n) as u32, next(n) as u32)).filter(|&(a, b)| a != b).collect();
        let (par_labels, _) = connected_components(n, &edges);
        // sequential union-find reference
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut Vec<u32>, x: u32) -> u32 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
                r
            } else {
                x
            }
        }
        for &(a, b) in &edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb) as usize] = ra.min(rb);
            }
        }
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let same_par = par_labels[u as usize] == par_labels[v as usize];
                let same_seq = find(&mut parent, u) == find(&mut parent, v);
                assert_eq!(same_par, same_seq, "disagree on ({u},{v})");
            }
        }
    }
}

//! Parallel sorting with PRAM cost accounting.
//!
//! Executes rayon's parallel merge sort; charges the cost of Cole's
//! pipelined merge sort (the standard PRAM sorting bound contemporaries of
//! the paper would cite): `O(n log n)` work, `O(log n)` depth.

use crate::cost::{log2ceil, Cost};
use rayon::prelude::*;

/// Sorts a copy of `xs` by key. Returns the sorted vector and modelled cost.
/// (`Copy` payloads: the pool's mergesort moves records by memcpy.)
pub fn par_sort_by_key<T, K, F>(xs: &[T], key: F) -> (Vec<T>, Cost)
where
    T: Copy + Send + Sync,
    K: Ord + Send,
    F: Fn(&T) -> K + Send + Sync,
{
    let mut out = xs.to_vec();
    out.par_sort_unstable_by_key(&key);
    (out, sort_cost(xs.len()))
}

/// Sorts indices `0..n` by key — the PRAM "sort the records by rank" idiom
/// without moving payloads.
pub fn par_sort_indices<K, F>(n: usize, key: F) -> (Vec<u32>, Cost)
where
    K: Ord + Send,
    F: Fn(u32) -> K + Send + Sync,
{
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.par_sort_unstable_by_key(|&i| key(i));
    (idx, sort_cost(n))
}

/// The modelled cost of sorting `n` records on a PRAM (Cole):
/// `O(n log n)` work, `O(log n)` depth.
pub fn sort_cost(n: usize) -> Cost {
    let lg = log2ceil(n).max(1);
    Cost::of(n as u64 * lg, lg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_by_key() {
        let xs = vec![(3, 'c'), (1, 'a'), (2, 'b')];
        let (out, cost) = par_sort_by_key(&xs, |&(k, _)| k);
        assert_eq!(out, vec![(1, 'a'), (2, 'b'), (3, 'c')]);
        assert!(cost.work >= 3);
    }

    #[test]
    fn sorts_indices() {
        let vals = [30u32, 10, 20];
        let (idx, _) = par_sort_indices(3, |i| vals[i as usize]);
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn large_sort_matches_std() {
        let xs: Vec<u64> = (0..50_000u64).map(|i| i.wrapping_mul(0x9E3779B9) % 10_000).collect();
        let (out, _) = par_sort_by_key(&xs, |&x| x);
        let mut expect = xs.clone();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }
}

//! Euler tours of rooted trees (Tarjan–Vishkin \[17\]) — the technique the
//! paper's Step 5 uses to extract minimal decompositions within the PRAM
//! bounds.
//!
//! A tree on `n` nodes (parent array, root has parent `NIL`) is turned into
//! the standard Euler circuit of its directed-edge doubling; list ranking
//! the circuit yields entry/exit times, hence subtree membership tests and
//! subtree aggregates in `O(log n)` depth.

use crate::cost::Cost;
use crate::list_rank::{list_rank, NIL};

/// Entry/exit times of every node under an Euler tour of the tree.
#[derive(Debug, Clone)]
pub struct EulerTimes {
    /// `enter[v] < enter[u] && exit[u] ≤ exit[v]` ⟺ `u` in `v`'s subtree.
    pub enter: Vec<u32>,
    /// Exit time (post-visit).
    pub exit: Vec<u32>,
}

impl EulerTimes {
    /// Is `u` inside the subtree rooted at `v` (inclusive)?
    pub fn in_subtree(&self, v: u32, u: u32) -> bool {
        self.enter[v as usize] <= self.enter[u as usize]
            && self.exit[u as usize] <= self.exit[v as usize]
    }
}

/// Computes Euler entry/exit times for the rooted tree given by `parent`
/// (root: `parent[r] == NIL`). Children are ordered by node id.
///
/// Construction: each node contributes a down-edge and an up-edge; the
/// successor function of the Euler circuit is built in `O(n)` work, then
/// one list-ranking gives positions. Modelled cost: `O(n log n)` work,
/// `O(log n)` depth.
pub fn euler_times(parent: &[u32]) -> (EulerTimes, Cost) {
    let n = parent.len();
    if n == 0 {
        return (EulerTimes { enter: vec![], exit: vec![] }, Cost::ZERO);
    }
    let mut root = NIL;
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        if parent[v as usize] == NIL {
            assert_eq!(root, NIL, "exactly one root expected");
            root = v;
        } else {
            children[parent[v as usize] as usize].push(v);
        }
    }
    assert_ne!(root, NIL, "tree must have a root");
    // Edge ids: down(v) = 2v, up(v) = 2v+1 (for v != root, the edge
    // parent(v)→v and back). For the root we use a virtual start.
    // successor(down(v)) = down(first child of v) or up(v) if leaf
    // successor(up(v))   = down(next sibling of v) or up(parent) (or end)
    let m = 2 * n;
    let mut next = vec![NIL; m];
    let down = |v: u32| 2 * v;
    let up = |v: u32| 2 * v + 1;
    for v in 0..n as u32 {
        // down(v) -> first child or up(v)
        next[down(v) as usize] = children[v as usize].first().map_or(up(v), |&c| down(c));
        // up(v) -> next sibling or up(parent)
        let p = parent[v as usize];
        if p == NIL {
            next[up(v) as usize] = NIL;
        } else {
            let sibs = &children[p as usize];
            let idx = sibs.iter().position(|&c| c == v).expect("child listed");
            next[up(v) as usize] = sibs.get(idx + 1).map_or(up(p), |&s| down(s));
        }
    }
    let (ranks, rank_cost) = list_rank(&next);
    // position of tour element e = rank(head) - rank(e); head = down(root)
    let head_rank = ranks[down(root) as usize];
    let mut enter = vec![0u32; n];
    let mut exit = vec![0u32; n];
    for v in 0..n as u32 {
        enter[v as usize] = head_rank - ranks[down(v) as usize];
        exit[v as usize] = head_rank - ranks[up(v) as usize];
    }
    let cost = Cost::step(n as u64).seq(rank_cost).seq(Cost::step(n as u64));
    (EulerTimes { enter, exit }, cost)
}

/// Subtree sizes from Euler times: `(exit - enter + 1) / 2`.
pub fn subtree_sizes(times: &EulerTimes) -> Vec<u32> {
    times.enter.iter().zip(&times.exit).map(|(&e, &x)| (x - e).div_ceil(2)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// parent array for:      0
    ///                       / \
    ///                      1   2
    ///                     / \
    ///                    3   4
    fn tree() -> Vec<u32> {
        vec![NIL, 0, 0, 1, 1]
    }

    #[test]
    fn subtree_tests() {
        let (t, _) = euler_times(&tree());
        assert!(t.in_subtree(0, 4));
        assert!(t.in_subtree(1, 3));
        assert!(t.in_subtree(1, 4));
        assert!(!t.in_subtree(1, 2));
        assert!(!t.in_subtree(2, 1));
        assert!(t.in_subtree(2, 2));
    }

    #[test]
    fn sizes() {
        let (t, _) = euler_times(&tree());
        assert_eq!(subtree_sizes(&t), vec![5, 3, 1, 1, 1]);
    }

    #[test]
    fn path_tree_logarithmic_depth() {
        let n = 4096;
        let mut parent = vec![NIL; n];
        for (v, p) in parent.iter_mut().enumerate().skip(1) {
            *p = (v - 1) as u32;
        }
        let (t, cost) = euler_times(&parent);
        assert!(t.in_subtree(0, (n - 1) as u32));
        assert!(t.in_subtree(100, 4000));
        assert!(!t.in_subtree(4000, 100));
        assert!(cost.depth <= 40, "depth {} should be logarithmic", cost.depth);
    }

    #[test]
    fn single_node() {
        let (t, _) = euler_times(&[NIL]);
        assert_eq!(t.enter, vec![0]);
        assert_eq!(t.exit, vec![1]);
        assert_eq!(subtree_sizes(&t), vec![1]);
    }
}

//! Differential validation of the specialised Tutte decomposition against
//! the general-graph reference implementation (`c1p_graph::tutte_ref`).
//!
//! Cunningham–Edmonds (Theorem 1 of \[8\], cited by the paper): the Tutte
//! decomposition of a 2-connected graph is unique. Hence the fast
//! cycle-plus-chords builder and the naive recursive splitter must produce
//! identical member sets (same kinds, same real-edge contents, same
//! adjacency structure) on every gp-pair.

use c1p_graph::tutte_ref;
use c1p_graph::MultiGraph;
use c1p_tutte::{decompose, EdgeRef, MemberKind, TutteTree};

/// Maps a fast-tree member's edges onto gp-graph edge ids:
/// path edge `i` → `i`, `e` → `n`, chord `j` → `n + 1 + j`.
fn real_edges_of(tree: &TutteTree, m: u32, n: usize) -> Vec<u32> {
    let mut out: Vec<u32> = tree.members[m as usize]
        .edges()
        .into_iter()
        .filter_map(|e| match e {
            EdgeRef::Path(i) => Some(i),
            EdgeRef::E => Some(n as u32),
            EdgeRef::Chord(j) => Some(n as u32 + 1 + j),
            EdgeRef::Virt(_) => None,
        })
        .collect();
    out.sort_unstable();
    out
}

fn kind_of(k: MemberKind) -> tutte_ref::MemberKind {
    match k {
        MemberKind::Bond => tutte_ref::MemberKind::Bond,
        MemberKind::Polygon => tutte_ref::MemberKind::Polygon,
        MemberKind::Rigid => tutte_ref::MemberKind::Rigid,
    }
}

fn fast_signatures(tree: &TutteTree, n: usize) -> Vec<(tutte_ref::MemberKind, Vec<u32>)> {
    let mut sigs: Vec<(tutte_ref::MemberKind, Vec<u32>)> = (0..tree.members.len() as u32)
        .map(|m| (kind_of(tree.members[m as usize].kind()), real_edges_of(tree, m, n)))
        .collect();
    sigs.sort();
    sigs
}

fn fast_adjacency(tree: &TutteTree, n: usize) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut out = Vec::new();
    for v in 0..tree.virt_parent.len() {
        let mut a = real_edges_of(tree, tree.virt_parent[v], n);
        let mut b = real_edges_of(tree, tree.virt_child[v], n);
        if b < a {
            std::mem::swap(&mut a, &mut b);
        }
        out.push((a, b));
    }
    out.sort();
    out
}

fn check(n: usize, chords: &[(u32, u32)]) {
    let fast = decompose(n, chords).unwrap();
    fast.validate();
    let g = MultiGraph::gp_graph(n, chords);
    let slow = tutte_ref::decompose(&g);
    assert_eq!(
        fast_signatures(&fast, n),
        slow.signatures(),
        "member sets differ for n={n}, chords={chords:?}"
    );
    assert_eq!(
        fast_adjacency(&fast, n),
        slow.adjacency_signatures(),
        "tree adjacency differs for n={n}, chords={chords:?}"
    );
    // every rigid member of the fast tree must be genuinely 3-connected
    for m in &fast.members {
        if m.kind() == MemberKind::Rigid {
            if let c1p_tutte::MemberShape::Rigid { ring, chords } = &m.shape {
                let t = ring.len();
                let mut mg = MultiGraph::new(t);
                for i in 0..t {
                    mg.add_edge(i as u32, ((i + 1) % t) as u32);
                }
                for &(a, b, _) in chords {
                    mg.add_edge(a, b);
                }
                assert!(
                    c1p_graph::separation::is_triconnected(&mg),
                    "rigid member is not 3-connected: n={n}, chords={chords:?}"
                );
            }
        }
    }
}

#[test]
fn handpicked_structures() {
    check(3, &[]);
    check(5, &[(1, 4)]);
    check(5, &[(1, 4), (1, 4)]);
    check(3, &[(0, 2), (1, 3)]);
    check(4, &[(0, 4), (0, 4)]);
    check(8, &[(1, 7), (2, 6), (3, 5)]);
    check(8, &[(0, 2), (1, 3), (2, 4), (3, 5), (4, 6), (5, 7)]);
    check(6, &[(0, 3), (2, 5), (1, 4)]);
    check(10, &[(0, 5), (4, 9), (1, 3), (6, 8), (2, 3), (2, 3)]);
    check(4, &[(0, 2), (1, 3), (0, 4), (2, 4), (1, 3)]);
    // equal hulls: single chord (1,5) parallel to the rigid {(1,3),(2,5)}…
    check(6, &[(1, 5), (1, 3), (2, 5)]);
    // chord parallel to a path edge inside a rigid gap
    check(6, &[(1, 4), (2, 5), (2, 3)]);
}

#[test]
fn exhaustive_tiny() {
    // all chord sets of size ≤ 2 over n = 3, 4
    for n in 3u32..=4 {
        let mut all = vec![];
        for lo in 0..n {
            for hi in lo + 1..=n {
                all.push((lo, hi));
            }
        }
        check(n as usize, &[]);
        for &a in &all {
            check(n as usize, &[a]);
            for &b in &all {
                check(n as usize, &[a, b]);
            }
        }
    }
}

#[test]
fn randomized_against_reference() {
    // deterministic LCG so failures are reproducible
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = |m: usize| {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 33) as usize) % m
    };
    for trial in 0..400 {
        let n = 3 + next(12);
        let n_chords = next(8);
        let chords: Vec<(u32, u32)> = (0..n_chords)
            .map(|_| {
                let lo = next(n) as u32;
                let hi = (lo as usize + 1 + next(n - lo as usize)) as u32;
                (lo, hi)
            })
            .collect();
        let _ = trial;
        check(n, &chords);
    }
}

#[test]
fn randomized_larger_self_checks() {
    // bigger instances: reference is too slow, but validate() + composition
    // identity + arrangement contiguity still apply.
    let mut seed = 0xDEADBEEFCAFEu64;
    let mut next = |m: usize| {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 33) as usize) % m
    };
    for _ in 0..40 {
        let n = 50 + next(200);
        let n_chords = next(120);
        let chords: Vec<(u32, u32)> = (0..n_chords)
            .map(|_| {
                let lo = next(n) as u32;
                let hi = (lo as usize + 1 + next(n - lo as usize)) as u32;
                (lo, hi)
            })
            .collect();
        let tree = decompose(n, &chords).unwrap();
        tree.validate();
        let order = c1p_tutte::compose(&tree, &c1p_tutte::Arrangement::identity(&tree));
        assert_eq!(order, (0..n as u32).collect::<Vec<_>>());
        // random arrangement keeps spans contiguous
        let arr = c1p_tutte::Arrangement {
            virt_flip: (0..tree.virt_parent.len()).map(|_| next(2) == 1).collect(),
            root_flip: next(2) == 1,
        };
        let order2 = c1p_tutte::compose(&tree, &arr);
        let spans = c1p_tutte::chord_spans_after(&order2, &chords);
        for (ci, &(lo, hi)) in chords.iter().enumerate() {
            let (nlo, nhi) = spans[ci];
            assert_eq!(nhi - nlo, hi - lo, "chord {ci} broken by arrangement");
        }
    }
}

//! Building the Tutte decomposition of a gp-pair from its chord spans.
//!
//! Input: `n_atoms` path edges (the realization's atoms in order) plus one
//! chord `(lo, hi)` per column (`0 ≤ lo < hi ≤ n_atoms`, meaning the column
//! occupies atom positions `lo..hi`). The cycle is `path ∪ {e}` with `e`
//! joining path vertices `0` and `n_atoms`.
//!
//! Construction (see crate docs for why this equals the general Tutte
//! decomposition on this graph class):
//!
//! 1. chords with the full span `(0, n)` are parallel to `e` → root bond;
//! 2. remaining chords are grouped by span (identical spans → bonds);
//! 3. distinct spans are partitioned into interlacement classes;
//! 4. class hulls form a laminar family → nesting forest;
//! 5. members are emitted bottom-up: multi-span classes become rigids
//!    (perimeter = endpoint sequence), singleton classes become bonds,
//!    gaps with ≥ 2 items become polygons; 2-edge members are suppressed
//!    by splicing (the bond/polygon merge rule).
//!
//! The solver decomposes thousands of failed-junction sides per solve, so
//! every transient table (span keys, groups, classes, the nesting forest)
//! lives in per-thread pooled scratch and the per-class lists (group
//! indices, endpoints, forest children) are ranges into shared flat
//! buffers rather than per-class `Vec`s. Only the returned [`TutteTree`]
//! allocates.

use crate::interlace::classes_sweep_into;
use crate::tree::{EdgeRef, Member, MemberId, MemberShape, TutteTree, VirtId};

/// Errors for malformed chord inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecomposeError {
    /// `n_atoms` must be ≥ 1.
    NoAtoms,
    /// A chord had `lo ≥ hi` or `hi > n_atoms`.
    BadChord { index: usize, lo: u32, hi: u32 },
}

impl std::fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomposeError::NoAtoms => write!(f, "decomposition requires at least one atom"),
            DecomposeError::BadChord { index, lo, hi } => {
                write!(f, "chord {index} has invalid span ({lo}, {hi})")
            }
        }
    }
}

impl std::error::Error for DecomposeError {}

/// A group of chords sharing one span. The chord ids live in the shared
/// span-sorted order array (`order[start..end]`), so building the groups
/// allocates nothing per group.
#[derive(Debug, Clone, Copy)]
struct SpanGroup {
    lo: u32,
    hi: u32,
    start: u32,
    end: u32,
}

/// One interlacement class of span groups. All list-like fields are
/// `(start, end)` ranges into the scratch-pooled flat buffers
/// (`class_flat`, `eps_flat`, `children_flat`) so a class allocates
/// nothing.
#[derive(Debug, Clone, Copy)]
struct Class {
    /// Range of span-group indices in `class_flat`.
    groups: (u32, u32),
    /// Range of sorted distinct endpoint positions in `eps_flat`.
    eps: (u32, u32),
    hull_lo: u32,
    hull_hi: u32,
    /// Range of nesting-forest children in `children_flat`, in
    /// increasing `hull_lo` order.
    children: (u32, u32),
}

/// An item encountered while walking an interval of the cycle.
#[derive(Debug, Clone, Copy)]
enum Item {
    PathEdge(u32),
    Child(u32), // class index
}

/// Per-thread reusable buffers for [`decompose`]: every table here is
/// transient (logically dead by the end of one call) and
/// O(chords + classes) in size, so pooling turns ~15 heap round-trips per
/// call into none on the steady state.
#[derive(Default)]
struct Scratch {
    ep: Vec<u32>,
    keys: Vec<u128>,
    order: Vec<u32>,
    groups: Vec<SpanGroup>,
    spans: Vec<(u32, u32)>,
    class_off: Vec<u32>,
    class_flat: Vec<u32>,
    classes: Vec<Class>,
    eps_flat: Vec<u32>,
    idx: Vec<u32>,
    parent_of: Vec<u32>,
    child_cursor: Vec<u32>,
    children_flat: Vec<u32>,
    top: Vec<u32>,
    stack: Vec<u32>,
    post: Vec<u32>,
    dfs: Vec<(u32, bool)>,
    class_member: Vec<MemberId>,
    class_outer: Vec<VirtId>,
    items: Vec<Item>,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<Scratch> = Default::default();
}

struct Builder<'a> {
    members: Vec<Member>,
    virt_parent: Vec<MemberId>,
    virt_child: Vec<MemberId>,
    chord_member: Vec<MemberId>,
    path_member: Vec<MemberId>,
    class_member: Vec<MemberId>,
    class_outer: Vec<VirtId>,
    /// Chord ids sorted by span; span groups index into this.
    order: &'a [u32],
    /// Reusable buffer for [`walk_items_into`] (pooled, not one
    /// allocation per interval).
    items_buf: Vec<Item>,
}

const UNSET: u32 = u32::MAX;

impl Builder<'_> {
    fn new_virt(&mut self) -> VirtId {
        self.virt_parent.push(UNSET);
        self.virt_child.push(UNSET);
        (self.virt_parent.len() - 1) as VirtId
    }

    fn push_member(&mut self, shape: MemberShape) -> MemberId {
        let id = self.members.len() as MemberId;
        let (path_member, chord_member) = (&mut self.path_member, &mut self.chord_member);
        let mut register = |e: EdgeRef| match e {
            EdgeRef::Path(i) => path_member[i as usize] = id,
            EdgeRef::Chord(c) => chord_member[c as usize] = id,
            _ => {}
        };
        match &shape {
            MemberShape::Bond { edges } => edges.iter().copied().for_each(&mut register),
            MemberShape::Polygon { ring } => ring.iter().copied().for_each(&mut register),
            MemberShape::Rigid { ring, chords } => {
                ring.iter().copied().for_each(&mut register);
                chords.iter().for_each(|&(_, _, e)| register(e));
            }
        }
        self.members.push(Member { shape, parent: None });
        id
    }

    /// Builds the edge representing interval `(lo, hi)` whose direct
    /// contents are `children` classes (already built, ordered by hull_lo)
    /// plus uncovered path edges. Returns the edge plus the marker (if any)
    /// whose `virt_parent` the caller must claim.
    fn interval_edge(
        &mut self,
        lo: u32,
        hi: u32,
        children: &[u32],
        classes: &[Class],
    ) -> (EdgeRef, Option<VirtId>) {
        let mut items = std::mem::take(&mut self.items_buf);
        walk_items_into(lo, hi, children, classes, &mut items);
        debug_assert!(!items.is_empty(), "non-degenerate interval");
        if items.len() == 1 {
            let item = items[0];
            self.items_buf = items;
            return match item {
                Item::PathEdge(i) => (EdgeRef::Path(i), None),
                Item::Child(c) => {
                    let v = self.class_outer[c as usize];
                    self.virt_child[v as usize] = self.class_member[c as usize];
                    (EdgeRef::Virt(v), Some(v))
                }
            };
        }
        // polygon member: [items..., parent marker]
        let v_poly = self.new_virt();
        let mut ring = Vec::with_capacity(items.len() + 1);
        for item in &items {
            match *item {
                Item::PathEdge(i) => ring.push(EdgeRef::Path(i)),
                Item::Child(c) => {
                    let v = self.class_outer[c as usize];
                    self.virt_child[v as usize] = self.class_member[c as usize];
                    ring.push(EdgeRef::Virt(v));
                }
            }
        }
        ring.push(EdgeRef::Virt(v_poly));
        let pid = self.push_member(MemberShape::Polygon { ring });
        for item in &items {
            if let Item::Child(c) = *item {
                self.virt_parent[self.class_outer[c as usize] as usize] = pid;
            }
        }
        self.items_buf = items;
        self.virt_child[v_poly as usize] = pid;
        (EdgeRef::Virt(v_poly), Some(v_poly))
    }

    /// Builds the member for class `c` (children must be built already).
    #[allow(clippy::too_many_arguments)]
    fn build_class(
        &mut self,
        c: usize,
        classes: &[Class],
        groups: &[SpanGroup],
        class_flat: &[u32],
        children_flat: &[u32],
        eps_flat: &[u32],
    ) {
        let class = classes[c];
        let outer = self.class_outer[c];
        let kids = &children_flat[class.children.0 as usize..class.children.1 as usize];
        let class_groups = &class_flat[class.groups.0 as usize..class.groups.1 as usize];
        if class_groups.len() == 1 {
            // singleton class → bond {chords…, inner, outer}
            let g = groups[class_groups[0] as usize];
            let (inner, claim) = self.interval_edge(g.lo, g.hi, kids, classes);
            let mut edges: Vec<EdgeRef> = self.order[g.start as usize..g.end as usize]
                .iter()
                .map(|&i| EdgeRef::Chord(i))
                .collect();
            edges.push(inner);
            edges.push(EdgeRef::Virt(outer));
            let mid = self.push_member(MemberShape::Bond { edges });
            if let Some(v) = claim {
                self.virt_parent[v as usize] = mid;
            }
            self.class_member[c] = mid;
            return;
        }
        // multi-span class → rigid
        let eps = &eps_flat[class.eps.0 as usize..class.eps.1 as usize];
        let t = eps.len();
        debug_assert!(t >= 4, "interlacing spans have ≥ 4 distinct endpoints");
        // children are distributed into the gaps between consecutive
        // endpoints; both lists ascend by position, so each gap's children
        // are one contiguous run of `kids`
        let mut ring = Vec::with_capacity(t);
        let mut claims: Vec<VirtId> = Vec::new();
        let mut ci = 0;
        for gi in 0..t - 1 {
            let start = ci;
            while ci < kids.len() && classes[kids[ci] as usize].hull_lo < eps[gi + 1] {
                let kid = &classes[kids[ci] as usize];
                assert!(
                    kid.hull_lo >= eps[gi] && kid.hull_hi <= eps[gi + 1],
                    "nested class must fit within one gap of its parent"
                );
                ci += 1;
            }
            let (edge, claim) = self.interval_edge(eps[gi], eps[gi + 1], &kids[start..ci], classes);
            ring.push(edge);
            claims.extend(claim);
        }
        debug_assert_eq!(ci, kids.len(), "every child must land in a gap");
        ring.push(EdgeRef::Virt(outer));
        // chord edges of the rigid, one per span group; parallel groups
        // hang off as bonds
        let mut chords = Vec::with_capacity(class_groups.len());
        for &gidx in class_groups {
            let g = groups[gidx as usize];
            let pa = eps.binary_search(&g.lo).expect("span endpoint is a class endpoint") as u32;
            let pb = eps.binary_search(&g.hi).expect("span endpoint is a class endpoint") as u32;
            let g_chords = &self.order[g.start as usize..g.end as usize];
            let edge = if g_chords.len() == 1 {
                EdgeRef::Chord(g_chords[0])
            } else {
                let vb = self.new_virt();
                let mut edges: Vec<EdgeRef> = g_chords.iter().map(|&i| EdgeRef::Chord(i)).collect();
                edges.push(EdgeRef::Virt(vb));
                let bid = self.push_member(MemberShape::Bond { edges });
                self.virt_child[vb as usize] = bid;
                claims.push(vb);
                EdgeRef::Virt(vb)
            };
            chords.push((pa, pb, edge));
        }
        let mid = self.push_member(MemberShape::Rigid { ring, chords });
        for v in claims {
            self.virt_parent[v as usize] = mid;
        }
        self.class_member[c] = mid;
    }
}

/// Walks interval `(lo, hi)` producing the ordered item list into `items`
/// (cleared first): maximal nested classes interleaved with uncovered path
/// edges.
fn walk_items_into(lo: u32, hi: u32, children: &[u32], classes: &[Class], items: &mut Vec<Item>) {
    items.clear();
    let mut pos = lo;
    let mut ci = 0;
    while pos < hi {
        if ci < children.len() && classes[children[ci] as usize].hull_lo == pos {
            let c = children[ci];
            items.push(Item::Child(c));
            pos = classes[c as usize].hull_hi;
            ci += 1;
        } else {
            debug_assert!(
                ci >= children.len() || classes[children[ci] as usize].hull_lo > pos,
                "children must be disjoint and ordered"
            );
            items.push(Item::PathEdge(pos));
            pos += 1;
        }
    }
    debug_assert_eq!(pos, hi, "children must not overrun the interval");
    debug_assert_eq!(ci, children.len(), "all children must be consumed");
}

/// Computes the rooted Tutte decomposition of the gp-pair with `n_atoms`
/// path edges and the given chord spans (one per column).
///
/// Runs in `O(n + s log s + p α)` where `s` is the number of chords.
pub fn decompose(n_atoms: usize, chords: &[(u32, u32)]) -> Result<TutteTree, DecomposeError> {
    if n_atoms == 0 {
        return Err(DecomposeError::NoAtoms);
    }
    let n = n_atoms as u32;
    for (i, &(lo, hi)) in chords.iter().enumerate() {
        if lo >= hi || hi > n {
            return Err(DecomposeError::BadChord { index: i, lo, hi });
        }
    }
    SCRATCH.with(|s| Ok(decompose_inner(n_atoms, chords, &mut s.borrow_mut())))
}

/// The body of [`decompose`] after input validation, running on pooled
/// scratch.
fn decompose_inner(n_atoms: usize, chords: &[(u32, u32)], s: &mut Scratch) -> TutteTree {
    let n = n_atoms as u32;
    let Scratch {
        ep,
        keys,
        order,
        groups,
        spans,
        class_off,
        class_flat,
        classes,
        eps_flat,
        idx,
        parent_of,
        child_cursor,
        children_flat,
        top,
        stack,
        post,
        dfs,
        class_member,
        class_outer,
        items,
    } = s;
    // 1. e-parallel chords; 2. span groups. The span sort runs on packed
    // `lo(32) | hi(32) | idx(32)` keys: integer comparisons, no chasing
    // `chords` through a comparator, and the idx tie-break makes the
    // order within a span group canonical.
    ep.clear();
    keys.clear();
    for (i, &(lo, hi)) in chords.iter().enumerate() {
        if lo == 0 && hi == n {
            ep.push(i as u32);
        } else {
            keys.push((lo as u128) << 64 | (hi as u128) << 32 | i as u128);
        }
    }
    keys.sort_unstable();
    order.clear();
    order.extend(keys.iter().map(|&k| k as u32));
    groups.clear();
    for (oi, &k) in keys.iter().enumerate() {
        let (lo, hi) = ((k >> 64) as u32, (k >> 32) as u32);
        match groups.last_mut() {
            Some(g) if g.lo == lo && g.hi == hi => g.end = oi as u32 + 1,
            _ => groups.push(SpanGroup { lo, hi, start: oi as u32, end: oi as u32 + 1 }),
        }
    }
    // 3. interlacement classes over distinct spans; each class stores its
    // group list, sorted distinct endpoints, and forest children as
    // ranges into the shared flat buffers
    spans.clear();
    spans.extend(groups.iter().map(|g| (g.lo, g.hi)));
    classes_sweep_into(spans, class_off, class_flat);
    let n_classes = class_off.len() - 1;
    classes.clear();
    eps_flat.clear();
    for c in 0..n_classes {
        let grange = (class_off[c], class_off[c + 1]);
        let e0 = eps_flat.len();
        for &gi in &class_flat[grange.0 as usize..grange.1 as usize] {
            eps_flat.push(groups[gi as usize].lo);
            eps_flat.push(groups[gi as usize].hi);
        }
        eps_flat[e0..].sort_unstable();
        let mut w = e0 + 1;
        for r in e0 + 1..eps_flat.len() {
            if eps_flat[r] != eps_flat[w - 1] {
                eps_flat[w] = eps_flat[r];
                w += 1;
            }
        }
        eps_flat.truncate(w);
        classes.push(Class {
            groups: grange,
            eps: (e0 as u32, w as u32),
            hull_lo: eps_flat[e0],
            hull_hi: eps_flat[w - 1],
            children: (0, 0),
        });
    }
    // 4. nesting forest over hulls. Sort order: by (hull_lo asc, hull_hi
    // desc); on identical hulls the singleton class is the parent of the
    // multi-span class (the parallel chord's bond encloses the rigid).
    idx.clear();
    idx.extend(0..n_classes as u32);
    idx.sort_unstable_by(|&a, &b| {
        let ca = &classes[a as usize];
        let cb = &classes[b as usize];
        ca.hull_lo
            .cmp(&cb.hull_lo)
            .then(cb.hull_hi.cmp(&ca.hull_hi))
            .then((ca.groups.1 - ca.groups.0 > 1).cmp(&(cb.groups.1 - cb.groups.0 > 1)))
    });
    // first walk: find each class's forest parent (or the top level) and
    // count children; then place them contiguously, so one class's
    // children are a run of `children_flat` in the walk's increasing
    // hull_lo order
    top.clear();
    stack.clear();
    parent_of.clear();
    parent_of.resize(n_classes, UNSET);
    child_cursor.clear();
    child_cursor.resize(n_classes, 0);
    for &c in idx.iter() {
        let (lo, hi) = (classes[c as usize].hull_lo, classes[c as usize].hull_hi);
        while let Some(&t) = stack.last() {
            let (tlo, thi) = (classes[t as usize].hull_lo, classes[t as usize].hull_hi);
            let contains = tlo <= lo && hi <= thi && t != c;
            if contains {
                break;
            }
            assert!(
                thi <= lo || (tlo <= lo && hi <= thi),
                "class hulls must be laminar: ({tlo},{thi}) vs ({lo},{hi})"
            );
            stack.pop();
        }
        match stack.last() {
            Some(&p) => {
                parent_of[c as usize] = p;
                child_cursor[p as usize] += 1;
            }
            None => top.push(c),
        }
        stack.push(c);
    }
    let mut acc = 0u32;
    for c in 0..n_classes {
        let cnt = child_cursor[c];
        classes[c].children = (acc, acc + cnt);
        child_cursor[c] = acc;
        acc += cnt;
    }
    children_flat.clear();
    children_flat.resize(acc as usize, 0);
    for &c in idx.iter() {
        let p = parent_of[c as usize];
        if p != UNSET {
            children_flat[child_cursor[p as usize] as usize] = c;
            child_cursor[p as usize] += 1;
        }
    }
    // 5. build members bottom-up (children precede parents in post-order)
    class_member.clear();
    class_member.resize(n_classes, UNSET);
    class_outer.clear();
    let mut b = Builder {
        members: Vec::with_capacity(2 * n_classes + 4),
        virt_parent: Vec::new(),
        virt_child: Vec::new(),
        chord_member: vec![UNSET; chords.len()],
        path_member: vec![UNSET; n_atoms],
        class_member: std::mem::take(class_member),
        class_outer: std::mem::take(class_outer),
        order,
        items_buf: std::mem::take(items),
    };
    for _ in 0..n_classes {
        let v = b.new_virt();
        b.class_outer.push(v);
    }
    // post-order traversal of the forest
    post.clear();
    dfs.clear();
    dfs.extend(top.iter().rev().map(|&c| (c, false)));
    while let Some((c, expanded)) = dfs.pop() {
        if expanded {
            post.push(c);
        } else {
            dfs.push((c, true));
            let (k0, k1) = classes[c as usize].children;
            for &ch in children_flat[k0 as usize..k1 as usize].iter().rev() {
                dfs.push((ch, false));
            }
        }
    }
    for &c in post.iter() {
        b.build_class(c as usize, classes, groups, class_flat, children_flat, eps_flat);
    }
    // 6. the root
    let root: MemberId;
    if !ep.is_empty() {
        // root bond {e, e-parallel chords, inner}
        let (inner, claim) = b.interval_edge(0, n, top, classes);
        let mut edges: Vec<EdgeRef> = vec![EdgeRef::E];
        edges.extend(ep.iter().map(|&i| EdgeRef::Chord(i)));
        edges.push(inner);
        root = b.push_member(MemberShape::Bond { edges });
        if let Some(v) = claim {
            b.virt_parent[v as usize] = root;
        }
    } else {
        let mut root_items = std::mem::take(&mut b.items_buf);
        walk_items_into(0, n, top, classes, &mut root_items);
        if root_items.len() == 1 {
            match root_items[0] {
                Item::Child(c) => {
                    // suppress the 2-polygon {e, class}: e joins the class
                    // member directly, replacing its outer marker.
                    root = b.class_member[c as usize];
                    let outer = b.class_outer[c as usize];
                    replace_edge(
                        &mut b.members[root as usize].shape,
                        EdgeRef::Virt(outer),
                        EdgeRef::E,
                    );
                    // retire the unused marker id by popping it if it is the
                    // last one; otherwise mark it as self-paired for
                    // validate() to skip. Markers are allocated per class up
                    // front, so compact by swapping with the last id.
                    retire_virt(&mut b, outer);
                }
                Item::PathEdge(_) => {
                    // degenerate n == 1: bond {e, path 0}
                    root = b.push_member(MemberShape::Bond {
                        edges: vec![EdgeRef::Path(0), EdgeRef::E],
                    });
                }
            }
        } else {
            let mut ring = Vec::with_capacity(root_items.len() + 1);
            let mut to_fix = Vec::new();
            for item in &root_items {
                match *item {
                    Item::PathEdge(i) => ring.push(EdgeRef::Path(i)),
                    Item::Child(c) => {
                        let v = b.class_outer[c as usize];
                        b.virt_child[v as usize] = b.class_member[c as usize];
                        ring.push(EdgeRef::Virt(v));
                        to_fix.push(v);
                    }
                }
            }
            ring.push(EdgeRef::E);
            root = b.push_member(MemberShape::Polygon { ring });
            for v in to_fix {
                b.virt_parent[v as usize] = root;
            }
        }
        b.items_buf = root_items;
    }
    // 7. parent pointers; the pooled builder buffers go back to the
    // scratch once the escaping tables have moved into the tree
    let mut tree = TutteTree {
        n_atoms,
        members: b.members,
        root,
        virt_parent: b.virt_parent,
        virt_child: b.virt_child,
        chord_member: b.chord_member,
        path_member: b.path_member,
    };
    *class_member = std::mem::take(&mut b.class_member);
    *class_outer = std::mem::take(&mut b.class_outer);
    *items = std::mem::take(&mut b.items_buf);
    for v in 0..tree.virt_parent.len() {
        let (p, c) = (tree.virt_parent[v], tree.virt_child[v]);
        assert!(p != UNSET && c != UNSET, "marker {v} left unpaired");
        tree.members[c as usize].parent = Some((p, v as VirtId));
    }
    #[cfg(debug_assertions)]
    tree.validate();
    tree
}

/// Replaces one edge reference inside a member shape.
fn replace_edge(shape: &mut MemberShape, from: EdgeRef, to: EdgeRef) {
    let replace = |v: &mut Vec<EdgeRef>| {
        let pos = v.iter().position(|&e| e == from).expect("edge to replace present");
        v[pos] = to;
    };
    match shape {
        MemberShape::Bond { edges } => replace(edges),
        MemberShape::Polygon { ring } => replace(ring),
        MemberShape::Rigid { ring, chords } => {
            if ring.contains(&from) {
                replace(ring);
            } else {
                let pos = chords.iter().position(|&(_, _, e)| e == from).expect("chord present");
                chords[pos].2 = to;
            }
        }
    }
}

/// Removes an unused marker id by swapping with the last allocated marker
/// and renaming that marker's references.
fn retire_virt(b: &mut Builder<'_>, v: VirtId) {
    let last = (b.virt_parent.len() - 1) as VirtId;
    if v != last {
        // rename `last` to `v` everywhere
        b.virt_parent.swap(v as usize, last as usize);
        b.virt_child.swap(v as usize, last as usize);
        for m in &mut b.members {
            match &mut m.shape {
                MemberShape::Bond { edges } => {
                    for e in edges {
                        if *e == EdgeRef::Virt(last) {
                            *e = EdgeRef::Virt(v);
                        }
                    }
                }
                MemberShape::Polygon { ring } => {
                    for e in ring {
                        if *e == EdgeRef::Virt(last) {
                            *e = EdgeRef::Virt(v);
                        }
                    }
                }
                MemberShape::Rigid { ring, chords } => {
                    for e in ring {
                        if *e == EdgeRef::Virt(last) {
                            *e = EdgeRef::Virt(v);
                        }
                    }
                    for c in chords {
                        if c.2 == EdgeRef::Virt(last) {
                            c.2 = EdgeRef::Virt(v);
                        }
                    }
                }
            }
        }
        for i in 0..b.class_outer.len() {
            if b.class_outer[i] == last {
                b.class_outer[i] = v;
            }
        }
    }
    b.virt_parent.pop();
    b.virt_child.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MemberKind;

    fn kinds(tree: &TutteTree) -> Vec<MemberKind> {
        let mut k: Vec<MemberKind> = tree.members.iter().map(|m| m.kind()).collect();
        k.sort();
        k
    }

    #[test]
    fn bare_cycle_is_one_polygon() {
        let t = decompose(4, &[]).unwrap();
        t.validate();
        assert_eq!(kinds(&t), vec![MemberKind::Polygon]);
        assert_eq!(t.members[t.root as usize].edges().len(), 5); // 4 path + e
    }

    #[test]
    fn single_chord_bond_between_polygons() {
        // cycle of 5 path edges + e, chord (1, 4)
        let t = decompose(5, &[(1, 4)]).unwrap();
        t.validate();
        // bond {chord, inner polygon marker, outer marker};
        // inner polygon = path edges 1,2,3 + marker; outer polygon = path 0,4 + e + marker
        assert_eq!(kinds(&t), vec![MemberKind::Bond, MemberKind::Polygon, MemberKind::Polygon]);
        assert_eq!(t.members[t.root as usize].kind(), MemberKind::Polygon);
    }

    #[test]
    fn chord_parallel_to_path_edge() {
        // chord (2,3) is parallel to path edge 2: bond {chord, path 2, marker}
        let t = decompose(4, &[(2, 3)]).unwrap();
        t.validate();
        assert_eq!(kinds(&t), vec![MemberKind::Bond, MemberKind::Polygon]);
        let bond = &t.members[t.chord_member[0] as usize];
        assert!(bond.contains(EdgeRef::Path(2)));
    }

    #[test]
    fn full_span_chord_joins_e_bond() {
        let t = decompose(3, &[(0, 3)]).unwrap();
        t.validate();
        assert_eq!(kinds(&t), vec![MemberKind::Bond, MemberKind::Polygon]);
        assert_eq!(t.members[t.root as usize].kind(), MemberKind::Bond);
        assert!(t.members[t.root as usize].contains(EdgeRef::E));
        assert!(t.members[t.root as usize].contains(EdgeRef::Chord(0)));
    }

    #[test]
    fn interlacing_pair_is_rigid_root() {
        // chords (0,2) and (1,3) over 3 atoms: whole graph is 3-connected
        // (cycle of 4 + 2 crossing chords = K4)
        let t = decompose(3, &[(0, 2), (1, 3)]).unwrap();
        t.validate();
        assert_eq!(kinds(&t), vec![MemberKind::Rigid]);
        let root = &t.members[t.root as usize];
        assert!(root.contains(EdgeRef::E));
        match &root.shape {
            MemberShape::Rigid { ring, chords } => {
                assert_eq!(ring.len(), 4);
                assert_eq!(chords.len(), 2);
            }
            other => panic!("expected rigid, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_spans_form_bond_under_rigid() {
        // two copies of (1,3) + interlacing (2,4) + (0,2)... keep it small:
        // chords (1,3), (1,3), (2,4) over 5 atoms
        let t = decompose(5, &[(1, 3), (1, 3), (2, 4)]).unwrap();
        t.validate();
        let k = kinds(&t);
        assert!(k.contains(&MemberKind::Rigid));
        assert!(k.contains(&MemberKind::Bond));
        // both chords of the duplicate span live in the same bond member
        assert_eq!(t.chord_member[0], t.chord_member[1]);
        assert_ne!(t.chord_member[0], t.chord_member[2]);
    }

    #[test]
    fn nested_chords_polygon_chain() {
        let t = decompose(8, &[(1, 7), (2, 6), (3, 5)]).unwrap();
        t.validate();
        let k = kinds(&t);
        assert_eq!(k.iter().filter(|&&x| x == MemberKind::Bond).count(), 3);
        assert!(!k.contains(&MemberKind::Rigid));
        // depth: root polygon -> bond(1,7) -> polygon -> bond(2,6) -> ...
        let deepest = t.chord_member[2];
        assert!(t.depth(deepest) >= 4);
    }

    #[test]
    fn degenerate_single_atom() {
        let t = decompose(1, &[]).unwrap();
        assert_eq!(t.members.len(), 1);
        let t2 = decompose(1, &[(0, 1), (0, 1)]).unwrap();
        t2.validate();
        assert_eq!(t2.members[t2.root as usize].kind(), MemberKind::Bond);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(decompose(0, &[]), Err(DecomposeError::NoAtoms)));
        assert!(matches!(decompose(3, &[(2, 2)]), Err(DecomposeError::BadChord { .. })));
        assert!(matches!(decompose(3, &[(1, 4)]), Err(DecomposeError::BadChord { .. })));
    }

    #[test]
    fn fig2_left_subensemble_structure() {
        // (A1, C1) of the paper's Fig. 2 worked example has columns
        // restricted to the 4 chosen atoms; decomposition is small and valid.
        let t = decompose(4, &[(0, 2), (1, 3), (0, 4), (2, 4)]).unwrap();
        t.validate();
        assert!(kinds(&t).contains(&MemberKind::Rigid));
    }
}

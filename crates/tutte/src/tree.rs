//! The decomposition tree: members (bonds / polygons / rigids), marker
//! edges, and rooted navigation.
//!
//! Members reference edges of the decomposed gp-pair symbolically:
//! path edges by position, chords by input index, the distinguished edge
//! `e`, and marker ("virtual") edges by id. The tree is rooted at the
//! member containing `e`, exactly as the paper's Section 4 prescribes
//! ("view the resulting Tutte decomposition as a rooted tree with the
//! member containing e as the root").

/// Member index within a [`TutteTree`].
pub type MemberId = u32;
/// Marker-edge (virtual edge) index.
pub type VirtId = u32;

/// A symbolic reference to an edge of the decomposed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeRef {
    /// Path edge `i` (joins path vertices `i` and `i+1`); carries atom
    /// position `i` of the realization being decomposed.
    Path(u32),
    /// The distinguished edge `e` joining the two ends of the path
    /// (the chord of the complete column).
    E,
    /// Input chord `i` (a column's non-path edge).
    Chord(u32),
    /// Marker edge shared by exactly two members.
    Virt(VirtId),
}

impl EdgeRef {
    /// Is this a marker edge?
    pub fn is_virt(self) -> bool {
        matches!(self, EdgeRef::Virt(_))
    }

    /// Is this a real (non-marker) edge?
    pub fn is_real(self) -> bool {
        !self.is_virt()
    }
}

/// Member classification (paper Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemberKind {
    /// ≥ 3 parallel edges on two vertices.
    Bond,
    /// A cycle of ≥ 3 edges; polygons carry no chords (Proposition 4).
    Polygon,
    /// A 3-connected member: its perimeter (the restriction of the
    /// Hamiltonian cycle, Proposition 3) plus ≥ 2 interlacing chords.
    Rigid,
}

/// The structure of one member.
///
/// Ring conventions: `ring[i]` joins local perimeter vertex `i` to
/// `i+1 (mod len)`. As built, the member's parent-side edge (marker to the
/// parent, or `e` at the root) is the **last** ring entry, so an identity
/// traversal entering there walks the member's contents in original path
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberShape {
    /// Parallel edges between two vertices. Contains exactly one
    /// *path-carrying* edge (a `Path` or `Virt`), one parent-side edge
    /// (`Virt` or `E`), and any number of chords.
    Bond {
        /// The parallel edges.
        edges: Vec<EdgeRef>,
    },
    /// A cycle of edges; free to re-link (permute) under Whitney switches.
    Polygon {
        /// The cyclic edge order.
        ring: Vec<EdgeRef>,
    },
    /// A 3-connected member: rigid up to reflection.
    Rigid {
        /// Perimeter edges in local Hamiltonian-cycle order.
        ring: Vec<EdgeRef>,
        /// Chords as `(perimeter position a, perimeter position b, edge)`,
        /// with `a < b`; position `p` is the local vertex between
        /// `ring[p-1]` and `ring[p]` (so positions range over
        /// `0..ring.len()`).
        chords: Vec<(u32, u32, EdgeRef)>,
    },
}

/// A member plus its tree linkage.
#[derive(Debug, Clone)]
pub struct Member {
    /// Bond / polygon / rigid payload.
    pub shape: MemberShape,
    /// Parent member and the marker connecting to it (`None` at the root).
    pub parent: Option<(MemberId, VirtId)>,
}

impl Member {
    /// The member kind.
    pub fn kind(&self) -> MemberKind {
        match self.shape {
            MemberShape::Bond { .. } => MemberKind::Bond,
            MemberShape::Polygon { .. } => MemberKind::Polygon,
            MemberShape::Rigid { .. } => MemberKind::Rigid,
        }
    }

    /// All edges of the member (ring + chords for rigids).
    pub fn edges(&self) -> Vec<EdgeRef> {
        match &self.shape {
            MemberShape::Bond { edges } => edges.clone(),
            MemberShape::Polygon { ring } => ring.clone(),
            MemberShape::Rigid { ring, chords } => {
                let mut v = ring.clone();
                v.extend(chords.iter().map(|&(_, _, e)| e));
                v
            }
        }
    }

    /// Does the member contain this edge?
    pub fn contains(&self, e: EdgeRef) -> bool {
        match &self.shape {
            MemberShape::Bond { edges } => edges.contains(&e),
            MemberShape::Polygon { ring } => ring.contains(&e),
            MemberShape::Rigid { ring, chords } => {
                ring.contains(&e) || chords.iter().any(|&(_, _, c)| c == e)
            }
        }
    }
}

/// The full rooted Tutte decomposition of a gp-pair.
#[derive(Debug, Clone)]
pub struct TutteTree {
    /// Number of atoms (path edges) of the decomposed realization.
    pub n_atoms: usize,
    /// All members.
    pub members: Vec<Member>,
    /// Root member (contains `e`).
    pub root: MemberId,
    /// Per marker: the member on the root side.
    pub virt_parent: Vec<MemberId>,
    /// Per marker: the member away from the root.
    pub virt_child: Vec<MemberId>,
    /// Per input chord: the member holding its `Chord` edge.
    pub chord_member: Vec<MemberId>,
    /// Per path edge: the member holding its `Path` edge.
    pub path_member: Vec<MemberId>,
}

impl TutteTree {
    /// Number of members.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// The member ids from `m` up to and including the root.
    pub fn path_to_root(&self, mut m: MemberId) -> Vec<MemberId> {
        let mut out = vec![m];
        while let Some((p, _)) = self.members[m as usize].parent {
            out.push(p);
            m = p;
        }
        out
    }

    /// Depth of member `m` (root = 0).
    pub fn depth(&self, m: MemberId) -> usize {
        self.path_to_root(m).len() - 1
    }

    /// Structural validation: marker pairing, parent pointers, edge
    /// partition, member arity, and the no-same-kind-adjacency rule.
    /// Panics with a description on violation (used by tests and
    /// `debug_assertions` builds). Degenerate inputs (`n_atoms ≤ 2` with no
    /// chords) may produce a 2-edge root accepted here.
    pub fn validate(&self) {
        let n = self.n_atoms;
        let mut path_seen = vec![0u32; n];
        let mut chord_seen = vec![0u32; self.chord_member.len()];
        let mut e_seen = 0u32;
        let mut virt_seen = vec![0u32; self.virt_parent.len()];
        for (mi, m) in self.members.iter().enumerate() {
            for e in m.edges() {
                match e {
                    EdgeRef::Path(i) => {
                        assert_eq!(self.path_member[i as usize], mi as u32, "path_member index");
                        path_seen[i as usize] += 1;
                    }
                    EdgeRef::Chord(i) => {
                        assert_eq!(self.chord_member[i as usize], mi as u32, "chord_member index");
                        chord_seen[i as usize] += 1;
                    }
                    EdgeRef::E => {
                        assert_eq!(mi as u32, self.root, "e must live in the root");
                        e_seen += 1;
                    }
                    EdgeRef::Virt(v) => {
                        virt_seen[v as usize] += 1;
                        assert!(
                            self.virt_parent[v as usize] == mi as u32
                                || self.virt_child[v as usize] == mi as u32,
                            "marker endpoints must match pairing"
                        );
                    }
                }
            }
            match &m.shape {
                MemberShape::Bond { edges } => {
                    assert!(edges.len() >= 2, "bond arity");
                    let carriers = edges
                        .iter()
                        .filter(|e| matches!(e, EdgeRef::Path(_)) || e.is_virt())
                        .count();
                    assert!(carriers <= 2, "bond has at most parent + one carrier");
                }
                MemberShape::Polygon { ring } => {
                    assert!(ring.len() >= 3, "polygon arity");
                    assert!(
                        ring.iter().all(|e| !matches!(e, EdgeRef::Chord(_))),
                        "polygons carry no chords (Proposition 4)"
                    );
                }
                MemberShape::Rigid { ring, chords } => {
                    assert!(ring.len() >= 4, "rigid perimeter has ≥ 4 vertices");
                    assert!(chords.len() >= 2, "rigid needs ≥ 2 chord edges");
                    for &(a, b, _) in chords {
                        assert!(a < b && (b as usize) < ring.len(), "chord positions");
                    }
                }
            }
        }
        assert_eq!(e_seen, 1, "e appears exactly once");
        assert!(path_seen.iter().all(|&c| c == 1), "each path edge in exactly one member");
        assert!(chord_seen.iter().all(|&c| c == 1), "each chord in exactly one member");
        assert!(virt_seen.iter().all(|&c| c == 2), "each marker in exactly two members");
        // parent pointers and same-kind adjacency
        for v in 0..self.virt_parent.len() {
            let p = self.virt_parent[v];
            let c = self.virt_child[v];
            assert_eq!(
                self.members[c as usize].parent,
                Some((p, v as VirtId)),
                "child's parent pointer matches marker"
            );
            let (kp, kc) = (self.members[p as usize].kind(), self.members[c as usize].kind());
            assert!(
                !(kp == kc && kp != MemberKind::Rigid),
                "two {kp:?}s share a marker — must have been merged"
            );
        }
        assert!(self.members[self.root as usize].parent.is_none(), "root has no parent");
        // every non-root member reaches the root
        for mi in 0..self.members.len() as MemberId {
            let path = self.path_to_root(mi);
            assert_eq!(*path.last().unwrap(), self.root, "tree is connected to the root");
            assert!(path.len() <= self.members.len(), "no parent cycles");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_ref_predicates() {
        assert!(EdgeRef::Virt(0).is_virt());
        assert!(EdgeRef::Path(3).is_real());
        assert!(EdgeRef::E.is_real());
        assert!(EdgeRef::Chord(1).is_real());
    }

    #[test]
    fn member_kind_and_contains() {
        let m = Member {
            shape: MemberShape::Rigid {
                ring: vec![EdgeRef::Path(0), EdgeRef::Path(1), EdgeRef::Path(2), EdgeRef::Virt(0)],
                chords: vec![(0, 2, EdgeRef::Chord(0)), (1, 3, EdgeRef::Chord(1))],
            },
            parent: None,
        };
        assert_eq!(m.kind(), MemberKind::Rigid);
        assert!(m.contains(EdgeRef::Chord(1)));
        assert!(m.contains(EdgeRef::Virt(0)));
        assert!(!m.contains(EdgeRef::Path(3)));
        assert_eq!(m.edges().len(), 6);
    }
}

//! Composition `m(𝒟)`: re-linearizing a (possibly re-arranged)
//! decomposition into an atom order.
//!
//! A 2-isomorphism class is parameterized by (Theorem 2):
//! * a permutation of each polygon's edges — represented by mutating the
//!   polygon's `ring` in a cloned tree (the alignment step does this);
//! * an orientation for each marker edge — the [`Arrangement`] flip bits;
//! * a reflection of each rigid member — subsumed by the flip bit of the
//!   marker above it (the root's global reflection is `root_flip`).
//!
//! Composing with the identity arrangement reproduces the original path
//! order; composing with any other arrangement yields a 2-isomorphic
//! gp-realization, i.e. another valid linearization of the same ensemble —
//! a property the tests exercise heavily.

use crate::tree::{EdgeRef, MemberId, MemberShape, TutteTree};

/// Marker orientations for a composition.
#[derive(Debug, Clone)]
pub struct Arrangement {
    /// Per marker: traverse the subtree below it reversed?
    pub virt_flip: Vec<bool>,
    /// Reverse the whole realization?
    pub root_flip: bool,
}

impl Arrangement {
    /// The identity arrangement for `tree`.
    pub fn identity(tree: &TutteTree) -> Self {
        Arrangement { virt_flip: vec![false; tree.virt_parent.len()], root_flip: false }
    }
}

/// Expands the decomposition into the sequence of original atom positions
/// (values in `0..n_atoms`, each exactly once). The caller maps positions
/// back to atoms of its realization.
pub fn compose(tree: &TutteTree, arr: &Arrangement) -> Vec<u32> {
    let mut out = Vec::with_capacity(tree.n_atoms);
    // Work stack of (edge, direction) tasks; LIFO, so children are pushed
    // in reverse of the order they must be emitted.
    let mut stack: Vec<(EdgeRef, bool)> = Vec::new();
    push_member(tree, arr, tree.root, EdgeRef::E, arr.root_flip, &mut stack);
    while let Some((edge, dir)) = stack.pop() {
        match edge {
            EdgeRef::Path(i) => out.push(i),
            EdgeRef::Virt(v) => {
                let child = tree.virt_child[v as usize];
                let d = dir ^ arr.virt_flip[v as usize];
                push_member(tree, arr, child, EdgeRef::Virt(v), d, &mut stack);
            }
            EdgeRef::E => unreachable!("e is only ever an entry edge"),
            EdgeRef::Chord(_) => unreachable!("chords are never traversed"),
        }
    }
    debug_assert_eq!(out.len(), tree.n_atoms, "every atom appears exactly once");
    out
}

/// Pushes the non-entry edges of member `m`, entered via `entry` with
/// direction `dir`, onto the task stack (reversed, so they pop in order).
fn push_member(
    tree: &TutteTree,
    _arr: &Arrangement,
    m: MemberId,
    entry: EdgeRef,
    dir: bool,
    stack: &mut Vec<(EdgeRef, bool)>,
) {
    match &tree.members[m as usize].shape {
        MemberShape::Bond { edges } => {
            // exactly one path-carrying edge besides the entry
            let carrier = edges
                .iter()
                .copied()
                .find(|&e| e != entry && (matches!(e, EdgeRef::Path(_)) || e.is_virt()))
                .expect("bond has a path carrier");
            stack.push((carrier, dir));
        }
        MemberShape::Polygon { ring } => push_ring(ring, entry, dir, stack),
        MemberShape::Rigid { ring, .. } => push_ring(ring, entry, dir, stack),
    }
}

fn push_ring(ring: &[EdgeRef], entry: EdgeRef, dir: bool, stack: &mut Vec<(EdgeRef, bool)>) {
    let k = ring.len();
    let idx = ring.iter().position(|&e| e == entry).expect("entry edge on the ring");
    // Emission order: forward = idx+1, idx+2, …, idx+k-1 (mod k);
    // reversed = idx-1, idx-2, …  Push in reverse so pops emit in order.
    if !dir {
        for off in (1..k).rev() {
            stack.push((ring[(idx + off) % k], dir));
        }
    } else {
        for off in (1..k).rev() {
            stack.push((ring[(idx + k - off) % k], dir));
        }
    }
}

/// Convenience: positions of every chord's span under the composed order.
/// Returns, per chord, `(lo, hi)` in *new* positions — the chord's column
/// occupies new positions `lo..hi`. Useful for GAP-condition scans.
///
/// `order` must be the output of [`compose`] for the same tree, and
/// `spans` the chord spans the tree was built from (original positions).
pub fn chord_spans_after(order: &[u32], spans: &[(u32, u32)]) -> Vec<(u32, u32)> {
    // new_pos[original_position] = new index
    let mut new_pos = vec![0u32; order.len()];
    for (i, &orig) in order.iter().enumerate() {
        new_pos[orig as usize] = i as u32;
    }
    spans
        .iter()
        .map(|&(lo, hi)| {
            let mut nlo = u32::MAX;
            let mut nhi = 0u32;
            for p in lo..hi {
                let np = new_pos[p as usize];
                nlo = nlo.min(np);
                nhi = nhi.max(np);
            }
            (nlo, nhi + 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::decompose;

    fn identity_roundtrip(n: usize, chords: &[(u32, u32)]) {
        let t = decompose(n, chords).unwrap();
        let order = compose(&t, &Arrangement::identity(&t));
        assert_eq!(order, (0..n as u32).collect::<Vec<_>>(), "identity failed for {chords:?}");
    }

    #[test]
    fn identity_reproduces_input_order() {
        identity_roundtrip(1, &[]);
        identity_roundtrip(2, &[]);
        identity_roundtrip(5, &[]);
        identity_roundtrip(5, &[(1, 4)]);
        identity_roundtrip(5, &[(0, 5), (1, 4), (2, 3)]);
        identity_roundtrip(6, &[(0, 2), (1, 3), (2, 4), (3, 5)]);
        identity_roundtrip(8, &[(1, 7), (2, 6), (3, 5), (0, 4)]);
        identity_roundtrip(4, &[(0, 2), (1, 3), (0, 4), (2, 4), (1, 3)]);
    }

    #[test]
    fn root_flip_reverses() {
        let t = decompose(6, &[(1, 3), (2, 5)]).unwrap();
        let mut arr = Arrangement::identity(&t);
        arr.root_flip = true;
        let order = compose(&t, &arr);
        assert_eq!(order, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn flips_preserve_span_contiguity() {
        // Any arrangement yields a 2-isomorphic gp-realization, so every
        // chord span must stay contiguous (it is, by construction of
        // chord_spans_after, checked through span widths).
        let chords = [(1u32, 4u32), (4, 7), (2, 3), (0, 5)];
        let t = decompose(8, &chords).unwrap();
        for mask in 0..(1u32 << t.virt_parent.len().min(12)) {
            let arr = Arrangement {
                virt_flip: (0..t.virt_parent.len()).map(|i| mask >> i & 1 == 1).collect(),
                root_flip: mask.count_ones() % 2 == 1,
            };
            let order = compose(&t, &arr);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>());
            for (ci, &(lo, hi)) in chords.iter().enumerate() {
                let spans = chord_spans_after(&order, &chords);
                let (nlo, nhi) = spans[ci];
                assert_eq!(
                    nhi - nlo,
                    hi - lo,
                    "chord {ci} must stay contiguous under arrangement {mask:#b}"
                );
            }
        }
    }

    #[test]
    fn polygon_relink_is_a_valid_switch() {
        // permuting a polygon ring produces another valid linearization
        let chords = [(1u32, 3u32), (4, 6)];
        let mut t = decompose(7, &chords).unwrap();
        // find the root polygon and rotate its non-e edges
        let root = t.root as usize;
        if let MemberShape::Polygon { ring } = &mut t.members[root].shape {
            let e_pos = ring.iter().position(|&e| e == EdgeRef::E).unwrap();
            ring.remove(e_pos);
            ring.rotate_left(1);
            ring.push(EdgeRef::E);
        } else {
            panic!("expected polygon root");
        }
        let order = compose(&t, &Arrangement::identity(&t));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        let spans = chord_spans_after(&order, &chords);
        for (ci, &(lo, hi)) in chords.iter().enumerate() {
            let (nlo, nhi) = spans[ci];
            assert_eq!(nhi - nlo, hi - lo, "chord {ci} contiguous after relink");
        }
        // and the order genuinely changed
        assert_ne!(order, (0..7).collect::<Vec<_>>());
    }
}

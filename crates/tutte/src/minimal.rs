//! Minimal decompositions (paper Section 2.2): the connected subtree
//! `𝒟' ⊆ 𝒟` such that every edge of a given set lies in some member of
//! `𝒟'` and every leaf of `𝒟'` contains one of the edges.
//!
//! The alignment algorithms of Section 4 operate on minimal decompositions
//! with respect to `{e} ∪ crossing edges`; the leaf count drives the case
//! analysis of Sections 4.2.1–4.2.2 ("check that 𝒟 has at most two leaf
//! members").

use crate::tree::{MemberId, TutteTree};

/// The minimal connected subtree of a rooted [`TutteTree`] covering a set
/// of members (always includes the root, per Section 4's rooting at `e`).
#[derive(Debug, Clone)]
pub struct MinimalTree {
    /// Members of the subtree (sorted ascending).
    pub nodes: Vec<MemberId>,
    /// Marked members with no marked (or covering) members strictly below
    /// them — the paper's leaf members.
    pub leaves: Vec<MemberId>,
}

impl MinimalTree {
    /// Is `m` in the subtree?
    pub fn contains(&self, m: MemberId) -> bool {
        self.nodes.binary_search(&m).is_ok()
    }
}

/// Computes the minimal subtree spanning `marked` members plus the root.
///
/// `marked` is the set of members containing the distinguished edge set
/// (e.g. `e` and all crossing chords). Leaves are subtree members with no
/// subtree member strictly below them; by minimality every leaf is marked.
pub fn minimal_subtree(tree: &TutteTree, marked: &[MemberId]) -> MinimalTree {
    let mut in_set = vec![false; tree.members.len()];
    in_set[tree.root as usize] = true;
    for &m in marked {
        let mut cur = m;
        loop {
            if in_set[cur as usize] {
                break;
            }
            in_set[cur as usize] = true;
            match tree.members[cur as usize].parent {
                Some((p, _)) => cur = p,
                None => break,
            }
        }
    }
    let nodes: Vec<MemberId> =
        (0..tree.members.len() as MemberId).filter(|&m| in_set[m as usize]).collect();
    // leaves: nodes none of whose subtree-children are in the set
    let mut has_child_in_set = vec![false; tree.members.len()];
    for &m in &nodes {
        if let Some((p, _)) = tree.members[m as usize].parent {
            if in_set[p as usize] {
                has_child_in_set[p as usize] = true;
            }
        }
    }
    let leaves: Vec<MemberId> =
        nodes.iter().copied().filter(|&m| !has_child_in_set[m as usize]).collect();
    MinimalTree { nodes, leaves }
}

/// The members along the path from `from` (inclusive) up to `to`
/// (inclusive); panics if `to` is not an ancestor-or-self of `from`.
pub fn path_between(tree: &TutteTree, from: MemberId, to: MemberId) -> Vec<MemberId> {
    let mut out = vec![from];
    let mut cur = from;
    while cur != to {
        let (p, _) = tree.members[cur as usize]
            .parent
            .unwrap_or_else(|| panic!("{to} is not an ancestor of {from}"));
        out.push(p);
        cur = p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::decompose;

    #[test]
    fn root_only_when_nothing_marked() {
        let t = decompose(6, &[(1, 3), (2, 5)]).unwrap();
        let mt = minimal_subtree(&t, &[]);
        assert_eq!(mt.nodes, vec![t.root]);
        assert_eq!(mt.leaves, vec![t.root]);
    }

    #[test]
    fn chain_to_nested_chord() {
        let t = decompose(8, &[(1, 7), (2, 6), (3, 5)]).unwrap();
        let deep = t.chord_member[2];
        let mt = minimal_subtree(&t, &[deep]);
        // path root → … → deep, all on one chain: exactly one leaf
        assert_eq!(mt.leaves, vec![deep]);
        assert_eq!(mt.nodes.len(), t.depth(deep) + 1);
        assert!(mt.contains(t.root));
    }

    #[test]
    fn two_disjoint_chords_two_leaves() {
        let t = decompose(8, &[(1, 3), (5, 7)]).unwrap();
        let m0 = t.chord_member[0];
        let m1 = t.chord_member[1];
        let mt = minimal_subtree(&t, &[m0, m1]);
        let mut leaves = mt.leaves.clone();
        leaves.sort_unstable();
        let mut expect = vec![m0, m1];
        expect.sort_unstable();
        assert_eq!(leaves, expect);
    }

    #[test]
    fn path_between_endpoints() {
        let t = decompose(8, &[(1, 7), (2, 6)]).unwrap();
        let deep = t.chord_member[1];
        let path = path_between(&t, deep, t.root);
        assert_eq!(path.first(), Some(&deep));
        assert_eq!(path.last(), Some(&t.root));
        assert_eq!(path.len(), t.depth(deep) + 1);
    }
}

//! Chord interlacement classes.
//!
//! Two chords of a cycle *interlace* when their endpoints strictly
//! alternate around the cycle. The transitive closure partitions the chords
//! into **interlacement classes**; each multi-chord class spans a
//! 3-connected member of the Tutte decomposition and each singleton class a
//! bond. Since every chord of a gp-realization avoids the distinguished
//! edge `e`, chords are plain intervals `(lo, hi)` over path vertices and
//! interlacement is *strict partial overlap* of intervals.
//!
//! Two implementations:
//! * [`classes_naive`] — `O(s²)` pairwise unions, obviously correct;
//! * [`classes_sweep`] — the linear-time stack sweep (the component-merging
//!   technique of Gauss-code/planarity interlacement analyses): scanning
//!   endpoints left to right, a closing interval merges with every
//!   still-open component opened after its own component's earliest open
//!   interval.
//!
//! Property tests assert the two agree; the solver uses the sweep.

/// Union-find over `n` items with path compression + union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        big
    }

    /// Groups item indices by representative, in first-seen order.
    pub fn groups(&mut self, n: usize) -> Vec<Vec<u32>> {
        let mut index: Vec<i32> = vec![-1; n];
        let mut out: Vec<Vec<u32>> = Vec::new();
        for x in 0..n as u32 {
            let r = self.find(x);
            let slot = if index[r as usize] >= 0 {
                index[r as usize] as usize
            } else {
                index[r as usize] = out.len() as i32;
                out.push(Vec::new());
                out.len() - 1
            };
            out[slot].push(x);
        }
        out
    }
}

/// Do spans `a` and `b` strictly interlace (endpoints alternate)?
#[inline]
pub fn interlaces(a: (u32, u32), b: (u32, u32)) -> bool {
    (a.0 < b.0 && b.0 < a.1 && a.1 < b.1) || (b.0 < a.0 && a.0 < b.1 && b.1 < a.1)
}

/// Interlacement classes by pairwise testing: `O(s²)`. Returns classes as
/// lists of span indices (each sorted ascending), ordered by smallest
/// member.
pub fn classes_naive(spans: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut uf = UnionFind::new(spans.len());
    for i in 0..spans.len() {
        for j in i + 1..spans.len() {
            if interlaces(spans[i], spans[j]) {
                uf.union(i as u32, j as u32);
            }
        }
    }
    uf.groups(spans.len())
}

/// Interlacement classes by the stack sweep: `O(s α(s))` after sorting.
///
/// **Precondition**: spans are pairwise distinct (identical spans never
/// interlace; the decomposition builder groups them into bonds before
/// calling this). Checked with a debug assertion.
///
/// Events run left to right over positions; at equal positions all closes
/// fire before all opens (shared endpoints never interlace). Closes at the
/// same position fire innermost-first (larger `lo` first); opens at the
/// same position push longer spans first (they close later, so they sit
/// deeper). When a span closes, every still-open component stacked above
/// its own component's entry is merged into it: each such component holds
/// an open span that began inside the closing span and survives it, i.e.
/// an interlacement witness (directly or through earlier merges).
pub fn classes_sweep(spans: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let (mut off, mut flat) = (Vec::new(), Vec::new());
    classes_sweep_into(spans, &mut off, &mut flat);
    off.windows(2).map(|w| flat[w[0] as usize..w[1] as usize].to_vec()).collect()
}

/// Flat-output variant of [`classes_sweep`]: class `c` holds span indices
/// `flat[off[c] as usize..off[c + 1] as usize]` (`off` carries a final
/// sentinel, so it gains `classes + 1` entries). Both buffers are cleared
/// first; callers pool them across calls — the decomposition builder runs
/// thousands of times per solve and this path allocates nothing on the
/// steady state for ≤ 64 spans.
pub fn classes_sweep_into(spans: &[(u32, u32)], off: &mut Vec<u32>, flat: &mut Vec<u32>) {
    debug_assert!(
        {
            let mut sorted = spans.to_vec();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        },
        "classes_sweep requires pairwise-distinct spans"
    );
    off.clear();
    flat.clear();
    if spans.len() <= 64 {
        classes_bitmask_into(spans, off, flat);
    } else {
        for grp in classes_sweep_large(spans) {
            off.push(flat.len() as u32);
            flat.extend_from_slice(&grp);
        }
    }
    off.push(flat.len() as u32);
}

/// Classes as disjoint span-index bitmasks merged by pairwise
/// interlacement: `O(s²)` word operations with no sort and no union-find,
/// which beats the sweep below up to a word of spans — the overwhelmingly
/// common decomposition size in deep solver runs.
fn classes_bitmask_into(spans: &[(u32, u32)], off: &mut Vec<u32>, flat: &mut Vec<u32>) {
    let s = spans.len();
    debug_assert!(s <= 64);
    let mut masks = [0u64; 64];
    let mut n_masks = 0usize;
    for i in 0..s {
        let mut hit: u64 = 0;
        for (j, &b) in spans[..i].iter().enumerate() {
            if interlaces(spans[i], b) {
                hit |= 1 << j;
            }
        }
        let mut merged: u64 = 1 << i;
        let mut w = 0;
        for r in 0..n_masks {
            if masks[r] & hit != 0 {
                merged |= masks[r];
            } else {
                masks[w] = masks[r];
                w += 1;
            }
        }
        masks[w] = merged;
        n_masks = w + 1;
    }
    // first-seen order by smallest member, members ascending — exactly
    // `UnionFind::groups` order, so the two paths are interchangeable
    masks[..n_masks].sort_unstable_by_key(|m| m.trailing_zeros());
    for &m in &masks[..n_masks] {
        off.push(flat.len() as u32);
        let mut mm = m;
        while mm != 0 {
            flat.push(mm.trailing_zeros());
            mm &= mm - 1;
        }
    }
}

/// `Vec<Vec<_>>` wrapper over [`classes_bitmask_into`] for the agreement
/// tests.
#[cfg(test)]
fn classes_bitmask(spans: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let (mut off, mut flat) = (Vec::new(), Vec::new());
    classes_bitmask_into(spans, &mut off, &mut flat);
    off.push(flat.len() as u32);
    off.windows(2).map(|w| flat[w[0] as usize..w[1] as usize].to_vec()).collect()
}

/// The stack sweep proper; see [`classes_sweep`] for the contract.
fn classes_sweep_large(spans: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let s = spans.len();
    let mut uf = UnionFind::new(s);
    // events: (position, is_open, span index); the ordering rules are
    //   closes before opens at equal position;
    //   closes: larger lo first (innermost);
    //   opens: larger hi first (deepest).
    // Encoded as self-contained u128 keys — `pos(32) | open(1) |
    // inverted-other-endpoint(32) | idx(32)` — so the sort compares plain
    // integers instead of chasing `spans` through a comparator (this sort
    // is the hottest part of the decomposition on deep solver runs).
    let mut events: Vec<u128> = Vec::with_capacity(2 * s);
    for (i, &(lo, hi)) in spans.iter().enumerate() {
        debug_assert!(lo < hi, "span must be non-degenerate");
        let inv = |x: u32| (u32::MAX - x) as u128;
        events.push((lo as u128) << 65 | 1 << 64 | inv(hi) << 32 | i as u128);
        events.push((hi as u128) << 65 | inv(lo) << 32 | i as u128);
    }
    events.sort_unstable();
    // stack entries: (component representative at push time, open count)
    let mut stack: Vec<(u32, u32)> = Vec::new();
    for ev in events {
        let is_open = ev >> 64 & 1 == 1;
        let idx = ev as u32;
        if is_open {
            stack.push((idx, 1));
        } else {
            let mut root = uf.find(idx);
            let mut opens: u32 = 0;
            loop {
                let (entry_class, entry_open) =
                    stack.pop().expect("closing span must be on the stack");
                let entry_root = uf.find(entry_class);
                if entry_root == root {
                    let remaining = entry_open + opens - 1;
                    if remaining > 0 {
                        stack.push((root, remaining));
                    }
                    break;
                }
                root = uf.union(root, entry_root);
                opens += entry_open;
            }
            // Coalesce adjacent entries of the same (possibly just-merged)
            // class so each class occupies one stack entry.
            while stack.len() >= 2 {
                let (c1, o1) = stack[stack.len() - 1];
                let (c2, o2) = stack[stack.len() - 2];
                if uf.find(c1) == uf.find(c2) {
                    stack.truncate(stack.len() - 2);
                    stack.push((uf.find(c1), o1 + o2));
                } else {
                    break;
                }
            }
        }
    }
    debug_assert!(stack.is_empty(), "all spans must close");
    uf.groups(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalize(mut classes: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        classes
    }

    fn check_agree(spans: &[(u32, u32)]) {
        let a = normalize(classes_naive(spans));
        let b = normalize(classes_sweep_large(spans));
        assert_eq!(a, b, "sweep disagrees with naive on {spans:?}");
        if spans.len() <= 64 {
            let c = normalize(classes_bitmask(spans));
            assert_eq!(a, c, "bitmask path disagrees with naive on {spans:?}");
        }
    }

    #[test]
    fn interlace_predicate() {
        assert!(interlaces((0, 2), (1, 3)));
        assert!(interlaces((1, 3), (0, 2)));
        assert!(!interlaces((0, 1), (1, 2))); // shared endpoint
        assert!(!interlaces((0, 3), (1, 2))); // nested
        assert!(!interlaces((0, 1), (2, 3))); // disjoint
        assert!(!interlaces((0, 3), (0, 2))); // shared left endpoint
    }

    #[test]
    fn simple_chains() {
        check_agree(&[(0, 2), (1, 3)]);
        check_agree(&[(0, 2), (1, 3), (2, 4)]);
        check_agree(&[(0, 10), (1, 4), (2, 8), (3, 9)]);
        check_agree(&[(0, 5), (1, 4), (2, 3)]); // nested: three classes
    }

    #[test]
    fn chain_through_merged_components() {
        // the tricky case from the design discussion: d=(5,15) interlaces
        // only y=(11,31), which merged earlier with c=(10,12).
        let spans = [(0, 30), (10, 12), (11, 31), (5, 15)];
        check_agree(&spans);
        let classes = normalize(classes_sweep(&spans));
        assert_eq!(classes, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn shared_endpoints_do_not_merge() {
        check_agree(&[(0, 5), (5, 10)]);
        check_agree(&[(0, 5), (0, 10)]);
        check_agree(&[(0, 10), (5, 10)]);
        let classes = normalize(classes_sweep(&[(0, 5), (5, 10), (0, 10)]));
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn exhaustive_small() {
        // random distinct-span subsets over positions 0..7
        let mut all: Vec<(u32, u32)> = Vec::new();
        for lo in 0..7u32 {
            for hi in lo + 1..7 {
                all.push((lo, hi));
            }
        }
        let mut seed = 123456789u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..5000 {
            let k = next() % 7;
            let mut spans: Vec<(u32, u32)> = (0..k).map(|_| all[next() % all.len()]).collect();
            spans.sort_unstable();
            spans.dedup();
            // shuffle back to a random order
            for i in (1..spans.len()).rev() {
                spans.swap(i, next() % (i + 1));
            }
            check_agree(&spans);
        }
    }

    #[test]
    fn exhaustive_triples() {
        let mut all: Vec<(u32, u32)> = Vec::new();
        for lo in 0..5u32 {
            for hi in lo + 1..5 {
                all.push((lo, hi));
            }
        }
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    if a != b && b != c && a != c {
                        check_agree(&[a, b, c]);
                    }
                }
            }
        }
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_ne!(uf.find(0), uf.find(1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_eq!(uf.find(3), uf.find(4));
        assert_ne!(uf.find(1), uf.find(3));
        let groups = uf.groups(5);
        assert_eq!(groups.len(), 3);
    }
}

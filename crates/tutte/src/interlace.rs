//! Chord interlacement classes.
//!
//! Two chords of a cycle *interlace* when their endpoints strictly
//! alternate around the cycle. The transitive closure partitions the chords
//! into **interlacement classes**; each multi-chord class spans a
//! 3-connected member of the Tutte decomposition and each singleton class a
//! bond. Since every chord of a gp-realization avoids the distinguished
//! edge `e`, chords are plain intervals `(lo, hi)` over path vertices and
//! interlacement is *strict partial overlap* of intervals.
//!
//! Two implementations:
//! * [`classes_naive`] — `O(s²)` pairwise unions, obviously correct;
//! * [`classes_sweep`] — the linear-time stack sweep (the component-merging
//!   technique of Gauss-code/planarity interlacement analyses): scanning
//!   endpoints left to right, a closing interval merges with every
//!   still-open component opened after its own component's earliest open
//!   interval.
//!
//! Property tests assert the two agree; the solver uses the sweep.

/// Union-find over `n` items with path compression + union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        big
    }

    /// Groups item indices by representative, in first-seen order.
    pub fn groups(&mut self, n: usize) -> Vec<Vec<u32>> {
        let mut index: Vec<i32> = vec![-1; n];
        let mut out: Vec<Vec<u32>> = Vec::new();
        for x in 0..n as u32 {
            let r = self.find(x);
            let slot = if index[r as usize] >= 0 {
                index[r as usize] as usize
            } else {
                index[r as usize] = out.len() as i32;
                out.push(Vec::new());
                out.len() - 1
            };
            out[slot].push(x);
        }
        out
    }
}

/// Do spans `a` and `b` strictly interlace (endpoints alternate)?
#[inline]
pub fn interlaces(a: (u32, u32), b: (u32, u32)) -> bool {
    (a.0 < b.0 && b.0 < a.1 && a.1 < b.1) || (b.0 < a.0 && a.0 < b.1 && b.1 < a.1)
}

/// Interlacement classes by pairwise testing: `O(s²)`. Returns classes as
/// lists of span indices (each sorted ascending), ordered by smallest
/// member.
pub fn classes_naive(spans: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut uf = UnionFind::new(spans.len());
    for i in 0..spans.len() {
        for j in i + 1..spans.len() {
            if interlaces(spans[i], spans[j]) {
                uf.union(i as u32, j as u32);
            }
        }
    }
    uf.groups(spans.len())
}

/// Interlacement classes by the stack sweep: `O(s α(s))` after sorting.
///
/// **Precondition**: spans are pairwise distinct (identical spans never
/// interlace; the decomposition builder groups them into bonds before
/// calling this). Checked with a debug assertion.
///
/// Events run left to right over positions; at equal positions all closes
/// fire before all opens (shared endpoints never interlace). Closes at the
/// same position fire innermost-first (larger `lo` first); opens at the
/// same position push longer spans first (they close later, so they sit
/// deeper). When a span closes, every still-open component stacked above
/// its own component's entry is merged into it: each such component holds
/// an open span that began inside the closing span and survives it, i.e.
/// an interlacement witness (directly or through earlier merges).
pub fn classes_sweep(spans: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let s = spans.len();
    debug_assert!(
        {
            let mut sorted = spans.to_vec();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        },
        "classes_sweep requires pairwise-distinct spans"
    );
    let mut uf = UnionFind::new(s);
    // events: (position, is_open, span index); sort key arranges:
    //   closes before opens at equal position;
    //   closes: larger lo first (innermost);
    //   opens: larger hi first (deepest).
    let mut events: Vec<(u32, bool, u32)> = Vec::with_capacity(2 * s);
    for (i, &(lo, hi)) in spans.iter().enumerate() {
        debug_assert!(lo < hi, "span must be non-degenerate");
        events.push((lo, true, i as u32));
        events.push((hi, false, i as u32));
    }
    events.sort_unstable_by(|&(p1, o1, i1), &(p2, o2, i2)| {
        p1.cmp(&p2)
            .then(o1.cmp(&o2)) // false (close) < true (open)
            .then_with(|| {
                if o1 {
                    spans[i2 as usize].1.cmp(&spans[i1 as usize].1) // open: larger hi first
                } else {
                    spans[i2 as usize].0.cmp(&spans[i1 as usize].0) // close: larger lo first
                }
            })
    });
    // stack entries: (component representative at push time, open count)
    let mut stack: Vec<(u32, u32)> = Vec::new();
    for (_, is_open, idx) in events {
        if is_open {
            stack.push((idx, 1));
        } else {
            let mut root = uf.find(idx);
            let mut opens: u32 = 0;
            loop {
                let (entry_class, entry_open) =
                    stack.pop().expect("closing span must be on the stack");
                let entry_root = uf.find(entry_class);
                if entry_root == root {
                    let remaining = entry_open + opens - 1;
                    if remaining > 0 {
                        stack.push((root, remaining));
                    }
                    break;
                }
                root = uf.union(root, entry_root);
                opens += entry_open;
            }
            // Coalesce adjacent entries of the same (possibly just-merged)
            // class so each class occupies one stack entry.
            while stack.len() >= 2 {
                let (c1, o1) = stack[stack.len() - 1];
                let (c2, o2) = stack[stack.len() - 2];
                if uf.find(c1) == uf.find(c2) {
                    stack.truncate(stack.len() - 2);
                    stack.push((uf.find(c1), o1 + o2));
                } else {
                    break;
                }
            }
        }
    }
    debug_assert!(stack.is_empty(), "all spans must close");
    uf.groups(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalize(mut classes: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        classes
    }

    fn check_agree(spans: &[(u32, u32)]) {
        let a = normalize(classes_naive(spans));
        let b = normalize(classes_sweep(spans));
        assert_eq!(a, b, "sweep disagrees with naive on {spans:?}");
    }

    #[test]
    fn interlace_predicate() {
        assert!(interlaces((0, 2), (1, 3)));
        assert!(interlaces((1, 3), (0, 2)));
        assert!(!interlaces((0, 1), (1, 2))); // shared endpoint
        assert!(!interlaces((0, 3), (1, 2))); // nested
        assert!(!interlaces((0, 1), (2, 3))); // disjoint
        assert!(!interlaces((0, 3), (0, 2))); // shared left endpoint
    }

    #[test]
    fn simple_chains() {
        check_agree(&[(0, 2), (1, 3)]);
        check_agree(&[(0, 2), (1, 3), (2, 4)]);
        check_agree(&[(0, 10), (1, 4), (2, 8), (3, 9)]);
        check_agree(&[(0, 5), (1, 4), (2, 3)]); // nested: three classes
    }

    #[test]
    fn chain_through_merged_components() {
        // the tricky case from the design discussion: d=(5,15) interlaces
        // only y=(11,31), which merged earlier with c=(10,12).
        let spans = [(0, 30), (10, 12), (11, 31), (5, 15)];
        check_agree(&spans);
        let classes = normalize(classes_sweep(&spans));
        assert_eq!(classes, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn shared_endpoints_do_not_merge() {
        check_agree(&[(0, 5), (5, 10)]);
        check_agree(&[(0, 5), (0, 10)]);
        check_agree(&[(0, 10), (5, 10)]);
        let classes = normalize(classes_sweep(&[(0, 5), (5, 10), (0, 10)]));
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn exhaustive_small() {
        // random distinct-span subsets over positions 0..7
        let mut all: Vec<(u32, u32)> = Vec::new();
        for lo in 0..7u32 {
            for hi in lo + 1..7 {
                all.push((lo, hi));
            }
        }
        let mut seed = 123456789u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..5000 {
            let k = next() % 7;
            let mut spans: Vec<(u32, u32)> = (0..k).map(|_| all[next() % all.len()]).collect();
            spans.sort_unstable();
            spans.dedup();
            // shuffle back to a random order
            for i in (1..spans.len()).rev() {
                spans.swap(i, next() % (i + 1));
            }
            check_agree(&spans);
        }
    }

    #[test]
    fn exhaustive_triples() {
        let mut all: Vec<(u32, u32)> = Vec::new();
        for lo in 0..5u32 {
            for hi in lo + 1..5 {
                all.push((lo, hi));
            }
        }
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    if a != b && b != c && a != c {
                        check_agree(&[a, b, c]);
                    }
                }
            }
        }
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_ne!(uf.find(0), uf.find(1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_eq!(uf.find(3), uf.find(4));
        assert_ne!(uf.find(1), uf.find(3));
        let groups = uf.groups(5);
        assert_eq!(groups.len(), 3);
    }
}

//! # c1p-tutte: Tutte decomposition of gp/gc-realizations
//!
//! The paper's primary data structure (Section 2.2): the decomposition of a
//! 2-connected graph into bonds, polygons and 3-connected (rigid) members.
//! The general linear-time algorithm is Hopcroft–Tarjan \[12\] (parallel:
//! Fussell–Ramachandran–Thurimella \[10\]); **this crate exploits that every
//! graph the C1P algorithm decomposes is a gp-realization** — a known
//! Hamiltonian cycle `P ∪ {e}` plus chords (Propositions 3–4) — for which
//! the decomposition reduces to *chord interlacement classes* on a cycle:
//!
//! * chords with identical spans merge into **bond** members;
//! * an interlacement class with ≥ 2 distinct spans forms a **rigid**
//!   member whose perimeter visits the class's endpoints in cycle order;
//! * a singleton class forms a bond `{chord, inside, outside}`;
//! * the gaps between consecutive endpoints become **polygon** members
//!   (suppressed when they would have only two edges).
//!
//! Cunningham–Edmonds uniqueness guarantees this agrees with the general
//! decomposition; `tests/` verifies that differentially against
//! `c1p_graph::tutte_ref` on thousands of random inputs.
//!
//! The crate also provides everything the alignment step (paper Section 4)
//! consumes: rooted tree navigation (root = the member containing `e`),
//! minimal decompositions with respect to an edge set, and *composition*
//! `m(𝒟)` under an arbitrary choice of Whitney-switch arrangement (polygon
//! re-linkings + marker-edge orientations), which re-linearizes the
//! realization.

pub mod build;
pub mod compose;
pub mod interlace;
pub mod minimal;
pub mod tree;

pub use build::{decompose, DecomposeError};
pub use compose::{chord_spans_after, compose, Arrangement};
pub use minimal::{minimal_subtree, path_between, MinimalTree};
pub use tree::{EdgeRef, Member, MemberId, MemberKind, MemberShape, TutteTree, VirtId};

//! Shared experiment workloads (deterministic seeds so tables reproduce).

use c1p_matrix::generate::{planted_c1p, PlantedShape};
use c1p_matrix::Ensemble;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The standard planted instance used by the scaling experiments:
/// `m = 2n` interval columns of mean length ≈ 12 (the clone-coverage shape
/// of Section 1.1), deterministic in `(n, seed)`.
pub fn planted(n: usize, seed: u64) -> Ensemble {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC190u64);
    planted_c1p(
        PlantedShape { n_atoms: n, n_columns: 2 * n, min_len: 2, max_len: 24.min(n.max(3) - 1) },
        &mut rng,
    )
    .0
}

/// A planted instance with every column of length exactly `k` (density
/// factor `f = n/k`), for experiment E7.
pub fn planted_k(n: usize, m: usize, k: usize, seed: u64) -> Ensemble {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    planted_c1p(PlantedShape { n_atoms: n, n_columns: m, min_len: k, max_len: k }, &mut rng).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::verify::verify_linear;

    #[test]
    fn planted_is_solvable_and_deterministic() {
        let a = planted(200, 1);
        let b = planted(200, 1);
        assert_eq!(a, b);
        let order = c1p_core::solve(&a).expect("planted is C1P");
        verify_linear(&a, &order).unwrap();
    }

    #[test]
    fn planted_k_controls_density() {
        let e = planted_k(100, 50, 5, 3);
        assert!(e.columns().iter().all(|c| c.len() == 5));
        assert_eq!(e.density_factor(), Some(100.0 / 5.0));
    }
}

//! Shared experiment workloads (deterministic seeds so tables reproduce).

use c1p_matrix::generate::{planted_c1p, PlantedShape};
use c1p_matrix::tucker::TuckerFamily;
use c1p_matrix::{Atom, Ensemble};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The standard planted instance used by the scaling experiments:
/// `m = 2n` interval columns of mean length ≈ 12 (the clone-coverage shape
/// of Section 1.1), deterministic in `(n, seed)`.
pub fn planted(n: usize, seed: u64) -> Ensemble {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC190u64);
    planted_c1p(
        PlantedShape { n_atoms: n, n_columns: 2 * n, min_len: 2, max_len: 24.min(n.max(3) - 1) },
        &mut rng,
    )
    .0
}

/// A planted instance with every column of length exactly `k` (density
/// factor `f = n/k`), for experiment E7.
pub fn planted_k(n: usize, m: usize, k: usize, seed: u64) -> Ensemble {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    planted_c1p(PlantedShape { n_atoms: n, n_columns: m, min_len: k, max_len: k }, &mut rng).0
}

/// The standard *rejection* workload: [`planted`]'s shape with one Tucker
/// obstruction (family cycled by `seed`) embedded at a seed-deterministic
/// offset — non-C1P at every size, with the obstruction buried in `2n`
/// satisfiable columns. Returns the ensemble and the planted family.
pub fn planted_reject(n: usize, seed: u64) -> (Ensemble, TuckerFamily) {
    let base = planted(n, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBAD5EED);
    let k = 1 + rng.random_range(0..4usize);
    let fam = match seed % 5 {
        0 => TuckerFamily::MI(k),
        1 => TuckerFamily::MII(k),
        2 => TuckerFamily::MIII(k),
        3 => TuckerFamily::MIV,
        _ => TuckerFamily::MV,
    };
    let obs = fam.generate();
    assert!(n >= obs.n_atoms(), "rejection workload needs n >= family size");
    let offset = rng.random_range(0..=n - obs.n_atoms());
    let mut cols = base.columns().to_vec();
    cols.extend(
        obs.columns().iter().map(|c| c.iter().map(|&a| a + offset as Atom).collect::<Vec<_>>()),
    );
    (Ensemble::from_columns(n, cols).expect("embedded columns are valid"), fam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::verify::verify_linear;

    #[test]
    fn planted_is_solvable_and_deterministic() {
        let a = planted(200, 1);
        let b = planted(200, 1);
        assert_eq!(a, b);
        let order = c1p_core::solve(&a).expect("planted is C1P");
        verify_linear(&a, &order).unwrap();
    }

    #[test]
    fn planted_k_controls_density() {
        let e = planted_k(100, 50, 5, 3);
        assert!(e.columns().iter().all(|c| c.len() == 5));
        assert_eq!(e.density_factor(), Some(100.0 / 5.0));
    }

    #[test]
    fn planted_reject_is_rejected_and_certifiable() {
        for seed in 0..5u64 {
            let (e, fam) = planted_reject(128, seed);
            assert_eq!(e, planted_reject(128, seed).0, "deterministic");
            let rej = c1p_core::solve(&e).expect_err(&format!("seed {seed} ({fam})"));
            let w = c1p_cert::extract_witness(&e, &rej).unwrap();
            c1p_cert::verify_witness(&e, &w).unwrap();
        }
    }
}

//! Shared experiment workloads (deterministic seeds so tables reproduce).
//!
//! The generators themselves live in [`c1p_matrix::generate`] so that the
//! serving load driver (`c1p-engine`'s `load_driver`) and this harness draw
//! traffic from one definition; this module re-exports them under the
//! historical `c1p_bench::workloads` paths and keeps the solver-facing
//! integration tests (which need `c1p-core`/`c1p-cert` and therefore cannot
//! live in the matrix crate).

pub use c1p_matrix::generate::{
    append_stream, append_stream_reject, planted, planted_k, planted_reject, AppendStream,
};

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::verify::verify_linear;

    #[test]
    fn planted_is_solvable_and_deterministic() {
        let a = planted(200, 1);
        let b = planted(200, 1);
        assert_eq!(a, b);
        let order = c1p_core::solve(&a).expect("planted is C1P");
        verify_linear(&a, &order).unwrap();
    }

    #[test]
    fn planted_k_controls_density() {
        let e = planted_k(100, 50, 5, 3);
        assert!(e.columns().iter().all(|c| c.len() == 5));
        assert_eq!(e.density_factor(), Some(100.0 / 5.0));
    }

    #[test]
    fn append_stream_prefixes_stay_c1p_and_reject_lands_where_planted() {
        let stream = append_stream(64, 4, 6, 2);
        for k in 0..=stream.pushes.len() {
            let e = stream.prefix_ensemble(k);
            assert!(c1p_core::solve(&e).is_ok(), "prefix {k} must stay C1P");
        }
        let (s, at, _) = append_stream_reject(64, 4, 6, 2);
        assert!(c1p_core::solve(&s.prefix_ensemble(at)).is_ok(), "clean before the bad push");
        assert!(c1p_core::solve(&s.prefix_ensemble(at + 1)).is_err(), "rejects with it");
    }

    #[test]
    fn planted_reject_is_rejected_and_certifiable() {
        for seed in 0..5u64 {
            let (e, fam) = planted_reject(128, seed);
            assert_eq!(e, planted_reject(128, seed).0, "deterministic");
            let rej = c1p_core::solve(&e).expect_err(&format!("seed {seed} ({fam})"));
            let w = c1p_cert::extract_witness(&e, &rej).unwrap();
            c1p_cert::verify_witness(&e, &w).unwrap();
        }
    }
}

//! Phase-timing + allocation probe for the divide-and-conquer solver.
//!
//! ```text
//! cargo run --release -p c1p-bench --bin phase_probe [log2_n] [bitmat_threshold]
//! ```
//!
//! The second argument overrides `Config::bitmat_threshold` (0 = pure
//! CSR, `max` = pure bit-matrix) for threshold tuning runs.
//!
//! Prints the same per-phase breakdown the request tracer emits as
//! `solve/<phase>` spans: the phase names come from
//! [`c1p_core::stats::PHASE_NAMES`] and the timings from
//! `SolveStats::phase_ns` — one accounting shared by offline probing and
//! live tracing (the name-stability rule in DESIGN.md §13).

use c1p_bench::workloads::planted;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
// power-of-two size-class histogram (count, bytes) — where the traffic is
static CLASS_N: [AtomicU64; 32] = [const { AtomicU64::new(0) }; 32];
static CLASS_B: [AtomicU64; 32] = [const { AtomicU64::new(0) }; 32];

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        let class = (64 - (layout.size() | 1).leading_zeros()).min(31) as usize;
        CLASS_N[class].fetch_add(1, Ordering::Relaxed);
        CLASS_B[class].fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: Counting = Counting;

fn main() {
    let log2_n: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(14);
    let mut cfg = c1p_core::Config::default();
    if let Some(arg) = std::env::args().nth(2) {
        cfg.bitmat_threshold =
            if arg == "max" { usize::MAX } else { arg.parse().expect("bitmat_threshold") };
    }
    // best-of-N (default 1): the minimum is the least scheduler-disturbed
    // sample, the right statistic on a busy shared host
    let reps: usize = std::env::args().nth(3).and_then(|a| a.parse().ok()).unwrap_or(1).max(1);
    let ens = planted(1 << log2_n, 1);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    let t0 = std::time::Instant::now();
    let (mut o, mut stats) = c1p_core::solve_with(&ens, &cfg);
    let mut dt = t0.elapsed();
    for _ in 1..reps {
        let t = std::time::Instant::now();
        let (oi, si) = c1p_core::solve_with(&ens, &cfg);
        let di = t.elapsed();
        if di < dt {
            (o, stats, dt) = (oi, si, di);
        }
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let bytes = BYTES.load(Ordering::Relaxed) - b0;
    eprintln!(
        "solve: {dt:?} ok={} subproblems={} depth={} decompositions={}",
        o.is_ok(),
        stats.subproblems,
        stats.max_depth,
        stats.decompositions
    );
    eprintln!(
        "case1={} case2={} fast_merges={} members={} bitmat_converts={} bitmat_divides={} csr_divides={}",
        stats.case1,
        stats.case2,
        stats.fast_merges,
        stats.members,
        stats.bitmat_converts,
        stats.bitmat_divides,
        stats.csr_divides
    );
    eprintln!("allocations: {allocs} ({:.1} MB total)", bytes as f64 / 1e6);
    if std::env::var_os("PHASE_PROBE_ALLOC_HIST").is_some() {
        for c in 0..32 {
            let (n, b) = (CLASS_N[c].load(Ordering::Relaxed), CLASS_B[c].load(Ordering::Relaxed));
            if n > 0 {
                eprintln!("  ≤2^{c:<2} B: {n:>9} allocs {:>9.1} MB", b as f64 / 1e6);
            }
        }
    }
    let total_ns: u64 = stats.phase_ns.iter().sum();
    for (name, &ns) in c1p_core::stats::PHASE_NAMES.iter().zip(&stats.phase_ns) {
        let pct = if total_ns > 0 { ns as f64 * 100.0 / total_ns as f64 } else { 0.0 };
        eprintln!("phase {name:<9} {:>10.3} ms  {pct:>5.1}%", ns as f64 / 1e6);
    }
    eprintln!(
        "phase total   {:>10.3} ms of {:.3} ms wall ({:.1}% attributed)",
        total_ns as f64 / 1e6,
        dt.as_secs_f64() * 1e3,
        if dt.as_nanos() > 0 { total_ns as f64 * 100.0 / dt.as_nanos() as f64 } else { 0.0 }
    );
}

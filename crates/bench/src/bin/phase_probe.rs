//! Phase-timing + allocation probe for the divide-and-conquer solver.
//!
//! ```text
//! cargo run --release -p c1p-bench --bin phase_probe [log2_n]
//! ```
//!
//! Prints the same per-phase breakdown the request tracer emits as
//! `solve/<phase>` spans: the phase names come from
//! [`c1p_core::stats::PHASE_NAMES`] and the timings from
//! `SolveStats::phase_ns` — one accounting shared by offline probing and
//! live tracing (the name-stability rule in DESIGN.md §13).

use c1p_bench::workloads::planted;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: Counting = Counting;

fn main() {
    let log2_n: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(14);
    let ens = planted(1 << log2_n, 1);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    let t0 = std::time::Instant::now();
    let (o, stats) = c1p_core::solve_with(&ens, &c1p_core::Config::default());
    let dt = t0.elapsed();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let bytes = BYTES.load(Ordering::Relaxed) - b0;
    eprintln!(
        "solve: {dt:?} ok={} subproblems={} depth={} decompositions={}",
        o.is_ok(),
        stats.subproblems,
        stats.max_depth,
        stats.decompositions
    );
    eprintln!("allocations: {allocs} ({:.1} MB total)", bytes as f64 / 1e6);
    let total_ns: u64 = stats.phase_ns.iter().sum();
    for (name, &ns) in c1p_core::stats::PHASE_NAMES.iter().zip(&stats.phase_ns) {
        let pct = if total_ns > 0 { ns as f64 * 100.0 / total_ns as f64 } else { 0.0 };
        eprintln!("phase {name:<9} {:>10.3} ms  {pct:>5.1}%", ns as f64 / 1e6);
    }
    eprintln!(
        "phase total   {:>10.3} ms of {:.3} ms wall ({:.1}% attributed)",
        total_ns as f64 / 1e6,
        dt.as_secs_f64() * 1e3,
        if dt.as_nanos() > 0 { total_ns as f64 * 100.0 / dt.as_nanos() as f64 } else { 0.0 }
    );
}

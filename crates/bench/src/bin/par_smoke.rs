//! CI smoke test for the parallel driver (the `par-smoke` job).
//!
//! ```text
//! cargo run --release -p c1p-bench --bin par_smoke -- --threads 2,4
//! ```
//!
//! Two halves, both fast enough for every-commit CI:
//!
//! 1. **Determinism sweep** — seeded planted + obstruction instances
//!    solved at each requested thread count; verdict *and* witness
//!    order must match the sequential solver exactly (any divergence
//!    means a data race or a scheduling-dependent code path).
//! 2. **Speedup gate** — a short E3-style run measuring the 4-thread
//!    self-relative speedup of `dc_parallel` at n=2^14, compared to the
//!    `thread_sweep.speedup_floor_4t` recorded in `BENCH_solve.json`.
//!    The floor is self-relative to the host that recorded it (a 1-core
//!    recording box floors near 1.0); the gate catches the pool
//!    regressing to serialization, not absolute perf drift.
//!
//! Exits nonzero on any mismatch or regression.

use c1p_bench::workloads::planted;
use c1p_bench::{fmt_secs, median_time};
use c1p_matrix::tucker;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|t| t.trim().parse().expect("--threads takes n,n,…")).collect())
        .unwrap_or_else(|| vec![2, 4]);
    let mut failures = 0usize;

    // 1. determinism sweep
    println!("## determinism sweep (threads {threads:?})");
    let mut checked = 0usize;
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(0x5A40_C0DE_u64.wrapping_add(seed));
        let n = 400 + 300 * seed as usize;
        let (ens, _) = c1p_matrix::generate::planted_c1p(
            c1p_matrix::generate::PlantedShape {
                n_atoms: n,
                n_columns: 2 * n,
                min_len: 2,
                max_len: n / 4 + 2,
            },
            &mut rng,
        );
        let expect = c1p_core::solve(&ens).expect("planted instance accepted");
        for &t in &threads {
            let (got, _) = c1p_pram::with_threads(t, || c1p_core::parallel::solve_par(&ens));
            checked += 1;
            if got.as_ref().ok() != Some(&expect) {
                eprintln!("FAIL: accept seed {seed} n={n} t={t}: order diverged");
                failures += 1;
            }
        }
        let bad = tucker::embed_obstruction(
            &tucker::m_iii(2),
            n,
            seed as usize,
            &[(0, n / 3), (n / 2, n / 3)],
        );
        let expect_rej = c1p_core::solve(&bad).expect_err("obstruction rejected");
        for &t in &threads {
            let (got, _) = c1p_pram::with_threads(t, || c1p_core::parallel::solve_par(&bad));
            checked += 1;
            match got {
                Err(rej) if rej.atoms == expect_rej.atoms => {}
                Err(_) => {
                    eprintln!("FAIL: reject seed {seed} t={t}: evidence diverged");
                    failures += 1;
                }
                Ok(_) => {
                    eprintln!("FAIL: reject seed {seed} t={t}: accepted an obstruction");
                    failures += 1;
                }
            }
        }
    }
    println!("checked {checked} (instance × thread-count) combinations");

    // 2. speedup gate
    println!("\n## speedup gate (dc_parallel, n=2^14, 1 vs 4 threads)");
    let ens = planted(1 << 14, 1);
    let (t1, ok1) = median_time(3, || {
        c1p_pram::with_threads(1, || c1p_core::parallel::solve_par(&ens).0.is_ok())
    });
    let (t4, ok4) = median_time(3, || {
        c1p_pram::with_threads(4, || c1p_core::parallel::solve_par(&ens).0.is_ok())
    });
    assert!(ok1 && ok4);
    let speedup = t1.as_secs_f64() / t4.as_secs_f64();
    let floor = read_floor("BENCH_solve.json");
    println!(
        "t1 {} | t4 {} | speedup {speedup:.2}x | recorded floor {floor:.2}x",
        fmt_secs(t1),
        fmt_secs(t4),
    );
    if speedup < floor {
        eprintln!("FAIL: 4-thread self-relative speedup {speedup:.2}x < floor {floor:.2}x");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("\npar_smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("\npar_smoke: all checks passed");
}

/// Pulls `thread_sweep.speedup_floor_4t` out of BENCH_solve.json with a
/// string scan (the bench crate carries no JSON parser by design).
fn read_floor(path: &str) -> f64 {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("note: {path} not found; using default floor 0.5");
        return 0.5;
    };
    let key = "\"speedup_floor_4t\":";
    let Some(at) = text.find(key) else {
        eprintln!("note: no speedup floor recorded in {path}; using default 0.5");
        return 0.5;
    };
    let rest = &text[at + key.len()..];
    let end = rest.find(['}', ','].as_slice()).unwrap_or(rest.len());
    rest[..end].trim().parse().expect("malformed speedup_floor_4t")
}

//! The experiment driver: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p c1p-bench --bin experiments -- all
//! cargo run --release -p c1p-bench --bin experiments -- e1 e3 e9
//! cargo run --release -p c1p-bench --bin experiments -- e5 --full   # genome scale
//! ```

use c1p_bench::models::{annexstein_swaminathan, booth_lueker, chen_yesha, klein, Shape};
use c1p_bench::tables::Table;
use c1p_bench::workloads::{planted, planted_k};
use c1p_bench::{fmt_secs, median_time};
use c1p_core::Config;
use c1p_matrix::biology::CloneLibrary;
use c1p_matrix::noise;
use c1p_pram::cost::log2ceil;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut picked: Vec<&str> =
        args.iter().filter(|a| a.starts_with('e')).map(String::as_str).collect();
    if picked.is_empty() || args.iter().any(|a| a == "all") {
        picked =
            vec!["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13"];
    }
    for e in picked {
        match e {
            "e1" => e1(),
            "e2" => e2(),
            "e3" => e3(),
            "e4" => e4(),
            "e5" => e5(full),
            "e6" => e6(),
            "e7" => e7(),
            "e8" => e8(),
            "e9" => e9(),
            "e10" => e10(),
            "e11" => e11(),
            "e12" => e12(),
            "e13" => e13(),
            other => eprintln!("unknown experiment {other}"),
        }
        println!();
    }
}

/// E1 — Theorem 9 (sequential): total time vs `p log p`.
fn e1() {
    println!("## E1 — sequential time is O(p log p) (Theorem 9)\n");
    let mut t = Table::new(&["n", "m", "p", "time", "t / (p·lg p) [ns]", "t(2n)/t(n)"]);
    let mut prev: Option<f64> = None;
    for k in 10..=16 {
        let n = 1usize << k;
        let ens = planted(n, 1);
        let p = ens.p();
        let (dt, _) = median_time(3, || c1p_core::solve(&ens).is_ok());
        let secs = dt.as_secs_f64();
        let norm = secs * 1e9 / (p as f64 * (p as f64).log2());
        let ratio = prev.map_or("-".to_string(), |pv| format!("{:.2}", secs / pv));
        prev = Some(secs);
        t.row(vec![
            n.to_string(),
            ens.n_columns().to_string(),
            p.to_string(),
            fmt_secs(dt),
            format!("{norm:.2}"),
            ratio,
        ]);
    }
    t.print();
    println!("\nThe normalized column should be ~flat (doubling n slightly-more-than-doubles t).");
}

/// E2 — Theorem 9 (parallel): modelled PRAM depth/work/processors.
fn e2() {
    println!("## E2 — modelled PRAM cost vs Theorem 9 (O(log² n) time, p·lglg n/lg n procs)\n");
    let mut t = Table::new(&[
        "n",
        "p",
        "depth",
        "depth/lg²n",
        "work",
        "procs=work/depth",
        "paper bound p·lglg/lg",
    ]);
    for k in [10usize, 12, 14, 16] {
        let n = 1 << k;
        let ens = planted(n, 2);
        let p = ens.p() as f64;
        let (res, stats) = c1p_core::parallel::solve_par(&ens);
        assert!(res.is_ok());
        let lg = log2ceil(n) as f64;
        let lglg = (log2ceil(log2ceil(n) as usize) as f64).max(1.0);
        let depth = stats.cost.depth as f64;
        let procs = stats.cost.work as f64 / depth.max(1.0);
        t.row(vec![
            n.to_string(),
            (p as u64).to_string(),
            (depth as u64).to_string(),
            format!("{:.2}", depth / (lg * lg)),
            stats.cost.work.to_string(),
            format!("{procs:.0}"),
            format!("{:.0}", p * lglg / lg),
        ]);
    }
    t.print();
    println!(
        "\ndepth/lg²n should stay bounded; implied processors should track the paper's bound."
    );
}

/// E3 — wall-clock self-relative speedup under rayon.
fn e3() {
    println!("## E3 — multicore speedup (rayon execution of the recursion tree)\n");
    let n = 1 << 16;
    let ens = planted(n, 3);
    println!("instance: n={n}, m={}, p={}\n", ens.n_columns(), ens.p());
    let mut t = Table::new(&["threads", "time", "speedup"]);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let pool = c1p_pram::pool(threads); // built outside the timed region
        let (dt, ok) =
            median_time(3, || pool.install(|| c1p_core::parallel::solve_par(&ens).0.is_ok()));
        assert!(ok);
        let secs = dt.as_secs_f64();
        let speedup = base.map_or(1.0, |b: f64| b / secs);
        if base.is_none() {
            base = Some(secs);
        }
        t.row(vec![threads.to_string(), fmt_secs(dt), format!("{speedup:.2}x")]);
    }
    t.print();
    let host = std::thread::available_parallelism().map_or(1, |v| v.get());
    println!(
        "\nSelf-relative speedup, physically capped by min(threads, {host} hardware threads).\n\
         Sibling recursion, the two-pass divide, the Case-2 fan-out and the merge span scan\n\
         all run on the work-stealing pool (DESIGN.md §6); the remaining sequential parts\n\
         (Tutte decompose + alignment funnel per combine) set the Amdahl ceiling."
    );
}

/// E4 — Section 1.3 comparison: modelled processors/work of prior PRAM
/// algorithms at our sizes.
fn e4() {
    println!("## E4 — work-efficiency vs prior parallel algorithms (modelled, Section 1.3)\n");
    let mut t =
        Table::new(&["n", "algorithm", "time bound", "processors", "work = p×t", "work vs ours"]);
    for &n in &[1024usize, 16_384, 262_144] {
        let s = Shape { n: n as f64, m: 2.0 * n as f64, p: 24.0 * n as f64 };
        let ours = annexstein_swaminathan(s, false);
        for (name, m) in [
            ("this paper", ours),
            ("Klein [13]", klein(s)),
            ("Chen–Yesha [7]", chen_yesha(s)),
            ("Booth–Lueker [6] (seq)", booth_lueker(s)),
        ] {
            t.row(vec![
                n.to_string(),
                name.to_string(),
                format!("{:.0}", m.time),
                format!("{:.2e}", m.processors),
                format!("{:.2e}", m.work()),
                format!("{:.1}x", m.work() / ours.work()),
            ]);
        }
    }
    t.print();
    println!(
        "\nThe paper's claim: sublinear processors ⇒ lowest work among the parallel solutions."
    );
}

/// E5 — physical mapping at the paper's cited genome scale (Section 1.1).
fn e5(full: bool) {
    println!("## E5 — physical mapping workload (Section 1.1 shapes)\n");
    let shapes: Vec<(usize, usize)> = if full {
        vec![(1_000, 2_000), (3_000, 6_000), (9_000, 18_000), (15_000, 25_000)]
    } else {
        vec![(1_000, 2_000), (3_000, 6_000), (9_000, 18_000)]
    };
    let mut t = Table::new(&["STSs", "clones", "p", "D&C", "PQ-tree", "parallel (all cores)"]);
    for (n_sts, n_clones) in shapes {
        let mut rng = SmallRng::seed_from_u64(n_sts as u64);
        let lib = CloneLibrary { n_sts, n_clones, mean_clone_span: 12, scramble: true };
        let (ens, _) = lib.sample(&mut rng);
        let (t_dc, ok1) = median_time(3, || c1p_core::solve(&ens).is_ok());
        let cols = ens.columns().to_vec();
        let (t_pq, ok2) = median_time(3, || c1p_pqtree::solve(ens.n_atoms(), &cols).is_some());
        let (t_par, ok3) = median_time(3, || c1p_core::parallel::solve_par(&ens).0.is_ok());
        assert!(ok1 && ok2 && ok3);
        t.row(vec![
            n_sts.to_string(),
            n_clones.to_string(),
            ens.p().to_string(),
            fmt_secs(t_dc),
            fmt_secs(t_pq),
            fmt_secs(t_par),
        ]);
    }
    t.print();
    println!("\n(--full adds the 15k×25k upper end of the paper's cited range.)");
}

/// E6 — error sensitivity: rejection rates under the Section 1.1 error
/// model.
fn e6() {
    println!("## E6 — error detection (Section 1.1: false ±, chimerism)\n");
    let n = 600;
    let trials = 40;
    let mut t = Table::new(&["errors injected", "false+", "false-", "chimeric"]);
    for count in [1usize, 2, 4, 8] {
        let mut rej = [0usize; 3];
        for trial in 0..trials {
            let ens = planted(n, 100 + trial as u64);
            let mut rng = SmallRng::seed_from_u64(trial as u64 * 31 + count as u64);
            let noisy = [
                noise::false_positives(&ens, count, &mut rng),
                noise::false_negatives(&ens, count, &mut rng),
                noise::chimerize(&ens, count, &mut rng),
            ];
            for (i, e) in noisy.iter().enumerate() {
                if c1p_core::solve(e).is_err() {
                    rej[i] += 1;
                }
            }
        }
        t.row(vec![
            count.to_string(),
            format!("{:.0}%", 100.0 * rej[0] as f64 / trials as f64),
            format!("{:.0}%", 100.0 * rej[1] as f64 / trials as f64),
            format!("{:.0}%", 100.0 * rej[2] as f64 / trials as f64),
        ]);
    }
    t.print();
    println!(
        "\nEach cell: % of corrupted libraries rejected (no consistent map). False positives\n\
         are detected almost always; deletions can keep the data consistent."
    );
}

/// E7 — the dense-instance processor refinement of Theorem 9.
fn e7() {
    println!("## E7 — density refinement: f = nm/p vs the p/lg n processor bound\n");
    let n = 1 << 12;
    let mut t = Table::new(&[
        "k (col size)",
        "f = n/k",
        "f ≤ lg n/lglg n?",
        "p",
        "modelled procs",
        "p/lg n",
        "p·lglg/lg n",
    ]);
    let lg = log2ceil(n) as f64;
    let lglg = (log2ceil(log2ceil(n) as usize) as f64).max(1.0);
    for k in [2usize, 32, 512, n / 3, n / 2] {
        let m = (4 * n / k).max(32);
        let ens = planted_k(n, m, k, 7);
        let p = ens.p() as f64;
        let f = ens.density_factor().unwrap_or(0.0);
        let (_, stats) = c1p_core::parallel::solve_par(&ens);
        let procs = stats.cost.work as f64 / (stats.cost.depth as f64).max(1.0);
        t.row(vec![
            k.to_string(),
            format!("{f:.0}"),
            (f <= lg / lglg).to_string(),
            (p as u64).to_string(),
            format!("{procs:.0}"),
            format!("{:.0}", p / lg),
            format!("{:.0}", p * lglg / lg),
        ]);
    }
    t.print();
    println!("\nDense instances (small f) fit the tighter p/lg n bound, as Theorem 9 refines.");
}

/// E8 — recursion structure (Section 5's O(log n) depth).
fn e8() {
    println!("## E8 — recursion structure of Path-Realization\n");
    let mut t = Table::new(&[
        "n",
        "max depth",
        "lg n",
        "subproblems",
        "case 1",
        "case 2",
        "decompositions",
        "members",
    ]);
    for k in [8usize, 10, 12, 14, 16] {
        let n = 1 << k;
        let ens = planted(n, 5);
        let (res, stats) = c1p_core::solve_with(&ens, &Config::default());
        assert!(res.is_ok());
        t.row(vec![
            n.to_string(),
            stats.max_depth.to_string(),
            k.to_string(),
            stats.subproblems.to_string(),
            stats.case1.to_string(),
            stats.case2.to_string(),
            stats.decompositions.to_string(),
            stats.members.to_string(),
        ]);
    }
    t.print();
    println!("\nmax depth should track lg n up to a constant (balanced Case-1/Case-2 divides).");
}

/// E9 — head-to-head against Booth–Lueker across sizes.
fn e9() {
    println!("## E9 — divide-and-conquer vs the Booth–Lueker baseline\n");
    let mut t = Table::new(&["n", "p", "D&C", "D&C+pq base", "PQ-tree", "D&C / PQ"]);
    for k in [10usize, 12, 14, 16] {
        let n = 1 << k;
        let ens = planted(n, 9);
        let cols = ens.columns().to_vec();
        let (t_dc, _) = median_time(3, || c1p_core::solve(&ens).is_ok());
        let (t_fast, _) = median_time(3, || c1p_core::solve_with(&ens, &Config::fast()).0.is_ok());
        let (t_pq, _) = median_time(3, || c1p_pqtree::solve(ens.n_atoms(), &cols).is_some());
        t.row(vec![
            n.to_string(),
            ens.p().to_string(),
            fmt_secs(t_dc),
            fmt_secs(t_fast),
            fmt_secs(t_pq),
            format!("{:.1}x", t_dc.as_secs_f64() / t_pq.as_secs_f64()),
        ]);
    }
    t.print();
    println!(
        "\nThe paper expects the sequential D&C to trail the linear-time baseline by a log\n\
         factor (O(p log p) vs O(p)); its value is the parallel structure (E2/E3)."
    );
}

/// E10 — machine-readable solver benchmarks: writes `BENCH_solve.json`
/// (ns/op per solver, per divide-step implementation, and for the
/// certify pipeline: plain reject vs reject + Tucker-witness extraction
/// vs the independent witness check) so the perf trajectory across PRs
/// stays diffable. See DESIGN.md §6–§7.
fn e10() {
    use c1p_bench::naive::{naive_prepare_split, NaiveSub};
    use c1p_bench::workloads::planted_reject;
    use c1p_core::solver::prepare_split;
    use c1p_core::FlatCols;
    use std::fmt::Write as _;

    println!("## E10 — BENCH_solve.json (machine-readable solver timings)\n");
    let reps = 5;
    let mut entries: Vec<String> = Vec::new();
    let csr_only = Config { bitmat_threshold: 0, ..Config::default() };
    let mut dc_ns_at_16384 = 0u128;
    for k in [10usize, 12, 14] {
        let n = 1 << k;
        let ens = planted(n, 1);
        let p = ens.p();
        let cols = ens.columns().to_vec();
        let (t_dc, _) = median_time(reps, || c1p_core::solve(&ens).is_ok());
        if n == 1 << 14 {
            dc_ns_at_16384 = t_dc.as_nanos();
        }
        // the same solver forced onto the CSR divide path alone, so the
        // adaptive bitmat dispatch stays auditable per size
        let (t_csr, _) = median_time(reps, || c1p_core::solve_with(&ens, &csr_only).0.is_ok());
        let (t_fast, _) =
            median_time(reps, || c1p_core::solve_with(&ens, &Config::fast()).0.is_ok());
        let (t_par, _) = median_time(reps, || c1p_core::parallel::solve_par(&ens).0.is_ok());
        let (t_pq, _) = median_time(reps, || c1p_pqtree::solve(n, &cols).is_some());
        // the divide step alone, flat CSR vs the seed's nested vecs
        let flat = c1p_core::solver::SubProblem { n, cols: FlatCols::from_cols(&cols) };
        let naive = NaiveSub { n, cols: cols.clone() };
        let a1: Vec<u32> = (0..(n / 2) as u32).collect();
        let (t_split_flat, _) = median_time(reps, || prepare_split(&flat, &a1).sub1.n);
        let (t_split_naive, _) = median_time(reps, || naive_prepare_split(&naive, &a1).1.n);
        // the certify pipeline, median across all five Tucker families
        // (planted_reject cycles the family by seed), so the recorded cost
        // covers the parameterized families, not just constant-size M_IV
        let mut t_rejects = Vec::new();
        let mut t_certifies = Vec::new();
        let mut t_verifies = Vec::new();
        for seed in 1..=5u64 {
            let (bad, _) = planted_reject(n, seed);
            let (t, _) = median_time(3, || c1p_core::solve(&bad).is_err());
            t_rejects.push(t);
            let (t, _) = median_time(3, || {
                let rej = c1p_core::solve(&bad).unwrap_err();
                c1p_cert::extract_witness(&bad, &rej).unwrap().atom_rows.len()
            });
            t_certifies.push(t);
            let witness = {
                let rej = c1p_core::solve(&bad).unwrap_err();
                c1p_cert::extract_witness(&bad, &rej).unwrap()
            };
            let (t, _) = median_time(3, || c1p_cert::verify_witness(&bad, &witness).is_ok());
            t_verifies.push(t);
        }
        let family_median = |ts: &mut Vec<std::time::Duration>| {
            ts.sort_unstable();
            ts[ts.len() / 2]
        };
        let t_reject = family_median(&mut t_rejects);
        let t_certify = family_median(&mut t_certifies);
        let t_verify = family_median(&mut t_verifies);
        let mut e = String::new();
        write!(
            e,
            "  {{\"n\": {n}, \"m\": {}, \"p\": {p}, \"ns_per_op\": {{\
             \"dc\": {}, \"dc_csr_only\": {}, \"dc_pq_base\": {}, \"dc_parallel\": {}, \"pqtree\": {}, \
             \"split_flat\": {}, \"split_nested_vec\": {}, \
             \"reject_plain\": {}, \"reject_certified\": {}, \"verify_witness\": {}}}}}",
            ens.n_columns(),
            t_dc.as_nanos(),
            t_csr.as_nanos(),
            t_fast.as_nanos(),
            t_par.as_nanos(),
            t_pq.as_nanos(),
            t_split_flat.as_nanos(),
            t_split_naive.as_nanos(),
            t_reject.as_nanos(),
            t_certify.as_nanos(),
            t_verify.as_nanos(),
        )
        .unwrap();
        println!(
            "n={n}: dc {} (csr-only {}) | dc_pq_base {} | dc_parallel {} | pqtree {} | split flat {} vs nested {}",
            fmt_secs(t_dc),
            fmt_secs(t_csr),
            fmt_secs(t_fast),
            fmt_secs(t_par),
            fmt_secs(t_pq),
            fmt_secs(t_split_flat),
            fmt_secs(t_split_naive),
        );
        println!(
            "        reject {} | reject+witness {} | verify_witness {}",
            fmt_secs(t_reject),
            fmt_secs(t_certify),
            fmt_secs(t_verify),
        );
        entries.push(e);
    }
    // Thread sweep (ISSUE 3): self-relative speedup of the parallel
    // driver and a PRAM primitive on the work-stealing pool. Recorded
    // with the host's hardware thread count — self-relative speedup is
    // physically capped by min(threads, host_threads), so the numbers
    // are only comparable across hosts through that cap.
    let host_threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    let n = 1 << 14;
    let ens = planted(n, 1);
    let sweep = [1usize, 2, 4, 8];
    let mut dc_par_ns: Vec<(usize, u128)> = Vec::new();
    for &t in &sweep {
        let pool = c1p_pram::pool(t); // pool construction outside the timed region
        let (dt, ok) =
            median_time(3, || pool.install(|| c1p_core::parallel::solve_par(&ens).0.is_ok()));
        assert!(ok);
        dc_par_ns.push((t, dt.as_nanos()));
    }
    let xs: Vec<u64> = (0..(1u64 << 20)).map(|i| i % 17).collect();
    let mut scan_ns: Vec<(usize, u128)> = Vec::new();
    for &t in &sweep {
        let pool = c1p_pram::pool(t);
        let (dt, _) = median_time(5, || pool.install(|| c1p_pram::scan::prefix_sum(&xs).1));
        scan_ns.push((t, dt.as_nanos()));
    }
    let speedup_at = |v: &[(usize, u128)], t: usize| {
        v[0].1 as f64 / v.iter().find(|&&(tt, _)| tt == t).unwrap().1.max(1) as f64
    };
    // The par-smoke CI gate fails when measured 4-thread self-relative
    // speedup drops below this floor: 85% of what this run measured
    // (clamped to ≥ 0.5 so timer noise on a saturated 1-core host can't
    // wedge CI). Re-running E10 on a better host raises the bar.
    let floor_4t = (speedup_at(&dc_par_ns, 4) * 0.85).max(0.5);
    let fmt_sweep = |v: &[(usize, u128)]| {
        v.iter().map(|(t, ns)| format!("\"t{t}\": {ns}")).collect::<Vec<_>>().join(", ")
    };
    let fmt_speedups = |v: &[(usize, u128)]| {
        v[1..]
            .iter()
            .map(|&(t, _)| format!("\"t{t}\": {:.3}", speedup_at(v, t)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("\nthread sweep (host has {host_threads} hardware thread(s)):");
    for &(t, ns) in &dc_par_ns {
        println!(
            "  dc_parallel n={n} threads={t}: {} ({:.2}x)",
            fmt_secs(std::time::Duration::from_nanos(ns as u64)),
            speedup_at(&dc_par_ns, t),
        );
    }
    let thread_sweep = format!(
        "{{\"host_threads\": {host_threads}, \
         \"note\": \"self-relative: t1 time / tN time, same binary and host; \
         physically capped by min(N, host_threads) — on a 1-core container the \
         honest ceiling is 1.0\", \
         \"dc_parallel_ns_at_16384\": {{{}}}, \
         \"dc_parallel_speedup\": {{{}}}, \
         \"prefix_sum_ns_at_2e20\": {{{}}}, \
         \"prefix_sum_speedup\": {{{}}}, \
         \"speedup_floor_4t\": {floor_4t:.3}}}",
        fmt_sweep(&dc_par_ns),
        fmt_speedups(&dc_par_ns),
        fmt_sweep(&scan_ns),
        fmt_speedups(&scan_ns),
    );
    // The whole-solver baseline measured on the seed's nested-vec
    // representation (same workload, same machine class) before the
    // flat-CSR rewrite landed; kept verbatim so the speedup claim stays
    // auditable after the naive solver itself is gone. The naive *divide
    // step* remains live above (`split_nested_vec`).
    // The dc median recorded by the previous PR's E10 run (same workload,
    // same machine class) before the bit-parallel kernels and the
    // union-find growth landed; kept verbatim so the bitmat-smoke CI
    // gate's >= 1.5x claim stays auditable. Mirrored by
    // PRE_BITMAT_DC_NS_AT_16384 in bitmat_smoke.rs.
    let pre_bitmat_dc_ns: u128 = 233_477_725;
    let bitmat = format!(
        "{{\"pre_bitmat_dc_ns_at_16384\": {pre_bitmat_dc_ns}, \
         \"dc_speedup_vs_pre_bitmat_at_16384\": {:.3}, \
         \"default_threshold\": {}}}",
        pre_bitmat_dc_ns as f64 / dc_ns_at_16384.max(1) as f64,
        Config::default().bitmat_threshold,
    );
    println!(
        "bitmat: dc at n=16384 {:.1} ms vs pre-bitmat {:.1} ms -> {:.2}x",
        dc_ns_at_16384 as f64 / 1e6,
        pre_bitmat_dc_ns as f64 / 1e6,
        pre_bitmat_dc_ns as f64 / dc_ns_at_16384.max(1) as f64,
    );
    let seed_baseline = "{\"commit\": \"pre-flat-CSR seed + manifests\", \
         \"dc_ns_at_16384\": 589322000, \"dc_pq_base_ns_at_16384\": 440531000, \
         \"dc_parallel_ns_at_16384\": 604725000, \"pqtree_ns_at_16384\": 180850000}";
    let json = format!(
        "{{\n\"workload\": \"planted(n, seed=1), m = 2n interval columns; \
         reject_*/verify use planted_reject(n, seeds 1-5: one per Tucker family)\",\n\
         \"note\": \"medians of {reps} reps (certify pipeline: 3 reps, then the \
         median across the five families); split_* measure one top-level divide; \
         reject_certified = solve + Tucker-witness extraction, verify_witness = \
         the independent checker alone; thread_sweep records self-relative \
         dc_parallel/prefix_sum speedups and the par-smoke gate floor; \
         see DESIGN.md §6-§7\",\n\
         \"seed_nested_vec_baseline\": {seed_baseline},\n\
         \"bitmat\": {bitmat},\n\
         \"thread_sweep\": {thread_sweep},\n\
         \"results\": [\n{}\n]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_solve.json", &json).expect("write BENCH_solve.json");
    println!("\nwrote BENCH_solve.json");
}

/// Drives `schedule` through a live in-process server over loopback TCP
/// and returns closed-loop requests/s. `shards == 0` selects the legacy
/// thread-per-connection mode; otherwise the event loop with that many
/// shards. `idle` extra connections are opened first and held silent for
/// the whole run — the event loop should shrug them off, the legacy mode
/// pays a thread each.
fn served_rps(shards: usize, conns: usize, idle: usize, schedule: &[c1p_matrix::Ensemble]) -> f64 {
    use c1p_engine::proto::{encode_msg, read_frame, write_frame, Msg, DEFAULT_MAX_FRAME};
    use c1p_engine::EngineConfig;
    use c1p_net::metrics::Metrics;
    use c1p_net::ServerOpts;
    use std::io::{BufReader, BufWriter, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let opts = ServerOpts { max_conns: conns + idle + 8, ..ServerOpts::default() };
    let drain = Duration::from_secs(5);
    let server = if shards == 0 {
        let metrics = Arc::new(Metrics::new(1));
        std::thread::spawn(move || {
            c1p_net::legacy::serve(listener, EngineConfig::default(), &opts, drain, stop, &metrics)
                .map(|_| ())
        })
    } else {
        let el = c1p_net::event_loop::EventLoopOpts {
            shards,
            server: opts,
            engine_cfg: EngineConfig::default(),
            drain,
            ..Default::default()
        };
        let metrics = Arc::new(Metrics::new(shards));
        std::thread::spawn(move || {
            c1p_net::event_loop::serve(listener, &el, stop, &metrics).map(|_| ())
        })
    };

    let idle_conns: Vec<TcpStream> =
        (0..idle).map(|_| TcpStream::connect(addr).expect("idle connect")).collect();
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for c in 0..conns {
            let share: Vec<&c1p_matrix::Ensemble> =
                schedule.iter().skip(c).step_by(conns).collect();
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
                let mut reader = BufReader::new(stream);
                for (i, ens) in share.iter().enumerate() {
                    let req = Msg::Solve { id: i as u64, ens: (*ens).clone() };
                    write_frame(&mut writer, &encode_msg(&req)).expect("write");
                    writer.flush().expect("flush");
                    read_frame(&mut reader, DEFAULT_MAX_FRAME).expect("read").expect("reply");
                }
            });
        }
    });
    let wall = t0.elapsed();
    drop(idle_conns);
    stop.store(true, Ordering::Release);
    server.join().expect("server thread").expect("server exits cleanly");
    schedule.len() as f64 / wall.as_secs_f64().max(1e-9)
}

/// E11 — machine-readable serving benchmarks: writes `BENCH_serve.json`
/// (engine throughput, closed-loop latency percentiles, cache hit rate,
/// cold-vs-hot speedup at n=2^12, a self-relative batch-size sweep, and
/// a live shard x connection sweep over loopback TCP — both server
/// modes, including each under 1000 held-open idle connections),
/// host_threads-annotated so the numbers stay honest on a 1-core recorder.
/// See DESIGN.md §8 and §11.
fn e11() {
    use c1p_bench::workloads::planted;
    use c1p_engine::{Engine, EngineConfig};
    use c1p_matrix::generate::{mixed_schedule, MixedSchedule};

    println!("## E11 — BENCH_serve.json (engine serving benchmarks)\n");
    let host_threads = std::thread::available_parallelism().map_or(1, |v| v.get());

    // 1. cold vs hot at n = 2^12 (the acceptance gate's >= 10x claim):
    //    fresh engine per cold rep so every cold solve is really cold.
    let big = planted(1 << 12, 1);
    let mut colds = Vec::new();
    let hot_engine = Engine::new(EngineConfig::default());
    for _ in 0..3 {
        let engine = Engine::new(EngineConfig::default());
        let (t, ok) = median_time(1, || engine.solve(&big).unwrap().is_c1p());
        assert!(ok);
        colds.push(t);
    }
    colds.sort_unstable();
    let t_cold = colds[1];
    hot_engine.solve(&big).unwrap(); // warm
    let (t_hot, _) = median_time(5, || hot_engine.solve(&big).unwrap().is_c1p());
    let hit_speedup = t_cold.as_secs_f64() / t_hot.as_secs_f64().max(1e-9);
    println!(
        "cache at n=4096: cold {} | hot {} | speedup {hit_speedup:.0}x",
        fmt_secs(t_cold),
        fmt_secs(t_hot),
    );

    // 2. a served schedule: 2000 small mixed requests with replays — the
    //    one shared definition (`mixed_schedule`) the load_driver and the
    //    engine_batch example also draw from, so the CI gate and this
    //    bench measure the same workload shape.
    let schedule = mixed_schedule(MixedSchedule {
        requests: 2000,
        seed: 0x5E11,
        dup_every: 3,
        reject_every: 4,
        n_lo: 40,
        n_hi: 140,
    });

    // closed loop (batch = 1): per-request latency percentiles
    let engine = Engine::new(EngineConfig::default());
    let mut lat_us: Vec<u64> = Vec::with_capacity(schedule.len());
    let t0 = std::time::Instant::now();
    for e in &schedule {
        let t = std::time::Instant::now();
        engine.solve(e).unwrap();
        lat_us.push(t.elapsed().as_micros() as u64);
    }
    let closed_wall = t0.elapsed();
    lat_us.sort_unstable();
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p).round() as usize];
    let (p50, p90, p99) = (pct(0.5), pct(0.9), pct(0.99));
    let closed_rps = schedule.len() as f64 / closed_wall.as_secs_f64();
    let closed_stats = engine.stats();
    println!(
        "closed loop: {} req in {} ({closed_rps:.0} req/s) | p50 {p50}us p90 {p90}us p99 {p99}us | hit rate {:.0}%",
        schedule.len(),
        fmt_secs(closed_wall),
        100.0 * closed_stats.hit_rate(),
    );

    // session mix: deterministic append streams through the engine's
    // incremental sessions (open → pushes → seal), reported as session
    // ops/s alongside the solve throughput above
    let session_engine = Engine::new(EngineConfig::default());
    let streams: Vec<_> = (0..24u64)
        .map(|s| c1p_matrix::generate::append_stream(64 + (s as usize % 3) * 48, 4, 6, 0x5E55 + s))
        .collect();
    let t0 = std::time::Instant::now();
    let mut session_ops = 0u64;
    for stream in &streams {
        let id = session_engine.open_session(stream.n_atoms).expect("session admitted");
        session_ops += 1;
        for k in 0..stream.pushes.len() {
            let v = session_engine.session_push(id, &stream.push_ensemble(k)).expect("push ok");
            assert!(v.is_c1p(), "accept-only stream");
            session_ops += 1;
        }
        session_engine.seal_session(id).expect("seal ok");
        session_ops += 1;
    }
    let session_wall = t0.elapsed();
    let session_ops_s = session_ops as f64 / session_wall.as_secs_f64().max(1e-9);
    let session_stats = session_engine.stats();
    println!(
        "session mix: {} streams, {session_ops} ops in {} ({session_ops_s:.0} ops/s) | \
         sealed {} | cache insertions {}",
        streams.len(),
        fmt_secs(session_wall),
        session_stats.sessions_sealed,
        session_stats.insertions,
    );

    // batch-size sweep (fresh engine each, same schedule): self-relative
    // batching gain from dedupe + shared-pool amortization
    let mut sweep: Vec<(usize, u128)> = Vec::new();
    for batch in [1usize, 8, 64] {
        let engine = Engine::new(EngineConfig::default());
        let t0 = std::time::Instant::now();
        for chunk in schedule.chunks(batch) {
            for r in engine.solve_batch(chunk) {
                r.unwrap();
            }
        }
        sweep.push((batch, t0.elapsed().as_nanos()));
    }
    let gain = sweep[0].1 as f64 / sweep[2].1.max(1) as f64;
    for &(b, ns) in &sweep {
        println!(
            "batch={b:<3} {} ({:.0} req/s)",
            fmt_secs(std::time::Duration::from_nanos(ns as u64)),
            schedule.len() as f64 * 1e9 / ns as f64,
        );
    }
    println!("self-relative batch-64 gain over batch-1: {gain:.2}x");

    // shard x connection sweep over real loopback TCP, both server
    // modes: shards=0 encodes the legacy thread-per-connection front-end
    // (one engine, no shard routing). On a 1-core host the cells are
    // self-relative — what they isolate is front-end overhead, not
    // parallel speedup.
    println!("\nserved sweep (live loopback, {} requests per cell):", schedule.len());
    let mut served: Vec<(usize, usize, f64)> = Vec::new();
    for &shards in &[0usize, 1, 2, 4] {
        for &conns in &[1usize, 4, 16] {
            let rps = served_rps(shards, conns, 0, &schedule);
            let mode = if shards == 0 { "legacy".into() } else { format!("el/{shards}") };
            println!("  {mode:<8} conns={conns:<3} {rps:>8.0} req/s");
            served.push((shards, conns, rps));
        }
    }

    // 1000 idle connections held open for the whole run: the legacy mode
    // pays a parked thread per connection, the event loop pays one
    // pollfd slot
    let idle_legacy = served_rps(0, 4, 1000, &schedule);
    let idle_el = served_rps(4, 4, 1000, &schedule);
    println!(
        "under 1000 idle conns: legacy {idle_legacy:.0} req/s | event-loop/4 {idle_el:.0} req/s"
    );

    let served_json = served
        .iter()
        .map(|&(shards, conns, rps)| {
            let mode = if shards == 0 { "legacy" } else { "event_loop" };
            format!(
                "{{\"mode\": \"{mode}\", \"shards\": {}, \"conns\": {conns}, \
                 \"rps\": {rps:.1}}}",
                shards.max(1)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n  ");

    let sweep_json =
        sweep.iter().map(|(b, ns)| format!("\"batch{b}\": {ns}")).collect::<Vec<_>>().join(", ");
    let json = format!(
        "{{\n\"workload\": \"mixed_schedule(requests 2000, seed 0x5E11, dup_every 3, \
         reject_every 4, n in [40,140]) — the shared c1p_matrix::generate definition \
         the load_driver CI gate uses; cache gate uses planted(4096, seed 1)\",\n\
         \"note\": \"recorded on a {host_threads}-thread host — throughput and the \
         batch sweep are self-relative, single-host numbers; on a 1-core container \
         cross-request parallel speedup is physically impossible, so gains reflect \
         dedupe, caching and pool amortization only; the served sweep \
         isolates front-end overhead, not parallelism; see DESIGN.md §8 and §11\",\n\
         \"host_threads\": {host_threads},\n\
         \"cache\": {{\"cold_ns_at_4096\": {}, \"hot_ns_at_4096\": {}, \
         \"hit_speedup\": {hit_speedup:.1}}},\n\
         \"closed_loop\": {{\"requests\": {}, \"throughput_rps\": {closed_rps:.1}, \
         \"latency_us\": {{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}}}, \
         \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n\
         \"batch_sweep_ns\": {{{sweep_json}}},\n\
         \"batch64_gain_over_batch1\": {gain:.3},\n\
         \"served_sweep\": {{\"requests\": {}, \"note\": \"live c1pd front-ends over \
         loopback TCP, closed loop; shards apply to event_loop only\", \"cells\": [\n  \
         {served_json}\n]}},\n\
         \"idle_1k\": {{\"idle_conns\": 1000, \"active_conns\": 4, \
         \"legacy_rps\": {idle_legacy:.1}, \"event_loop4_rps\": {idle_el:.1}}},\n\
         \"session_mix\": {{\"streams\": {}, \"pushes_per_stream\": 6, \
         \"ops\": {session_ops}, \"ops_per_s\": {session_ops_s:.1}, \
         \"wall_ns\": {}, \"workload\": \"append_stream(n in {{64,112,160}}, \
         blocks 4, pushes 6, seeds 0x5E55+s) through open/push/seal\"}}\n}}\n",
        t_cold.as_nanos(),
        t_hot.as_nanos(),
        schedule.len(),
        closed_stats.hits,
        closed_stats.misses,
        closed_stats.hit_rate(),
        schedule.len(),
        streams.len(),
        session_wall.as_nanos(),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}

/// E12 — machine-readable incremental-session benchmarks: writes
/// `BENCH_incr.json`. Measures the tentpole claim: pushing a 1%-suffix
/// into a warm incremental session vs a full one-shot re-solve of the
/// concatenation, at n = 2^12..2^14 on the block-local append-stream
/// workload — plus the honest counter-case of a single-component
/// instance, where the suffix touches everything and the differential
/// path degenerates to a full re-solve. host_threads-annotated (the
/// recording box is 1-core; the speedup is pure component locality, not
/// parallelism). See DESIGN.md §9.
fn e12() {
    use c1p_bench::workloads::append_stream;
    use c1p_incremental::IncrementalSolver;
    use std::fmt::Write as _;

    println!("## E12 — BENCH_incr.json (incremental push vs full re-solve)\n");
    let host_threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    let reps = 3;
    let mut entries: Vec<String> = Vec::new();
    let mut worst_speedup = f64::INFINITY;
    for k in [12usize, 13, 14] {
        let n = 1 << k;
        let blocks = n / 256;
        // 100 pushes over m = 2n columns: the last push is exactly the 1%
        // suffix, block-local by stream construction
        let stream = append_stream(n, blocks, 100, 1);
        let full = stream.final_ensemble();
        let suffix_cols = stream.pushes[99].len();
        let (t_full, ok) = median_time(reps, || c1p_cert::solve_certified(&full).is_ok());
        assert!(ok);
        // incremental: warm a session with the 99% prefix (one untimed
        // push), then time the 1% suffix push; fresh session per rep so
        // every timed push really is the first sight of the suffix
        let prefix: Vec<Vec<u32>> =
            stream.pushes[..99].iter().flat_map(|p| p.iter().cloned()).collect();
        let mut t_incrs = Vec::new();
        for _ in 0..reps {
            let mut inc = IncrementalSolver::new(n);
            inc.push_columns(prefix.clone()).unwrap().unwrap();
            let delta = stream.push_ensemble(99);
            let t0 = std::time::Instant::now();
            let verdict = inc.push(&delta);
            let dt = t0.elapsed();
            assert!(verdict.is_ok());
            t_incrs.push(dt);
        }
        t_incrs.sort_unstable();
        let t_incr = t_incrs[t_incrs.len() / 2];
        // the honest counter-case: one giant component (planted), where
        // the 1% suffix touches everything
        let single = planted(n, 1);
        let m = single.n_columns();
        let cut = m - m / 100;
        let head: Vec<Vec<u32>> = single.columns()[..cut].to_vec();
        let tail: Vec<Vec<u32>> = single.columns()[cut..].to_vec();
        let mut t_singles = Vec::new();
        for _ in 0..reps {
            let mut inc = IncrementalSolver::new(n);
            inc.push_columns(head.clone()).unwrap().unwrap();
            let t0 = std::time::Instant::now();
            let verdict = inc.push_columns(tail.clone()).unwrap();
            let dt = t0.elapsed();
            assert!(verdict.is_ok());
            t_singles.push(dt);
        }
        t_singles.sort_unstable();
        let t_single = t_singles[t_singles.len() / 2];
        let speedup = t_full.as_secs_f64() / t_incr.as_secs_f64().max(1e-9);
        worst_speedup = worst_speedup.min(speedup);
        println!(
            "n={n} ({blocks} blocks): full re-solve {} | 1% suffix push {} ({speedup:.1}x) | \
             single-component suffix push {} ({:.1}x)",
            fmt_secs(t_full),
            fmt_secs(t_incr),
            fmt_secs(t_single),
            t_full.as_secs_f64() / t_single.as_secs_f64().max(1e-9),
        );
        let mut e = String::new();
        write!(
            e,
            "  {{\"n\": {n}, \"m\": {}, \"blocks\": {blocks}, \"suffix_columns\": {suffix_cols}, \
             \"full_resolve_ns\": {}, \"incr_push_ns\": {}, \"speedup\": {speedup:.2}, \
             \"single_component_push_ns\": {}}}",
            full.n_columns(),
            t_full.as_nanos(),
            t_incr.as_nanos(),
            t_single.as_nanos(),
        )
        .unwrap();
        entries.push(e);
    }
    let json = format!(
        "{{\n\"workload\": \"append_stream(n, blocks = n/256, pushes = 100, seed 1): the \
         timed push is the block-local 1% suffix; full_resolve = solve_certified of the \
         concatenation; single_component_push uses planted(n, 1) (one giant component) as \
         the honest worst case where differential re-solve degenerates to a full solve\",\n\
         \"note\": \"medians of {reps} reps; recorded on a {host_threads}-thread host — \
         the speedup is component locality (re-solve only touched blocks + O(n) splice), \
         not parallelism, and holds on 1 core; acceptance gate: speedup >= 5 at n = 2^14; \
         see DESIGN.md §9\",\n\
         \"host_threads\": {host_threads},\n\
         \"min_speedup\": {worst_speedup:.2},\n\
         \"results\": [\n{}\n]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_incr.json", &json).expect("write BENCH_incr.json");
    println!("\nwrote BENCH_incr.json");
    // The ISSUE-5 acceptance gate, enforced (not just recorded): the CI
    // incr-smoke job runs this experiment, so a change that loses
    // component locality fails the build instead of self-reporting.
    // Measured headroom is ~4x (19-53x across sizes), so timer noise on
    // a loaded 1-core host cannot plausibly trip it.
    assert!(
        worst_speedup >= 5.0,
        "acceptance gate: 1%-suffix incremental push must be >= 5x a full \
         re-solve at every size (worst measured {worst_speedup:.1}x)"
    );
}

/// E13 — machine-readable durability benchmarks: writes
/// `BENCH_durable.json`. Measures what the WAL costs and what recovery
/// buys: median per-push ack latency with and without the
/// fsync-before-ack write-ahead log (same seeded stream, same engine),
/// and WAL replay time as a function of log length (records and bytes).
/// host_threads-annotated; the fsync premium is storage-bound, so the
/// absolute numbers describe the recording box's disk, not the solver.
/// See DESIGN.md §10.
fn e13() {
    use c1p_bench::workloads::append_stream;
    use c1p_engine::{wal, Engine, EngineConfig};
    use std::fmt::Write as _;
    use std::time::Instant;

    println!("## E13 — BENCH_durable.json (WAL ack latency + recovery time)\n");
    let host_threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    let dir = std::env::temp_dir().join(format!("c1p-e13-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reps = 3;
    let n = 2048usize;
    let blocks = n / 256;

    // ── ack latency: the same 64-push stream, acked with and without a
    // fsynced WAL append between verdict and acknowledgement
    let pushes = 64usize;
    let stream = append_stream(n, blocks, pushes, 5);
    let mut ack = Vec::new(); // (mode, median per-push ns)
    for (mode, wal_dir) in [("no_fsync", None), ("fsync", Some(dir.clone()))] {
        let mut meds = Vec::new();
        for _ in 0..reps {
            let cfg =
                EngineConfig { threads: 2, wal_dir: wal_dir.clone(), ..EngineConfig::default() };
            let engine = Engine::new(cfg);
            let id = engine.open_session(n).expect("open");
            let mut ts = Vec::new();
            for k in 0..pushes {
                let delta = stream.push_ensemble(k);
                let t0 = Instant::now();
                engine.session_push(id, &delta).expect("accept-only stream");
                ts.push(t0.elapsed());
            }
            ts.sort_unstable();
            meds.push(ts[ts.len() / 2]);
            engine.seal_session(id).expect("seal"); // retires the WAL
        }
        meds.sort_unstable();
        ack.push((mode, meds[meds.len() / 2].as_nanos()));
    }
    let premium = ack[1].1 as f64 / (ack[0].1 as f64).max(1.0);
    println!(
        "per-push ack latency (median of {pushes} pushes, n={n}): \
         {} ns without WAL | {} ns with fsync-before-ack ({premium:.1}x)",
        ack[0].1, ack[1].1
    );

    // ── recovery time vs WAL length: replay cost of an unsealed log,
    // every prefix hash re-verified (the boot-path invariant)
    let mut recovery: Vec<String> = Vec::new();
    for records in [16usize, 64, 256] {
        let stream = append_stream(n, blocks, records, 7);
        let cfg =
            EngineConfig { threads: 2, wal_dir: Some(dir.clone()), ..EngineConfig::default() };
        let engine = Engine::new(cfg);
        let id = engine.open_session(n).expect("open");
        for k in 0..records {
            engine.session_push(id, &stream.push_ensemble(k)).expect("accept-only stream");
        }
        drop(engine); // vanish unsealed: the WAL stays behind
        let path = wal::wal_path(&dir, id);
        let wal_bytes = std::fs::metadata(&path).expect("wal written").len();
        let mut ts = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            let rec = wal::recover_file(&path, &Config::default(), 2048)
                .expect("an honest log always recovers");
            ts.push(t0.elapsed());
            assert_eq!(rec.records, records as u64, "every acked push replayed");
            assert!(!rec.truncated_tail);
        }
        ts.sort_unstable();
        let t = ts[ts.len() / 2];
        println!("recovery of {records:>3} records ({wal_bytes:>7} B): {}", fmt_secs(t));
        let mut e = String::new();
        write!(
            e,
            "  {{\"records\": {records}, \"wal_bytes\": {wal_bytes}, \
             \"recover_ns\": {}}}",
            t.as_nanos()
        )
        .unwrap();
        recovery.push(e);
        std::fs::remove_file(&path).expect("retire the measured log");
    }
    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n\"workload\": \"append_stream(n = 2048, blocks = 8, seed 5/7): ack latency is \
         the median session_push round trip over 64 pushes, with wal_dir unset vs set \
         (append + fsync before the verdict is returned); recovery is wal::recover_file \
         of an unsealed log, re-verifying every prefix's recorded stream hash\",\n\
         \"note\": \"medians of {reps} reps; recorded on a {host_threads}-thread host — \
         the fsync premium is storage latency (device + filesystem), not solver time, \
         and recovery cost scales with log length; see DESIGN.md §10\",\n\
         \"host_threads\": {host_threads},\n\
         \"ack_latency\": [\n  {{\"mode\": \"{}\", \"push_ns\": {}}},\n  \
         {{\"mode\": \"{}\", \"push_ns\": {}}}\n],\n\
         \"fsync_premium\": {premium:.2},\n\
         \"recovery\": [\n{}\n]\n}}\n",
        ack[0].0,
        ack[0].1,
        ack[1].0,
        ack[1].1,
        recovery.join(",\n")
    );
    std::fs::write("BENCH_durable.json", &json).expect("write BENCH_durable.json");
    println!("\nwrote BENCH_durable.json");
}

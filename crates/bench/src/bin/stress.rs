//! Adversarial stress for the divide-and-conquer solver: cross-check
//! against brute force (small) and the PQ-tree (large) over planted,
//! noisy, and random instances.
use c1p_matrix::generate::{planted_c1p, random_ensemble, PlantedShape};
use c1p_matrix::noise;
use c1p_matrix::verify::{brute_force_linear, verify_linear};
use c1p_matrix::Ensemble;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn check(e: &Ensemble, ctx: &str) {
    let dc = c1p_core::solve(e);
    let pq = c1p_pqtree::solve(e.n_atoms(), e.columns());
    if dc.is_ok() != pq.is_some() {
        eprintln!("DISAGREE ({ctx}): dc={} pq={}\n{}", dc.is_ok(), pq.is_some(), e.to_matrix());
        std::process::exit(1);
    }
    if let Ok(o) = &dc {
        verify_linear(e, o).expect("witness");
    }
    if e.n_atoms() <= 8 {
        let bf = brute_force_linear(e);
        assert_eq!(dc.is_ok(), bf.is_some(), "brute disagree ({ctx})\n{}", e.to_matrix());
    }
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(0xABCDEF);
    // exhaustive small: every 5-atom 3-column instance (32^3 = 32768)
    for c1 in 0..32usize {
        for c2 in 0..32usize {
            for c3 in 0..32usize {
                let cols: Vec<Vec<u32>> = [c1, c2, c3]
                    .iter()
                    .map(|&m| (0..5u32).filter(|&a| m >> a & 1 == 1).collect())
                    .collect();
                check(&Ensemble::from_columns(5, cols).unwrap(), "exh5x3");
            }
        }
    }
    println!("exhaustive 5x3 ok");
    // random 6-7 atom instances
    for t in 0..60_000 {
        let n = 6 + t % 2;
        let m = 2 + rng.random_range(0..5);
        let cols: Vec<Vec<u32>> = (0..m)
            .map(|_| {
                let mask = 1 + rng.random_range(0..(1usize << n) - 1);
                (0..n as u32).filter(|&a| mask >> a & 1 == 1).collect()
            })
            .collect();
        check(&Ensemble::from_columns(n, cols).unwrap(), "rand67");
    }
    println!("random 6-7 ok");
    // noisy planted at medium sizes: accept/reject both exercised
    for t in 0..4000u64 {
        let mut r2 = SmallRng::seed_from_u64(t);
        let n = 12 + (t as usize % 50);
        let (e, _) = planted_c1p(
            PlantedShape { n_atoms: n, n_columns: 2 * n, min_len: 2, max_len: n / 2 },
            &mut r2,
        );
        let noisy = match t % 4 {
            0 => e,
            1 => noise::flip_random(&e, 1 + t as usize % 3, &mut r2),
            2 => noise::chimerize(&e, 1 + t as usize % 3, &mut r2),
            3 => noise::false_positives(&e, 1 + t as usize % 4, &mut r2),
            _ => unreachable!(),
        };
        check(&noisy, "noisy");
    }
    println!("noisy planted ok");
    // sparse random (mixed answers)
    for t in 0..3000u64 {
        let mut r2 = SmallRng::seed_from_u64(t.wrapping_mul(77));
        let n = 9 + (t as usize % 40);
        let e = random_ensemble(n, 4 + t as usize % 6, 2.5 / n as f64, &mut r2);
        check(&e, "sparse");
    }
    println!("sparse random ok");
    // large planted smoke
    for n in [2_000usize, 20_000] {
        let (e, _) = planted_c1p(
            PlantedShape { n_atoms: n, n_columns: 2 * n, min_len: 2, max_len: 40 },
            &mut rng,
        );
        assert!(c1p_core::solve(&e).is_ok(), "large planted n={n}");
    }
    println!("large planted ok");
    println!("ALL STRESS PASSED");
}

//! Seeded certificate stress: every rejection either solver produces must
//! shrink to a Tucker witness that the independent checker accepts.
//!
//! ```text
//! cargo run --release -p c1p-bench --bin cert_stress -- [--instances N] [--seed S]
//! ```
//!
//! Three workload bands per iteration: a planted family embedding (all
//! five families cycled, k swept), a PQ-confirmed random reject, and a
//! small brute-force-checked instance. The run is deterministic in the
//! seed; CI runs a fixed budget as the certificate smoke job.

use c1p_bench::workloads::planted_reject;
use c1p_cert::{extract_witness, verify_witness};
use c1p_matrix::verify::brute_force_linear;
use c1p_matrix::Ensemble;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let instances = arg("--instances", 300);
    let seed0 = arg("--seed", 0xCE7);
    let mut families: BTreeMap<String, usize> = BTreeMap::new();
    let mut certified = 0usize;
    for i in 0..instances {
        let mut rng = SmallRng::seed_from_u64(seed0 ^ (i.wrapping_mul(0x9E37_79B9)));
        // band 0: the pure generator — extraction must return it verbatim
        // (generators are minimal), covering every family name directly
        let n = 24 + rng.random_range(0..200usize);
        let (emb, fam) = planted_reject(n, seed0.wrapping_add(i));
        certified += check(&fam.generate(), &format!("pure {fam} i={i}"), &mut families);
        // band 1: the same family embedded in 2n columns of planted noise
        // (extraction may legitimately surface a different, smaller core)
        certified += check(&emb, &format!("embed {fam} i={i} n={n}"), &mut families);
        // band 2: random ensemble — keep only PQ-confirmed rejects
        let rn = 6 + rng.random_range(0..24usize);
        let rm = 3 + rng.random_range(0..9usize);
        let cols: Vec<Vec<u32>> = (0..rm)
            .map(|_| {
                let mut c: Vec<u32> =
                    (0..rn as u32).filter(|_| rng.random_range(0..rn) < 5).collect();
                if c.len() < 2 {
                    c = vec![0, rn as u32 - 1];
                }
                c
            })
            .collect();
        let rand_ens = Ensemble::from_columns(rn, cols).unwrap();
        if c1p_pqtree::solve(rand_ens.n_atoms(), rand_ens.columns()).is_none() {
            certified += check(&rand_ens, &format!("random i={i}"), &mut families);
        } else {
            assert!(c1p_core::solve(&rand_ens).is_ok(), "random i={i}: dc vs pq disagree");
        }
        // band 3: small instance vs brute force
        let sn = 4 + rng.random_range(0..4usize);
        let scols: Vec<Vec<u32>> = (0..2 + rng.random_range(0..4usize))
            .map(|_| {
                let mask = rng.random_range(1u64..(1 << sn));
                (0..sn as u32).filter(|&a| mask >> a & 1 == 1).collect()
            })
            .collect();
        let small = Ensemble::from_columns(sn, scols).unwrap();
        let brute = brute_force_linear(&small).is_some();
        assert_eq!(c1p_core::solve(&small).is_ok(), brute, "small i={i} vs brute force");
        if !brute {
            certified += check(&small, &format!("small i={i}"), &mut families);
        }
    }
    println!("certified {certified} rejections across {instances} iterations; families:");
    for (fam, count) in &families {
        println!("  {fam:>10}: {count}");
    }
    let bases: std::collections::BTreeSet<&str> =
        families.keys().map(|k| k.split('(').next().unwrap()).collect();
    assert!(
        ["M_I", "M_II", "M_III", "M_IV", "M_V"].iter().all(|b| bases.contains(b)),
        "workload drifted: expected all five families, saw {bases:?}"
    );
    println!("ALL CERT STRESS PASSED");
}

/// Solve (both drivers), extract, verify; returns 1 for the tally.
fn check(ens: &Ensemble, ctx: &str, families: &mut BTreeMap<String, usize>) -> usize {
    let rej = c1p_core::solve(ens).expect_err(ctx);
    let w = extract_witness(ens, &rej).unwrap_or_else(|e| panic!("{ctx}: extract {e}"));
    verify_witness(ens, &w).unwrap_or_else(|e| panic!("{ctx}: verify {e}"));
    let (par, _) = c1p_core::parallel::solve_par(ens);
    let prej = par.expect_err(ctx);
    let pw = extract_witness(ens, &prej).unwrap_or_else(|e| panic!("{ctx}: par extract {e}"));
    verify_witness(ens, &pw).unwrap_or_else(|e| panic!("{ctx}: par verify {e}"));
    *families.entry(w.family.to_string()).or_insert(0) += 1;
    1
}

//! CI smoke test for the bit-parallel divide kernels (the `bitmat-smoke`
//! job).
//!
//! ```text
//! cargo run --release -p c1p-bench --bin bitmat_smoke
//! ```
//!
//! Two halves, both fast enough for every-commit CI:
//!
//! 1. **Threshold-sweep differential** — seeded planted + obstruction
//!    instances solved at `bitmat_threshold` 0 (pure CSR), the adaptive
//!    default, and `usize::MAX` (bit-matrix whenever representable);
//!    verdict, realization order, and rejection evidence must be
//!    bit-identical across the sweep (the two divide paths share one
//!    growth/merge pipeline, so any divergence is a kernel bug).
//! 2. **Speedup gate** — `dc` at n=2^14 against the pre-bitmat median
//!    recorded by the previous PR's E10 run (same workload class). The
//!    gate statistic is the best-of-5 minimum: on a shared CI host the
//!    minimum is the least scheduler-disturbed sample, so the gate
//!    catches kernel regressions rather than noisy neighbours.
//!
//! Exits nonzero on any mismatch or regression.

use c1p_bench::workloads::{planted, planted_reject};
use c1p_core::Config;
use std::time::{Duration, Instant};

/// The `dc` median at n=2^14 recorded by the previous PR's E10 run,
/// before the bit-parallel kernels and the union-find growth landed.
/// Mirrored in `BENCH_solve.json` under `bitmat.pre_bitmat_dc_ns_at_16384`.
const PRE_BITMAT_DC_NS_AT_16384: u128 = 233_477_725;

/// The gate: the current solver must beat the pre-bitmat recording by
/// at least this factor (ISSUE 10's acceptance bar).
const MIN_SPEEDUP: f64 = 1.5;

fn main() {
    let mut failures = 0usize;
    let sweep = [0usize, Config::default().bitmat_threshold, usize::MAX];

    // 1. threshold-sweep differential
    println!("## threshold-sweep differential (thresholds {sweep:?})");
    let mut checked = 0usize;
    for seed in 1..=5u64 {
        let n = 512 + 256 * seed as usize;
        let ens = planted(n, seed);
        let (bad, _) = planted_reject(n, seed);
        let expect = solve_at(&ens, sweep[0]);
        let expect_bad = solve_at(&bad, sweep[0]);
        assert!(expect.is_ok(), "planted instance must be accepted");
        assert!(expect_bad.is_err(), "planted obstruction must be rejected");
        for &t in &sweep[1..] {
            checked += 2;
            if solve_at(&ens, t) != expect {
                eprintln!("FAIL: accept seed {seed} n={n} threshold {t}: output diverged");
                failures += 1;
            }
            if solve_at(&bad, t) != expect_bad {
                eprintln!("FAIL: reject seed {seed} n={n} threshold {t}: output diverged");
                failures += 1;
            }
        }
    }
    println!("checked {checked} (instance × threshold) combinations against pure CSR");

    // 2. speedup gate
    println!("\n## speedup gate (dc, n=2^14, best of 5)");
    let ens = planted(1 << 14, 1);
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let t0 = Instant::now();
        let ok = c1p_core::solve(&ens).is_ok();
        let dt = t0.elapsed();
        assert!(ok);
        best = best.min(dt);
    }
    let speedup = PRE_BITMAT_DC_NS_AT_16384 as f64 / best.as_nanos().max(1) as f64;
    println!(
        "dc best-of-5 {:.1} ms vs pre-bitmat {:.1} ms -> {speedup:.2}x (gate {MIN_SPEEDUP}x)",
        best.as_secs_f64() * 1e3,
        PRE_BITMAT_DC_NS_AT_16384 as f64 / 1e6,
    );
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: dc speedup {speedup:.2}x < {MIN_SPEEDUP}x over the recorded baseline");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("\nbitmat_smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("\nbitmat_smoke: all checks passed");
}

/// Solves with the given `bitmat_threshold`, reducing the result to the
/// comparable pieces: the realization order on accept, the evidence
/// atom set on reject.
fn solve_at(ens: &c1p_matrix::Ensemble, threshold: usize) -> Result<Vec<u32>, Vec<u32>> {
    let cfg = Config { bitmat_threshold: threshold, ..Config::default() };
    c1p_core::solve_with(ens, &cfg).0.map_err(|rej| rej.atoms)
}

//! # c1p-bench: the experiment harness
//!
//! One generator + table printer per experiment in DESIGN.md §5 (E1–E9);
//! the `experiments` binary drives them and EXPERIMENTS.md records the
//! outcomes. Criterion microbenches (E10) live under `benches/`.

pub mod models;
pub mod naive;
pub mod tables;
pub mod workloads;

use std::time::{Duration, Instant};

/// Runs `f` `reps` times and returns the median wall-clock duration.
pub fn median_time<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed());
        out = Some(r);
    }
    times.sort_unstable();
    (times[times.len() / 2], out.unwrap())
}

/// Seconds as a compact human string.
pub fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

//! Analytic cost models for the paper's Section 1.3 comparison (E4).
//!
//! The paper compares only *stated bounds* — no competing implementation
//! existed to measure — so we do the same, evaluating each algorithm's
//! processor-count and work (processors × time) expressions at our
//! instance sizes (constants set to 1; the table is about asymptotic
//! shape, exactly like the paper's discussion).

/// ⌈log₂⌉ as f64, ≥ 1 to avoid degenerate products.
fn lg(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Instance shape: `n` atoms, `m` columns, `p` ones.
#[derive(Debug, Clone, Copy)]
pub struct Shape {
    /// Atoms.
    pub n: f64,
    /// Columns.
    pub m: f64,
    /// Total ones.
    pub p: f64,
}

/// A modelled parallel algorithm: stated time and processor bounds.
#[derive(Debug, Clone, Copy)]
pub struct ModelPoint {
    /// Parallel time bound.
    pub time: f64,
    /// Processor bound.
    pub processors: f64,
}

impl ModelPoint {
    /// Work = processors × time (the efficiency measure of Section 1.3).
    pub fn work(&self) -> f64 {
        self.time * self.processors
    }
}

/// This paper (Theorem 9): `O(log² n)` time, `p·log log n / log n`
/// processors (`p / log n` when dense).
pub fn annexstein_swaminathan(s: Shape, dense: bool) -> ModelPoint {
    let lgn = lg(s.n);
    let lglg = lg(lgn).max(1.0);
    let procs = if dense { s.p / lgn } else { s.p * lglg / lgn };
    ModelPoint { time: lgn * lgn, processors: procs.max(1.0) }
}

/// Klein \[13\] (after Klein–Reif \[14\]): `O(log² n)` time with linearly many
/// processors in the input size.
pub fn klein(s: Shape) -> ModelPoint {
    let lgn = lg(s.n);
    ModelPoint { time: lgn * lgn, processors: (s.n + s.p).max(1.0) }
}

/// Chen–Yesha \[7\]: `O(log m + log² n)` time using `O(n²·m + n³)`
/// processors.
pub fn chen_yesha(s: Shape) -> ModelPoint {
    let lgn = lg(s.n);
    ModelPoint {
        time: lg(s.m) + lgn * lgn,
        processors: (s.n * s.n * s.m + s.n * s.n * s.n).max(1.0),
    }
}

/// Booth–Lueker \[6\] sequential baseline: `O(n + m + p)` time on one
/// processor.
pub fn booth_lueker(s: Shape) -> ModelPoint {
    ModelPoint { time: s.n + s.m + s.p, processors: 1.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_efficiency_ordering_matches_the_papers_claim() {
        // at genome scale, our processor bound beats Klein's and
        // Chen–Yesha's by growing margins
        let s = Shape { n: 9_000.0, m: 18_000.0, p: 216_000.0 };
        let ours = annexstein_swaminathan(s, false);
        let kl = klein(s);
        let cy = chen_yesha(s);
        assert!(ours.processors < kl.processors);
        assert!(kl.processors < cy.processors);
        assert!(ours.work() < kl.work());
        assert!(kl.work() < cy.work());
    }

    #[test]
    fn dense_bound_is_smaller() {
        let s = Shape { n: 4_096.0, m: 8_192.0, p: 1_000_000.0 };
        let sparse = annexstein_swaminathan(s, false);
        let dense = annexstein_swaminathan(s, true);
        assert!(dense.processors < sparse.processors);
    }
}

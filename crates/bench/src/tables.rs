//! Markdown table rendering for experiment output.

/// A simple right-aligned markdown table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders to markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {c:>w$} |", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["n", "time"]);
        t.row(vec!["1024".into(), "1.2ms".into()]);
        t.row(vec!["8".into(), "990us".into()]);
        let r = t.render();
        assert!(r.contains("| 1024 |"));
        assert!(r.contains("|    8 |"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}

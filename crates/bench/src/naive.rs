//! The seed's nested-`Vec<Vec<u32>>` divide step, preserved as a
//! regression baseline for the flat-CSR rewrite (see `benches/split.rs`
//! and the `e10` JSON experiment). Semantically identical to the old
//! `c1p_core::solver::prepare_split` + `project`, including the
//! per-level `sort_unstable` the CSR path proved redundant.

/// Nested-vec subproblem (the seed representation).
pub struct NaiveSub {
    pub n: usize,
    pub cols: Vec<Vec<u32>>,
}

/// One split column: segment part, host part, crossing class
/// (0 = type a, 1 = type b, 2 = type c).
pub struct NaiveSplitColumn {
    pub seg_part: Vec<u32>,
    pub host_part: Vec<u32>,
    pub ty: u8,
}

/// The seed's `prepare_split`: per-column heap vectors, then projection
/// with a sort per kept column.
pub fn naive_prepare_split(
    sub: &NaiveSub,
    a1: &[u32],
) -> (Vec<NaiveSplitColumn>, NaiveSub, NaiveSub) {
    let k = sub.n;
    let mut in_a1 = vec![false; k];
    for &a in a1 {
        in_a1[a as usize] = true;
    }
    let a2: Vec<u32> = (0..k as u32).filter(|&a| !in_a1[a as usize]).collect();
    let mut split_cols: Vec<NaiveSplitColumn> = Vec::with_capacity(sub.cols.len());
    for col in &sub.cols {
        let (mut seg_part, mut host_part) = (Vec::new(), Vec::new());
        for &a in col {
            if in_a1[a as usize] {
                seg_part.push(a);
            } else {
                host_part.push(a);
            }
        }
        let ty = if host_part.is_empty() || seg_part.is_empty() {
            2
        } else if seg_part.len() == a1.len() {
            0
        } else {
            1
        };
        split_cols.push(NaiveSplitColumn { seg_part, host_part, ty });
    }
    let project = |atoms: &[u32], seg_side: bool| -> NaiveSub {
        let mut place = vec![u32::MAX; atoms.iter().map(|&a| a as usize + 1).max().unwrap_or(0)];
        for (i, &a) in atoms.iter().enumerate() {
            place[a as usize] = i as u32;
        }
        let mut cols = Vec::new();
        for sc in &split_cols {
            let part = if seg_side { &sc.seg_part } else { &sc.host_part };
            if part.len() >= 2 && part.len() < atoms.len() {
                let mut local: Vec<u32> = part.iter().map(|&a| place[a as usize]).collect();
                local.sort_unstable();
                cols.push(local);
            }
        }
        NaiveSub { n: atoms.len(), cols }
    };
    let sub1 = project(a1, true);
    let sub2 = project(&a2, false);
    (split_cols, sub1, sub2)
}

//! Tutte-decomposition benchmarks (E10): build + compose across chord
//! densities, and the interlacement sweep vs the quadratic reference.

use c1p_tutte::{compose, decompose, Arrangement};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn chords_for(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut state = seed;
    let mut next = |md: usize| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % md
    };
    (0..m)
        .map(|_| {
            let lo = next(n - 1) as u32;
            let hi = lo + 1 + next((n - lo as usize).min(24)) as u32;
            (lo, hi.min(n as u32))
        })
        .collect()
}

fn bench_decompose(c: &mut Criterion) {
    let mut g = c.benchmark_group("tutte_decompose");
    g.sample_size(20);
    for n in [1024usize, 16_384, 131_072] {
        let chords = chords_for(n, 2 * n, 42);
        g.throughput(Throughput::Elements(chords.len() as u64));
        g.bench_with_input(BenchmarkId::new("build", n), &chords, |b, ch| {
            b.iter(|| decompose(n, ch).unwrap().n_members())
        });
        let tree = decompose(n, &chords).unwrap();
        g.bench_with_input(BenchmarkId::new("compose", n), &tree, |b, t| {
            b.iter(|| compose(t, &Arrangement::identity(t)).len())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("interlacement");
    g.sample_size(20);
    for m in [256usize, 2048] {
        let mut spans = chords_for(100_000, m, 7);
        spans.sort_unstable();
        spans.dedup();
        g.throughput(Throughput::Elements(spans.len() as u64));
        g.bench_with_input(BenchmarkId::new("sweep", m), &spans, |b, s| {
            b.iter(|| c1p_tutte::interlace::classes_sweep(s).len())
        });
        g.bench_with_input(BenchmarkId::new("naive", m), &spans, |b, s| {
            b.iter(|| c1p_tutte::interlace::classes_naive(s).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);

//! End-to-end solver benchmarks (E10): divide-and-conquer (pure and with
//! the PQ base case) vs the Booth–Lueker baseline, accept and reject
//! paths, and the certified-rejection pipeline.

use c1p_bench::workloads::{planted, planted_reject};
use c1p_core::Config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve_planted");
    g.sample_size(10);
    for k in [10usize, 12, 14] {
        let n = 1 << k;
        let ens = planted(n, 1);
        let cols = ens.columns().to_vec();
        g.throughput(Throughput::Elements(ens.p() as u64));
        g.bench_with_input(BenchmarkId::new("dc", n), &ens, |b, e| {
            b.iter(|| c1p_core::solve(e).is_ok())
        });
        g.bench_with_input(BenchmarkId::new("dc_pq_base", n), &ens, |b, e| {
            b.iter(|| c1p_core::solve_with(e, &Config::fast()).0.is_ok())
        });
        g.bench_with_input(BenchmarkId::new("pqtree", n), &cols, |b, cols| {
            b.iter(|| c1p_pqtree::solve(n, cols).is_some())
        });
        g.bench_with_input(BenchmarkId::new("dc_parallel", n), &ens, |b, e| {
            b.iter(|| c1p_core::parallel::solve_par(e).0.is_ok())
        });
    }
    g.finish();

    // The divide step on the live representation, isolated — rerun this
    // group before/after a change to the split path to see its effect
    // without whole-solver noise (benches/split.rs compares against the
    // seed's nested-vec formulation).
    let mut g = c.benchmark_group("split");
    g.sample_size(20);
    for k in [12usize, 14] {
        let n = 1 << k;
        let ens = planted(n, 1);
        let sub =
            c1p_core::solver::SubProblem { n, cols: c1p_core::FlatCols::from_cols(ens.columns()) };
        let a1: Vec<u32> = (0..(n / 2) as u32).collect();
        g.throughput(Throughput::Elements(ens.p() as u64));
        g.bench_with_input(BenchmarkId::new("prepare", n), &sub, |b, s| {
            b.iter(|| c1p_core::solver::prepare_split(s, &a1).sub1.n)
        });
    }
    g.finish();

    let mut g = c.benchmark_group("solve_reject");
    g.sample_size(10);
    for n in [256usize, 2048] {
        // obstruction embedded mid-instance: rejection path
        let emb = c1p_matrix::tucker::embed_obstruction(
            &c1p_matrix::tucker::m_iv(),
            n,
            n / 2,
            &[(0, n / 3), (n / 3, n / 3), (2 * n / 3, n / 4)],
        );
        g.bench_with_input(BenchmarkId::new("dc", n), &emb, |b, e| {
            b.iter(|| c1p_core::solve(e).is_err())
        });
        let cols = emb.columns().to_vec();
        g.bench_with_input(BenchmarkId::new("pqtree", n), &cols, |b, cols| {
            b.iter(|| c1p_pqtree::solve(n, cols).is_none())
        });
    }
    g.finish();

    // The certificate pipeline on the standard rejection workload:
    // plain reject vs reject + witness extraction vs the independent
    // checker alone. The extraction overhead is the price of a checkable
    // answer (DESIGN.md §7); E10 records the same split into
    // BENCH_solve.json.
    let mut g = c.benchmark_group("certify");
    g.sample_size(10);
    for k in [10usize, 12, 14] {
        let n = 1 << k;
        // two planted families: constant-size M_IV (seed 3) and the
        // parameterized M_I(k) (seed 5), whose witness size varies —
        // E10 additionally medians across all five families
        for (fam_label, seed) in [("m_iv", 3u64), ("m_i", 5)] {
            let (emb, _) = planted_reject(n, seed);
            g.bench_with_input(BenchmarkId::new(format!("reject_plain_{fam_label}"), n), &emb, {
                |b, e| b.iter(|| c1p_core::solve(e).is_err())
            });
            g.bench_with_input(
                BenchmarkId::new(format!("reject_certified_{fam_label}"), n),
                &emb,
                |b, e| {
                    b.iter(|| {
                        let rej = c1p_core::solve(e).unwrap_err();
                        c1p_cert::extract_witness(e, &rej).unwrap().family
                    })
                },
            );
            let rej = c1p_core::solve(&emb).unwrap_err();
            let witness = c1p_cert::extract_witness(&emb, &rej).unwrap();
            g.bench_with_input(
                BenchmarkId::new(format!("verify_witness_{fam_label}"), n),
                &emb,
                |b, e| b.iter(|| c1p_cert::verify_witness(e, &witness).is_ok()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);

//! PRAM-primitive microbenchmarks (E10): scan, sort, list ranking, Euler
//! tours, connected components.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_primitives(c: &mut Criterion) {
    let n = 1 << 20;
    let xs: Vec<u64> = (0..n as u64).map(|i| i % 17).collect();
    let mut g = c.benchmark_group("pram");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::new("prefix_sum", n), |b| {
        b.iter(|| c1p_pram::scan::prefix_sum(&xs).1)
    });
    g.bench_function(BenchmarkId::new("par_sort", n), |b| {
        b.iter(|| c1p_pram::sort::par_sort_by_key(&xs, |&x| x).0.len())
    });
    let mut next_list = vec![c1p_pram::list_rank::NIL; n];
    for (v, nx) in next_list.iter_mut().enumerate().take(n - 1) {
        *nx = (v + 1) as u32;
    }
    g.bench_function(BenchmarkId::new("list_rank", n), |b| {
        b.iter(|| c1p_pram::list_rank::list_rank(&next_list).0[0])
    });
    let mut parent = vec![c1p_pram::list_rank::NIL; n / 4];
    for (v, p) in parent.iter_mut().enumerate().skip(1) {
        *p = (v / 2) as u32;
    }
    g.bench_function(BenchmarkId::new("euler_times", n / 4), |b| {
        b.iter(|| c1p_pram::euler::euler_times(&parent).0.enter[0])
    });
    let edges: Vec<(u32, u32)> = (0..(n / 4) as u32 - 1).map(|v| (v, v + 1)).collect();
    g.bench_function(BenchmarkId::new("connected_components", n / 4), |b| {
        b.iter(|| c1p_pram::components::connected_components(n / 4, &edges).0[0])
    });
    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);

//! PQ-tree microbenchmarks (E10): reduction throughput by column length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("pqtree_reduce");
    g.sample_size(20);
    for (n, m) in [(1024usize, 2048usize), (8192, 16_384)] {
        let mut rng = SmallRng::seed_from_u64(3);
        let (ens, _) = c1p_matrix::generate::planted_c1p(
            c1p_matrix::generate::PlantedShape {
                n_atoms: n,
                n_columns: m,
                min_len: 2,
                max_len: 24,
            },
            &mut rng,
        );
        let cols = ens.columns().to_vec();
        g.throughput(Throughput::Elements(ens.p() as u64));
        g.bench_with_input(BenchmarkId::new("full_solve", n), &cols, |b, cols| {
            b.iter(|| c1p_pqtree::solve(n, cols).is_some())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reduce);
criterion_main!(benches);

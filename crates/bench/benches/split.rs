//! Divide-step microbenchmarks: the flat-CSR `prepare_split` against the
//! seed's nested-`Vec<Vec<u32>>` formulation (`c1p_bench::naive`) — the
//! per-column heap vectors plus the per-level `sort_unstable` the CSR
//! path eliminated.

use c1p_bench::naive::{naive_prepare_split, NaiveSub};
use c1p_core::solver::{prepare_split, SubProblem};
use c1p_core::FlatCols;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// A planted-instance subproblem over all `n` atoms, plus a balanced
/// contiguous `A1` in hidden-order coordinates (representative of a
/// Case-1 divide).
fn workload(n: usize) -> (SubProblem, NaiveSub, Vec<u32>) {
    let ens = c1p_bench::workloads::planted(n, 1);
    let nested: Vec<Vec<u32>> = ens.columns().to_vec();
    let flat = SubProblem { n, cols: FlatCols::from_cols(&nested) };
    let a1: Vec<u32> = (0..(n / 2) as u32).collect();
    (flat, NaiveSub { n, cols: nested }, a1)
}

fn bench_split(c: &mut Criterion) {
    // distinct group name from benches/solve.rs's "split" group: that one
    // tracks the live prepare_split across PRs, this one is the fixed
    // seed-vs-CSR comparison
    let mut g = c.benchmark_group("split_vs_seed");
    g.sample_size(20);
    for k in [12usize, 14] {
        let n = 1 << k;
        let (flat, naive, a1) = workload(n);
        g.throughput(Throughput::Elements(flat.cols.total_len() as u64));
        g.bench_with_input(BenchmarkId::new("flat_csr", n), &flat, |b, sub| {
            b.iter(|| prepare_split(sub, &a1).sub1.n)
        });
        g.bench_with_input(BenchmarkId::new("nested_vec", n), &naive, |b, sub| {
            b.iter(|| naive_prepare_split(sub, &a1).1.n)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_split);
criterion_main!(benches);

//! `load_driver` — closed-loop traffic generator and client-side verifier
//! for `c1pd`.
//!
//! ```text
//! load_driver --addr 127.0.0.1:PORT [--requests 500] [--conns 4]
//!             [--seed 1] [--dup-every 3] [--reject-every 4]
//!             [--n-lo 48] [--n-hi 160] [--expect-hits]
//! load_driver --addr 127.0.0.1:PORT --mode sessions
//!             [--streams 8] [--pushes 6] [--blocks 4] [--conns 4]
//!             [--seed 1] [--reject-every 3] [--n-lo 64] [--n-hi 192]
//! ```
//!
//! **Solve mode** (default) generates a deterministic mixed accept/reject
//! schedule from the shared workload generator
//! (`c1p_matrix::generate::mixed_schedule` — the same definition
//! experiment E11 and the `engine_batch` example use), with every
//! `--dup-every`-th request replaying an earlier instance so the server's
//! cache has something to hit. `--conns` closed-loop connections
//! round-robin the schedule.
//!
//! **Session mode** replays deterministic append streams
//! (`c1p_matrix::generate::append_stream{,_reject}`) through the
//! `OpenSession`/`PushAtoms`/`SealSession` frames: every `--reject-every`-th
//! stream carries one planted Tucker obstruction, whose push must come
//! back rejected (and rolled back server-side) while every other verdict
//! accepts. The client mirrors each session with an incremental
//! Booth–Lueker reducer (`c1p_pqtree::Reducer`) to predict every verdict
//! independently, and gates the sealed order on **bit-identical agreement
//! with an in-process one-shot solve** of the accepted concatenation.
//!
//! Every response is checked **client-side, without trusting the server**:
//! accepts must pass `verify_linear` against the concatenated instance,
//! rejects must carry a Tucker certificate that `c1p_cert::verify_witness`
//! confirms; both must agree with the in-process prediction. Exits
//! nonzero on any protocol error, verification failure, verdict
//! disagreement, or (with `--expect-hits`) a zero cache-hit count.

use c1p_cert::{verify_witness, TuckerWitness};
use c1p_engine::proto::{decode_msg, encode_msg, read_frame, write_frame, Msg, DEFAULT_MAX_FRAME};
use c1p_matrix::generate::{append_stream, append_stream_reject, mixed_schedule, MixedSchedule};
use c1p_matrix::io::WireVerdict;
use c1p_matrix::{verify_linear, Atom, Ensemble};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn num_flag(args: &[String], name: &str, default: u64) -> u64 {
    flag(args, name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| panic!("{name} takes a number, got {v:?}"))
    })
}

#[derive(Default)]
struct Tally {
    protocol_errors: AtomicU64,
    verify_failures: AtomicU64,
    disagreements: AtomicU64,
    completed: AtomicU64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if flag(&args, "--mode").as_deref() == Some("sessions") {
        return sessions_main(&args);
    }
    let addr = flag(&args, "--addr").expect("--addr HOST:PORT is required");
    let requests = num_flag(&args, "--requests", 500) as usize;
    let conns = (num_flag(&args, "--conns", 4) as usize).max(1);
    let seed = num_flag(&args, "--seed", 1);
    let dup_every = num_flag(&args, "--dup-every", 3) as usize;
    let reject_every = num_flag(&args, "--reject-every", 4) as usize;
    let n_lo = num_flag(&args, "--n-lo", 48) as usize;
    let n_hi = num_flag(&args, "--n-hi", 160) as usize;
    let expect_hits = args.iter().any(|a| a == "--expect-hits");

    // deterministic schedule (shared definition: c1p_matrix::generate) +
    // in-process expected verdicts
    let schedule =
        mixed_schedule(MixedSchedule { requests, seed, dup_every, reject_every, n_lo, n_hi });
    let expected: Vec<bool> = schedule.iter().map(|e| c1p_core::solve(e).is_ok()).collect();
    println!(
        "load_driver: {} requests ({} accept / {} reject expected), {} connection(s), seed {}",
        requests,
        expected.iter().filter(|&&b| b).count(),
        expected.iter().filter(|&&b| !b).count(),
        conns,
        seed,
    );

    let tally = Arc::new(Tally::default());
    let schedule = Arc::new(schedule);
    let expected = Arc::new(expected);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let (schedule, expected, tally, addr) =
            (Arc::clone(&schedule), Arc::clone(&expected), Arc::clone(&tally), addr.clone());
        handles.push(std::thread::spawn(move || {
            drive_connection(c, conns, &addr, &schedule, &expected, &tally)
        }));
    }
    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    for h in handles {
        latencies_us.extend(h.join().expect("driver thread panicked"));
    }
    let wall = t0.elapsed();

    // engine-side stats over a fresh connection
    let hits = fetch_stat(&addr, "\"hits\":").unwrap_or(-1);
    let completed = tally.completed.load(Ordering::Relaxed);
    let protocol_errors = tally.protocol_errors.load(Ordering::Relaxed);
    let verify_failures = tally.verify_failures.load(Ordering::Relaxed);
    let disagreements = tally.disagreements.load(Ordering::Relaxed);

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let ix = ((latencies_us.len() - 1) as f64 * p).round() as usize;
        latencies_us[ix]
    };
    println!(
        "completed {completed}/{requests} in {:.2}s ({:.0} req/s) | \
         latency p50 {}us p90 {}us p99 {}us",
        wall.as_secs_f64(),
        completed as f64 / wall.as_secs_f64().max(1e-9),
        pct(0.50),
        pct(0.90),
        pct(0.99),
    );
    println!(
        "protocol errors {protocol_errors} | verify failures {verify_failures} | \
         disagreements {disagreements} | server cache hits {hits}"
    );

    let mut failed = false;
    if completed != requests as u64 || protocol_errors > 0 {
        eprintln!("FAIL: protocol errors or missing responses");
        failed = true;
    }
    if verify_failures > 0 {
        eprintln!("FAIL: client-side verification failures");
        failed = true;
    }
    if disagreements > 0 {
        eprintln!("FAIL: verdict disagreement with in-process solve");
        failed = true;
    }
    if expect_hits && hits <= 0 {
        eprintln!("FAIL: expected a nonzero server cache hit count, got {hits}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("load_driver: all checks passed");
}

/// One closed-loop connection: sends its round-robin share of the
/// schedule, verifying every response. Returns per-request latencies.
fn drive_connection(
    conn_ix: usize,
    conns: usize,
    addr: &str,
    schedule: &[Ensemble],
    expected: &[bool],
    tally: &Tally,
) -> Vec<u64> {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("load_driver: cannot connect {addr}: {e}"));
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut latencies = Vec::new();
    for i in (conn_ix..schedule.len()).step_by(conns) {
        let ens = &schedule[i];
        let t0 = Instant::now();
        let req = Msg::Solve { id: i as u64, ens: ens.clone() };
        if write_frame(&mut writer, &encode_msg(&req)).and_then(|()| writer.flush()).is_err() {
            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            break;
        }
        let payload = match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
            Ok(Some(p)) => p,
            _ => {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        };
        latencies.push(t0.elapsed().as_micros() as u64);
        match decode_msg(&payload) {
            Ok(Msg::Verdict { id, verdict }) if id == i as u64 => {
                check_verdict(ens, expected[i], &verdict, tally);
                tally.completed.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Msg::Error { id, code, message }) => {
                eprintln!("server error for request {id}: {code:?}: {message}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
            other => {
                eprintln!("unexpected response for request {i}: {other:?}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    latencies
}

/// Client-side verification: the server's word is never taken for it.
fn check_verdict(ens: &Ensemble, expect_c1p: bool, verdict: &WireVerdict, tally: &Tally) {
    match verdict {
        WireVerdict::Accept { order } => {
            if !expect_c1p {
                tally.disagreements.fetch_add(1, Ordering::Relaxed);
            }
            if verify_linear(ens, order).is_err() {
                tally.verify_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        WireVerdict::Reject { family, atom_rows, column_ids } => {
            if expect_c1p {
                tally.disagreements.fetch_add(1, Ordering::Relaxed);
            }
            let witness = TuckerWitness {
                family: *family,
                atom_rows: atom_rows.clone(),
                column_ids: column_ids.clone(),
            };
            if verify_witness(ens, &witness).is_err() {
                tally.verify_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------
// session mode
// ---------------------------------------------------------------------

/// One deterministic session stream plus what the client expects of it.
struct StreamPlan {
    stream: c1p_matrix::generate::AppendStream,
    /// Push index that must come back rejected (`None` = accept-only).
    reject_at: Option<usize>,
}

fn sessions_main(args: &[String]) {
    let addr = flag(args, "--addr").expect("--addr HOST:PORT is required");
    let streams = (num_flag(args, "--streams", 8) as usize).max(1);
    let pushes = (num_flag(args, "--pushes", 6) as usize).max(1);
    let blocks = (num_flag(args, "--blocks", 4) as usize).max(1);
    let conns = (num_flag(args, "--conns", 4) as usize).max(1).min(streams);
    let seed = num_flag(args, "--seed", 1);
    let reject_every = num_flag(args, "--reject-every", 3) as usize;
    let n_lo = num_flag(args, "--n-lo", 64) as usize;
    let n_hi = num_flag(args, "--n-hi", 192) as usize;
    assert!(n_lo >= 16 * blocks, "reject embedding needs blocks of >= 16 atoms");
    assert!(n_hi >= n_lo);

    // deterministic plans: stream s gets a seed-derived size and stream
    let plans: Vec<StreamPlan> = (0..streams)
        .map(|s| {
            let stream_seed = seed.wrapping_mul(2609).wrapping_add(s as u64);
            // deterministic size without an RNG dependency here
            let n = n_lo + (stream_seed as usize).wrapping_mul(31) % (n_hi - n_lo + 1);
            if reject_every > 0 && s % reject_every == reject_every - 1 {
                let (stream, at, _) = append_stream_reject(n, blocks, pushes, stream_seed);
                StreamPlan { stream, reject_at: Some(at) }
            } else {
                StreamPlan {
                    stream: append_stream(n, blocks, pushes, stream_seed),
                    reject_at: None,
                }
            }
        })
        .collect();
    let rejects = plans.iter().filter(|p| p.reject_at.is_some()).count();
    println!(
        "load_driver: {streams} session stream(s) × {pushes} pushes ({rejects} with a planted \
         reject), {conns} connection(s), seed {seed}"
    );

    let tally = Arc::new(Tally::default());
    let plans = Arc::new(plans);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let (plans, tally, addr) = (Arc::clone(&plans), Arc::clone(&tally), addr.clone());
        handles.push(std::thread::spawn(move || drive_streams(c, conns, &addr, &plans, &tally)));
    }
    let mut latencies_us: Vec<u64> = Vec::new();
    for h in handles {
        latencies_us.extend(h.join().expect("driver thread panicked"));
    }
    let wall = t0.elapsed();

    let sealed = fetch_stat(&addr, "\"sessions_sealed\":").unwrap_or(-1);
    let completed = tally.completed.load(Ordering::Relaxed);
    let protocol_errors = tally.protocol_errors.load(Ordering::Relaxed);
    let verify_failures = tally.verify_failures.load(Ordering::Relaxed);
    let disagreements = tally.disagreements.load(Ordering::Relaxed);
    let expected_ops = (streams * (pushes + 2)) as u64; // open + pushes + seal

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        latencies_us[((latencies_us.len() - 1) as f64 * p).round() as usize]
    };
    println!(
        "completed {completed}/{expected_ops} session ops in {:.2}s ({:.0} ops/s) | \
         latency p50 {}us p90 {}us p99 {}us",
        wall.as_secs_f64(),
        completed as f64 / wall.as_secs_f64().max(1e-9),
        pct(0.50),
        pct(0.90),
        pct(0.99),
    );
    println!(
        "protocol errors {protocol_errors} | verify failures {verify_failures} | \
         disagreements {disagreements} | server sessions sealed {sealed}"
    );

    let mut failed = false;
    if completed != expected_ops || protocol_errors > 0 {
        eprintln!("FAIL: protocol errors or missing responses");
        failed = true;
    }
    if verify_failures > 0 {
        eprintln!("FAIL: client-side verification failures");
        failed = true;
    }
    if disagreements > 0 {
        eprintln!("FAIL: verdict disagreement with the client-side mirror / one-shot solve");
        failed = true;
    }
    if sealed != streams as i64 {
        eprintln!("FAIL: expected {streams} sealed sessions on the server, got {sealed}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("load_driver: all session checks passed");
}

/// Drives this connection's round-robin share of the streams, one full
/// session each (open → pushes → seal), verifying every verdict
/// client-side. Returns per-operation latencies.
fn drive_streams(
    conn_ix: usize,
    conns: usize,
    addr: &str,
    plans: &[StreamPlan],
    tally: &Tally,
) -> Vec<u64> {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("load_driver: cannot connect {addr}: {e}"));
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut latencies = Vec::new();
    let mut req_id = (conn_ix as u64) << 32;
    let mut rpc = |msg: &Msg, latencies: &mut Vec<u64>| -> Option<Msg> {
        let t0 = Instant::now();
        if write_frame(&mut writer, &encode_msg(msg)).and_then(|()| writer.flush()).is_err() {
            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let payload = match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
            Ok(Some(p)) => p,
            _ => {
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        latencies.push(t0.elapsed().as_micros() as u64);
        match decode_msg(&payload) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("undecodable response: {e}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    };
    'plans: for plan in plans.iter().skip(conn_ix).step_by(conns) {
        let n = plan.stream.n_atoms;
        // open (the ack's verdict is the empty state: an elided identity
        // order — see the proto docs)
        req_id += 1;
        let session = match rpc(&Msg::OpenSession { id: req_id, n_atoms: n as u64 }, &mut latencies)
        {
            Some(Msg::SessionVerdict { id, session, verdict: WireVerdict::Accept { order } })
                if id == req_id && order.is_empty() =>
            {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                session
            }
            other => {
                eprintln!("unexpected OpenSession response: {other:?}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        // pushes, with a client-side incremental PQ mirror
        let mut accepted: Vec<Vec<Atom>> = Vec::new();
        let mut mirror = c1p_pqtree::Reducer::new(n);
        for (k, push) in plan.stream.pushes.iter().enumerate() {
            let delta = Ensemble::from_columns(n, push.clone()).expect("stream columns valid");
            let mut predicted_ok = true;
            for col in push {
                predicted_ok &= mirror.push(col);
            }
            req_id += 1;
            let resp =
                rpc(&Msg::PushAtoms { id: req_id, session, delta: delta.clone() }, &mut latencies);
            let Some(Msg::SessionVerdict { id, session: s2, verdict }) = resp else {
                // mirror and server are now out of step: abandon the
                // whole stream so one fault doesn't cascade into bogus
                // disagreements on every later push
                eprintln!("unexpected PushAtoms response; abandoning stream");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                continue 'plans;
            };
            if id != req_id || s2 != session {
                eprintln!("mismatched PushAtoms echo; abandoning stream");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                continue 'plans;
            }
            tally.completed.fetch_add(1, Ordering::Relaxed);
            // the concatenation this verdict speaks about
            let mut cols = accepted.clone();
            cols.extend(push.iter().cloned());
            let concat = Ensemble::from_columns(n, cols).expect("stream columns valid");
            match verdict {
                WireVerdict::Accept { order } => {
                    if verify_linear(&concat, &order).is_err() {
                        tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if !predicted_ok || plan.reject_at == Some(k) {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    accepted.extend(push.iter().cloned());
                }
                WireVerdict::Reject { family, atom_rows, column_ids } => {
                    let witness = TuckerWitness { family, atom_rows, column_ids };
                    if verify_witness(&concat, &witness).is_err() {
                        tally.verify_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if predicted_ok || plan.reject_at != Some(k) {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                    // server rolled back; rebuild the spent mirror from
                    // the accepted prefix
                    mirror = c1p_pqtree::Reducer::new(n);
                    for col in &accepted {
                        mirror.push(col);
                    }
                }
            }
        }
        // seal: the final order must agree bit-identically with a
        // one-shot in-process solve of the accepted concatenation
        req_id += 1;
        match rpc(&Msg::SealSession { id: req_id, session }, &mut latencies) {
            Some(Msg::SessionVerdict { id, verdict: WireVerdict::Accept { order }, .. })
                if id == req_id =>
            {
                tally.completed.fetch_add(1, Ordering::Relaxed);
                let fin =
                    Ensemble::from_columns(n, accepted.clone()).expect("stream columns valid");
                match c1p_core::solve(&fin) {
                    Ok(expect) if expect == order => {}
                    _ => {
                        tally.disagreements.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            other => {
                eprintln!("unexpected SealSession response: {other:?}");
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    latencies
}

/// Queries the server's stats frame and scans one integer field out of the
/// JSON (the driver carries no JSON parser by design, matching par_smoke).
fn fetch_stat(addr: &str, key: &str) -> Option<i64> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &encode_msg(&Msg::GetStats)).ok()?;
    writer.flush().ok()?;
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME).ok()??;
    match decode_msg(&payload).ok()? {
        Msg::Stats { json } => {
            let at = json.find(key)?;
            let rest = json[at + key.len()..].trim_start();
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse().ok()
        }
        _ => None,
    }
}

//! `c1pd` — the std-only TCP front-end of the solve engine.
//!
//! ```text
//! c1pd [--addr 127.0.0.1:9119] [--port-file PATH] [--threads N]
//!      [--cache-mb MB] [--max-batch N] [--small-cutoff N]
//!      [--max-queue N] [--max-atoms N] [--max-conns N] [--max-frame-mb MB]
//!      [--max-sessions N] [--session-idle-ms MS] [--max-session-mb MB]
//!      [--wal-dir DIR] [--snapshot-ms MS] [--wal-fault-after N]
//! ```
//!
//! Speaks the length-prefixed frame protocol of `c1p_engine::proto`: one
//! response per request, in order, per connection — `Verdict`/`Error` for
//! `Solve`, `SessionVerdict`/`Error` for `OpenSession`/`PushAtoms`/
//! `SealSession`, `Stats` for `GetStats`. Requests from all connections
//! funnel into one engine, so batching, the result cache *and the
//! session table* amortize across tenants (a session handle works from
//! any connection; abandoned handles are idle-evicted).
//!
//! Admission control happens at three layers, each answering with an
//! exact error frame rather than a silent drop: frame size (byte cap
//! checked before allocation; an oversized frame gets one `TooLarge`
//! error frame, then the connection closes — the stream position is
//! unrecoverable), connection count (excess connections get one
//! `Overloaded` error frame and are closed), and queue/session depth
//! (excess submissions get `Overloaded` responses; oversized instances
//! and over-grown sessions get `TooLarge`). Bind to port 0 for an
//! ephemeral port; the chosen address is printed on stdout
//! (`c1pd listening on ...`) and, with `--port-file`, the bare port is
//! written to the given path for scripts.
//!
//! **Durability** (DESIGN.md §10): `--wal-dir DIR` turns on per-session
//! write-ahead logs (accepted pushes fsynced before acknowledgement),
//! boot-time recovery of live sessions, lazy resume of idle-evicted
//! ones, and — with `--snapshot-ms` — periodic cache snapshots for warm
//! starts. `--wal-fault-after N` is the crash harness's test hook: the
//! N-th append dies mid-write. On SIGTERM/SIGINT the server shuts down
//! gracefully: it stops accepting, drains each connection's in-flight
//! frame (answering it), writes a final snapshot, and exits 0 — WALs
//! need no extra flush because every append was already fsynced.

use c1p_engine::proto::{
    encode_msg, read_frame_until, write_frame, ErrorCode, Msg, DEFAULT_MAX_FRAME,
};
use c1p_engine::{Engine, EngineConfig, EngineError};
use std::io::{self, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Set by the signal handler; polled by the accept loop and (at frame
/// boundaries) by every connection.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // std-only signal(2): the handler just flips an AtomicBool, which is
    // async-signal-safe. SIGINT = 2, SIGTERM = 15.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, on_signal);
        signal(15, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn num_flag(args: &[String], name: &str, default: usize) -> usize {
    flag(args, name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| panic!("{name} takes a number, got {v:?}"))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defaults = EngineConfig::default();
    let cfg = EngineConfig {
        threads: num_flag(&args, "--threads", 0),
        cache_bytes: num_flag(&args, "--cache-mb", defaults.cache_bytes >> 20) << 20,
        max_batch: num_flag(&args, "--max-batch", defaults.max_batch),
        small_cutoff: num_flag(&args, "--small-cutoff", defaults.small_cutoff),
        max_queue: num_flag(&args, "--max-queue", defaults.max_queue),
        max_atoms: num_flag(&args, "--max-atoms", defaults.max_atoms),
        max_sessions: num_flag(&args, "--max-sessions", defaults.max_sessions),
        session_idle_ms: num_flag(&args, "--session-idle-ms", defaults.session_idle_ms as usize)
            as u64,
        max_session_columns: defaults.max_session_columns,
        max_session_bytes: num_flag(&args, "--max-session-mb", defaults.max_session_bytes >> 20)
            << 20,
        wal_dir: flag(&args, "--wal-dir").map(std::path::PathBuf::from),
        snapshot_interval_ms: num_flag(&args, "--snapshot-ms", 0) as u64,
        wal_fault_after: num_flag(&args, "--wal-fault-after", 0) as u64,
    };
    let max_conns = num_flag(&args, "--max-conns", 64);
    let max_frame = num_flag(&args, "--max-frame-mb", DEFAULT_MAX_FRAME >> 20) << 20;
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:9119".to_string());

    install_signal_handlers();
    let engine = Arc::new(Engine::new(cfg));
    let listener =
        TcpListener::bind(&addr).unwrap_or_else(|e| panic!("c1pd: cannot bind {addr}: {e}"));
    let local = listener.local_addr().expect("bound socket has an address");
    println!("c1pd listening on {local}");
    io::stdout().flush().ok();
    if let Some(path) = flag(&args, "--port-file") {
        std::fs::write(&path, format!("{}\n", local.port()))
            .unwrap_or_else(|e| panic!("c1pd: cannot write {path}: {e}"));
    }

    // nonblocking accept so the loop can notice SHUTDOWN between
    // connections — a blocking accept would pin the process until one
    // more client happened to connect
    listener.set_nonblocking(true).expect("nonblocking listener");
    let active = Arc::new(AtomicUsize::new(0));
    while !SHUTDOWN.load(Ordering::Acquire) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(25));
                continue;
            }
            Err(e) => {
                eprintln!("c1pd: accept failed: {e}");
                continue;
            }
        };
        if active.load(Ordering::Acquire) >= max_conns {
            refuse(stream);
            continue;
        }
        active.fetch_add(1, Ordering::AcqRel);
        let engine = Arc::clone(&engine);
        let active = Arc::clone(&active);
        thread::spawn(move || {
            let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
            if let Err(e) = handle_conn(stream, &engine, max_frame) {
                // benign disconnects are the common case; log the rest
                if e.kind() != io::ErrorKind::UnexpectedEof
                    && e.kind() != io::ErrorKind::ConnectionReset
                {
                    eprintln!("c1pd: connection {peer}: {e}");
                }
            }
            active.fetch_sub(1, Ordering::AcqRel);
        });
    }

    // graceful drain: the listener is closed (drop), live connections
    // notice SHUTDOWN at their next frame boundary — the frame they are
    // inside is read fully, answered, and only then does the handler exit
    drop(listener);
    eprintln!("c1pd: shutting down, draining {} connection(s)", active.load(Ordering::Acquire));
    let drain_deadline = std::time::Instant::now() + Duration::from_secs(30);
    while active.load(Ordering::Acquire) > 0 && std::time::Instant::now() < drain_deadline {
        thread::sleep(Duration::from_millis(25));
    }
    // WAL records were fsynced at append time; the final snapshot makes
    // the next boot warm from the first request
    engine.flush_durability();
    eprintln!("c1pd: shutdown complete");
}

/// Best-effort `Overloaded` error frame to a refused connection.
fn refuse(stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    let msg = Msg::Error {
        id: 0,
        code: ErrorCode::Overloaded,
        message: "connection limit reached".into(),
    };
    let _ = write_frame(&mut w, &encode_msg(&msg));
    let _ = w.flush();
}

fn handle_conn(stream: TcpStream, engine: &Engine, max_frame: usize) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // a finite read timeout lets the frame reader poll SHUTDOWN between
    // frames without cutting off a slow writer mid-frame
    stream.set_read_timeout(Some(Duration::from_millis(250))).ok();
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame_until(&mut reader, max_frame, &SHUTDOWN) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            // An over-cap frame length is admission control, not line
            // noise: answer with an exact TooLarge error frame before
            // closing (the stream position is unrecoverable, so the
            // connection cannot continue).
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let reply = Msg::Error { id: 0, code: ErrorCode::TooLarge, message: e.to_string() };
                write_frame(&mut writer, &encode_msg(&reply))?;
                writer.flush()?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let reply = match c1p_engine::proto::decode_msg(&payload) {
            Ok(Msg::Solve { id, ens }) => match engine.submit(ens) {
                Ok(ticket) => match ticket.wait() {
                    Ok(verdict) => Msg::Verdict { id, verdict: verdict.to_wire() },
                    Err(e) => engine_error(id, e),
                },
                Err(e) => engine_error(id, e),
            },
            Ok(Msg::OpenSession { id, n_atoms }) => match engine.open_session(n_atoms as usize) {
                // the empty state's witness is the identity — elided
                // (empty order) so a 17-byte open cannot amplify into a
                // multi-MB reply at large n_atoms
                Ok(session) => Msg::SessionVerdict {
                    id,
                    session,
                    verdict: c1p_matrix::io::WireVerdict::Accept { order: Vec::new() },
                },
                Err(e) => engine_error(id, e),
            },
            Ok(Msg::PushAtoms { id, session, delta }) => {
                match engine.session_push(session, &delta) {
                    Ok(verdict) => Msg::SessionVerdict { id, session, verdict: verdict.to_wire() },
                    Err(e) => engine_error(id, e),
                }
            }
            Ok(Msg::SealSession { id, session }) => match engine.seal_session(session) {
                Ok(verdict) => Msg::SessionVerdict { id, session, verdict: verdict.to_wire() },
                Err(e) => engine_error(id, e),
            },
            Ok(Msg::GetStats) => Msg::Stats { json: engine.stats().to_json() },
            Ok(_) => Msg::Error {
                id: 0,
                code: ErrorCode::Malformed,
                message: "unexpected message kind for a server".into(),
            },
            Err(e) => Msg::Error { id: 0, code: ErrorCode::Malformed, message: e.to_string() },
        };
        write_frame(&mut writer, &encode_msg(&reply))?;
        writer.flush()?;
    }
}

fn engine_error(id: u64, e: EngineError) -> Msg {
    let code = match e {
        EngineError::Overloaded => ErrorCode::Overloaded,
        EngineError::TooLarge { .. }
        | EngineError::SessionFull { .. }
        | EngineError::SessionOverBudget { .. } => ErrorCode::TooLarge,
        EngineError::ShuttingDown => ErrorCode::Internal,
        EngineError::NoSuchSession { .. } => ErrorCode::NoSession,
        EngineError::SessionMismatch { .. } => ErrorCode::Malformed,
    };
    Msg::Error { id, code, message: e.to_string() }
}

//! # c1p-engine: a batched, caching C1P solve service
//!
//! The solver stack (`c1p-core` + `c1p-cert`) answers one instance per
//! call, paying a cold solve and — for the parallel driver — per-call pool
//! context every time. This crate turns it into a *served* workload
//! (ROADMAP north star; Raffinot and Chauve–Stephen–Tamayo both frame C1P
//! testing as a repeated-query primitive over evolving instance families):
//!
//! * **one shared pool** — [`Engine::new`] builds the work-stealing pool
//!   once; every request, batch and background drain runs `install`ed on
//!   it, so scheduling state is resolved per engine, not per call;
//! * **batching** — [`Engine::submit`] enqueues into a submission queue
//!   with admission control ([`EngineConfig::max_queue`]); a background
//!   batcher drains up to [`EngineConfig::max_batch`] requests at a time.
//!   Small instances (≤ [`EngineConfig::small_cutoff`] atoms) fan out
//!   *across* the pool — each solved sequentially, many at once — while
//!   large instances take the parallel divide path one at a time
//!   ([`c1p_core::parallel`]'s `solve_par`), which parallelizes *within*
//!   the instance;
//! * **caching** — results are keyed by the hash-consed canonical ensemble
//!   encoding (the documented rule: column order is canonicalized, atom
//!   numbering is not — see DESIGN.md §8) in a byte-budgeted LRU; the
//!   engine always solves the canonical form, so hot and cold answers are
//!   byte-identical, and identical in-flight requests coalesce onto one
//!   computation that eviction can never drop;
//! * **certified verdicts** — every answer is checkable: accepts carry a
//!   witness order, rejects a Tucker certificate
//!   ([`c1p_cert::verify_witness`]-checkable without trusting the engine);
//! * **incremental sessions** — [`Engine::open_session`] /
//!   [`Engine::session_push`] / [`Engine::seal_session`] serve append-only
//!   streams through `c1p_incremental::IncrementalSolver`: each push
//!   re-solves only the components it touches (on the shared pool for
//!   large groups), answers bit-identically to a one-shot solve of the
//!   concatenation, rolls back rejected pushes, and a sealed session
//!   feeds its canonical verdict into the result cache. Sessions are
//!   admission-controlled ([`EngineConfig::max_sessions`],
//!   [`EngineConfig::max_session_columns`]) and idle-evicted
//!   ([`EngineConfig::session_idle_ms`]). See DESIGN.md §9.
//!
//! The wire front-end (`c1pd`, a std-only TCP server speaking the
//! length-prefixed [`proto`] frames) and its closed-loop traffic generator
//! (`load_driver`) live in `src/bin/`. DESIGN.md §8 specifies the formats
//! and policies.

mod cache;
mod canonical;
pub mod proto;
pub mod snapshot;
pub mod trace;
pub mod wal;

use c1p_cert::TuckerWitness;
use c1p_core::{Rejection, SolveStats};
use c1p_incremental::IncrementalSolver;
use c1p_matrix::io::WireVerdict;
use c1p_matrix::{Atom, Ensemble};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Engine configuration. `Default` is sized for a mixed small-instance
/// service on the current host.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads of the shared pool; `0` = host parallelism.
    pub threads: usize,
    /// LRU result-cache budget in bytes. `0` disables caching (in-flight
    /// coalescing still works — it lives outside the cache).
    pub cache_bytes: usize,
    /// Maximum requests drained into one batch by the background batcher.
    pub max_batch: usize,
    /// Instances with at most this many atoms are solved sequentially and
    /// batched across the pool; larger ones take the parallel divide path
    /// individually.
    pub small_cutoff: usize,
    /// Admission control: submissions beyond this queue depth are rejected
    /// with [`EngineError::Overloaded`].
    pub max_queue: usize,
    /// Admission control: instances with more atoms than this are rejected
    /// with [`EngineError::TooLarge`].
    pub max_atoms: usize,
    /// Admission control: concurrently open incremental sessions beyond
    /// this count are refused with [`EngineError::Overloaded`].
    pub max_sessions: usize,
    /// Sessions untouched for longer than this many milliseconds are
    /// evicted by the lazy sweep that runs on every session operation and
    /// stats snapshot (an abandoned session cannot pin memory forever).
    pub session_idle_ms: u64,
    /// Admission control: a push that would grow a session beyond this
    /// many accepted columns is refused with [`EngineError::SessionFull`].
    pub max_session_columns: usize,
    /// Admission control: per-session memory budget in accounted bytes
    /// (base per-atom vectors plus every accepted column); opens and
    /// pushes over it are refused with [`EngineError::SessionOverBudget`].
    /// Worst-case session memory is `max_sessions × max_session_bytes`.
    pub max_session_bytes: usize,
    /// Durability directory (DESIGN.md §10). `Some` turns on per-session
    /// write-ahead logs (every accepted push is appended and fsynced
    /// before it is acknowledged), boot-time recovery of live sessions,
    /// lazy resume of idle-evicted sessions, and cache snapshots. `None`
    /// (the default) keeps the engine purely in-memory.
    pub wal_dir: Option<std::path::PathBuf>,
    /// Milliseconds between periodic cache snapshots (requires
    /// [`EngineConfig::wal_dir`]); `0` disables the background snapshot
    /// thread — [`Engine::flush_durability`] still writes one on demand.
    pub snapshot_interval_ms: u64,
    /// Test-only crash-injection hook (`--wal-fault-after`): the N-th WAL
    /// append process-wide writes a torn record prefix, syncs it, and
    /// aborts the process. `0` disables. Exists so the crash harness can
    /// deterministically die *mid-append*; never set it in production.
    pub wal_fault_after: u64,
    /// Scheduled WAL-append faults (chaos testing): unlike the one-shot
    /// [`EngineConfig::wal_fault_after`] abort, these fire repeatedly and
    /// *within* the process — each hit panics the pushing thread instead
    /// of killing the process, so a supervised shard worker dies, is
    /// respawned, and recovers its sessions from disk. Empty (the
    /// default) costs nothing on the push path.
    pub wal_faults: WalFaultPlan,
}

/// Deterministic schedule of injected WAL-append faults
/// ([`EngineConfig::wal_faults`]). The countdowns live *inside the plan*
/// (shared by every clone), not inside any one engine: a supervised
/// respawn clones the config, so the rebuilt engine resumes the schedule
/// where the dead one left off instead of resetting its phase. Without
/// that, a seed whose phase lands on the first append would tear the
/// retried push after every respawn, forever — a deterministic livelock.
/// `seed` staggers each schedule's first hit so torn and failed appends
/// interleave instead of colliding.
#[derive(Debug, Clone, Default)]
pub struct WalFaultPlan {
    /// Every N-th append writes a torn record prefix (syncs it, then
    /// panics without acknowledging). `0` disables.
    pub torn_every: u64,
    /// Every N-th append refuses outright (panics before writing a
    /// byte). `0` disables.
    pub fail_every: u64,
    /// Staggers the schedules' phases deterministically.
    pub seed: u64,
    /// Shared countdowns (torn, failed); each reloads to its `every`
    /// after firing. Private so every plan goes through
    /// [`WalFaultPlan::new`] with coherent phases.
    counters: std::sync::Arc<(AtomicU64, AtomicU64)>,
}

impl WalFaultPlan {
    /// Builds a plan with seed-staggered first hits. `0` disables a
    /// schedule.
    pub fn new(torn_every: u64, fail_every: u64, seed: u64) -> WalFaultPlan {
        let plan = WalFaultPlan { torn_every, fail_every, seed, counters: Default::default() };
        plan.counters.0.store(plan.phase(torn_every, 1), Ordering::Relaxed);
        plan.counters.1.store(plan.phase(fail_every, 2), Ordering::Relaxed);
        plan
    }

    /// `true` when no fault is scheduled (the production state).
    pub fn is_empty(&self) -> bool {
        self.torn_every == 0 && self.fail_every == 0
    }

    /// Advances the torn-append countdown; `true` means this append must
    /// tear.
    fn torn_now(&self) -> bool {
        self.torn_every > 0 && self.counters.0.fetch_sub(1, Ordering::Relaxed) == 1 && {
            self.counters.0.store(self.torn_every, Ordering::Relaxed);
            true
        }
    }

    /// Advances the failed-append countdown; `true` means this append
    /// must refuse.
    fn fail_now(&self) -> bool {
        self.fail_every > 0 && self.counters.1.fetch_sub(1, Ordering::Relaxed) == 1 && {
            self.counters.1.store(self.fail_every, Ordering::Relaxed);
            true
        }
    }

    /// First-hit countdown for schedule `k`: a seed-dependent phase in
    /// `1..=every`, so independent schedules do not all fire on the same
    /// append.
    fn phase(&self, every: u64, k: u64) -> u64 {
        if every == 0 {
            return 0;
        }
        let mut x = self.seed ^ (k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        (x % every) + 1
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cache_bytes: 64 << 20,
            max_batch: 64,
            small_cutoff: 2048,
            max_queue: 4096,
            max_atoms: 1 << 22,
            max_sessions: 64,
            session_idle_ms: 300_000,
            max_session_columns: 1 << 20,
            max_session_bytes: 32 << 20,
            wal_dir: None,
            snapshot_interval_ms: 0,
            wal_fault_after: 0,
            wal_faults: WalFaultPlan::default(),
        }
    }
}

/// Why the engine refused (not failed to solve) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The submission queue is at [`EngineConfig::max_queue`].
    Overloaded,
    /// The instance exceeds [`EngineConfig::max_atoms`].
    TooLarge {
        /// Atoms in the rejected instance.
        n_atoms: usize,
        /// The configured limit.
        max_atoms: usize,
    },
    /// The engine is shutting down (or an in-flight owner panicked).
    ShuttingDown,
    /// No open session with this id (never opened, sealed, or evicted).
    NoSuchSession {
        /// The id the caller presented.
        id: u64,
    },
    /// A push whose atom count differs from the session's (sessions fix
    /// their atom set at open).
    SessionMismatch {
        /// The session's atom count.
        session_atoms: usize,
        /// The push's atom count.
        push_atoms: usize,
    },
    /// A push that would grow the session past
    /// [`EngineConfig::max_session_columns`].
    SessionFull {
        /// Accepted columns plus the refused push's.
        columns: usize,
        /// The configured limit.
        max_columns: usize,
    },
    /// An open or push that would grow the session past
    /// [`EngineConfig::max_session_bytes`] of accounted memory.
    SessionOverBudget {
        /// Accounted bytes after the refused operation.
        bytes: usize,
        /// The configured budget.
        max_bytes: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Overloaded => write!(f, "submission queue full"),
            EngineError::TooLarge { n_atoms, max_atoms } => {
                write!(f, "instance has {n_atoms} atoms, over the {max_atoms}-atom limit")
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::NoSuchSession { id } => write!(f, "no open session {id}"),
            EngineError::SessionMismatch { session_atoms, push_atoms } => write!(
                f,
                "push has {push_atoms} atoms but the session was opened with {session_atoms}"
            ),
            EngineError::SessionFull { columns, max_columns } => {
                write!(f, "session would hold {columns} columns, over the {max_columns} limit")
            }
            EngineError::SessionOverBudget { bytes, max_bytes } => {
                write!(f, "session would hold {bytes} bytes, over the {max_bytes}-byte budget")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A solved request: both sides are checkable without trusting the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// C1P: a witness atom order ([`c1p_matrix::verify_linear`]-checkable).
    C1p {
        /// The witness order.
        order: Vec<Atom>,
    },
    /// Not C1P: the solver's evidence plus the extracted Tucker
    /// certificate ([`c1p_cert::verify_witness`]-checkable).
    NotC1p {
        /// Evidence-carrying rejection (atom-space; column-order free).
        rejection: Rejection,
        /// The minimal Tucker submatrix witness, in request coordinates.
        witness: TuckerWitness,
    },
}

impl Verdict {
    /// Is this an accept?
    pub fn is_c1p(&self) -> bool {
        matches!(self, Verdict::C1p { .. })
    }

    /// The wire-format projection (drops the internal rejection evidence;
    /// clients re-verify the certificate instead of trusting it).
    pub fn to_wire(&self) -> WireVerdict {
        match self {
            Verdict::C1p { order } => WireVerdict::Accept { order: order.clone() },
            Verdict::NotC1p { witness, .. } => WireVerdict::Reject {
                family: witness.family,
                atom_rows: witness.atom_rows.clone(),
                column_ids: witness.column_ids.clone(),
            },
        }
    }
}

/// A point-in-time statistics snapshot ([`Engine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into [`Engine::solve`]/[`Engine::solve_batch`]
    /// (submissions included — the batcher funnels into `solve_batch`).
    pub requests: u64,
    /// `solve_batch` invocations (a single [`Engine::solve`] counts one).
    pub batches: u64,
    /// Result-cache hits.
    pub hits: u64,
    /// Cold solves (cache misses that became the computing owner).
    pub misses: u64,
    /// Requests that found their instance already in flight and waited for
    /// the owner instead of recomputing.
    pub coalesced: u64,
    /// Submissions rejected by admission control.
    pub overloaded: u64,
    /// Small instances fanned out across the pool.
    pub batched_small: u64,
    /// Large instances routed through the parallel divide path.
    pub large_direct: u64,
    /// Entries evicted from the result cache.
    pub evictions: u64,
    /// Entries inserted into the result cache.
    pub insertions: u64,
    /// Verdicts too large for the cache budget (never inserted).
    pub uncacheable: u64,
    /// Current result-cache entry count.
    pub cache_entries: u64,
    /// Current result-cache footprint in accounted bytes.
    pub cache_bytes: u64,
    /// Incremental sessions opened.
    pub sessions_opened: u64,
    /// Sessions sealed (their canonical verdict fed to the cache).
    pub sessions_sealed: u64,
    /// Sessions evicted by the idle sweep.
    pub sessions_evicted: u64,
    /// Session pushes attempted (accepted + rejected verdicts).
    pub session_pushes: u64,
    /// Session pushes that returned a rejection verdict (and rolled back).
    pub session_rejects: u64,
    /// Currently open sessions.
    pub open_sessions: u64,
    /// Accepted pushes appended to a write-ahead log.
    pub wal_appends: u64,
    /// WAL fsyncs issued (one per durable append; the fsync happens
    /// before the push is acknowledged).
    pub wal_fsyncs: u64,
    /// Sessions rebuilt from their WAL — at boot or by lazy resume of an
    /// idle-evicted session.
    pub recovered_sessions: u64,
    /// WAL files refused during recovery and moved aside (checksum, hash
    /// or replay mismatch — never silently dropped).
    pub quarantined_wals: u64,
    /// Cache snapshots written (periodic + on-demand flushes).
    pub snapshot_writes: u64,
    /// Cache hits served by entries loaded from a snapshot — the proof a
    /// restart answered hot.
    pub warm_start_hits: u64,
    /// WAL appends deliberately broken by the [`EngineConfig::wal_faults`]
    /// chaos plan (torn prefixes and refused writes). Always 0 outside
    /// chaos runs.
    pub wal_faults_injected: u64,
}

impl EngineStats {
    /// Adds `other`'s values into `self`, field by field. A sharded
    /// front-end answers `GetStats` with the sum over its per-shard
    /// engines; gauges (`cache_entries`, `cache_bytes`, `open_sessions`)
    /// sum too — the fleet-wide footprint is what the caller is sizing.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.overloaded += other.overloaded;
        self.batched_small += other.batched_small;
        self.large_direct += other.large_direct;
        self.evictions += other.evictions;
        self.insertions += other.insertions;
        self.uncacheable += other.uncacheable;
        self.cache_entries += other.cache_entries;
        self.cache_bytes += other.cache_bytes;
        self.sessions_opened += other.sessions_opened;
        self.sessions_sealed += other.sessions_sealed;
        self.sessions_evicted += other.sessions_evicted;
        self.session_pushes += other.session_pushes;
        self.session_rejects += other.session_rejects;
        self.open_sessions += other.open_sessions;
        self.wal_appends += other.wal_appends;
        self.wal_fsyncs += other.wal_fsyncs;
        self.recovered_sessions += other.recovered_sessions;
        self.quarantined_wals += other.quarantined_wals;
        self.snapshot_writes += other.snapshot_writes;
        self.warm_start_hits += other.warm_start_hits;
        self.wal_faults_injected += other.wal_faults_injected;
    }

    /// Hit fraction among cache lookups that finished (hits + cold solves).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Renders the snapshot as a flat JSON object (the `Stats` frame body).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"batches\": {}, \"hits\": {}, \"misses\": {}, \
             \"coalesced\": {}, \"overloaded\": {}, \"batched_small\": {}, \
             \"large_direct\": {}, \"evictions\": {}, \"insertions\": {}, \
             \"uncacheable\": {}, \"cache_entries\": {}, \"cache_bytes\": {}, \
             \"sessions_opened\": {}, \"sessions_sealed\": {}, \
             \"sessions_evicted\": {}, \"session_pushes\": {}, \
             \"session_rejects\": {}, \"open_sessions\": {}, \
             \"wal_appends\": {}, \"wal_fsyncs\": {}, \
             \"recovered_sessions\": {}, \"quarantined_wals\": {}, \
             \"snapshot_writes\": {}, \"warm_start_hits\": {}, \
             \"wal_faults_injected\": {}, \
             \"hit_rate\": {:.4}}}",
            self.requests,
            self.batches,
            self.hits,
            self.misses,
            self.coalesced,
            self.overloaded,
            self.batched_small,
            self.large_direct,
            self.evictions,
            self.insertions,
            self.uncacheable,
            self.cache_entries,
            self.cache_bytes,
            self.sessions_opened,
            self.sessions_sealed,
            self.sessions_evicted,
            self.session_pushes,
            self.session_rejects,
            self.open_sessions,
            self.wal_appends,
            self.wal_fsyncs,
            self.recovered_sessions,
            self.quarantined_wals,
            self.snapshot_writes,
            self.warm_start_hits,
            self.wal_faults_injected,
            self.hit_rate(),
        )
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    overloaded: AtomicU64,
    batched_small: AtomicU64,
    large_direct: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_sealed: AtomicU64,
    sessions_evicted: AtomicU64,
    session_pushes: AtomicU64,
    session_rejects: AtomicU64,
    wal_appends: AtomicU64,
    wal_fsyncs: AtomicU64,
    recovered_sessions: AtomicU64,
    quarantined_wals: AtomicU64,
    snapshot_writes: AtomicU64,
    wal_faults_injected: AtomicU64,
}

/// One in-flight computation; waiters block on the condvar, the owner
/// fills exactly once. Lives in the pending map, *not* the cache, so
/// eviction can never touch it.
#[derive(Default)]
struct InFlight {
    state: Mutex<Option<Result<Verdict, EngineError>>>,
    cv: Condvar,
}

impl InFlight {
    fn wait(&self) -> Result<Verdict, EngineError> {
        let mut g = self.state.lock().expect("in-flight lock");
        while g.is_none() {
            g = self.cv.wait(g).expect("in-flight wait");
        }
        g.as_ref().expect("filled").clone()
    }

    fn fill(&self, r: Result<Verdict, EngineError>) {
        let mut g = self.state.lock().expect("in-flight lock");
        if g.is_none() {
            *g = Some(r);
        }
        self.cv.notify_all();
    }
}

struct Submission {
    ens: Ensemble,
    tx: mpsc::Sender<Result<Verdict, EngineError>>,
    /// Sampled request's span recorder plus its enqueue offset (the
    /// `queue` span start). `None` for unsampled requests — every trace
    /// hook downstream is a no-op then.
    trace: Option<Arc<trace::ReqTrace>>,
    enq_us: u64,
}

struct QueueState {
    items: VecDeque<Submission>,
    shutdown: bool,
}

/// One live incremental session (engine side): the solver, the idle
/// clock, and the memory account. Each session has its own lock, so a
/// slow push serializes only its own session, never its neighbours.
struct SessionState {
    inc: IncrementalSolver,
    last_touch: Instant,
    /// Accounted bytes: the base per-atom vectors plus every accepted
    /// column (a budget, not an audit — same spirit as the result cache).
    bytes: usize,
    /// The session's write-ahead log ([`EngineConfig::wal_dir`] set);
    /// every accepted push is appended and fsynced here *before* the
    /// verdict is returned. Idle eviction drops this handle but leaves
    /// the file — the session stays resumable (lazy replay on the next
    /// push or seal).
    wal: Option<wal::WalWriter>,
}

/// Accounted memory of one accepted column (payload + `Vec` overhead).
fn column_account(col: &[Atom]) -> usize {
    24 + 4 * col.len()
}

/// Accounted base memory of a session over `n_atoms` atoms (the two
/// per-atom u32 vectors of the incremental solver).
fn session_base_account(n_atoms: usize) -> usize {
    8 * n_atoms
}

struct Inner {
    cfg: EngineConfig,
    pool: rayon::ThreadPool,
    cache: Mutex<cache::ResultCache>,
    pending: Mutex<HashMap<Arc<[u8]>, Arc<InFlight>>>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>,
    session_seq: AtomicU64,
    stats: Counters,
    /// Countdown for the [`EngineConfig::wal_fault_after`] crash hook
    /// (process-wide across sessions; `0` when the hook is off).
    wal_fault_countdown: AtomicU64,
    /// Snapshot-thread control: `true` stops the thread; the condvar
    /// doubles as its interval timer.
    snap_stop: Mutex<bool>,
    snap_cv: Condvar,
}

/// The multi-tenant solve engine. Cheap to share behind an [`Arc`]; all
/// entry points take `&self`.
pub struct Engine {
    inner: Arc<Inner>,
    batcher: Option<thread::JoinHandle<()>>,
    snapshotter: Option<thread::JoinHandle<()>>,
}

/// Handle to a queued submission; [`Ticket::wait`] blocks for the verdict.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Verdict, EngineError>>,
}

impl Ticket {
    /// Blocks until the batcher answers this submission.
    pub fn wait(self) -> Result<Verdict, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::ShuttingDown))
    }
}

impl Engine {
    /// Builds the engine: one shared pool, an empty cache, and the
    /// background batcher thread. With [`EngineConfig::wal_dir`] set this
    /// is also *recovery*: the cache snapshot is loaded (warm start) and
    /// every live session WAL in the directory is replayed back into an
    /// open session — a damaged file is quarantined and counted, never
    /// trusted and never deleted.
    pub fn new(cfg: EngineConfig) -> Engine {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.threads)
            .build()
            .expect("engine pool construction");
        let inner = Arc::new(Inner {
            cache: Mutex::new(cache::ResultCache::new(cfg.cache_bytes)),
            pending: Mutex::new(HashMap::new()),
            queue: Mutex::new(QueueState { items: VecDeque::new(), shutdown: false }),
            queue_cv: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            session_seq: AtomicU64::new(0),
            stats: Counters::default(),
            wal_fault_countdown: AtomicU64::new(cfg.wal_fault_after),
            snap_stop: Mutex::new(false),
            snap_cv: Condvar::new(),
            pool,
            cfg,
        });
        if inner.cfg.wal_dir.is_some() {
            recover_durable_state(&inner);
        }
        let batcher = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("c1p-engine-batcher".into())
                .spawn(move || batcher_loop(&inner))
                .expect("spawn batcher thread")
        };
        let snapshotter = if inner.cfg.wal_dir.is_some() && inner.cfg.snapshot_interval_ms > 0 {
            let inner = Arc::clone(&inner);
            Some(
                thread::Builder::new()
                    .name("c1p-engine-snapshotter".into())
                    .spawn(move || snapshot_loop(&inner))
                    .expect("spawn snapshot thread"),
            )
        } else {
            None
        };
        Engine { inner, batcher: Some(batcher), snapshotter }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// Solves one instance through the cache, synchronously.
    pub fn solve(&self, req: &Ensemble) -> Result<Verdict, EngineError> {
        self.solve_batch(std::slice::from_ref(req)).pop().expect("one result per request")
    }

    /// Solves a batch: small instances fan out across the shared pool,
    /// large ones run the parallel divide path one at a time; duplicate
    /// instances inside the batch are deduplicated through the cache
    /// machinery. `results[i]` answers `reqs[i]`.
    pub fn solve_batch(&self, reqs: &[Ensemble]) -> Vec<Result<Verdict, EngineError>> {
        solve_batch_on(&self.inner, reqs, &[])
    }

    /// [`Engine::solve_batch`] with per-request span recorders:
    /// `traces[i]` (when present) receives `cache` / `coalesce` / `solve`
    /// (+ `solve/<phase>` children) events for `reqs[i]`. `traces` may be
    /// shorter than `reqs`; missing entries are unsampled.
    pub fn solve_batch_traced(
        &self,
        reqs: &[Ensemble],
        traces: &[Option<Arc<trace::ReqTrace>>],
    ) -> Vec<Result<Verdict, EngineError>> {
        solve_batch_on(&self.inner, reqs, traces)
    }

    /// Enqueues an instance for the background batcher. Fails fast with
    /// [`EngineError::Overloaded`] at [`EngineConfig::max_queue`] depth.
    pub fn submit(&self, ens: Ensemble) -> Result<Ticket, EngineError> {
        self.submit_traced(ens, None)
    }

    /// [`Engine::submit`] with an optional span recorder: the batcher
    /// records the `queue` (enqueue → drain) and `mailbox` (drain →
    /// solve start) spans, and the solve path continues into it.
    pub fn submit_traced(
        &self,
        ens: Ensemble,
        trace: Option<Arc<trace::ReqTrace>>,
    ) -> Result<Ticket, EngineError> {
        if ens.n_atoms() > self.inner.cfg.max_atoms {
            return Err(EngineError::TooLarge {
                n_atoms: ens.n_atoms(),
                max_atoms: self.inner.cfg.max_atoms,
            });
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            if q.shutdown {
                return Err(EngineError::ShuttingDown);
            }
            if q.items.len() >= self.inner.cfg.max_queue {
                self.inner.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Overloaded);
            }
            let enq_us = trace.as_ref().map_or(0, |t| t.now_us());
            q.items.push_back(Submission { ens, tx, trace, enq_us });
        }
        self.inner.queue_cv.notify_one();
        Ok(Ticket { rx })
    }

    /// Opens an incremental session over a fixed atom set. The session
    /// starts at the empty accepted state (verdict: the identity order)
    /// and grows through [`Engine::session_push`]; admission control
    /// refuses opens beyond [`EngineConfig::max_sessions`] live sessions
    /// ([`EngineError::Overloaded`]) or atom counts beyond
    /// [`EngineConfig::max_atoms`] ([`EngineError::TooLarge`]).
    pub fn open_session(&self, n_atoms: usize) -> Result<u64, EngineError> {
        self.sweep_idle_sessions();
        if n_atoms > self.inner.cfg.max_atoms {
            return Err(EngineError::TooLarge { n_atoms, max_atoms: self.inner.cfg.max_atoms });
        }
        let base = session_base_account(n_atoms);
        if base > self.inner.cfg.max_session_bytes {
            return Err(EngineError::SessionOverBudget {
                bytes: base,
                max_bytes: self.inner.cfg.max_session_bytes,
            });
        }
        let mut sessions = self.inner.sessions.lock().expect("sessions lock");
        if sessions.len() >= self.inner.cfg.max_sessions {
            self.inner.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Overloaded);
        }
        let id = self.inner.session_seq.fetch_add(1, Ordering::Relaxed) + 1;
        // durable opens write (and fsync) the WAL header before the open
        // is acknowledged — a session id on the wire implies a log on disk
        let wal = self.inner.cfg.wal_dir.as_ref().map(|dir| {
            wal::WalWriter::create(dir, id, n_atoms as u64)
                .expect("WAL create (durability directory must stay writable)")
        });
        // large re-solved groups take the parallel divide path on the
        // shared pool, mirroring the batch path's small/large routing
        let inc = IncrementalSolver::with_config(
            n_atoms,
            c1p_core::Config::default(),
            self.inner.cfg.small_cutoff,
        );
        sessions.insert(
            id,
            Arc::new(Mutex::new(SessionState {
                inc,
                last_touch: Instant::now(),
                bytes: base,
                wal,
            })),
        );
        self.inner.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Pushes a batch of columns into a session and returns the verdict
    /// for the extended ensemble — bit-identical to what
    /// [`Engine::solve`] would answer for the concatenation. A
    /// [`Verdict::NotC1p`] means the push was rolled back: the session
    /// stays at its last accepted state and keeps serving.
    pub fn session_push(&self, id: u64, delta: &Ensemble) -> Result<Verdict, EngineError> {
        self.session_push_traced(id, delta, None)
    }

    /// [`Engine::session_push`] with an optional span recorder: records
    /// `solve` around the incremental re-solve and `wal` around the
    /// append+fsync that makes an accepted push durable.
    pub fn session_push_traced(
        &self,
        id: u64,
        delta: &Ensemble,
        trace: Option<&trace::ReqTrace>,
    ) -> Result<Verdict, EngineError> {
        self.sweep_idle_sessions();
        let sess = {
            let sessions = self.inner.sessions.lock().expect("sessions lock");
            sessions.get(&id).cloned()
        };
        let sess = match sess {
            Some(s) => s,
            // idle-evicted durable sessions are resumable, not gone:
            // rebuild from the WAL before refusing with NoSuchSession
            None => self.resume_session(id)?,
        };
        let mut st = sess.lock().expect("session lock");
        // Re-check membership now that the session lock is held: a
        // concurrent seal or idle sweep may have removed the session in
        // the window between the map lookup and the lock — pushing into a
        // detached solver would fake-accept columns the server already
        // discarded. (No deadlock: seal releases the map lock before
        // taking a session lock, and the sweep only try_locks.)
        {
            let sessions = self.inner.sessions.lock().expect("sessions lock");
            if !sessions.get(&id).is_some_and(|live| Arc::ptr_eq(live, &sess)) {
                return Err(EngineError::NoSuchSession { id });
            }
        }
        if delta.n_atoms() != st.inc.n_atoms() {
            return Err(EngineError::SessionMismatch {
                session_atoms: st.inc.n_atoms(),
                push_atoms: delta.n_atoms(),
            });
        }
        let columns = st.inc.ensemble().n_columns() + delta.n_columns();
        if columns > self.inner.cfg.max_session_columns {
            return Err(EngineError::SessionFull {
                columns,
                max_columns: self.inner.cfg.max_session_columns,
            });
        }
        let delta_bytes: usize = delta.columns().iter().map(|c| column_account(c)).sum();
        if st.bytes + delta_bytes > self.inner.cfg.max_session_bytes {
            return Err(EngineError::SessionOverBudget {
                bytes: st.bytes + delta_bytes,
                max_bytes: self.inner.cfg.max_session_bytes,
            });
        }
        st.last_touch = Instant::now();
        let solve_at = trace.map(|t| t.now_us());
        let result = self.inner.pool.install(|| st.inc.push(delta));
        if let (Some(t), Some(at)) = (trace, solve_at) {
            t.record("solve", at);
        }
        self.inner.stats.session_pushes.fetch_add(1, Ordering::Relaxed);
        Ok(match result {
            Ok(order) => {
                st.bytes += delta_bytes; // rejected pushes roll back, accepted ones account
                                         // durable before acknowledged: the record (delta + the
                                         // post-push stream hash) is on disk and fsynced before the
                                         // accept verdict leaves this function — a crash at any
                                         // later instant replays to exactly this state. Rejected
                                         // pushes are rolled back and never logged.
                let hash = st.inc.stream_hash();
                let wal_at = trace.map(|t| t.now_us());
                if let Some(w) = st.wal.as_mut() {
                    if self.inner.cfg.wal_fault_after > 0
                        && self.inner.wal_fault_countdown.fetch_sub(1, Ordering::Relaxed) == 1
                    {
                        w.append_torn_and_abort(delta, hash);
                    }
                    // the chaos schedule panics *without acknowledging*:
                    // the push applied in memory but was never durable, so
                    // the supervisor must discard this engine and rebuild
                    // from the WAL (which recovers to the pre-push state)
                    let plan = &self.inner.cfg.wal_faults;
                    if !plan.is_empty() {
                        if plan.torn_now() {
                            self.inner.stats.wal_faults_injected.fetch_add(1, Ordering::Relaxed);
                            w.append_torn(delta, hash);
                            panic!("chaos: injected torn WAL append (session {id})");
                        }
                        if plan.fail_now() {
                            self.inner.stats.wal_faults_injected.fetch_add(1, Ordering::Relaxed);
                            panic!("chaos: injected failed WAL append (session {id})");
                        }
                    }
                    w.append(delta, hash)
                        .expect("WAL append (durability directory must stay writable)");
                    self.inner.stats.wal_appends.fetch_add(1, Ordering::Relaxed);
                    self.inner.stats.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
                    if let (Some(t), Some(at)) = (trace, wal_at) {
                        t.record("wal", at);
                    }
                }
                Verdict::C1p { order }
            }
            Err(cert) => {
                self.inner.stats.session_rejects.fetch_add(1, Ordering::Relaxed);
                Verdict::NotC1p { rejection: cert.rejection, witness: cert.witness }
            }
        })
    }

    /// Seals a session: returns its final (always accepting — rejected
    /// pushes never stick) verdict, feeds the result cache under the
    /// canonical encoding of the accepted ensemble, and closes the
    /// session. A later [`Engine::solve`] of the same ensemble — or any
    /// column permutation of it — is a cache hit.
    ///
    /// The returned verdict keeps the session contract (bit-identical to
    /// one-shot `solve_certified` on the accepted stream), while the
    /// cache is fed with a solve of the *canonical form* — preserving the
    /// engine-wide "hot and cold answers are byte-identical" invariant
    /// (DESIGN.md §8) at the cost of one canonical solve per seal, paid
    /// off the push hot path and skipped when the key is already cached.
    pub fn seal_session(&self, id: u64) -> Result<Verdict, EngineError> {
        let sess = {
            let mut sessions = self.inner.sessions.lock().expect("sessions lock");
            sessions.remove(&id)
        };
        let sess = match sess {
            Some(s) => s,
            // an idle-evicted durable session can be sealed directly: the
            // resume re-registers it, so remove it again before sealing
            None => {
                let sess = self.resume_session(id)?;
                self.inner.sessions.lock().expect("sessions lock").remove(&id);
                sess
            }
        };
        let mut st = sess.lock().expect("session lock");
        let verdict = Verdict::C1p { order: st.inc.order().to_vec() };
        let canon = canonical::canonicalize(st.inc.ensemble());
        let key: Arc<[u8]> = canon.key.into();
        // Feed through the solve path's cache → coalesce → compute
        // machinery: an already-cached key costs a lookup, a key another
        // request is computing right now is joined instead of re-solved,
        // and only a genuinely cold key pays the canonical solve.
        let _ = self.inner.pool.install(|| solve_canonical(&self.inner, &key, &canon.ens, None));
        // the WAL dies last: a crash anywhere before this unlink leaves a
        // replayable log and an unacknowledged seal the client repeats
        if let Some(w) = st.wal.take() {
            w.remove().expect("WAL unlink (durability directory must stay writable)");
        }
        self.inner.stats.sessions_sealed.fetch_add(1, Ordering::Relaxed);
        Ok(verdict)
    }

    /// The server side of the recovered-hash handshake: reports a
    /// session's accepted stream hash and column count without touching
    /// its state. Resumes an idle-evicted durable session exactly like a
    /// push would, so a client whose shard just restarted can ask "which
    /// of my pushes survived?" and replay precisely the unacked suffix.
    pub fn session_status(&self, id: u64) -> Result<(u64, u64), EngineError> {
        self.sweep_idle_sessions();
        let sess = {
            let sessions = self.inner.sessions.lock().expect("sessions lock");
            sessions.get(&id).cloned()
        };
        let sess = match sess {
            Some(s) => s,
            None => self.resume_session(id)?,
        };
        let mut st = sess.lock().expect("session lock");
        st.last_touch = Instant::now();
        Ok((st.inc.stream_hash(), st.inc.ensemble().n_columns() as u64))
    }

    /// Rebuilds an idle-evicted durable session from its WAL (the lazy
    /// path behind [`Engine::session_push`] / [`Engine::seal_session`]).
    /// Damage quarantines the file and reports [`EngineError::NoSuchSession`]
    /// — to the client the session is gone, but the bytes are preserved
    /// and the incident is counted.
    fn resume_session(&self, id: u64) -> Result<Arc<Mutex<SessionState>>, EngineError> {
        let Some(dir) = self.inner.cfg.wal_dir.as_deref() else {
            return Err(EngineError::NoSuchSession { id });
        };
        let path = wal::wal_path(dir, id);
        let mut sessions = self.inner.sessions.lock().expect("sessions lock");
        // the map is re-checked under the lock: a racing resume may have
        // already won, and its session must not be rebuilt twice
        if let Some(sess) = sessions.get(&id) {
            return Ok(Arc::clone(sess));
        }
        if !path.exists() {
            return Err(EngineError::NoSuchSession { id });
        }
        if sessions.len() >= self.inner.cfg.max_sessions {
            self.inner.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Overloaded);
        }
        let recovered = self.inner.pool.install(|| {
            wal::recover_file(&path, &c1p_core::Config::default(), self.inner.cfg.small_cutoff)
        });
        let rec = match recovered {
            Ok(rec) if rec.session == id => rec,
            Ok(rec) => {
                eprintln!(
                    "c1p-engine: quarantining {}: header names session {} (expected {id})",
                    path.display(),
                    rec.session
                );
                let _ = wal::quarantine(&path);
                self.inner.stats.quarantined_wals.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::NoSuchSession { id });
            }
            Err(damage) => {
                eprintln!("c1p-engine: quarantining {}: {}", path.display(), damage.reason);
                let _ = wal::quarantine(&path);
                self.inner.stats.quarantined_wals.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::NoSuchSession { id });
            }
        };
        let writer = wal::WalWriter::reopen(&path)
            .expect("WAL reopen (durability directory must stay writable)");
        let bytes = session_base_account(rec.solver.n_atoms())
            + rec.solver.ensemble().columns().iter().map(|c| column_account(c)).sum::<usize>();
        let sess = Arc::new(Mutex::new(SessionState {
            inc: rec.solver,
            last_touch: Instant::now(),
            bytes,
            wal: Some(writer),
        }));
        sessions.insert(id, Arc::clone(&sess));
        self.inner.stats.recovered_sessions.fetch_add(1, Ordering::Relaxed);
        Ok(sess)
    }

    /// Evicts sessions idle past [`EngineConfig::session_idle_ms`]; runs
    /// lazily on every session operation and stats snapshot. Sessions
    /// mid-push are busy, not idle (their lock is held), and are skipped.
    fn sweep_idle_sessions(&self) {
        let idle = Duration::from_millis(self.inner.cfg.session_idle_ms);
        let mut sessions = self.inner.sessions.lock().expect("sessions lock");
        let before = sessions.len();
        sessions.retain(|_, sess| match sess.try_lock() {
            Ok(st) => st.last_touch.elapsed() <= idle,
            Err(_) => true, // busy ⇒ not idle
        });
        let evicted = (before - sessions.len()) as u64;
        if evicted > 0 {
            self.inner.stats.sessions_evicted.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.sweep_idle_sessions();
        let s = &self.inner.stats;
        let (entries, bytes, evictions, insertions, uncacheable, warm_start_hits) = {
            let c = self.inner.cache.lock().expect("cache lock");
            (
                c.entries() as u64,
                c.bytes() as u64,
                c.evictions,
                c.insertions,
                c.uncacheable,
                c.warm_start_hits,
            )
        };
        let open_sessions = self.inner.sessions.lock().expect("sessions lock").len() as u64;
        EngineStats {
            requests: s.requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            overloaded: s.overloaded.load(Ordering::Relaxed),
            batched_small: s.batched_small.load(Ordering::Relaxed),
            large_direct: s.large_direct.load(Ordering::Relaxed),
            evictions,
            insertions,
            uncacheable,
            cache_entries: entries,
            cache_bytes: bytes,
            sessions_opened: s.sessions_opened.load(Ordering::Relaxed),
            sessions_sealed: s.sessions_sealed.load(Ordering::Relaxed),
            sessions_evicted: s.sessions_evicted.load(Ordering::Relaxed),
            session_pushes: s.session_pushes.load(Ordering::Relaxed),
            session_rejects: s.session_rejects.load(Ordering::Relaxed),
            open_sessions,
            wal_appends: s.wal_appends.load(Ordering::Relaxed),
            wal_fsyncs: s.wal_fsyncs.load(Ordering::Relaxed),
            recovered_sessions: s.recovered_sessions.load(Ordering::Relaxed),
            quarantined_wals: s.quarantined_wals.load(Ordering::Relaxed),
            snapshot_writes: s.snapshot_writes.load(Ordering::Relaxed),
            warm_start_hits,
            wal_faults_injected: s.wal_faults_injected.load(Ordering::Relaxed),
        }
    }

    /// Forces all durable state to disk *now*: WAL records are already
    /// fsynced per-append, so this writes one cache snapshot (when
    /// [`EngineConfig::wal_dir`] is set, independent of the periodic
    /// interval). Graceful shutdown calls this after the last frame is
    /// drained; it is also the deterministic snapshot trigger for tests.
    pub fn flush_durability(&self) {
        write_snapshot_now(&self.inner);
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            q.shutdown = true;
        }
        self.inner.queue_cv.notify_all();
        {
            let mut stop = self.inner.snap_stop.lock().expect("snapshot stop lock");
            *stop = true;
        }
        self.inner.snap_cv.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.snapshotter.take() {
            let _ = h.join();
        }
    }
}

/// Boot-time recovery (wal_dir set): warm-start the cache from the live
/// snapshot, then rebuild every session whose WAL survives verification.
/// Damaged files — snapshot or WAL — are quarantined and counted; the
/// engine always comes up, at worst cold and with fewer sessions.
fn recover_durable_state(inner: &Inner) {
    let dir = inner.cfg.wal_dir.as_deref().expect("caller checked wal_dir");
    std::fs::create_dir_all(dir).expect("durability directory creation");
    // an inherited snapshot may predate the last clean fsync of this
    // directory; make its rename durable before trusting warm hits to it
    snapshot::fsync_existing(dir);
    match snapshot::load(dir) {
        Ok(None) => {}
        Ok(Some(entries)) => {
            let mut cache = inner.cache.lock().expect("cache lock");
            for (key, verdict) in entries {
                cache.insert_warm(key.into(), &verdict);
            }
        }
        Err(damage) => {
            let path = snapshot::snapshot_path(dir);
            eprintln!("c1p-engine: quarantining {}: {}", path.display(), damage.reason);
            let _ = wal::quarantine(&path);
            inner.stats.quarantined_wals.fetch_add(1, Ordering::Relaxed);
        }
    }
    let logs = wal::scan_dir(dir).expect("durability directory scan");
    let mut sessions = inner.sessions.lock().expect("sessions lock");
    let mut max_id = 0u64;
    for (id, path) in logs {
        max_id = max_id.max(id);
        let recovered = inner.pool.install(|| {
            wal::recover_file(&path, &c1p_core::Config::default(), inner.cfg.small_cutoff)
        });
        match recovered {
            Ok(rec) if rec.session == id => {
                let writer = wal::WalWriter::reopen(&path).expect("WAL reopen at boot");
                let bytes = session_base_account(rec.solver.n_atoms())
                    + rec
                        .solver
                        .ensemble()
                        .columns()
                        .iter()
                        .map(|c| column_account(c))
                        .sum::<usize>();
                sessions.insert(
                    id,
                    Arc::new(Mutex::new(SessionState {
                        inc: rec.solver,
                        last_touch: Instant::now(),
                        bytes,
                        wal: Some(writer),
                    })),
                );
                inner.stats.recovered_sessions.fetch_add(1, Ordering::Relaxed);
            }
            Ok(rec) => {
                eprintln!(
                    "c1p-engine: quarantining {}: header names session {} (expected {id})",
                    path.display(),
                    rec.session
                );
                let _ = wal::quarantine(&path);
                inner.stats.quarantined_wals.fetch_add(1, Ordering::Relaxed);
            }
            Err(damage) => {
                eprintln!("c1p-engine: quarantining {}: {}", path.display(), damage.reason);
                let _ = wal::quarantine(&path);
                inner.stats.quarantined_wals.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    // ids never repeat across process generations while a log (or a live
    // recovered session) could still carry the old one
    let seq = inner.session_seq.load(Ordering::Relaxed).max(max_id);
    inner.session_seq.store(seq, Ordering::Relaxed);
}

/// Writes one cache snapshot if (and only if) a durability directory is
/// configured. Shared by the periodic thread, graceful shutdown, and
/// [`Engine::flush_durability`].
fn write_snapshot_now(inner: &Inner) {
    let Some(dir) = inner.cfg.wal_dir.as_deref() else {
        return;
    };
    let entries = inner.cache.lock().expect("cache lock").snapshot_entries();
    let refs: Vec<(&[u8], &Verdict)> = entries.iter().map(|(k, v)| (&**k, v)).collect();
    snapshot::write(dir, &refs).expect("snapshot write (durability directory must stay writable)");
    inner.stats.snapshot_writes.fetch_add(1, Ordering::Relaxed);
}

/// The periodic snapshot thread: one snapshot per interval,
/// unconditionally, plus a final one at engine drop (so a clean exit
/// never loses warm state). Writing even when nothing changed keeps the
/// counter's meaning simple — after any cache change, two increments of
/// `snapshot_writes` *guarantee* a snapshot containing it is on disk
/// (the crash harness leans on exactly that to sequence its kills).
fn snapshot_loop(inner: &Inner) {
    let interval = Duration::from_millis(inner.cfg.snapshot_interval_ms.max(1));
    loop {
        let stopped = {
            let stop = inner.snap_stop.lock().expect("snapshot stop lock");
            let (stop, _) = inner.snap_cv.wait_timeout(stop, interval).expect("snapshot wait");
            *stop
        };
        write_snapshot_now(inner);
        if stopped {
            return;
        }
    }
}

/// Drains the submission queue in batches until shutdown (then drains the
/// backlog and exits).
fn batcher_loop(inner: &Inner) {
    loop {
        let batch: Vec<Submission> = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if !q.items.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = inner.queue_cv.wait(q).expect("queue wait");
            }
            let take = q.items.len().min(inner.cfg.max_batch.max(1));
            q.items.drain(..take).collect()
        };
        let mut enss = Vec::with_capacity(batch.len());
        let mut txs = Vec::with_capacity(batch.len());
        let mut traces = Vec::with_capacity(batch.len());
        let mut mailbox_at = Vec::with_capacity(batch.len());
        for s in batch {
            if let Some(t) = &s.trace {
                t.record("queue", s.enq_us);
                mailbox_at.push(Some(t.now_us()));
            } else {
                mailbox_at.push(None);
            }
            enss.push(s.ens);
            txs.push(s.tx);
            traces.push(s.trace);
        }
        for (t, at) in traces.iter().zip(&mailbox_at) {
            if let (Some(t), Some(at)) = (t, at) {
                t.record("mailbox", *at);
            }
        }
        let results = solve_batch_on(inner, &enss, &traces);
        for (tx, r) in txs.into_iter().zip(results) {
            let _ = tx.send(r); // receiver may have given up; fine
        }
    }
}

enum Prep {
    Fail(EngineError),
    Go { uniq_ix: usize, col_of: Vec<u32> },
}

fn solve_batch_on(
    inner: &Inner,
    reqs: &[Ensemble],
    traces: &[Option<Arc<trace::ReqTrace>>],
) -> Vec<Result<Verdict, EngineError>> {
    inner.stats.batches.fetch_add(1, Ordering::Relaxed);
    inner.stats.requests.fetch_add(reqs.len() as u64, Ordering::Relaxed);
    // canonicalize + dedupe (first-occurrence order keeps runs deterministic)
    let mut key_ix: HashMap<Arc<[u8]>, usize> = HashMap::new();
    let mut uniq: Vec<(Arc<[u8]>, Ensemble)> = Vec::new();
    // the first occurrence's recorder follows the solve; within-batch
    // duplicates get a `coalesce` span over the wait instead
    let mut uniq_trace: Vec<Option<Arc<trace::ReqTrace>>> = Vec::new();
    let mut dup_waits: Vec<(Arc<trace::ReqTrace>, u64)> = Vec::new();
    let mut preps: Vec<Prep> = Vec::with_capacity(reqs.len());
    for (req_ix, req) in reqs.iter().enumerate() {
        let trace = traces.get(req_ix).cloned().flatten();
        if req.n_atoms() > inner.cfg.max_atoms {
            preps.push(Prep::Fail(EngineError::TooLarge {
                n_atoms: req.n_atoms(),
                max_atoms: inner.cfg.max_atoms,
            }));
            continue;
        }
        let c = canonical::canonicalize(req);
        let key: Arc<[u8]> = c.key.into();
        let uniq_ix = match key_ix.get(&key) {
            Some(&ix) => {
                // within-batch duplicate: rides the first occurrence's solve
                inner.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = trace {
                    let start = t.now_us();
                    dup_waits.push((t, start));
                }
                ix
            }
            None => {
                let ix = uniq.len();
                key_ix.insert(Arc::clone(&key), ix);
                uniq.push((key, c.ens));
                uniq_trace.push(trace);
                ix
            }
        };
        preps.push(Prep::Go { uniq_ix, col_of: c.col_of });
    }
    // solve the unique canonical instances on the shared pool
    let solved: Vec<Result<Verdict, EngineError>> = inner.pool.install(|| {
        use rayon::prelude::*;
        let cutoff = inner.cfg.small_cutoff;
        let mut out: Vec<Option<Result<Verdict, EngineError>>> = vec![None; uniq.len()];
        let small: Vec<usize> =
            (0..uniq.len()).filter(|&i| uniq[i].1.n_atoms() <= cutoff).collect();
        if !small.is_empty() {
            inner.stats.batched_small.fetch_add(small.len() as u64, Ordering::Relaxed);
            let fanned: Vec<(usize, Result<Verdict, EngineError>)> = small
                .par_iter()
                .map(|&i| {
                    (i, solve_canonical(inner, &uniq[i].0, &uniq[i].1, uniq_trace[i].as_deref()))
                })
                .collect();
            for (i, r) in fanned {
                out[i] = Some(r);
            }
        }
        for (i, (key, ens)) in uniq.iter().enumerate() {
            if ens.n_atoms() > cutoff {
                inner.stats.large_direct.fetch_add(1, Ordering::Relaxed);
                out[i] = Some(solve_canonical(inner, key, ens, uniq_trace[i].as_deref()));
            }
        }
        out.into_iter().map(|o| o.expect("every unique instance solved")).collect()
    });
    // duplicates waited exactly as long as the pool took to settle them
    for (t, start) in dup_waits {
        t.record("coalesce", start);
    }
    // remap canonical verdicts into each request's column coordinates
    preps
        .into_iter()
        .map(|p| match p {
            Prep::Fail(e) => Err(e),
            Prep::Go { uniq_ix, col_of } => {
                solved[uniq_ix].clone().map(|v| canonical::remap(v, &col_of))
            }
        })
        .collect()
}

/// Removes the pending entry and — if the owner never filled it (panic
/// unwinding through the solve) — poisons waiters with `ShuttingDown`
/// instead of leaving them blocked forever.
struct OwnerGuard<'a> {
    inner: &'a Inner,
    key: &'a Arc<[u8]>,
    flight: &'a InFlight,
}

impl Drop for OwnerGuard<'_> {
    fn drop(&mut self) {
        self.flight.fill(Err(EngineError::ShuttingDown)); // no-op if already filled
        self.inner.pending.lock().expect("pending lock").remove(self.key);
    }
}

/// Cache → coalesce → compute, for one canonical instance. Runs inside the
/// engine pool. A sampled request's recorder sees `cache` (the lookup),
/// then either `coalesce` (joined another request's in-flight solve) or
/// `solve` with the per-phase breakdown as `solve/<phase>` children.
fn solve_canonical(
    inner: &Inner,
    key: &Arc<[u8]>,
    canon: &Ensemble,
    trace: Option<&trace::ReqTrace>,
) -> Result<Verdict, EngineError> {
    let cache_at = trace.map(|t| t.now_us());
    let cached = inner.cache.lock().expect("cache lock").get(key);
    if let (Some(t), Some(at)) = (trace, cache_at) {
        t.record("cache", at);
    }
    if let Some(v) = cached {
        inner.stats.hits.fetch_add(1, Ordering::Relaxed);
        return Ok(v);
    }
    enum Role {
        Owner(Arc<InFlight>),
        Waiter(Arc<InFlight>),
    }
    let role = {
        let mut pending = inner.pending.lock().expect("pending lock");
        match pending.get(key) {
            Some(fl) => Role::Waiter(Arc::clone(fl)),
            None => {
                let fl = Arc::new(InFlight::default());
                pending.insert(Arc::clone(key), Arc::clone(&fl));
                Role::Owner(fl)
            }
        }
    };
    match role {
        Role::Waiter(fl) => {
            inner.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            let wait_at = trace.map(|t| t.now_us());
            let r = fl.wait();
            if let (Some(t), Some(at)) = (trace, wait_at) {
                t.record("coalesce", at);
            }
            r
        }
        Role::Owner(fl) => {
            inner.stats.misses.fetch_add(1, Ordering::Relaxed);
            let guard = OwnerGuard { inner, key, flight: &fl };
            let solve_at = trace.map(|t| t.now_us());
            let (verdict, stats) = compute(canon, &inner.cfg);
            if let (Some(t), Some(start)) = (trace, solve_at) {
                let end = t.now_us();
                t.record_span("solve", start, end);
                // lay the phase breakdown end-to-end inside the solve
                // span; on the parallel path summed CPU time can exceed
                // the wall interval and is truncated at the solve end
                let mut cursor = start;
                for (ix, name) in trace::SOLVE_PHASE_SPANS.iter().enumerate() {
                    let next = (cursor + stats.phase_ns[ix] / 1_000).min(end);
                    t.record_span(name, cursor, next);
                    cursor = next;
                }
            }
            inner.cache.lock().expect("cache lock").insert(Arc::clone(key), &verdict);
            fl.fill(Ok(verdict.clone()));
            drop(guard); // unpends; waiters already satisfied
            Ok(verdict)
        }
    }
}

/// The actual solve, in canonical column space. Small instances run the
/// sequential certified solver; large ones the parallel divide path (we
/// are already `install`ed on the engine pool). Returns the run's
/// counters alongside the verdict for phase attribution.
fn compute(canon: &Ensemble, cfg: &EngineConfig) -> (Verdict, SolveStats) {
    let (res, stats) = if canon.n_atoms() <= cfg.small_cutoff {
        c1p_cert::solve_certified_with(canon)
    } else {
        c1p_cert::solve_par_certified_with(canon)
    };
    let verdict = match res {
        Ok(order) => Verdict::C1p { order },
        Err(c) => Verdict::NotC1p { rejection: c.rejection, witness: c.witness },
    };
    (verdict, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::io::fig2_matrix;

    #[test]
    fn solve_and_submit_agree_on_fig2() {
        let engine = Engine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
        let ens = fig2_matrix();
        let direct = engine.solve(&ens).unwrap();
        let queued = engine.submit(ens.clone()).unwrap().wait().unwrap();
        assert_eq!(direct, queued);
        assert!(direct.is_c1p());
        let stats = engine.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn zero_capacity_queue_always_overloads() {
        let engine =
            Engine::new(EngineConfig { threads: 1, max_queue: 0, ..EngineConfig::default() });
        assert_eq!(engine.submit(fig2_matrix()).unwrap_err(), EngineError::Overloaded);
        assert_eq!(engine.stats().overloaded, 1);
    }

    #[test]
    fn oversized_instances_rejected_everywhere() {
        let engine =
            Engine::new(EngineConfig { threads: 1, max_atoms: 4, ..EngineConfig::default() });
        let ens = fig2_matrix(); // 8 atoms
        let expect = EngineError::TooLarge { n_atoms: 8, max_atoms: 4 };
        assert_eq!(engine.solve(&ens).unwrap_err(), expect);
        assert_eq!(engine.submit(ens).unwrap_err(), expect);
    }

    #[test]
    fn sessions_push_seal_and_feed_the_cache() {
        let engine = Engine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
        let ens = fig2_matrix();
        let id = engine.open_session(ens.n_atoms()).unwrap();
        let verdict = engine.session_push(id, &ens).unwrap();
        assert!(verdict.is_c1p());
        let sealed = engine.seal_session(id).unwrap();
        assert_eq!(verdict, sealed);
        // the session contract: sealed == one-shot on the accepted stream
        assert_eq!(sealed, Verdict::C1p { order: c1p_cert::solve_certified(&ens).unwrap() });
        assert_eq!(
            engine.seal_session(id).unwrap_err(),
            EngineError::NoSuchSession { id },
            "sealing closes the session"
        );
        // seal fed the cache with the *canonical* solve: a later solve of
        // the same ensemble hits, and stays byte-identical to what a cold
        // engine would answer (the §8 hot == cold invariant)
        let solved = engine.solve(&ens).unwrap();
        let cold = Engine::new(EngineConfig { threads: 1, ..EngineConfig::default() })
            .solve(&ens)
            .unwrap();
        assert_eq!(solved, cold, "session-seeded hit == cold solve, byte for byte");
        let stats = engine.stats();
        // the seal-time canonical solve is the one miss; the later solve
        // of the same ensemble is a pure hit
        assert_eq!((stats.hits, stats.misses), (1, 1), "seal fed the cache");
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_sealed, 1);
        assert_eq!(stats.session_pushes, 1);
        assert_eq!(stats.open_sessions, 0);
    }

    #[test]
    fn session_admission_and_mismatch_paths() {
        let engine = Engine::new(EngineConfig {
            threads: 1,
            max_sessions: 1,
            max_atoms: 16,
            max_session_columns: 2,
            ..EngineConfig::default()
        });
        assert_eq!(
            engine.open_session(17).unwrap_err(),
            EngineError::TooLarge { n_atoms: 17, max_atoms: 16 }
        );
        let id = engine.open_session(8).unwrap();
        assert_eq!(engine.open_session(8).unwrap_err(), EngineError::Overloaded);
        assert_eq!(
            engine.session_push(id, &Ensemble::new(9)).unwrap_err(),
            EngineError::SessionMismatch { session_atoms: 8, push_atoms: 9 }
        );
        assert_eq!(
            engine.session_push(id, &fig2_matrix()).unwrap_err(),
            EngineError::SessionFull { columns: 7, max_columns: 2 },
        );
        assert_eq!(
            engine.session_push(77, &Ensemble::new(8)).unwrap_err(),
            EngineError::NoSuchSession { id: 77 }
        );
    }

    #[test]
    fn session_byte_budget_bounds_opens_and_pushes() {
        let engine = Engine::new(EngineConfig {
            threads: 1,
            max_session_bytes: 200,
            ..EngineConfig::default()
        });
        // base account of a 100-atom session alone busts a 200-byte budget
        assert!(matches!(
            engine.open_session(100).unwrap_err(),
            EngineError::SessionOverBudget { bytes: 800, max_bytes: 200 }
        ));
        // a small session admits, then a push over the remaining budget is
        // refused — and the refusal leaves the session serving
        let id = engine.open_session(8).unwrap(); // base 64 bytes
        let fat = fig2_matrix(); // 7 columns ≥ 24 bytes each
        assert!(matches!(
            engine.session_push(id, &fat).unwrap_err(),
            EngineError::SessionOverBudget { .. }
        ));
        let small = Ensemble::from_columns(8, vec![vec![0, 1]]).unwrap(); // 32 bytes
        assert!(engine.session_push(id, &small).unwrap().is_c1p());
        assert!(engine.seal_session(id).unwrap().is_c1p());
    }

    #[test]
    fn idle_sessions_are_evicted_and_rejects_roll_back() {
        let engine = Engine::new(EngineConfig {
            threads: 1,
            session_idle_ms: 30,
            ..EngineConfig::default()
        });
        let id = engine.open_session(3).unwrap();
        // M_I(1): the 3-cycle rejects; the session survives at the
        // accepted (empty) state
        let delta = Ensemble::from_columns(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let v = engine.session_push(id, &delta).unwrap();
        assert!(!v.is_c1p());
        let ok = engine.session_push(id, &Ensemble::new(3)).unwrap();
        assert_eq!(ok, Verdict::C1p { order: vec![0, 1, 2] }, "rolled back to empty");
        assert_eq!(engine.stats().session_rejects, 1);
        // idle out
        std::thread::sleep(std::time::Duration::from_millis(80));
        assert_eq!(
            engine.session_push(id, &Ensemble::new(3)).unwrap_err(),
            EngineError::NoSuchSession { id }
        );
        let stats = engine.stats();
        assert_eq!(stats.sessions_evicted, 1);
        assert_eq!(stats.open_sessions, 0);
    }

    #[test]
    fn batch_mixes_failures_and_verdicts_positionally() {
        let engine =
            Engine::new(EngineConfig { threads: 1, max_atoms: 10, ..EngineConfig::default() });
        let small = fig2_matrix();
        let big = Ensemble::new(11);
        let results = engine.solve_batch(&[small.clone(), big, small]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(EngineError::TooLarge { .. })));
        assert_eq!(results[0], results[2]);
        // the duplicate deduped: one miss, and the duplicate resolved
        // inside the same batch without a second solve
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 1);
    }
}

//! # c1p-engine: a batched, caching C1P solve service
//!
//! The solver stack (`c1p-core` + `c1p-cert`) answers one instance per
//! call, paying a cold solve and — for the parallel driver — per-call pool
//! context every time. This crate turns it into a *served* workload
//! (ROADMAP north star; Raffinot and Chauve–Stephen–Tamayo both frame C1P
//! testing as a repeated-query primitive over evolving instance families):
//!
//! * **one shared pool** — [`Engine::new`] builds the work-stealing pool
//!   once; every request, batch and background drain runs `install`ed on
//!   it, so scheduling state is resolved per engine, not per call;
//! * **batching** — [`Engine::submit`] enqueues into a submission queue
//!   with admission control ([`EngineConfig::max_queue`]); a background
//!   batcher drains up to [`EngineConfig::max_batch`] requests at a time.
//!   Small instances (≤ [`EngineConfig::small_cutoff`] atoms) fan out
//!   *across* the pool — each solved sequentially, many at once — while
//!   large instances take the parallel divide path one at a time
//!   ([`c1p_core::parallel`]'s `solve_par`), which parallelizes *within*
//!   the instance;
//! * **caching** — results are keyed by the hash-consed canonical ensemble
//!   encoding (the documented rule: column order is canonicalized, atom
//!   numbering is not — see DESIGN.md §8) in a byte-budgeted LRU; the
//!   engine always solves the canonical form, so hot and cold answers are
//!   byte-identical, and identical in-flight requests coalesce onto one
//!   computation that eviction can never drop;
//! * **certified verdicts** — every answer is checkable: accepts carry a
//!   witness order, rejects a Tucker certificate
//!   ([`c1p_cert::verify_witness`]-checkable without trusting the engine).
//!
//! The wire front-end (`c1pd`, a std-only TCP server speaking the
//! length-prefixed [`proto`] frames) and its closed-loop traffic generator
//! (`load_driver`) live in `src/bin/`. DESIGN.md §8 specifies the formats
//! and policies.

mod cache;
mod canonical;
pub mod proto;

use c1p_cert::TuckerWitness;
use c1p_core::Rejection;
use c1p_matrix::io::WireVerdict;
use c1p_matrix::{Atom, Ensemble};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;

/// Engine configuration. `Default` is sized for a mixed small-instance
/// service on the current host.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads of the shared pool; `0` = host parallelism.
    pub threads: usize,
    /// LRU result-cache budget in bytes. `0` disables caching (in-flight
    /// coalescing still works — it lives outside the cache).
    pub cache_bytes: usize,
    /// Maximum requests drained into one batch by the background batcher.
    pub max_batch: usize,
    /// Instances with at most this many atoms are solved sequentially and
    /// batched across the pool; larger ones take the parallel divide path
    /// individually.
    pub small_cutoff: usize,
    /// Admission control: submissions beyond this queue depth are rejected
    /// with [`EngineError::Overloaded`].
    pub max_queue: usize,
    /// Admission control: instances with more atoms than this are rejected
    /// with [`EngineError::TooLarge`].
    pub max_atoms: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cache_bytes: 64 << 20,
            max_batch: 64,
            small_cutoff: 2048,
            max_queue: 4096,
            max_atoms: 1 << 22,
        }
    }
}

/// Why the engine refused (not failed to solve) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The submission queue is at [`EngineConfig::max_queue`].
    Overloaded,
    /// The instance exceeds [`EngineConfig::max_atoms`].
    TooLarge {
        /// Atoms in the rejected instance.
        n_atoms: usize,
        /// The configured limit.
        max_atoms: usize,
    },
    /// The engine is shutting down (or an in-flight owner panicked).
    ShuttingDown,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Overloaded => write!(f, "submission queue full"),
            EngineError::TooLarge { n_atoms, max_atoms } => {
                write!(f, "instance has {n_atoms} atoms, over the {max_atoms}-atom limit")
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A solved request: both sides are checkable without trusting the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// C1P: a witness atom order ([`c1p_matrix::verify_linear`]-checkable).
    C1p {
        /// The witness order.
        order: Vec<Atom>,
    },
    /// Not C1P: the solver's evidence plus the extracted Tucker
    /// certificate ([`c1p_cert::verify_witness`]-checkable).
    NotC1p {
        /// Evidence-carrying rejection (atom-space; column-order free).
        rejection: Rejection,
        /// The minimal Tucker submatrix witness, in request coordinates.
        witness: TuckerWitness,
    },
}

impl Verdict {
    /// Is this an accept?
    pub fn is_c1p(&self) -> bool {
        matches!(self, Verdict::C1p { .. })
    }

    /// The wire-format projection (drops the internal rejection evidence;
    /// clients re-verify the certificate instead of trusting it).
    pub fn to_wire(&self) -> WireVerdict {
        match self {
            Verdict::C1p { order } => WireVerdict::Accept { order: order.clone() },
            Verdict::NotC1p { witness, .. } => WireVerdict::Reject {
                family: witness.family,
                atom_rows: witness.atom_rows.clone(),
                column_ids: witness.column_ids.clone(),
            },
        }
    }
}

/// A point-in-time statistics snapshot ([`Engine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into [`Engine::solve`]/[`Engine::solve_batch`]
    /// (submissions included — the batcher funnels into `solve_batch`).
    pub requests: u64,
    /// `solve_batch` invocations (a single [`Engine::solve`] counts one).
    pub batches: u64,
    /// Result-cache hits.
    pub hits: u64,
    /// Cold solves (cache misses that became the computing owner).
    pub misses: u64,
    /// Requests that found their instance already in flight and waited for
    /// the owner instead of recomputing.
    pub coalesced: u64,
    /// Submissions rejected by admission control.
    pub overloaded: u64,
    /// Small instances fanned out across the pool.
    pub batched_small: u64,
    /// Large instances routed through the parallel divide path.
    pub large_direct: u64,
    /// Entries evicted from the result cache.
    pub evictions: u64,
    /// Entries inserted into the result cache.
    pub insertions: u64,
    /// Verdicts too large for the cache budget (never inserted).
    pub uncacheable: u64,
    /// Current result-cache entry count.
    pub cache_entries: u64,
    /// Current result-cache footprint in accounted bytes.
    pub cache_bytes: u64,
}

impl EngineStats {
    /// Hit fraction among cache lookups that finished (hits + cold solves).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Renders the snapshot as a flat JSON object (the `Stats` frame body).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"batches\": {}, \"hits\": {}, \"misses\": {}, \
             \"coalesced\": {}, \"overloaded\": {}, \"batched_small\": {}, \
             \"large_direct\": {}, \"evictions\": {}, \"insertions\": {}, \
             \"uncacheable\": {}, \"cache_entries\": {}, \"cache_bytes\": {}, \
             \"hit_rate\": {:.4}}}",
            self.requests,
            self.batches,
            self.hits,
            self.misses,
            self.coalesced,
            self.overloaded,
            self.batched_small,
            self.large_direct,
            self.evictions,
            self.insertions,
            self.uncacheable,
            self.cache_entries,
            self.cache_bytes,
            self.hit_rate(),
        )
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    overloaded: AtomicU64,
    batched_small: AtomicU64,
    large_direct: AtomicU64,
}

/// One in-flight computation; waiters block on the condvar, the owner
/// fills exactly once. Lives in the pending map, *not* the cache, so
/// eviction can never touch it.
#[derive(Default)]
struct InFlight {
    state: Mutex<Option<Result<Verdict, EngineError>>>,
    cv: Condvar,
}

impl InFlight {
    fn wait(&self) -> Result<Verdict, EngineError> {
        let mut g = self.state.lock().expect("in-flight lock");
        while g.is_none() {
            g = self.cv.wait(g).expect("in-flight wait");
        }
        g.as_ref().expect("filled").clone()
    }

    fn fill(&self, r: Result<Verdict, EngineError>) {
        let mut g = self.state.lock().expect("in-flight lock");
        if g.is_none() {
            *g = Some(r);
        }
        self.cv.notify_all();
    }
}

struct Submission {
    ens: Ensemble,
    tx: mpsc::Sender<Result<Verdict, EngineError>>,
}

struct QueueState {
    items: VecDeque<Submission>,
    shutdown: bool,
}

struct Inner {
    cfg: EngineConfig,
    pool: rayon::ThreadPool,
    cache: Mutex<cache::ResultCache>,
    pending: Mutex<HashMap<Arc<[u8]>, Arc<InFlight>>>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    stats: Counters,
}

/// The multi-tenant solve engine. Cheap to share behind an [`Arc`]; all
/// entry points take `&self`.
pub struct Engine {
    inner: Arc<Inner>,
    batcher: Option<thread::JoinHandle<()>>,
}

/// Handle to a queued submission; [`Ticket::wait`] blocks for the verdict.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Verdict, EngineError>>,
}

impl Ticket {
    /// Blocks until the batcher answers this submission.
    pub fn wait(self) -> Result<Verdict, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::ShuttingDown))
    }
}

impl Engine {
    /// Builds the engine: one shared pool, an empty cache, and the
    /// background batcher thread.
    pub fn new(cfg: EngineConfig) -> Engine {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.threads)
            .build()
            .expect("engine pool construction");
        let inner = Arc::new(Inner {
            cache: Mutex::new(cache::ResultCache::new(cfg.cache_bytes)),
            pending: Mutex::new(HashMap::new()),
            queue: Mutex::new(QueueState { items: VecDeque::new(), shutdown: false }),
            queue_cv: Condvar::new(),
            stats: Counters::default(),
            pool,
            cfg,
        });
        let batcher = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("c1p-engine-batcher".into())
                .spawn(move || batcher_loop(&inner))
                .expect("spawn batcher thread")
        };
        Engine { inner, batcher: Some(batcher) }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// Solves one instance through the cache, synchronously.
    pub fn solve(&self, req: &Ensemble) -> Result<Verdict, EngineError> {
        self.solve_batch(std::slice::from_ref(req)).pop().expect("one result per request")
    }

    /// Solves a batch: small instances fan out across the shared pool,
    /// large ones run the parallel divide path one at a time; duplicate
    /// instances inside the batch are deduplicated through the cache
    /// machinery. `results[i]` answers `reqs[i]`.
    pub fn solve_batch(&self, reqs: &[Ensemble]) -> Vec<Result<Verdict, EngineError>> {
        solve_batch_on(&self.inner, reqs)
    }

    /// Enqueues an instance for the background batcher. Fails fast with
    /// [`EngineError::Overloaded`] at [`EngineConfig::max_queue`] depth.
    pub fn submit(&self, ens: Ensemble) -> Result<Ticket, EngineError> {
        if ens.n_atoms() > self.inner.cfg.max_atoms {
            return Err(EngineError::TooLarge {
                n_atoms: ens.n_atoms(),
                max_atoms: self.inner.cfg.max_atoms,
            });
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            if q.shutdown {
                return Err(EngineError::ShuttingDown);
            }
            if q.items.len() >= self.inner.cfg.max_queue {
                self.inner.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Overloaded);
            }
            q.items.push_back(Submission { ens, tx });
        }
        self.inner.queue_cv.notify_one();
        Ok(Ticket { rx })
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        let s = &self.inner.stats;
        let (entries, bytes, evictions, insertions, uncacheable) = {
            let c = self.inner.cache.lock().expect("cache lock");
            (c.entries() as u64, c.bytes() as u64, c.evictions, c.insertions, c.uncacheable)
        };
        EngineStats {
            requests: s.requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            overloaded: s.overloaded.load(Ordering::Relaxed),
            batched_small: s.batched_small.load(Ordering::Relaxed),
            large_direct: s.large_direct.load(Ordering::Relaxed),
            evictions,
            insertions,
            uncacheable,
            cache_entries: entries,
            cache_bytes: bytes,
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            q.shutdown = true;
        }
        self.inner.queue_cv.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

/// Drains the submission queue in batches until shutdown (then drains the
/// backlog and exits).
fn batcher_loop(inner: &Inner) {
    loop {
        let batch: Vec<Submission> = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if !q.items.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = inner.queue_cv.wait(q).expect("queue wait");
            }
            let take = q.items.len().min(inner.cfg.max_batch.max(1));
            q.items.drain(..take).collect()
        };
        let (enss, txs): (Vec<_>, Vec<_>) = batch.into_iter().map(|s| (s.ens, s.tx)).unzip();
        let results = solve_batch_on(inner, &enss);
        for (tx, r) in txs.into_iter().zip(results) {
            let _ = tx.send(r); // receiver may have given up; fine
        }
    }
}

enum Prep {
    Fail(EngineError),
    Go { uniq_ix: usize, col_of: Vec<u32> },
}

fn solve_batch_on(inner: &Inner, reqs: &[Ensemble]) -> Vec<Result<Verdict, EngineError>> {
    inner.stats.batches.fetch_add(1, Ordering::Relaxed);
    inner.stats.requests.fetch_add(reqs.len() as u64, Ordering::Relaxed);
    // canonicalize + dedupe (first-occurrence order keeps runs deterministic)
    let mut key_ix: HashMap<Arc<[u8]>, usize> = HashMap::new();
    let mut uniq: Vec<(Arc<[u8]>, Ensemble)> = Vec::new();
    let mut preps: Vec<Prep> = Vec::with_capacity(reqs.len());
    for req in reqs {
        if req.n_atoms() > inner.cfg.max_atoms {
            preps.push(Prep::Fail(EngineError::TooLarge {
                n_atoms: req.n_atoms(),
                max_atoms: inner.cfg.max_atoms,
            }));
            continue;
        }
        let c = canonical::canonicalize(req);
        let key: Arc<[u8]> = c.key.into();
        let uniq_ix = match key_ix.get(&key) {
            Some(&ix) => {
                // within-batch duplicate: rides the first occurrence's solve
                inner.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                ix
            }
            None => {
                let ix = uniq.len();
                key_ix.insert(Arc::clone(&key), ix);
                uniq.push((key, c.ens));
                ix
            }
        };
        preps.push(Prep::Go { uniq_ix, col_of: c.col_of });
    }
    // solve the unique canonical instances on the shared pool
    let solved: Vec<Result<Verdict, EngineError>> = inner.pool.install(|| {
        use rayon::prelude::*;
        let cutoff = inner.cfg.small_cutoff;
        let mut out: Vec<Option<Result<Verdict, EngineError>>> = vec![None; uniq.len()];
        let small: Vec<usize> =
            (0..uniq.len()).filter(|&i| uniq[i].1.n_atoms() <= cutoff).collect();
        if !small.is_empty() {
            inner.stats.batched_small.fetch_add(small.len() as u64, Ordering::Relaxed);
            let fanned: Vec<(usize, Result<Verdict, EngineError>)> = small
                .par_iter()
                .map(|&i| (i, solve_canonical(inner, &uniq[i].0, &uniq[i].1)))
                .collect();
            for (i, r) in fanned {
                out[i] = Some(r);
            }
        }
        for (i, (key, ens)) in uniq.iter().enumerate() {
            if ens.n_atoms() > cutoff {
                inner.stats.large_direct.fetch_add(1, Ordering::Relaxed);
                out[i] = Some(solve_canonical(inner, key, ens));
            }
        }
        out.into_iter().map(|o| o.expect("every unique instance solved")).collect()
    });
    // remap canonical verdicts into each request's column coordinates
    preps
        .into_iter()
        .map(|p| match p {
            Prep::Fail(e) => Err(e),
            Prep::Go { uniq_ix, col_of } => {
                solved[uniq_ix].clone().map(|v| canonical::remap(v, &col_of))
            }
        })
        .collect()
}

/// Removes the pending entry and — if the owner never filled it (panic
/// unwinding through the solve) — poisons waiters with `ShuttingDown`
/// instead of leaving them blocked forever.
struct OwnerGuard<'a> {
    inner: &'a Inner,
    key: &'a Arc<[u8]>,
    flight: &'a InFlight,
}

impl Drop for OwnerGuard<'_> {
    fn drop(&mut self) {
        self.flight.fill(Err(EngineError::ShuttingDown)); // no-op if already filled
        self.inner.pending.lock().expect("pending lock").remove(self.key);
    }
}

/// Cache → coalesce → compute, for one canonical instance. Runs inside the
/// engine pool.
fn solve_canonical(
    inner: &Inner,
    key: &Arc<[u8]>,
    canon: &Ensemble,
) -> Result<Verdict, EngineError> {
    if let Some(v) = inner.cache.lock().expect("cache lock").get(key) {
        inner.stats.hits.fetch_add(1, Ordering::Relaxed);
        return Ok(v);
    }
    enum Role {
        Owner(Arc<InFlight>),
        Waiter(Arc<InFlight>),
    }
    let role = {
        let mut pending = inner.pending.lock().expect("pending lock");
        match pending.get(key) {
            Some(fl) => Role::Waiter(Arc::clone(fl)),
            None => {
                let fl = Arc::new(InFlight::default());
                pending.insert(Arc::clone(key), Arc::clone(&fl));
                Role::Owner(fl)
            }
        }
    };
    match role {
        Role::Waiter(fl) => {
            inner.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            fl.wait()
        }
        Role::Owner(fl) => {
            inner.stats.misses.fetch_add(1, Ordering::Relaxed);
            let guard = OwnerGuard { inner, key, flight: &fl };
            let verdict = compute(canon, &inner.cfg);
            inner.cache.lock().expect("cache lock").insert(Arc::clone(key), &verdict);
            fl.fill(Ok(verdict.clone()));
            drop(guard); // unpends; waiters already satisfied
            Ok(verdict)
        }
    }
}

/// The actual solve, in canonical column space. Small instances run the
/// sequential certified solver; large ones the parallel divide path (we
/// are already `install`ed on the engine pool).
fn compute(canon: &Ensemble, cfg: &EngineConfig) -> Verdict {
    let res = if canon.n_atoms() <= cfg.small_cutoff {
        c1p_cert::solve_certified(canon)
    } else {
        c1p_cert::solve_par_certified(canon)
    };
    match res {
        Ok(order) => Verdict::C1p { order },
        Err(c) => Verdict::NotC1p { rejection: c.rejection, witness: c.witness },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::io::fig2_matrix;

    #[test]
    fn solve_and_submit_agree_on_fig2() {
        let engine = Engine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
        let ens = fig2_matrix();
        let direct = engine.solve(&ens).unwrap();
        let queued = engine.submit(ens.clone()).unwrap().wait().unwrap();
        assert_eq!(direct, queued);
        assert!(direct.is_c1p());
        let stats = engine.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn zero_capacity_queue_always_overloads() {
        let engine =
            Engine::new(EngineConfig { threads: 1, max_queue: 0, ..EngineConfig::default() });
        assert_eq!(engine.submit(fig2_matrix()).unwrap_err(), EngineError::Overloaded);
        assert_eq!(engine.stats().overloaded, 1);
    }

    #[test]
    fn oversized_instances_rejected_everywhere() {
        let engine =
            Engine::new(EngineConfig { threads: 1, max_atoms: 4, ..EngineConfig::default() });
        let ens = fig2_matrix(); // 8 atoms
        let expect = EngineError::TooLarge { n_atoms: 8, max_atoms: 4 };
        assert_eq!(engine.solve(&ens).unwrap_err(), expect);
        assert_eq!(engine.submit(ens).unwrap_err(), expect);
    }

    #[test]
    fn batch_mixes_failures_and_verdicts_positionally() {
        let engine =
            Engine::new(EngineConfig { threads: 1, max_atoms: 10, ..EngineConfig::default() });
        let small = fig2_matrix();
        let big = Ensemble::new(11);
        let results = engine.solve_batch(&[small.clone(), big, small]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(EngineError::TooLarge { .. })));
        assert_eq!(results[0], results[2]);
        // the duplicate deduped: one miss, and the duplicate resolved
        // inside the same batch without a second solve
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 1);
    }
}

//! The cache-keying rule (DESIGN.md §8): **canonicalization = sort the
//! columns lexicographically; atoms are untouched**.
//!
//! Two requests share a cache entry iff they have the same atom count and
//! the same *multiset of columns* — i.e. they differ only by a permutation
//! of the column order. Renumbering atoms changes the column contents and
//! therefore the key (a deliberate miss: a witness order is not invariant
//! under atom relabeling, so caching across relabelings would require
//! solving graph canonization, which costs more than the solve it saves).
//!
//! The key is the hash-consed wire encoding of the canonical ensemble
//! ([`c1p_matrix::io::encode_ensemble`]): one allocation doubles as the
//! equality witness for the cache map and the exact byte count for the
//! cache's size accounting.
//!
//! The engine always *solves the canonical form* — a hit and a cold solve
//! therefore return byte-identical verdicts for the same request, and a
//! column-permuted request differs from its twin only in the (remapped)
//! witness column ids.

use crate::Verdict;
use c1p_cert::TuckerWitness;
use c1p_matrix::{io, Atom, Ensemble};

/// A request reduced to canonical form.
pub(crate) struct Canonical {
    /// The canonical ensemble (columns sorted lexicographically).
    pub ens: Ensemble,
    /// `col_of[j]` = the request column id of canonical column `j`.
    pub col_of: Vec<u32>,
    /// Wire encoding of `ens` — the cache key.
    pub key: Vec<u8>,
}

pub(crate) fn canonicalize(req: &Ensemble) -> Canonical {
    let mut idx: Vec<u32> = (0..req.n_columns() as u32).collect();
    idx.sort_by(|&a, &b| {
        req.column(a as usize).cmp(req.column(b as usize)).then_with(|| a.cmp(&b))
    });
    let cols: Vec<Vec<Atom>> = idx.iter().map(|&i| req.column(i as usize).to_vec()).collect();
    let ens = Ensemble::from_sorted_columns(req.n_atoms(), cols)
        .expect("column reordering preserves validity");
    let key = io::encode_ensemble(&ens);
    Canonical { ens, col_of: idx, key }
}

/// Maps a canonical-space verdict back into the request's column ids.
/// Accept orders and rejection evidence are atom-space (column-order
/// independent); only the witness's column ids need remapping, and they
/// are re-sorted to keep [`TuckerWitness`]'s sortedness contract.
pub(crate) fn remap(v: Verdict, col_of: &[u32]) -> Verdict {
    match v {
        Verdict::C1p { .. } => v,
        Verdict::NotC1p { rejection, witness } => {
            let mut column_ids: Vec<u32> =
                witness.column_ids.iter().map(|&j| col_of[j as usize]).collect();
            column_ids.sort_unstable();
            Verdict::NotC1p {
                rejection,
                witness: TuckerWitness {
                    family: witness.family,
                    atom_rows: witness.atom_rows,
                    column_ids,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_permutation_shares_a_key_atom_renumbering_does_not() {
        let a = Ensemble::from_columns(4, vec![vec![0, 1], vec![1, 2, 3], vec![2, 3]]).unwrap();
        let b = Ensemble::from_columns(4, vec![vec![2, 3], vec![0, 1], vec![1, 2, 3]]).unwrap();
        assert_eq!(canonicalize(&a).key, canonicalize(&b).key);
        let c = a.permute_atoms(&[3, 2, 1, 0]);
        assert_ne!(canonicalize(&a).key, canonicalize(&c).key);
    }

    #[test]
    fn col_of_inverts_the_sort() {
        let req = Ensemble::from_columns(3, vec![vec![1, 2], vec![0, 1], vec![0, 1, 2]]).unwrap();
        let c = canonicalize(&req);
        for (j, &orig) in c.col_of.iter().enumerate() {
            assert_eq!(c.ens.column(j), req.column(orig as usize));
        }
    }

    #[test]
    fn duplicate_columns_keep_distinct_ids() {
        let req = Ensemble::from_columns(3, vec![vec![0, 1], vec![0, 1]]).unwrap();
        let c = canonicalize(&req);
        let mut ids = c.col_of.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }
}

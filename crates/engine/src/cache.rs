//! The fingerprint-keyed result cache: an LRU over hash-consed canonical
//! ensemble encodings with byte-level size accounting.
//!
//! Only *finished* verdicts live here; in-flight computations are pinned in
//! the engine's separate pending map, so eviction can never drop an entry a
//! waiter is about to read (the "eviction never drops an in-flight entry"
//! invariant holds by construction, not by a flag).
//!
//! Eviction is strict LRU by touch order, driven by a byte budget: entries
//! are charged their key length plus the verdict payload plus a fixed
//! per-entry overhead, and the oldest entries are dropped until the budget
//! holds. A single entry larger than the whole budget is never inserted
//! (counted in `uncacheable`) — inserting it would evict the entire cache
//! for a value that is itself immediately evicted.

use crate::Verdict;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Approximate bookkeeping overhead per entry (map nodes, `Arc` headers,
/// the `Slot` itself). The accounting is a budget, not an audit; the
/// constant just keeps "a million empty entries" from reading as zero.
const ENTRY_OVERHEAD: usize = 96;

pub(crate) struct ResultCache {
    cap: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<Arc<[u8]>, Slot>,
    /// touch-tick → key; the leftmost entry is the eviction victim.
    lru: BTreeMap<u64, Arc<[u8]>>,
    pub evictions: u64,
    pub insertions: u64,
    pub uncacheable: u64,
    /// Hits on entries loaded from a snapshot ([`ResultCache::insert_warm`])
    /// — the proof a restart actually answered hot (DESIGN.md §10).
    pub warm_start_hits: u64,
}

struct Slot {
    verdict: Verdict,
    bytes: usize,
    tick: u64,
    /// Loaded from a snapshot rather than solved by this process.
    warmed: bool,
}

impl ResultCache {
    pub fn new(cap: usize) -> Self {
        ResultCache {
            cap,
            bytes: 0,
            tick: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            evictions: 0,
            insertions: 0,
            uncacheable: 0,
            warm_start_hits: 0,
        }
    }

    pub fn entries(&self) -> usize {
        self.map.len()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Looks up a canonical key, refreshing its LRU position on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<Verdict> {
        let shared = self.map.get_key_value(key)?.0.clone();
        self.tick += 1;
        let tick = self.tick;
        let slot = self.map.get_mut(key).expect("key just seen");
        if slot.warmed {
            self.warm_start_hits += 1;
        }
        self.lru.remove(&slot.tick);
        slot.tick = tick;
        self.lru.insert(tick, shared);
        Some(slot.verdict.clone())
    }

    /// Inserts a finished verdict, then evicts least-recently-used entries
    /// until the byte budget holds again.
    pub fn insert(&mut self, key: Arc<[u8]>, verdict: &Verdict) {
        self.insert_inner(key, verdict, false);
    }

    /// [`ResultCache::insert`], but the entry is marked as loaded from a
    /// snapshot: hits on it count `warm_start_hits`. Callers insert
    /// snapshot entries oldest-touched first so the restored LRU order
    /// matches the one the snapshot captured.
    pub fn insert_warm(&mut self, key: Arc<[u8]>, verdict: &Verdict) {
        self.insert_inner(key, verdict, true);
    }

    fn insert_inner(&mut self, key: Arc<[u8]>, verdict: &Verdict, warmed: bool) {
        let bytes = ENTRY_OVERHEAD + key.len() + verdict_bytes(verdict);
        if bytes > self.cap {
            self.uncacheable += 1;
            return;
        }
        if self.map.contains_key(&*key) {
            return; // lost a benign race; the existing entry is identical
        }
        self.tick += 1;
        self.map
            .insert(key.clone(), Slot { verdict: verdict.clone(), bytes, tick: self.tick, warmed });
        self.lru.insert(self.tick, key);
        self.bytes += bytes;
        self.insertions += 1;
        while self.bytes > self.cap {
            let (&victim_tick, _) = self.lru.iter().next().expect("bytes > 0 implies entries");
            let victim = self.lru.remove(&victim_tick).expect("tick just seen");
            let slot = self.map.remove(&victim).expect("lru and map agree");
            self.bytes -= slot.bytes;
            self.evictions += 1;
        }
    }

    /// Every live entry in LRU order, oldest-touched first — the snapshot
    /// image order, chosen so that replaying the list through
    /// [`ResultCache::insert_warm`] reproduces the eviction order.
    pub fn snapshot_entries(&self) -> Vec<(Arc<[u8]>, Verdict)> {
        self.lru
            .values()
            .map(|key| {
                let slot = &self.map[key];
                (key.clone(), slot.verdict.clone())
            })
            .collect()
    }
}

fn verdict_bytes(v: &Verdict) -> usize {
    match v {
        Verdict::C1p { order } => 4 * order.len(),
        Verdict::NotC1p { rejection, witness } => {
            32 + 4 * (rejection.atoms.len() + witness.atom_rows.len() + witness.column_ids.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8, len: usize) -> Arc<[u8]> {
        vec![b; len].into()
    }

    fn accept(n: usize) -> Verdict {
        Verdict::C1p { order: (0..n as u32).collect() }
    }

    #[test]
    fn lru_evicts_oldest_untouched_entry() {
        // each entry: 96 + 8 (key) + 40 (order) = 144 bytes; budget fits two
        let mut c = ResultCache::new(300);
        c.insert(key(1, 8), &accept(10));
        c.insert(key(2, 8), &accept(10));
        assert_eq!(c.entries(), 2);
        // touch 1 so 2 becomes the LRU victim
        assert!(c.get(&[1u8; 8]).is_some());
        c.insert(key(3, 8), &accept(10));
        assert_eq!(c.entries(), 2);
        assert!(c.get(&[1u8; 8]).is_some());
        assert!(c.get(&[2u8; 8]).is_none(), "untouched entry evicted");
        assert!(c.get(&[3u8; 8]).is_some());
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn byte_accounting_balances() {
        let mut c = ResultCache::new(10_000);
        for i in 0..20 {
            c.insert(key(i, 16), &accept(i as usize));
        }
        let expect: usize = (0..20).map(|i| ENTRY_OVERHEAD + 16 + 4 * i).sum();
        assert_eq!(c.bytes(), expect);
        assert_eq!(c.insertions, 20);
        assert_eq!(c.evictions, 0);
    }

    #[test]
    fn warm_start_round_trip_preserves_lru_order_and_counts_hits() {
        let mut c = ResultCache::new(10_000);
        for i in 0..4 {
            c.insert(key(i, 8), &accept(4));
        }
        assert!(c.get(&[0u8; 8]).is_some()); // 0 becomes newest
        assert_eq!(c.warm_start_hits, 0, "cold entries never count as warm");
        // snapshot → rebuild warm: same entries, same eviction order
        let snap = c.snapshot_entries();
        assert_eq!(snap.len(), 4);
        assert_eq!(&*snap[0].0, &[1u8; 8][..], "oldest-touched first");
        assert_eq!(&*snap[3].0, &[0u8; 8][..]);
        let mut w = ResultCache::new(10_000);
        for (k, v) in &snap {
            w.insert_warm(k.clone(), v);
        }
        assert!(w.get(&[2u8; 8]).is_some());
        assert!(w.get(&[2u8; 8]).is_some());
        assert_eq!(w.warm_start_hits, 2);
        // a fresh (cold) insert over the warm cache evicts the snapshot's
        // oldest entry first
        let mut tight = ResultCache::new(2 * (ENTRY_OVERHEAD + 8 + 16));
        tight.insert_warm(snap[0].0.clone(), &snap[0].1);
        tight.insert_warm(snap[1].0.clone(), &snap[1].1);
        tight.insert(key(9, 8), &accept(4));
        assert!(tight.get(&snap[0].0).is_none(), "snapshot's LRU victim evicted");
        assert!(tight.get(&snap[1].0).is_some());
    }

    #[test]
    fn oversized_entries_are_never_inserted() {
        let mut c = ResultCache::new(200);
        c.insert(key(1, 8), &accept(1000)); // 4k payload vs 200-byte budget
        assert_eq!(c.entries(), 0);
        assert_eq!(c.uncacheable, 1);
        // and a zero-budget cache caches nothing at all
        let mut z = ResultCache::new(0);
        z.insert(key(2, 8), &accept(1));
        assert_eq!(z.entries(), 0);
    }
}

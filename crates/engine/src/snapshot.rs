//! Result-cache snapshots: warm-start for a restarted server
//! (DESIGN.md §10).
//!
//! A snapshot is the cache's canonical-key → verdict map, serialized with
//! the same wire encodings the cache keys already use:
//!
//! ```text
//! snapshot := magic "C1PS" | version u8 | count u32 LE | entry*
//!           | crc u64 LE                 -- fnv1a over everything before it
//! entry    := klen u32 LE | key (C1PW ensemble wire bytes)
//!           | vlen u32 LE | verdict (C1PW verdict wire bytes)
//!           | site u8 | natoms u32 LE | atoms (u32 LE)*
//!              -- site 0 on accepts (no atoms); 1..=3 on rejects, carrying
//!              -- the engine-side rejection evidence the wire verdict drops
//! ```
//!
//! **Atomicity:** [`write()`] builds the whole image in memory, writes it to
//! `cache.c1ps.tmp`, fsyncs, renames over `cache.c1ps`, and fsyncs the
//! directory. A reader therefore sees either the old snapshot or the new
//! one, never a mixture; a crash mid-write leaves at most a stale `.tmp`
//! that the next write overwrites.
//!
//! **Loading is as paranoid as any other wire input:** every length is
//! bounds-checked against the bytes actually present *before* any
//! allocation, the whole-file checksum is verified first, and every key
//! and verdict goes through the structured `decode_ensemble` /
//! `decode_verdict` paths. Any defect yields a structured
//! [`SnapshotDamage`] — the caller quarantines the file and cold-starts;
//! a snapshot can never panic the server or plant a wrong verdict.

use crate::Verdict;
use c1p_cert::TuckerWitness;
use c1p_core::{RejectSite, Rejection};
use c1p_matrix::io::{decode_ensemble, decode_verdict, encode_verdict, fnv1a, WireVerdict};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

const SNAP_MAGIC: [u8; 4] = *b"C1PS";
const SNAP_VERSION: u8 = 1;

/// The live snapshot file inside a durability directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("cache.c1ps")
}

/// Why a snapshot was refused. Reported, never acted on here: the caller
/// decides to quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDamage {
    /// Human-readable reason (offset-carrying where possible).
    pub reason: String,
}

fn site_tag(site: RejectSite) -> u8 {
    match site {
        RejectSite::PqBase => 1,
        RejectSite::Merge => 2,
        RejectSite::Align => 3,
    }
}

fn site_from_tag(tag: u8) -> Option<RejectSite> {
    match tag {
        1 => Some(RejectSite::PqBase),
        2 => Some(RejectSite::Merge),
        3 => Some(RejectSite::Align),
        _ => None,
    }
}

/// Serializes cache entries (canonical key, verdict) into a snapshot
/// image.
pub fn encode(entries: &[(&[u8], &Verdict)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + entries.iter().map(|(k, _)| k.len() + 64).sum::<usize>());
    out.extend_from_slice(&SNAP_MAGIC);
    out.push(SNAP_VERSION);
    out.extend_from_slice(
        &u32::try_from(entries.len()).expect("entry count fits u32").to_le_bytes(),
    );
    for (key, verdict) in entries {
        let vbytes = encode_verdict(&verdict.to_wire());
        out.extend_from_slice(&u32::try_from(key.len()).expect("key fits u32").to_le_bytes());
        out.extend_from_slice(key);
        out.extend_from_slice(
            &u32::try_from(vbytes.len()).expect("verdict fits u32").to_le_bytes(),
        );
        out.extend_from_slice(&vbytes);
        match verdict {
            Verdict::C1p { .. } => out.push(0),
            Verdict::NotC1p { rejection, .. } => {
                out.push(site_tag(rejection.site));
                let atoms = &rejection.atoms;
                out.extend_from_slice(
                    &u32::try_from(atoms.len()).expect("atom count fits u32").to_le_bytes(),
                );
                for &a in atoms {
                    out.extend_from_slice(&a.to_le_bytes());
                }
            }
        }
    }
    let crc = fnv1a(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotDamage> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            SnapshotDamage {
                reason: format!("{what} at byte {} runs past the end of the snapshot", self.at),
            }
        })?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotDamage> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotDamage> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
}

/// Decodes a snapshot image back into (canonical key, verdict) pairs, in
/// the order they were written (oldest-touched first — re-inserting in
/// order reproduces the LRU ordering).
pub fn decode(buf: &[u8]) -> Result<Vec<(Vec<u8>, Verdict)>, SnapshotDamage> {
    if buf.len() < SNAP_MAGIC.len() + 1 + 4 + 8 {
        return Err(SnapshotDamage { reason: "file shorter than an empty snapshot".to_string() });
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 8);
    let crc = u64::from_le_bytes(crc_bytes.try_into().unwrap());
    if fnv1a(body) != crc {
        return Err(SnapshotDamage { reason: "whole-file checksum mismatch".to_string() });
    }
    let mut c = Cursor { buf: body, at: 0 };
    if c.take(4, "magic")? != SNAP_MAGIC {
        return Err(SnapshotDamage { reason: "bad magic".to_string() });
    }
    let version = c.u8("version")?;
    if version != SNAP_VERSION {
        return Err(SnapshotDamage { reason: format!("unsupported snapshot version {version}") });
    }
    let count = c.u32("entry count")? as usize;
    // bounds-check before allocation: even an empty entry takes ≥ 9 bytes
    if count > body.len() / 9 {
        return Err(SnapshotDamage {
            reason: format!("entry count {count} impossible for a {}-byte file", buf.len()),
        });
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let klen = c.u32("key length")? as usize;
        let key = c.take(klen, "key")?;
        decode_ensemble(key).map_err(|e| SnapshotDamage {
            reason: format!("entry {i}: key is not a valid ensemble encoding: {e}"),
        })?;
        let vlen = c.u32("verdict length")? as usize;
        let vbytes = c.take(vlen, "verdict")?;
        let wire = decode_verdict(vbytes)
            .map_err(|e| SnapshotDamage { reason: format!("entry {i}: bad verdict: {e}") })?;
        let site = c.u8("rejection site")?;
        let verdict = match (wire, site) {
            (WireVerdict::Accept { order }, 0) => Verdict::C1p { order },
            (WireVerdict::Accept { .. }, s) => {
                return Err(SnapshotDamage {
                    reason: format!("entry {i}: accept carries rejection site {s}"),
                });
            }
            (WireVerdict::Reject { family, atom_rows, column_ids }, s) => {
                let site = site_from_tag(s).ok_or_else(|| SnapshotDamage {
                    reason: format!("entry {i}: unknown rejection site {s}"),
                })?;
                let natoms = c.u32("rejection atom count")? as usize;
                // bounds-check before allocation
                if natoms > (body.len() - c.at) / 4 {
                    return Err(SnapshotDamage {
                        reason: format!("entry {i}: rejection atom count {natoms} overruns file"),
                    });
                }
                let mut atoms = Vec::with_capacity(natoms);
                for _ in 0..natoms {
                    atoms
                        .push(u32::from_le_bytes(c.take(4, "rejection atom")?.try_into().unwrap()));
                }
                Verdict::NotC1p {
                    rejection: Rejection { site, atoms },
                    witness: TuckerWitness { family, atom_rows, column_ids },
                }
            }
        };
        out.push((key.to_vec(), verdict));
    }
    if c.at != body.len() {
        return Err(SnapshotDamage {
            reason: format!("{} trailing bytes after the last entry", body.len() - c.at),
        });
    }
    Ok(out)
}

/// Writes a snapshot atomically: whole image to `cache.c1ps.tmp`, fsync,
/// rename over `cache.c1ps`, directory fsync.
pub fn write(dir: &Path, entries: &[(&[u8], &Verdict)]) -> std::io::Result<()> {
    let image = encode(entries);
    let tmp = dir.join("cache.c1ps.tmp");
    let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
    f.write_all(&image)?;
    f.sync_data()?;
    drop(f);
    std::fs::rename(&tmp, snapshot_path(dir))?;
    crate::wal::sync_dir(dir);
    Ok(())
}

/// Decoded snapshot entries: canonical cache key → finished verdict.
pub type SnapshotEntries = Vec<(Vec<u8>, Verdict)>;

/// Loads the live snapshot, if any. `Ok(None)` means no snapshot exists
/// (a cold start, not an error); `Err` means the file exists but is
/// damaged — the caller quarantines it and cold-starts.
pub fn load(dir: &Path) -> Result<Option<SnapshotEntries>, SnapshotDamage> {
    let path = snapshot_path(dir);
    let buf = match std::fs::read(&path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(SnapshotDamage { reason: format!("cannot read {}: {e}", path.display()) })
        }
    };
    decode(&buf).map(Some)
}

/// Fsyncs the live snapshot's containing directory entry — used once at
/// boot so a snapshot inherited from a previous process generation is
/// known-durable before we start trusting warm hits from it.
pub fn fsync_existing(dir: &Path) {
    if let Ok(f) = File::open(snapshot_path(dir)) {
        let _ = f.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::io::encode_ensemble;
    use c1p_matrix::tucker::TuckerFamily;
    use c1p_matrix::Ensemble;

    fn sample_entries() -> Vec<(Vec<u8>, Verdict)> {
        let k1 = encode_ensemble(&Ensemble::from_columns(4, vec![vec![0, 1], vec![1, 2]]).unwrap());
        let k2 = encode_ensemble(
            &Ensemble::from_columns(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap(),
        );
        vec![
            (k1, Verdict::C1p { order: vec![0, 1, 2, 3] }),
            (
                k2,
                Verdict::NotC1p {
                    rejection: Rejection { site: RejectSite::Merge, atoms: vec![0, 1, 2] },
                    witness: TuckerWitness {
                        family: TuckerFamily::MI(1),
                        atom_rows: vec![0, 1, 2],
                        column_ids: vec![0, 1, 2],
                    },
                },
            ),
        ]
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let entries = sample_entries();
        let refs: Vec<(&[u8], &Verdict)> = entries.iter().map(|(k, v)| (k.as_slice(), v)).collect();
        let image = encode(&refs);
        let back = decode(&image).unwrap();
        assert_eq!(back, entries);
        // and through the atomic file path
        let dir = std::env::temp_dir().join(format!("c1p-snap-test-{}-rt", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write(&dir, &refs).unwrap();
        assert_eq!(load(&dir).unwrap().unwrap(), entries);
        assert!(!dir.join("cache.c1ps.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_a_cold_start_not_an_error() {
        let dir = std::env::temp_dir().join(format!("c1p-snap-test-{}-cold", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(load(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_and_bit_flip_is_refused_cleanly() {
        let entries = sample_entries();
        let refs: Vec<(&[u8], &Verdict)> = entries.iter().map(|(k, v)| (k.as_slice(), v)).collect();
        let image = encode(&refs);
        for cut in 0..image.len() {
            assert!(decode(&image[..cut]).is_err(), "truncation to {cut} must be refused");
        }
        for i in 0..image.len() {
            for bit in [1u8, 0x80] {
                let mut bad = image.clone();
                bad[i] ^= bit;
                // a flip anywhere breaks the whole-file checksum (or, for
                // flips inside the crc itself, the comparison)
                assert!(decode(&bad).is_err(), "bit flip at byte {i} must be refused");
            }
        }
    }

    #[test]
    fn forged_checksum_still_hits_structural_checks() {
        // an attacker-grade corruption: flip bytes *and* fix the crc —
        // the structured decoders must still refuse
        let entries = sample_entries();
        let refs: Vec<(&[u8], &Verdict)> = entries.iter().map(|(k, v)| (k.as_slice(), v)).collect();
        let image = encode(&refs);
        let poison = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut body = image[..image.len() - 8].to_vec();
            mutate(&mut body);
            let crc = fnv1a(&body);
            body.extend_from_slice(&crc.to_le_bytes());
            decode(&body)
        };
        // absurd entry count
        assert!(poison(&|b| b[5..9].copy_from_slice(&u32::MAX.to_le_bytes())).is_err());
        // key length running past the end
        assert!(poison(&|b| b[9..13].copy_from_slice(&0xffff_ffffu32.to_le_bytes())).is_err());
        // garbage key bytes behind a valid length
        assert!(poison(&|b| b[13] ^= 0xff).is_err());
    }
}

//! Request-scoped span recording (DESIGN.md §13).
//!
//! A [`ReqTrace`] is one request's clock: a monotonic epoch captured when
//! the frame is first seen, plus an append-only list of named
//! [`SpanEvent`]s recorded as microsecond offsets from that epoch. The
//! front end creates one per sampled request and threads an
//! `Option<Arc<ReqTrace>>` through the engine (submit → batcher → cache →
//! solve → WAL), so every layer records into the same timeline without
//! knowing who else does. `None` means "not sampled" and every hook
//! degrades to a no-op — the zero-cost-when-off contract.
//!
//! Span *names* are a stable contract shared with the offline tooling
//! (`phase_probe`) and trace consumers; see
//! [`c1p_core::stats::PHASE_NAMES`] for the solver phases and DESIGN.md
//! §13 for the lifecycle set. Parenting is by name, not by nesting
//! discipline: `solve/<phase>` spans are children of `solve`, everything
//! else is a child of the implicit `request` root.

use std::sync::Mutex;
use std::time::Instant;

/// Span names for the solver phase breakdown, parallel to
/// [`c1p_core::stats::PHASE_NAMES`] (same order, `solve/` prefix). These
/// are children of the `solve` span; keep both lists in lockstep.
pub const SOLVE_PHASE_SPANS: [&str; c1p_core::stats::N_PHASES] = [
    "solve/partition",
    "solve/prepare",
    "solve/decompose",
    "solve/align",
    "solve/merge",
    "solve/bitmat",
];

/// One named interval on a request's timeline, in microsecond offsets
/// from the owning [`ReqTrace`]'s epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stable span name (lifecycle stage or `solve/<phase>`).
    pub name: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// End offset from the trace epoch, microseconds (`>= start_us`).
    pub end_us: u64,
}

/// One request's span recorder. Cheap to clone via `Arc`; interior
/// mutability keeps the recording hooks `&self` so the trace can be
/// shared across the front-end thread, the shard worker, and the rayon
/// pool without ceremony.
#[derive(Debug)]
pub struct ReqTrace {
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
}

impl Default for ReqTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ReqTrace {
    /// Starts a trace with its epoch at "now" — call before decoding the
    /// frame so the `decode` span starts at offset ~0.
    pub fn new() -> Self {
        ReqTrace { epoch: Instant::now(), events: Mutex::new(Vec::with_capacity(16)) }
    }

    /// Current offset from the epoch, microseconds.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a span that started at `start_us` and ends now.
    pub fn record(&self, name: &'static str, start_us: u64) {
        let end = self.now_us();
        self.record_span(name, start_us, end);
    }

    /// Records a fully specified span (used for synthesized children,
    /// e.g. the solver phase breakdown laid end-to-end inside `solve`).
    pub fn record_span(&self, name: &'static str, start_us: u64, end_us: u64) {
        let mut ev = self.events.lock().expect("trace events lock");
        ev.push(SpanEvent { name, start_us, end_us: end_us.max(start_us) });
    }

    /// Takes the recorded events out (called once, at finish).
    pub fn take(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace events lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_span_names_mirror_core_phase_names() {
        for (span, phase) in SOLVE_PHASE_SPANS.iter().zip(c1p_core::stats::PHASE_NAMES.iter()) {
            assert_eq!(*span, format!("solve/{phase}"));
        }
    }

    #[test]
    fn records_monotone_offsets() {
        let t = ReqTrace::new();
        let s = t.now_us();
        t.record("decode", s);
        t.record_span("solve/partition", 10, 12);
        let ev = t.take();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "decode");
        assert!(ev[0].end_us >= ev[0].start_us);
        assert_eq!(ev[1], SpanEvent { name: "solve/partition", start_us: 10, end_us: 12 });
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn record_span_clamps_inverted_intervals() {
        let t = ReqTrace::new();
        t.record_span("flush", 20, 5);
        let ev = t.take();
        assert_eq!(ev[0].start_us, 20);
        assert_eq!(ev[0].end_us, 20);
    }
}

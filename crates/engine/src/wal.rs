//! Per-session write-ahead logs: the durability substrate of the engine's
//! incremental sessions (DESIGN.md §10).
//!
//! One file per live session, `session-<id>.wal`, in the engine's WAL
//! directory:
//!
//! ```text
//! wal    := header | record*
//! header := magic "C1PJ" | version u8 | session u64 LE | n_atoms u64 LE
//!         | hcrc u64 LE                       -- fnv1a over bytes 0..21
//! record := len u32 LE | delta (C1PW ensemble wire bytes) | hash u64 LE
//!         | rcrc u64 LE                       -- fnv1a over len..hash
//! ```
//!
//! Records reuse the engine's existing C1PW wire encoding as the payload
//! format and [`c1p_matrix::io`]'s checksummed record framing; `hash` is
//! the session's FNV stream hash *after* the push — each record binds
//! both the delta and the state it produced, so replay is verifiable at
//! every prefix.
//!
//! **Ordering contract:** a push is appended and fsynced *before* it is
//! acknowledged. A crash at any instant therefore leaves the log in one
//! of exactly two states per push: fully present (the client may or may
//! not have seen the ack — replay reproduces the acked state), or torn /
//! absent (the client cannot have seen an ack — recovery truncates the
//! tail and the session stands at its last acknowledged push).
//!
//! **Recovery classification** ([`recover_file`]): a record that ends
//! past the physical end of file — or whose checksum fails right at the
//! tail — is a *torn final append*: discarded by truncating the file at
//! the last good record boundary, never misparsed. Everything else
//! (checksum failure mid-file, an undecodable delta behind a valid
//! checksum, a stream-hash or verdict mismatch during replay) is
//! *damage*: the file is [`quarantine`]d — renamed aside, counted,
//! never trusted, never deleted.

use c1p_core::Config;
use c1p_incremental::{IncrementalSolver, ReplayError};
use c1p_matrix::io::{
    append_record, decode_ensemble, encode_ensemble, fnv1a, split_record, RecordError,
};
use c1p_matrix::Ensemble;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

const WAL_MAGIC: [u8; 4] = *b"C1PJ";
const WAL_VERSION: u8 = 1;

/// Byte length of the checksummed segment header.
pub const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 8;

/// Suffix a damaged file is renamed to by [`quarantine`].
pub const QUARANTINE_SUFFIX: &str = "quarantine";

/// The WAL path of a session id inside a WAL directory.
pub fn wal_path(dir: &Path, session: u64) -> PathBuf {
    dir.join(format!("session-{session}.wal"))
}

fn encode_header(session: u64, n_atoms: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&WAL_MAGIC);
    h[4] = WAL_VERSION;
    h[5..13].copy_from_slice(&session.to_le_bytes());
    h[13..21].copy_from_slice(&n_atoms.to_le_bytes());
    let crc = fnv1a(&h[..21]);
    h[21..29].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Parses and checks a segment header; `Err` is a human-readable reason.
fn decode_header(buf: &[u8]) -> Result<(u64, u64), String> {
    let Some(h) = buf.get(..HEADER_LEN) else {
        return Err(format!("file shorter than the {HEADER_LEN}-byte header"));
    };
    if h[..4] != WAL_MAGIC {
        return Err(format!("bad magic {:?}", &h[..4]));
    }
    if h[4] != WAL_VERSION {
        return Err(format!("unsupported WAL version {}", h[4]));
    }
    let crc = u64::from_le_bytes(h[21..29].try_into().unwrap());
    if fnv1a(&h[..21]) != crc {
        return Err("header checksum mismatch".to_string());
    }
    let session = u64::from_le_bytes(h[5..13].try_into().unwrap());
    let n_atoms = u64::from_le_bytes(h[13..21].try_into().unwrap());
    Ok((session, n_atoms))
}

/// Best-effort durability for a directory entry (file creation, rename,
/// unlink): fsync the directory itself. Errors are swallowed — some
/// filesystems refuse directory syncs and the write path must not die
/// for it.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// The append side of one session's WAL. Created at session open (header
/// written and fsynced before the open is acknowledged); every accepted
/// push appends one fsynced record before the push is acknowledged.
pub struct WalWriter {
    file: File,
    path: PathBuf,
}

impl WalWriter {
    /// Creates the log for a fresh session: header written, file and
    /// directory fsynced. Refuses (cleanly) if the file already exists —
    /// session ids are never reused while a log is on disk.
    pub fn create(dir: &Path, session: u64, n_atoms: u64) -> std::io::Result<WalWriter> {
        let path = wal_path(dir, session);
        let mut file = OpenOptions::new().write(true).create_new(true).open(&path)?;
        file.write_all(&encode_header(session, n_atoms))?;
        file.sync_data()?;
        sync_dir(dir);
        Ok(WalWriter { file, path })
    }

    /// Reopens a recovered log for further appends. The caller (recovery)
    /// guarantees the file ends at a clean record boundary — torn tails
    /// are truncated away before the writer ever sees the file.
    pub fn reopen(path: &Path) -> std::io::Result<WalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(WalWriter { file, path: path.to_path_buf() })
    }

    /// Appends one accepted push — the delta's C1PW wire bytes plus the
    /// post-push stream hash — and fsyncs. Returns only after the record
    /// is durable; the caller acknowledges the push only after this
    /// returns.
    pub fn append(&mut self, delta: &Ensemble, stream_hash: u64) -> std::io::Result<()> {
        let payload = encode_ensemble(delta);
        let mut rec = Vec::with_capacity(payload.len() + 20);
        append_record(&mut rec, &payload, stream_hash);
        self.file.write_all(&rec)?;
        self.file.sync_data()
    }

    /// Chaos fault hook: writes a strict prefix of the record and syncs
    /// it — a deterministic torn append, as if the process died mid-write.
    /// The writer must not be used again (its file position is inside a
    /// half-record); recovery classifies the result as a torn tail and
    /// truncates it.
    pub fn append_torn(&mut self, delta: &Ensemble, stream_hash: u64) {
        let payload = encode_ensemble(delta);
        let mut rec = Vec::with_capacity(payload.len() + 20);
        append_record(&mut rec, &payload, stream_hash);
        // a strict prefix: at least the length word, never the checksum
        let cut = (rec.len() / 2).max(4).min(rec.len() - 1);
        let _ = self.file.write_all(&rec[..cut]);
        let _ = self.file.sync_data();
    }

    /// Test-only fault hook (`--wal-fault-after`): [`WalWriter::append_torn`]
    /// followed by a process abort — a deterministic `kill -9` mid-append.
    pub fn append_torn_and_abort(&mut self, delta: &Ensemble, stream_hash: u64) -> ! {
        self.append_torn(delta, stream_hash);
        std::process::abort();
    }

    /// Closes and removes the log (the session sealed): unlink, then
    /// directory fsync, so a crash after seal cannot resurrect a sealed
    /// session.
    pub fn remove(self) -> std::io::Result<()> {
        let dir = self.path.parent().map(Path::to_path_buf);
        drop(self.file);
        std::fs::remove_file(&self.path)?;
        if let Some(dir) = dir {
            sync_dir(&dir);
        }
        Ok(())
    }
}

/// A session rebuilt from its log by [`recover_file`].
pub struct Recovered {
    /// The session id (from the checksummed header).
    pub session: u64,
    /// The rebuilt solver — state bit-identical to the last acknowledged
    /// push (every prefix's recorded stream hash re-verified).
    pub solver: IncrementalSolver,
    /// Accepted pushes replayed.
    pub records: u64,
    /// Whether a torn final append was discarded (file truncated back to
    /// the last good record boundary).
    pub truncated_tail: bool,
}

/// Why [`recover_file`] refused a log. The file has already been moved
/// aside by [`quarantine`]-style renaming *by the caller's choice* — this
/// type only reports; it never destroys data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalDamage {
    /// Human-readable reason (offset-carrying where possible).
    pub reason: String,
}

/// Scans a WAL directory for live (non-quarantined) session logs, in
/// ascending session-id order. The id is parsed from the filename only to
/// order the scan; the checksummed header stays authoritative.
pub fn scan_dir(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(id) = name.strip_prefix("session-").and_then(|s| s.strip_suffix(".wal")) {
            if let Ok(id) = id.parse::<u64>() {
                out.push((id, path));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Moves a damaged file aside: `X` → `X.quarantine` (a numbered suffix if
/// that name is somehow taken). The data is preserved for forensics; the
/// live namespace is cleared so recovery and resume never trust it again.
/// Shared with the snapshot loader — damage handling is one policy.
pub fn quarantine(path: &Path) -> std::io::Result<PathBuf> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| std::io::Error::other("quarantine target has no file name"))?
        .to_string();
    let mut target = path.with_file_name(format!("{name}.{QUARANTINE_SUFFIX}"));
    let mut n = 0;
    while target.exists() {
        n += 1;
        target = path.with_file_name(format!("{name}.{QUARANTINE_SUFFIX}{n}"));
    }
    std::fs::rename(path, &target)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir);
    }
    Ok(target)
}

/// Rebuilds one session from its log.
///
/// Replays every record through [`IncrementalSolver::replay_accepted`],
/// which asserts the recorded FNV stream hash at every prefix *before*
/// applying anything. A torn final append (including a checksum failure
/// exactly at the tail) is truncated away and recovery succeeds at the
/// shorter, fully-acknowledged prefix; any other defect returns
/// `Err(WalDamage)` and the caller quarantines. IO errors (not data
/// errors) surface as `Err` with the OS message — the caller treats them
/// as damage too, which is conservative but never wrong.
pub fn recover_file(path: &Path, cfg: &Config, par_cutoff: usize) -> Result<Recovered, WalDamage> {
    let buf = std::fs::read(path)
        .map_err(|e| WalDamage { reason: format!("cannot read {}: {e}", path.display()) })?;
    let (session, n_atoms) = decode_header(&buf).map_err(|reason| WalDamage { reason })?;
    if n_atoms > u32::MAX as u64 {
        return Err(WalDamage { reason: format!("header claims {n_atoms} atoms") });
    }
    let mut solver = IncrementalSolver::with_config(n_atoms as usize, *cfg, par_cutoff);
    let mut at = HEADER_LEN;
    let mut records = 0u64;
    let mut truncate_at = None;
    while at < buf.len() {
        let rec = match split_record(&buf, at) {
            Ok(rec) => rec,
            Err(RecordError::Torn) => {
                truncate_at = Some(at);
                break;
            }
            Err(RecordError::Corrupt { offset }) => {
                return Err(WalDamage {
                    reason: format!("record checksum mismatch at byte {offset}"),
                });
            }
        };
        // the payload passed its checksum: a decode failure here is not a
        // torn write, it is a log that never made sense — damage
        let delta = decode_ensemble(rec.payload).map_err(|e| WalDamage {
            reason: format!("record at byte {at}: undecodable delta: {e}"),
        })?;
        if delta.n_atoms() != n_atoms as usize {
            return Err(WalDamage {
                reason: format!(
                    "record at byte {at}: delta over {} atoms in a {n_atoms}-atom session",
                    delta.n_atoms()
                ),
            });
        }
        match solver.replay_accepted(&delta, rec.aux) {
            Ok(()) => {}
            Err(ReplayError::HashMismatch { expected, actual }) => {
                return Err(WalDamage {
                    reason: format!(
                        "record at byte {at}: recorded stream hash {expected:#018x} \
                         but replay produces {actual:#018x}"
                    ),
                });
            }
            Err(ReplayError::Rejected) => {
                return Err(WalDamage {
                    reason: format!("record at byte {at}: a logged push rejects on replay"),
                });
            }
        }
        records += 1;
        at += rec.consumed;
    }
    let truncated_tail = if let Some(end) = truncate_at {
        // normalize the file so later appends land at a clean boundary
        let f = OpenOptions::new().write(true).open(path).map_err(|e| WalDamage {
            reason: format!("cannot truncate torn tail of {}: {e}", path.display()),
        })?;
        f.set_len(end as u64)
            .and_then(|()| f.sync_data())
            .map_err(|e| WalDamage { reason: format!("cannot truncate torn tail: {e}") })?;
        true
    } else {
        false
    };
    Ok(Recovered { session, solver, records, truncated_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "c1p-wal-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn push_and_log(w: &mut WalWriter, inc: &mut IncrementalSolver, cols: Vec<Vec<u32>>) {
        let delta = Ensemble::from_columns(inc.n_atoms(), cols).unwrap();
        inc.push(&delta).unwrap();
        w.append(&delta, inc.stream_hash()).unwrap();
    }

    #[test]
    fn log_replay_reproduces_the_session() {
        let dir = temp_dir();
        let mut inc = IncrementalSolver::new(8);
        let mut w = WalWriter::create(&dir, 7, 8).unwrap();
        push_and_log(&mut w, &mut inc, vec![vec![0, 1], vec![1, 2]]);
        push_and_log(&mut w, &mut inc, vec![vec![4, 5], vec![5, 6, 7]]);
        let rec = recover_file(&wal_path(&dir, 7), &Config::default(), usize::MAX).unwrap();
        assert_eq!(rec.session, 7);
        assert_eq!(rec.records, 2);
        assert!(!rec.truncated_tail);
        assert_eq!(rec.solver.stream_hash(), inc.stream_hash());
        assert_eq!(rec.solver.order(), inc.order());
        assert_eq!(rec.solver.ensemble(), inc.ensemble());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_misparsed() {
        let dir = temp_dir();
        let mut inc = IncrementalSolver::new(6);
        let mut w = WalWriter::create(&dir, 1, 6).unwrap();
        push_and_log(&mut w, &mut inc, vec![vec![0, 1]]);
        let durable_hash = inc.stream_hash();
        push_and_log(&mut w, &mut inc, vec![vec![2, 3]]);
        // tear the final record: every strict prefix must recover to the
        // first push and normalize the file
        let path = wal_path(&dir, 1);
        let full = std::fs::read(&path).unwrap();
        let first_end = HEADER_LEN + split_record(&full, HEADER_LEN).unwrap().consumed;
        for cut in first_end..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let rec = recover_file(&path, &Config::default(), usize::MAX).unwrap();
            assert_eq!(rec.records, 1, "cut at {cut}");
            assert_eq!(rec.truncated_tail, cut != first_end);
            assert_eq!(rec.solver.stream_hash(), durable_hash);
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                first_end as u64,
                "file normalized to the last good boundary"
            );
        }
        // ... and an append after truncation-recovery lands cleanly
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let rec = recover_file(&path, &Config::default(), usize::MAX).unwrap();
        let mut resumed = rec.solver;
        let mut w = WalWriter::reopen(&path).unwrap();
        let delta = Ensemble::from_columns(6, vec![vec![4, 5]]).unwrap();
        resumed.push(&delta).unwrap();
        w.append(&delta, resumed.stream_hash()).unwrap();
        let rec2 = recover_file(&path, &Config::default(), usize::MAX).unwrap();
        assert_eq!(rec2.records, 2);
        assert_eq!(rec2.solver.stream_hash(), resumed.stream_hash());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_damage_is_refused() {
        let dir = temp_dir();
        let mut inc = IncrementalSolver::new(6);
        let mut w = WalWriter::create(&dir, 2, 6).unwrap();
        push_and_log(&mut w, &mut inc, vec![vec![0, 1], vec![1, 2]]);
        push_and_log(&mut w, &mut inc, vec![vec![3, 4]]);
        let path = wal_path(&dir, 2);
        let good = std::fs::read(&path).unwrap();
        // flip one bit in the *first* record (records follow, so this can
        // never be classified as a torn tail)
        let mut bad = good.clone();
        bad[HEADER_LEN + 6] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        let Err(err) = recover_file(&path, &Config::default(), usize::MAX) else {
            panic!("mid-file damage must be refused");
        };
        assert!(err.reason.contains("checksum"), "{}", err.reason);
        // header corruption is damage too
        let mut bad = good.clone();
        bad[5] ^= 1;
        std::fs::write(&path, &bad).unwrap();
        assert!(recover_file(&path, &Config::default(), usize::MAX).is_err());
        // quarantine moves it out of the live namespace
        let q = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert!(q.exists());
        assert!(scan_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_orders_by_session_id_and_skips_quarantine() {
        let dir = temp_dir();
        for id in [30u64, 4, 17] {
            WalWriter::create(&dir, id, 4).unwrap();
        }
        quarantine(&wal_path(&dir, 17)).unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        let ids: Vec<u64> = scan_dir(&dir).unwrap().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![4, 30]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The `c1pd` framing protocol: length-prefixed frames over any byte
//! stream, with message payloads built on the `c1p_matrix::io` wire format.
//!
//! ```text
//! frame    := len u32 LE | payload (len bytes)
//! payload  := tag u8 | body
//!   0x01 Solve          { id u64 LE, ensemble wire bytes }
//!   0x02 Verdict        { id u64 LE, verdict wire bytes }
//!   0x03 Error          { id u64 LE, code u8, utf-8 message }
//!   0x04 GetStats       { }
//!   0x05 Stats          { utf-8 JSON }
//!   0x06 OpenSession    { id u64 LE, n_atoms u64 LE }
//!   0x07 PushAtoms      { id u64 LE, session u64 LE, delta ensemble wire bytes }
//!   0x08 SealSession    { id u64 LE, session u64 LE }
//!   0x09 SessionVerdict { id u64 LE, session u64 LE, verdict wire bytes }
//!   0x0A GetMetrics     { }
//!   0x0B Metrics        { utf-8 text dump }
//!   0x0C Ping           { id u64 LE }
//!   0x0D Pong           { id u64 LE, wal u8, n_shards u32 LE, flags u8 × n_shards }
//!   0x0E QuerySession   { id u64 LE, session u64 LE }
//!   0x0F SessionStatus  { id u64 LE, session u64 LE, stream_hash u64 LE, columns u64 LE }
//!   0x10 GetTraces      { }
//!   0x11 Traces         { utf-8 JSONL dump }
//! ```
//!
//! Session flow: `OpenSession` answers with a `SessionVerdict` naming the
//! fresh session handle (verdict: an accept with an *empty* order — the
//! empty state's witness is the identity, elided so opening a huge atom
//! set cannot amplify a 17-byte request into a multi-MB reply);
//! every `PushAtoms` answers with the verdict for the extended ensemble —
//! a reject means the push was rolled back server-side; `SealSession`
//! answers with the final accepted verdict and closes the handle. Pushes
//! embed their delta as a wire ensemble whose `n_atoms` must equal the
//! session's. Unknown/expired handles answer `Error` with
//! [`ErrorCode::NoSession`].
//!
//! The frame length is capped ([`DEFAULT_MAX_FRAME`], configurable at the
//! server) *before* any allocation, so a hostile peer cannot make the
//! server reserve gigabytes with a five-byte message. Request ids are
//! chosen by the client and echoed verbatim; the server answers every
//! frame in order, one response per request.

use c1p_matrix::io::WireVerdict;
use c1p_matrix::io::{decode_ensemble, decode_verdict, encode_ensemble, encode_verdict};
use c1p_matrix::{Ensemble, EnsembleError};
use std::fmt;
use std::io::{self, Read, Write};

/// Default cap on one frame (64 MiB) — admission control at the byte layer.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

const TAG_SOLVE: u8 = 0x01;
const TAG_VERDICT: u8 = 0x02;
const TAG_ERROR: u8 = 0x03;
const TAG_GET_STATS: u8 = 0x04;
const TAG_STATS: u8 = 0x05;
const TAG_OPEN_SESSION: u8 = 0x06;
const TAG_PUSH_ATOMS: u8 = 0x07;
const TAG_SEAL_SESSION: u8 = 0x08;
const TAG_SESSION_VERDICT: u8 = 0x09;
const TAG_GET_METRICS: u8 = 0x0A;
const TAG_METRICS: u8 = 0x0B;
const TAG_PING: u8 = 0x0C;
const TAG_PONG: u8 = 0x0D;
const TAG_QUERY_SESSION: u8 = 0x0E;
const TAG_SESSION_STATUS: u8 = 0x0F;
const TAG_GET_TRACES: u8 = 0x10;
const TAG_TRACES: u8 = 0x11;

/// Why a request failed, as sent on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request could not be decoded.
    Malformed = 1,
    /// Admission control rejected the request (queue, connection or
    /// session-count limit).
    Overloaded = 2,
    /// The instance exceeds a server size limit (atoms, session columns,
    /// or the frame byte cap).
    TooLarge = 3,
    /// The engine failed internally (e.g. it is shutting down).
    Internal = 4,
    /// The named session does not exist (never opened, sealed, or
    /// idle-evicted).
    NoSession = 5,
    /// The peer stalled mid-frame past the server's read-timeout budget
    /// (`c1pd --read-timeout-ms`); the connection is closed after this
    /// frame. Idle connections *between* frames are never timed out.
    Timeout = 6,
    /// The shard that owned this request died with it in flight (or its
    /// reply was lost past the request deadline); whether the request
    /// applied is unknown. Solves are pure and safe to retry blindly;
    /// session pushes should run the recovered-hash handshake
    /// (`QuerySession`) before replaying.
    Unavailable = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::Overloaded),
            3 => Some(ErrorCode::TooLarge),
            4 => Some(ErrorCode::Internal),
            5 => Some(ErrorCode::NoSession),
            6 => Some(ErrorCode::Timeout),
            7 => Some(ErrorCode::Unavailable),
            _ => None,
        }
    }
}

/// Write-ahead-log directory health as reported in a [`Msg::Pong`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalHealth {
    /// The server runs without durability (`--wal-dir` unset).
    Disabled = 0,
    /// The durability directory accepted a probe write.
    Writable = 1,
    /// The durability directory refused a probe write — accepted pushes
    /// can no longer be made durable.
    Unwritable = 2,
}

impl WalHealth {
    fn from_u8(v: u8) -> Option<WalHealth> {
        match v {
            0 => Some(WalHealth::Disabled),
            1 => Some(WalHealth::Writable),
            2 => Some(WalHealth::Unwritable),
            _ => None,
        }
    }
}

/// One shard's liveness as reported in a [`Msg::Pong`]. Encoded as one
/// byte: bit 0 = live, bit 1 = degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// A worker thread currently owns this shard (it may still be
    /// rebuilding its engine after a restart).
    pub live: bool,
    /// The shard lost a worker at least once and has not yet finished
    /// recovering, or was retired after repeated instant deaths.
    pub degraded: bool,
}

impl ShardHealth {
    fn to_byte(self) -> u8 {
        (self.live as u8) | ((self.degraded as u8) << 1)
    }

    fn from_byte(b: u8) -> Option<ShardHealth> {
        if b > 3 {
            return None;
        }
        Some(ShardHealth { live: b & 1 != 0, degraded: b & 2 != 0 })
    }
}

/// One protocol message (the payload of one frame).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → server: decide C1P for the ensemble.
    Solve {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// The instance.
        ens: Ensemble,
    },
    /// Server → client: the verdict for request `id`.
    Verdict {
        /// Echo of the request id.
        id: u64,
        /// Witness order or Tucker certificate.
        verdict: WireVerdict,
    },
    /// Server → client: request `id` failed.
    Error {
        /// Echo of the request id (0 when no request could be attributed).
        id: u64,
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: request an engine statistics snapshot.
    GetStats,
    /// Server → client: statistics snapshot as a JSON object.
    Stats {
        /// The snapshot.
        json: String,
    },
    /// Client → server: open an incremental session over `n_atoms` atoms.
    OpenSession {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// Atom count, fixed for the session's lifetime.
        n_atoms: u64,
    },
    /// Client → server: extend a session by a batch of columns.
    PushAtoms {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// The session handle from the `OpenSession` response.
        session: u64,
        /// The pushed columns (its `n_atoms` must equal the session's).
        delta: Ensemble,
    },
    /// Client → server: seal a session (final verdict, handle closed).
    SealSession {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// The session handle.
        session: u64,
    },
    /// Server → client: the verdict for a session operation.
    SessionVerdict {
        /// Echo of the request id.
        id: u64,
        /// The session handle (fresh for `OpenSession` responses).
        session: u64,
        /// Verdict for the session's (tentatively extended) ensemble.
        verdict: WireVerdict,
    },
    /// Client → server: request the plain-text metrics dump (the same
    /// counters as `GetStats`, plus the front-end's own series, under
    /// the stable names documented in DESIGN.md §11).
    GetMetrics,
    /// Server → client: the metrics dump, one `name value` line per
    /// series.
    Metrics {
        /// The dump.
        text: String,
    },
    /// Client → server: health probe. Answered from the event thread in
    /// event-loop mode, so a wedged shard worker cannot block the reply.
    Ping {
        /// Client-chosen id echoed in the response.
        id: u64,
    },
    /// Server → client: liveness report for a [`Msg::Ping`].
    Pong {
        /// Echo of the request id.
        id: u64,
        /// Durability-directory writability (probed at ping time).
        wal: WalHealth,
        /// Per-shard liveness, indexed by shard (legacy mode reports one
        /// always-live shard).
        shards: Vec<ShardHealth>,
    },
    /// Client → server: the recovered-hash handshake — ask a session for
    /// its accepted stream hash and column count. Triggers lazy WAL
    /// resume exactly like a push, so a retrying client can interrogate a
    /// session whose shard just restarted.
    QuerySession {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// The session handle.
        session: u64,
    },
    /// Client → server: request the retained request traces (DESIGN.md
    /// §13). Answered inline from the event thread, like `GetMetrics`.
    GetTraces,
    /// Server → client: the retained traces as JSONL — one trace object
    /// per line, newest last, drained across all shard rings.
    Traces {
        /// The JSONL dump (possibly empty when sampling is off).
        jsonl: String,
    },
    /// Server → client: answer to a [`Msg::QuerySession`].
    SessionStatus {
        /// Echo of the request id.
        id: u64,
        /// The session handle.
        session: u64,
        /// Order-sensitive FNV hash of the accepted column stream — what
        /// `IncrementalSolver::stream_hash` reports server-side.
        stream_hash: u64,
        /// Accepted column count.
        columns: u64,
    },
}

/// Structured decode failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// Payload ended before the field being read.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// Unknown error code.
    BadCode(u8),
    /// Embedded ensemble/verdict failed to decode.
    Wire(EnsembleError),
    /// A text field was not UTF-8.
    BadUtf8,
    /// A fixed-size message carried extra bytes after its payload.
    Trailing(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtoError::BadCode(c) => write!(f, "unknown error code {c}"),
            ProtoError::Wire(e) => write!(f, "embedded wire payload: {e}"),
            ProtoError::BadUtf8 => write!(f, "text field is not valid UTF-8"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<EnsembleError> for ProtoError {
    fn from(e: EnsembleError) -> Self {
        ProtoError::Wire(e)
    }
}

/// Encodes a message into a frame payload (no length prefix).
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match msg {
        Msg::Solve { id, ens } => {
            out.push(TAG_SOLVE);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&encode_ensemble(ens));
        }
        Msg::Verdict { id, verdict } => {
            out.push(TAG_VERDICT);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&encode_verdict(verdict));
        }
        Msg::Error { id, code, message } => {
            out.push(TAG_ERROR);
            out.extend_from_slice(&id.to_le_bytes());
            out.push(*code as u8);
            out.extend_from_slice(message.as_bytes());
        }
        Msg::GetStats => out.push(TAG_GET_STATS),
        Msg::Stats { json } => {
            out.push(TAG_STATS);
            out.extend_from_slice(json.as_bytes());
        }
        Msg::OpenSession { id, n_atoms } => {
            out.push(TAG_OPEN_SESSION);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&n_atoms.to_le_bytes());
        }
        Msg::PushAtoms { id, session, delta } => {
            out.push(TAG_PUSH_ATOMS);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&encode_ensemble(delta));
        }
        Msg::SealSession { id, session } => {
            out.push(TAG_SEAL_SESSION);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
        }
        Msg::SessionVerdict { id, session, verdict } => {
            out.push(TAG_SESSION_VERDICT);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&encode_verdict(verdict));
        }
        Msg::GetMetrics => out.push(TAG_GET_METRICS),
        Msg::Metrics { text } => {
            out.push(TAG_METRICS);
            out.extend_from_slice(text.as_bytes());
        }
        Msg::Ping { id } => {
            out.push(TAG_PING);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Msg::Pong { id, wal, shards } => {
            out.push(TAG_PONG);
            out.extend_from_slice(&id.to_le_bytes());
            out.push(*wal as u8);
            out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
            out.extend(shards.iter().map(|s| s.to_byte()));
        }
        Msg::QuerySession { id, session } => {
            out.push(TAG_QUERY_SESSION);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
        }
        Msg::GetTraces => out.push(TAG_GET_TRACES),
        Msg::Traces { jsonl } => {
            out.push(TAG_TRACES);
            out.extend_from_slice(jsonl.as_bytes());
        }
        Msg::SessionStatus { id, session, stream_hash, columns } => {
            out.push(TAG_SESSION_STATUS);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&stream_hash.to_le_bytes());
            out.extend_from_slice(&columns.to_le_bytes());
        }
    }
    out
}

/// Decodes a frame payload. Never panics on malformed input.
pub fn decode_msg(payload: &[u8]) -> Result<Msg, ProtoError> {
    let (&tag, rest) = payload.split_first().ok_or(ProtoError::Truncated)?;
    let u64_at = |b: &[u8]| -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(b.get(..8).ok_or(ProtoError::Truncated)?.try_into().unwrap()))
    };
    match tag {
        TAG_SOLVE => {
            let id = u64_at(rest)?;
            Ok(Msg::Solve { id, ens: decode_ensemble(&rest[8..])? })
        }
        TAG_VERDICT => {
            let id = u64_at(rest)?;
            Ok(Msg::Verdict { id, verdict: decode_verdict(&rest[8..])? })
        }
        TAG_ERROR => {
            let id = u64_at(rest)?;
            let &code = rest.get(8).ok_or(ProtoError::Truncated)?;
            let code = ErrorCode::from_u8(code).ok_or(ProtoError::BadCode(code))?;
            let message = String::from_utf8(rest[9..].to_vec()).map_err(|_| ProtoError::BadUtf8)?;
            Ok(Msg::Error { id, code, message })
        }
        TAG_GET_STATS => {
            if rest.is_empty() {
                Ok(Msg::GetStats)
            } else {
                Err(ProtoError::Trailing(rest.len()))
            }
        }
        TAG_STATS => Ok(Msg::Stats {
            json: String::from_utf8(rest.to_vec()).map_err(|_| ProtoError::BadUtf8)?,
        }),
        TAG_OPEN_SESSION => {
            let id = u64_at(rest)?;
            let n_atoms = u64_at(rest.get(8..).ok_or(ProtoError::Truncated)?)?;
            if rest.len() > 16 {
                return Err(ProtoError::Trailing(rest.len() - 16));
            }
            Ok(Msg::OpenSession { id, n_atoms })
        }
        TAG_PUSH_ATOMS => {
            let id = u64_at(rest)?;
            let session = u64_at(rest.get(8..).ok_or(ProtoError::Truncated)?)?;
            Ok(Msg::PushAtoms { id, session, delta: decode_ensemble(&rest[16..])? })
        }
        TAG_SEAL_SESSION => {
            let id = u64_at(rest)?;
            let session = u64_at(rest.get(8..).ok_or(ProtoError::Truncated)?)?;
            if rest.len() > 16 {
                return Err(ProtoError::Trailing(rest.len() - 16));
            }
            Ok(Msg::SealSession { id, session })
        }
        TAG_SESSION_VERDICT => {
            let id = u64_at(rest)?;
            let session = u64_at(rest.get(8..).ok_or(ProtoError::Truncated)?)?;
            Ok(Msg::SessionVerdict { id, session, verdict: decode_verdict(&rest[16..])? })
        }
        TAG_GET_METRICS => {
            if rest.is_empty() {
                Ok(Msg::GetMetrics)
            } else {
                Err(ProtoError::Trailing(rest.len()))
            }
        }
        TAG_METRICS => Ok(Msg::Metrics {
            text: String::from_utf8(rest.to_vec()).map_err(|_| ProtoError::BadUtf8)?,
        }),
        TAG_PING => {
            let id = u64_at(rest)?;
            if rest.len() > 8 {
                return Err(ProtoError::Trailing(rest.len() - 8));
            }
            Ok(Msg::Ping { id })
        }
        TAG_PONG => {
            let id = u64_at(rest)?;
            let &wal = rest.get(8).ok_or(ProtoError::Truncated)?;
            let wal = WalHealth::from_u8(wal).ok_or(ProtoError::BadCode(wal))?;
            let n = u32::from_le_bytes(
                rest.get(9..13).ok_or(ProtoError::Truncated)?.try_into().unwrap(),
            ) as usize;
            let flags = rest.get(13..).ok_or(ProtoError::Truncated)?;
            if flags.len() < n {
                return Err(ProtoError::Truncated);
            }
            if flags.len() > n {
                return Err(ProtoError::Trailing(flags.len() - n));
            }
            let shards = flags
                .iter()
                .map(|&b| ShardHealth::from_byte(b).ok_or(ProtoError::BadCode(b)))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Msg::Pong { id, wal, shards })
        }
        TAG_QUERY_SESSION => {
            let id = u64_at(rest)?;
            let session = u64_at(rest.get(8..).ok_or(ProtoError::Truncated)?)?;
            if rest.len() > 16 {
                return Err(ProtoError::Trailing(rest.len() - 16));
            }
            Ok(Msg::QuerySession { id, session })
        }
        TAG_SESSION_STATUS => {
            let id = u64_at(rest)?;
            let session = u64_at(rest.get(8..).ok_or(ProtoError::Truncated)?)?;
            let stream_hash = u64_at(rest.get(16..).ok_or(ProtoError::Truncated)?)?;
            let columns = u64_at(rest.get(24..).ok_or(ProtoError::Truncated)?)?;
            if rest.len() > 32 {
                return Err(ProtoError::Trailing(rest.len() - 32));
            }
            Ok(Msg::SessionStatus { id, session, stream_hash, columns })
        }
        TAG_GET_TRACES => {
            if rest.is_empty() {
                Ok(Msg::GetTraces)
            } else {
                Err(ProtoError::Trailing(rest.len()))
            }
        }
        TAG_TRACES => Ok(Msg::Traces {
            jsonl: String::from_utf8(rest.to_vec()).map_err(|_| ProtoError::BadUtf8)?,
        }),
        other => Err(ProtoError::BadTag(other)),
    }
}

/// Writes one frame (length prefix + payload). The caller flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame over 4 GiB"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame. Returns `Ok(None)` on clean EOF (no bytes of a new
/// frame read); frames over `max_len` are rejected before allocation.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // distinguish clean EOF from a truncated prefix
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut len_buf[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame length"));
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_len}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// [`read_frame`] for a graceful shutdown: the stream has a read timeout,
/// and `stop` is consulted only *between* frames — a connection mid-frame
/// drains the frame it started (the server answers it), while an idle
/// connection notices the flag within one timeout tick and closes.
/// Returns `Ok(None)` both on clean EOF and on a stop at a frame
/// boundary.
///
/// `stall` is the mid-frame no-progress budget (`c1pd --read-timeout-ms`):
/// once any byte of a frame has arrived, the peer must keep making
/// progress — a partial frame that advances by zero bytes for `stall`
/// errors with [`io::ErrorKind::TimedOut`] (the slow-loris defence).
/// `None` waits forever, the pre-flag behavior. Idle connections between
/// frames are never subject to the budget.
pub fn read_frame_until(
    r: &mut impl Read,
    max_len: usize,
    stop: &std::sync::atomic::AtomicBool,
    stall: Option<std::time::Duration>,
) -> io::Result<Option<Vec<u8>>> {
    use std::sync::atomic::Ordering;
    use std::time::Instant;
    let stalled_out = |since: &mut Option<Instant>| match (stall, &since) {
        (Some(budget), Some(t0)) => t0.elapsed() >= budget,
        (Some(_), None) => {
            *since = Some(Instant::now());
            false
        }
        (None, _) => false,
    };
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    // armed once the first byte of the frame lands, reset on progress
    let mut since: Option<Instant> = None;
    while got < 4 {
        if got == 0 && stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame length"));
            }
            Ok(n) => {
                got += n;
                since = None;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if got > 0 && stalled_out(&mut since) {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "stalled mid-frame past the read-timeout budget",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_len}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut at = 0;
    since = None;
    while at < len {
        match r.read(&mut payload[at..]) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame body"))
            }
            Ok(n) => {
                at += n;
                since = None;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if stalled_out(&mut since) {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "stalled mid-frame past the read-timeout budget",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::io::fig2_matrix;
    use c1p_matrix::tucker::TuckerFamily;

    fn round_trip(msg: &Msg) {
        let payload = encode_msg(msg);
        assert_eq!(&decode_msg(&payload).unwrap(), msg);
        // and through the framing layer
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let read = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(&decode_msg(&read).unwrap(), msg);
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), None, "clean EOF");
    }

    #[test]
    fn all_message_kinds_round_trip() {
        round_trip(&Msg::Solve { id: 7, ens: fig2_matrix() });
        round_trip(&Msg::Verdict { id: 7, verdict: WireVerdict::Accept { order: vec![1, 0, 2] } });
        round_trip(&Msg::Verdict {
            id: u64::MAX,
            verdict: WireVerdict::Reject {
                family: TuckerFamily::MI(2),
                atom_rows: vec![0, 1, 2, 3],
                column_ids: vec![4, 5, 6, 7],
            },
        });
        round_trip(&Msg::Error {
            id: 3,
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        });
        round_trip(&Msg::GetStats);
        round_trip(&Msg::Stats { json: "{\"hits\": 3}".into() });
        round_trip(&Msg::OpenSession { id: 9, n_atoms: 1 << 14 });
        round_trip(&Msg::PushAtoms { id: 10, session: 3, delta: fig2_matrix() });
        round_trip(&Msg::SealSession { id: 11, session: u64::MAX });
        round_trip(&Msg::SessionVerdict {
            id: 12,
            session: 3,
            verdict: WireVerdict::Accept { order: vec![0, 2, 1] },
        });
        round_trip(&Msg::Error {
            id: 13,
            code: ErrorCode::Timeout,
            message: "stalled mid-frame".into(),
        });
        round_trip(&Msg::GetMetrics);
        round_trip(&Msg::Metrics { text: "c1pd_cache_hits_total 3\n".into() });
        round_trip(&Msg::Error {
            id: 14,
            code: ErrorCode::Unavailable,
            message: "shard 2 restarting".into(),
        });
        round_trip(&Msg::Ping { id: 15 });
        round_trip(&Msg::Pong { id: 15, wal: WalHealth::Disabled, shards: vec![] });
        round_trip(&Msg::Pong {
            id: 16,
            wal: WalHealth::Writable,
            shards: vec![
                ShardHealth { live: true, degraded: false },
                ShardHealth { live: false, degraded: true },
                ShardHealth { live: true, degraded: true },
            ],
        });
        round_trip(&Msg::QuerySession { id: 17, session: u64::MAX });
        round_trip(&Msg::SessionStatus {
            id: 18,
            session: 3,
            stream_hash: 0xdead_beef_cafe_f00d,
            columns: 42,
        });
        round_trip(&Msg::GetTraces);
        round_trip(&Msg::Traces { jsonl: String::new() });
        round_trip(&Msg::Traces {
            jsonl: "{\"trace_id\":\"00000000000000ff\",\"spans\":[]}\n".into(),
        });
    }

    #[test]
    fn get_traces_polices_trailing_bytes() {
        let mut payload = encode_msg(&Msg::GetTraces);
        payload.push(0);
        assert_eq!(decode_msg(&payload), Err(ProtoError::Trailing(1)));
        let text = encode_msg(&Msg::Traces { jsonl: "x".into() });
        assert_eq!(decode_msg(&text).unwrap(), Msg::Traces { jsonl: "x".into() });
        assert_eq!(decode_msg(&[TAG_TRACES, 0xFF]), Err(ProtoError::BadUtf8));
    }

    #[test]
    fn health_and_handshake_frames_reject_truncation_and_trailing_bytes() {
        for msg in [
            Msg::Ping { id: 1 },
            Msg::Pong {
                id: 2,
                wal: WalHealth::Unwritable,
                shards: vec![
                    ShardHealth { live: true, degraded: false },
                    ShardHealth { live: true, degraded: true },
                ],
            },
            Msg::QuerySession { id: 3, session: 9 },
            Msg::SessionStatus { id: 4, session: 9, stream_hash: 7, columns: 5 },
        ] {
            let payload = encode_msg(&msg);
            for cut in 0..payload.len() {
                assert!(decode_msg(&payload[..cut]).is_err(), "{msg:?} cut at {cut}");
            }
            let mut extra = payload.clone();
            extra.push(0);
            assert!(
                matches!(decode_msg(&extra), Err(ProtoError::Trailing(1))),
                "{msg:?} must police trailing bytes"
            );
        }
        // unknown wal-health and shard-flag bytes are BadCode, not panics
        let mut pong = encode_msg(&Msg::Pong { id: 1, wal: WalHealth::Writable, shards: vec![] });
        pong[9] = 9;
        assert_eq!(decode_msg(&pong), Err(ProtoError::BadCode(9)));
        let mut pong = encode_msg(&Msg::Pong {
            id: 1,
            wal: WalHealth::Writable,
            shards: vec![ShardHealth { live: true, degraded: false }],
        });
        *pong.last_mut().unwrap() = 0xF0;
        assert_eq!(decode_msg(&pong), Err(ProtoError::BadCode(0xF0)));
    }

    #[test]
    fn get_metrics_polices_trailing_bytes() {
        assert_eq!(decode_msg(&[TAG_GET_METRICS, 9]), Err(ProtoError::Trailing(1)));
    }

    #[test]
    fn read_frame_until_times_out_only_mid_frame() {
        use std::io::Write;
        use std::os::unix::net::UnixStream;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        use std::time::{Duration, Instant};
        let stop = Arc::new(AtomicBool::new(false));
        let (mut tx, mut rx) = UnixStream::pair().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
        // idle between frames: the 40 ms stall budget never arms; the
        // connection lives until the stop flag ends it at ~120 ms
        let t0 = Instant::now();
        let stopper = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                std::thread::sleep(Duration::from_millis(120));
                stop.store(true, Ordering::Release);
            }
        });
        let got = read_frame_until(&mut rx, 1024, &stop, Some(Duration::from_millis(40))).unwrap();
        stopper.join().unwrap();
        assert_eq!(got, None, "stop at a frame boundary reads as end-of-stream");
        assert!(t0.elapsed() >= Duration::from_millis(100), "idle must outlive the stall budget");
        // a partial frame arms the budget: one prefix byte, then silence
        stop.store(false, Ordering::Release);
        tx.write_all(&[4u8]).unwrap();
        let err = read_frame_until(&mut rx, 1024, &stop, Some(Duration::from_millis(40)))
            .expect_err("a stalled partial frame must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // ... and a stalled body does too
        stop.store(false, Ordering::Release);
        tx.write_all(&[8, 0, 0, 0, TAG_GET_STATS]).unwrap();
        let err = read_frame_until(&mut rx, 1024, &stop, Some(Duration::from_millis(40)))
            .expect_err("a stalled frame body must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn session_frames_reject_truncation_and_trailing_bytes() {
        for msg in [
            Msg::OpenSession { id: 1, n_atoms: 64 },
            Msg::PushAtoms { id: 2, session: 1, delta: fig2_matrix() },
            Msg::SealSession { id: 3, session: 1 },
            Msg::SessionVerdict {
                id: 4,
                session: 1,
                verdict: WireVerdict::Accept { order: vec![1, 0] },
            },
        ] {
            let payload = encode_msg(&msg);
            for cut in 0..payload.len() {
                assert!(decode_msg(&payload[..cut]).is_err(), "{msg:?} cut at {cut}");
            }
        }
        // the fixed-size session frames police trailing bytes exactly
        let mut open = encode_msg(&Msg::OpenSession { id: 1, n_atoms: 64 });
        open.push(0);
        assert_eq!(decode_msg(&open), Err(ProtoError::Trailing(1)));
        let mut seal = encode_msg(&Msg::SealSession { id: 1, session: 2 });
        seal.extend_from_slice(&[0, 0]);
        assert_eq!(decode_msg(&seal), Err(ProtoError::Trailing(2)));
        // a corrupted embedded delta surfaces as a Wire error with offset
        let mut push = encode_msg(&Msg::PushAtoms { id: 2, session: 1, delta: fig2_matrix() });
        push.truncate(push.len() - 1);
        assert!(matches!(decode_msg(&push), Err(ProtoError::Wire(EnsembleError::Wire { .. }))));
    }

    #[test]
    fn oversize_frames_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(buf), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_and_payloads_error_cleanly() {
        let mut cursor = io::Cursor::new(vec![5u8, 0]);
        assert!(read_frame(&mut cursor, 1024).is_err(), "truncated length prefix");
        let mut buf = Vec::new();
        write_frame(&mut buf, &[1, 2, 3]).unwrap();
        buf.truncate(5);
        assert!(read_frame(&mut io::Cursor::new(buf), 1024).is_err(), "truncated payload");
        for cut in 0..9 {
            let payload = encode_msg(&Msg::Solve { id: 1, ens: fig2_matrix() });
            assert!(decode_msg(&payload[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_msg(&[]).is_err());
        assert!(decode_msg(&[0x7f]).is_err());
        // a known tag with extra bytes is a Trailing error, not BadTag
        assert_eq!(decode_msg(&[TAG_GET_STATS, 0, 0]), Err(ProtoError::Trailing(2)));
    }
}

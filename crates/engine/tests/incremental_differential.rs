//! The incremental-session contract: every push verdict — witness order,
//! rejection evidence, Tucker witness — is **bit-identical** to a one-shot
//! `solve_certified` of the concatenated ensemble, for accept-only
//! streams, reject-at-k streams, and interleaved sessions, swept across
//! 1/2/4/8-thread pools and auto/explicit cutoffs with both the
//! sequential and the parallel component-re-solve routes.

use c1p_cert::{solve_certified, CertifiedRejection};
use c1p_core::Config;
use c1p_engine::{Engine, EngineConfig, Verdict};
use c1p_incremental::IncrementalSolver;
use c1p_matrix::generate::{append_stream, append_stream_reject, AppendStream};
use c1p_matrix::{Atom, Ensemble};

/// The one-shot reference verdict for an accepted prefix + push.
fn one_shot(n: usize, cols: &[Vec<Atom>]) -> Result<Vec<Atom>, CertifiedRejection> {
    solve_certified(&Ensemble::from_columns(n, cols.to_vec()).unwrap())
}

/// Drives `stream` through a fresh solver configured by `(cfg,
/// par_cutoff)` under an explicitly sized pool, asserting every verdict
/// against the one-shot reference. Returns the per-push verdicts so
/// sweeps can additionally be compared against each other.
fn drive(
    stream: &AppendStream,
    threads: usize,
    cfg: Config,
    par_cutoff: usize,
) -> Vec<Result<Vec<Atom>, (c1p_core::Rejection, c1p_cert::TuckerWitness)>> {
    let n = stream.n_atoms;
    let pool = c1p_pram::pool(threads);
    let mut inc = IncrementalSolver::with_config(n, cfg, par_cutoff);
    let mut accepted: Vec<Vec<Atom>> = Vec::new();
    let mut out = Vec::new();
    for (k, push) in stream.pushes.iter().enumerate() {
        let delta = stream.push_ensemble(k);
        let got = pool.install(|| inc.push(&delta));
        let mut concat = accepted.clone();
        concat.extend(push.iter().cloned());
        let expect = one_shot(n, &concat);
        match (&got, &expect) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "push {k}: accept order differs from one-shot");
                accepted = concat;
            }
            (Err(g), Err(e)) => {
                assert_eq!(g.rejection, e.rejection, "push {k}: rejection evidence differs");
                assert_eq!(g.witness, e.witness, "push {k}: Tucker witness differs");
            }
            _ => panic!(
                "push {k}: verdict class mismatch (incremental {:?} vs one-shot {:?})",
                got.is_ok(),
                expect.is_ok()
            ),
        }
        out.push(got.map_err(|c| (c.rejection, c.witness)));
    }
    // the final state is exactly the accepted concatenation
    assert_eq!(inc.ensemble(), &Ensemble::from_columns(n, accepted).unwrap());
    out
}

#[test]
fn accept_only_streams_bit_identical_across_threads_and_cutoffs() {
    for seed in [1u64, 2] {
        let stream = append_stream(96, 6, 6, seed);
        // reference sweep point: 1 thread, default config, sequential route
        let base = drive(&stream, 1, Config::default(), usize::MAX);
        for threads in [2usize, 4, 8] {
            for (cfg, par_cutoff) in [
                (Config::default(), usize::MAX), // sequential re-solves
                (Config::default(), 0),          // parallel route, auto cutoff
                (Config { seq_cutoff: 64, ..Config::default() }, 0), // explicit cutoff
            ] {
                let got = drive(&stream, threads, cfg, par_cutoff);
                assert_eq!(
                    got, base,
                    "seed {seed}: sweep point ({threads} threads, cutoff \
                     {:?}, par_cutoff {par_cutoff}) diverged",
                    cfg.seq_cutoff
                );
            }
        }
    }
}

#[test]
fn reject_at_k_streams_certify_identically_and_roll_back() {
    // seeds 0..5 cycle through all five Tucker families
    for seed in 0..5u64 {
        let (stream, at, _) = append_stream_reject(96, 6, 6, seed);
        for (threads, par_cutoff) in [(1usize, usize::MAX), (4, 0)] {
            let verdicts = drive(&stream, threads, Config::default(), par_cutoff);
            for (k, v) in verdicts.iter().enumerate() {
                assert_eq!(
                    v.is_err(),
                    k == at,
                    "seed {seed}: push {k} verdict class (reject planted at {at})"
                );
            }
            // the rejected push's witness really checks against the
            // concatenation it spoke about
            let (_, witness) = verdicts[at].as_ref().unwrap_err();
            let mut cols: Vec<Vec<Atom>> =
                stream.pushes[..at].iter().flat_map(|p| p.iter().cloned()).collect();
            cols.extend(stream.pushes[at].iter().cloned());
            let concat = Ensemble::from_columns(stream.n_atoms, cols).unwrap();
            c1p_cert::verify_witness(&concat, witness).unwrap();
        }
    }
}

#[test]
fn interleaved_engine_sessions_stay_isolated_and_agree_with_one_shot() {
    // two sessions advanced alternately on one engine, swept over pool
    // sizes: verdicts must be identical across sweeps and each session
    // must answer exactly as a one-shot solve of its own concatenation
    let a = append_stream(80, 5, 4, 11);
    let (b, b_at, _) = append_stream_reject(64, 4, 4, 12);
    let mut sweeps: Vec<Vec<Verdict>> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig { threads, ..EngineConfig::default() });
        let sa = engine.open_session(a.n_atoms).unwrap();
        let sb = engine.open_session(b.n_atoms).unwrap();
        let mut verdicts = Vec::new();
        let mut a_accepted: Vec<Vec<Atom>> = Vec::new();
        let mut b_accepted: Vec<Vec<Atom>> = Vec::new();
        for k in 0..4 {
            for (sess, stream, accepted, reject_at) in
                [(sa, &a, &mut a_accepted, None), (sb, &b, &mut b_accepted, Some(b_at))]
            {
                let v = engine.session_push(sess, &stream.push_ensemble(k)).unwrap();
                let mut concat = accepted.clone();
                concat.extend(stream.pushes[k].iter().cloned());
                match one_shot(stream.n_atoms, &concat) {
                    Ok(order) => {
                        assert_eq!(v, Verdict::C1p { order }, "push {k}");
                        assert_ne!(reject_at, Some(k));
                        *accepted = concat;
                    }
                    Err(cert) => {
                        assert_eq!(
                            v,
                            Verdict::NotC1p { rejection: cert.rejection, witness: cert.witness },
                            "push {k}"
                        );
                        assert_eq!(reject_at, Some(k));
                    }
                }
                verdicts.push(v);
            }
        }
        // sealing returns the final accepted orders
        let fa = engine.seal_session(sa).unwrap();
        let fb = engine.seal_session(sb).unwrap();
        assert_eq!(fa, Verdict::C1p { order: one_shot(a.n_atoms, &a_accepted).unwrap() });
        assert_eq!(fb, Verdict::C1p { order: one_shot(b.n_atoms, &b_accepted).unwrap() });
        verdicts.push(fa);
        verdicts.push(fb);
        sweeps.push(verdicts);
    }
    for (i, s) in sweeps.iter().enumerate().skip(1) {
        assert_eq!(s, &sweeps[0], "thread sweep point {i} diverged");
    }
}

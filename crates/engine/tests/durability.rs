//! The durability contract at the `Engine` level (DESIGN.md §10): boot
//! recovery rebuilds live sessions from their write-ahead logs and seals
//! them bit-identical to a one-shot solve; idle-evicted sessions resume
//! lazily from disk; snapshots warm-start the result cache; and corrupted
//! durable state — torn WAL tails, bit-flipped records, damaged snapshot
//! files — is truncated or quarantined through recovery, never misparsed
//! and never a panic.

use c1p_cert::solve_certified;
use c1p_engine::{snapshot, wal, Engine, EngineConfig, EngineError, Verdict};
use c1p_matrix::generate::append_stream;
use c1p_matrix::io::split_record;
use c1p_matrix::{Atom, Ensemble};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique throwaway durability directory per call.
fn tdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "c1p-durability-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("test dir");
    d
}

fn durable_cfg(dir: &std::path::Path) -> EngineConfig {
    EngineConfig { threads: 2, wal_dir: Some(dir.to_path_buf()), ..EngineConfig::default() }
}

/// The canonical expected order for an accepted column set.
fn one_shot_order(n: usize, cols: &[Vec<Atom>]) -> Vec<Atom> {
    solve_certified(&Ensemble::from_columns(n, cols.to_vec()).unwrap()).expect("accept-only stream")
}

#[test]
fn boot_recovery_seals_bit_identical_to_one_shot() {
    let dir = tdir("boot");
    let stream = append_stream(80, 5, 6, 7);
    let split = 3; // pushes 0..3 before the "crash", the rest after

    // first process generation: open, push a prefix, vanish unsealed
    let id = {
        let engine = Engine::new(durable_cfg(&dir));
        let id = engine.open_session(stream.n_atoms).unwrap();
        for k in 0..split {
            let v = engine.session_push(id, &stream.push_ensemble(k)).unwrap();
            assert!(v.is_c1p(), "seeded stream is accept-only");
        }
        assert!(wal::wal_path(&dir, id).exists(), "accepted pushes are logged");
        id
    };

    // second generation: the session is back at boot, continues, seals
    let engine = Engine::new(durable_cfg(&dir));
    let stats = engine.stats();
    assert_eq!(stats.recovered_sessions, 1, "boot replays the WAL");
    assert_eq!(stats.quarantined_wals, 0);
    assert_eq!(stats.open_sessions, 1);
    for k in split..stream.pushes.len() {
        engine.session_push(id, &stream.push_ensemble(k)).unwrap();
    }
    let sealed = engine.seal_session(id).unwrap();
    let cols: Vec<Vec<Atom>> = stream.pushes.iter().flatten().cloned().collect();
    match sealed {
        Verdict::C1p { order } => {
            assert_eq!(order, one_shot_order(stream.n_atoms, &cols), "seal == one-shot")
        }
        v => panic!("accept-only stream sealed as {v:?}"),
    }
    assert!(!wal::wal_path(&dir, id).exists(), "seal retires the WAL");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_evicted_sessions_resume_lazily_from_their_wal() {
    let dir = tdir("resume");
    let cfg = EngineConfig { session_idle_ms: 1, ..durable_cfg(&dir) };
    let engine = Engine::new(cfg);
    let stream = append_stream(64, 4, 4, 11);
    let id = engine.open_session(stream.n_atoms).unwrap();
    engine.session_push(id, &stream.push_ensemble(0)).unwrap();

    // the idle sweep (which runs on every stats snapshot) evicts it
    std::thread::sleep(std::time::Duration::from_millis(25));
    let stats = engine.stats();
    assert_eq!(stats.open_sessions, 0, "idle session evicted");
    assert!(stats.sessions_evicted >= 1);
    assert!(wal::wal_path(&dir, id).exists(), "eviction keeps the log");

    // the next push resumes the session from disk instead of NoSession
    for k in 1..stream.pushes.len() {
        engine.session_push(id, &stream.push_ensemble(k)).unwrap();
    }
    // >= 1, not == 1: at a 1 ms idle budget the session may be evicted
    // and lazily resumed again between any two of the later pushes
    assert!(engine.stats().recovered_sessions >= 1, "lazy resume counted");
    let cols: Vec<Vec<Atom>> = stream.pushes.iter().flatten().cloned().collect();
    match engine.seal_session(id).unwrap() {
        Verdict::C1p { order } => {
            assert_eq!(order, one_shot_order(stream.n_atoms, &cols))
        }
        v => panic!("accept-only stream sealed as {v:?}"),
    }
    // a genuinely unknown id still refuses (no log to resume from)
    assert!(matches!(
        engine.session_push(id + 1000, &stream.push_ensemble(0)),
        Err(EngineError::NoSuchSession { .. })
    ));
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_warm_starts_the_restarted_cache() {
    let dir = tdir("warm");
    let ens = append_stream(72, 4, 3, 13).final_ensemble();
    {
        let engine = Engine::new(durable_cfg(&dir));
        engine.solve(&ens).unwrap();
        engine.flush_durability();
        assert!(engine.stats().snapshot_writes >= 1);
    }
    let engine = Engine::new(durable_cfg(&dir));
    let warm = engine.solve(&ens).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.hits, 1, "first post-restart solve is a cache hit");
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.warm_start_hits, 1, "and the hit is attributed to the snapshot");
    // the warmed verdict is the real one, not just *a* cached value
    let cold = Engine::new(EngineConfig { threads: 2, ..EngineConfig::default() });
    assert_eq!(warm, cold.solve(&ens).unwrap());
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds one unsealed-session WAL on disk and returns
/// `(wal bytes, session id, record end offsets, n_atoms)`.
fn seeded_wal(
    dir: &std::path::Path,
    pushes: usize,
    seed: u64,
) -> (Vec<u8>, u64, Vec<usize>, usize) {
    let stream = append_stream(60, 4, pushes, seed);
    let engine = Engine::new(durable_cfg(dir));
    let id = engine.open_session(stream.n_atoms).unwrap();
    for k in 0..pushes {
        engine.session_push(id, &stream.push_ensemble(k)).unwrap();
    }
    drop(engine);
    let bytes = std::fs::read(wal::wal_path(dir, id)).unwrap();
    let mut ends = Vec::new();
    let mut at = wal::HEADER_LEN;
    while at < bytes.len() {
        at += split_record(&bytes, at).unwrap().consumed;
        ends.push(at);
    }
    assert_eq!(ends.len(), pushes, "one record per accepted push");
    (bytes, id, ends, stream.n_atoms)
}

#[test]
fn torn_wal_tails_recover_the_surviving_prefix() {
    let scratch = tdir("torn-src");
    let (bytes, id, ends, n_atoms) = seeded_wal(&scratch, 4, 17);
    let stream = append_stream(60, 4, 4, 17); // same seed → same pushes

    // seeded cuts: every record boundary, plus points strictly inside
    // records (mid-payload tears) and inside the trailing checksum
    let mut cuts: Vec<usize> = ends.clone();
    for w in ends.windows(2) {
        cuts.push((w[0] + w[1]) / 2);
        cuts.push(w[1] - 3);
    }
    cuts.push(wal::HEADER_LEN + 1);
    for cut in cuts {
        let dir = tdir("torn");
        std::fs::write(wal::wal_path(&dir, id), &bytes[..cut]).unwrap();
        let engine = Engine::new(durable_cfg(&dir));
        let stats = engine.stats();
        assert_eq!(stats.quarantined_wals, 0, "cut {cut}: a tear is not damage");
        assert_eq!(stats.recovered_sessions, 1, "cut {cut}");
        // exactly the records before the tear survive — never a misparse
        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        let expect_len = ends.get(survivors.wrapping_sub(1)).copied().unwrap_or(wal::HEADER_LEN);
        let on_disk = std::fs::metadata(wal::wal_path(&dir, id)).unwrap().len() as usize;
        assert_eq!(on_disk, expect_len, "cut {cut}: truncated to the last good record");
        // the recovered session continues and seals like a one-shot of
        // the surviving pushes plus everything re-sent after the tear
        for k in survivors..stream.pushes.len() {
            engine.session_push(id, &stream.push_ensemble(k)).unwrap();
        }
        let cols: Vec<Vec<Atom>> = stream.pushes.iter().flatten().cloned().collect();
        match engine.seal_session(id).unwrap() {
            Verdict::C1p { order } => assert_eq!(order, one_shot_order(n_atoms, &cols)),
            v => panic!("cut {cut}: sealed as {v:?}"),
        }
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // a file shorter than its header is damage, not a tear
    let dir = tdir("torn-hdr");
    std::fs::write(wal::wal_path(&dir, id), &bytes[..wal::HEADER_LEN / 2]).unwrap();
    let engine = Engine::new(durable_cfg(&dir));
    assert_eq!(engine.stats().quarantined_wals, 1);
    assert_eq!(engine.stats().recovered_sessions, 0);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn bit_flipped_wal_records_are_quarantined_never_replayed() {
    let scratch = tdir("flip-src");
    let (bytes, id, ends, _) = seeded_wal(&scratch, 3, 19);

    // flips inside the first record's payload/aux/crc: structurally
    // complete with data after it, so recovery must classify damage
    let r0 = (wal::HEADER_LEN + 4, ends[0]);
    // and flips inside the header's checksummed bytes
    let hdr = (0usize, wal::HEADER_LEN);
    let mut probes = Vec::new();
    for (lo, hi) in [r0, hdr] {
        let span = hi - lo;
        for i in 0..6 {
            probes.push(lo + (i * span.max(1)) / 6);
        }
    }
    for at in probes {
        for bit in [0x01u8, 0x80] {
            let dir = tdir("flip");
            let mut m = bytes.clone();
            m[at] ^= bit;
            std::fs::write(wal::wal_path(&dir, id), &m).unwrap();
            let engine = Engine::new(durable_cfg(&dir));
            let stats = engine.stats();
            assert_eq!(stats.quarantined_wals, 1, "flip at {at}: damage is quarantined");
            assert_eq!(stats.recovered_sessions, 0, "flip at {at}");
            // the damaged log is preserved for forensics, renamed aside
            let q = wal::wal_path(&dir, id).with_extension("wal.quarantine");
            assert!(q.exists(), "flip at {at}: quarantine file kept");
            // the session is gone (not silently half-recovered) and the
            // engine still serves
            assert!(matches!(
                engine.session_push(id, &append_stream(60, 4, 3, 19).push_ensemble(0)),
                Err(EngineError::NoSuchSession { .. })
            ));
            engine.solve(&append_stream(32, 2, 2, 5).final_ensemble()).unwrap();
            drop(engine);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn damaged_snapshots_are_quarantined_and_the_cache_starts_cold() {
    let scratch = tdir("snap-src");
    let ens = append_stream(72, 4, 3, 23).final_ensemble();
    {
        let engine = Engine::new(durable_cfg(&scratch));
        engine.solve(&ens).unwrap();
        engine.flush_durability();
    }
    let pristine = std::fs::read(snapshot::snapshot_path(&scratch)).unwrap();

    // truncations and seeded bit flips, each through a full boot
    let mut mutants: Vec<Vec<u8>> = Vec::new();
    for cut in [0, 1, pristine.len() / 2, pristine.len() - 1] {
        mutants.push(pristine[..cut].to_vec());
    }
    for i in 0..8 {
        let mut m = pristine.clone();
        let at = (i * pristine.len()) / 8;
        m[at] ^= if i % 2 == 0 { 0x01 } else { 0x80 };
        mutants.push(m);
    }
    for (i, mutant) in mutants.iter().enumerate() {
        let dir = tdir("snap");
        std::fs::write(snapshot::snapshot_path(&dir), mutant).unwrap();
        let engine = Engine::new(durable_cfg(&dir));
        assert_eq!(engine.stats().quarantined_wals, 1, "mutant {i}: damage counted");
        assert!(
            snapshot::snapshot_path(&dir).with_extension("c1ps.quarantine").exists(),
            "mutant {i}: damaged snapshot kept aside"
        );
        // no warm state was trusted: the solve is cold but still correct
        let v = engine.solve(&ens).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.warm_start_hits, 0, "mutant {i}: nothing warm to hit");
        assert_eq!(stats.misses, 1, "mutant {i}: cold solve");
        let cold = Engine::new(EngineConfig { threads: 2, ..EngineConfig::default() });
        assert_eq!(v, cold.solve(&ens).unwrap(), "mutant {i}: verdict unaffected");
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

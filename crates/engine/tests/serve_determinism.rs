//! Determinism of the served path (ISSUE 4 acceptance): batch order,
//! chunking, the submission queue, and the engine thread count must not
//! change a single bit of any verdict or its evidence.

use c1p_engine::{Engine, EngineConfig, Verdict};
use c1p_matrix::generate::{planted, planted_reject};
use c1p_matrix::Ensemble;

/// A mixed schedule with duplicates and both verdict classes. `n > 64`
/// instances exercise the large/parallel path under the lowered cutoff.
fn schedule() -> Vec<Ensemble> {
    let mut s = Vec::new();
    for seed in 0..6u64 {
        s.push(planted(40 + 13 * seed as usize, seed));
        s.push(planted_reject(48 + 9 * seed as usize, seed).0);
    }
    s.push(planted(120, 17));
    s.push(planted_reject(130, 18).0);
    // duplicates, some column-permuted
    s.push(s[0].clone());
    s.push(s[3].clone());
    let perm =
        Ensemble::from_columns(s[1].n_atoms(), s[1].columns().iter().rev().cloned().collect())
            .unwrap();
    s.push(perm);
    s
}

fn engine_with(threads: usize) -> Engine {
    // cutoff below the largest instances so both solve paths participate
    Engine::new(EngineConfig { threads, small_cutoff: 64, ..EngineConfig::default() })
}

fn solve_all_one_batch(threads: usize, reqs: &[Ensemble]) -> Vec<Verdict> {
    engine_with(threads)
        .solve_batch(reqs)
        .into_iter()
        .map(|r| r.expect("no admission failures in this schedule"))
        .collect()
}

#[test]
fn batch_order_and_chunking_do_not_change_verdicts() {
    let reqs = schedule();
    let baseline = solve_all_one_batch(1, &reqs);
    // reversed submission order
    let reversed_reqs: Vec<Ensemble> = reqs.iter().rev().cloned().collect();
    let mut reversed = solve_all_one_batch(1, &reversed_reqs);
    reversed.reverse();
    assert_eq!(baseline, reversed, "batch order changed a verdict");
    // chunked into small batches on a fresh engine (cache warm across chunks)
    let engine = engine_with(1);
    let mut chunked = Vec::new();
    for chunk in reqs.chunks(5) {
        chunked.extend(engine.solve_batch(chunk).into_iter().map(|r| r.unwrap()));
    }
    assert_eq!(baseline, chunked, "chunking changed a verdict");
    // singles
    let engine = engine_with(1);
    let singles: Vec<Verdict> = reqs.iter().map(|e| engine.solve(e).unwrap()).collect();
    assert_eq!(baseline, singles, "single-solve path changed a verdict");
}

#[test]
fn thread_count_does_not_change_verdicts() {
    let reqs = schedule();
    let t1 = solve_all_one_batch(1, &reqs);
    for threads in [2, 4] {
        let tn = solve_all_one_batch(threads, &reqs);
        assert_eq!(t1, tn, "thread count {threads} changed a verdict");
    }
}

#[test]
fn submission_queue_matches_sync_batches() {
    let reqs = schedule();
    let baseline = solve_all_one_batch(2, &reqs);
    let engine = engine_with(2);
    let tickets: Vec<_> = reqs.iter().map(|e| engine.submit(e.clone()).unwrap()).collect();
    let queued: Vec<Verdict> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    assert_eq!(baseline, queued, "queue path changed a verdict");
    let s = engine.stats();
    assert_eq!(s.requests, reqs.len() as u64);
    assert!(s.batches >= 1);
}

#[test]
fn wire_projection_round_trips_real_verdicts() {
    use c1p_matrix::io::{decode_verdict, encode_verdict};
    let engine = engine_with(1);
    for req in schedule().iter().take(6) {
        let v = engine.solve(req).unwrap();
        let wire = v.to_wire();
        assert_eq!(decode_verdict(&encode_verdict(&wire)).unwrap(), wire);
    }
}

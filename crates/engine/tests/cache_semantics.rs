//! Cache-semantics contract of the engine (ISSUE 4 satellite):
//!
//! * hits and misses follow the documented canonicalization rule exactly —
//!   column permutation hits, atom renumbering misses;
//! * hot and cold answers are byte-identical, and agree with a direct
//!   `solve_certified` (exactly so for canonical-ordered requests);
//! * eviction never drops an in-flight entry: concurrent duplicates under
//!   an eviction storm still coalesce onto one correct result;
//! * the hit path is ≥ 10× faster than a cold solve at n = 2^12.

use c1p_cert::verify_witness;
use c1p_engine::{Engine, EngineConfig, Verdict};
use c1p_matrix::generate::{planted, planted_reject};
use c1p_matrix::{verify_linear, Atom, Ensemble};
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn small_engine() -> Engine {
    Engine::new(EngineConfig { threads: 1, ..EngineConfig::default() })
}

/// Re-sorts the outer column order lexicographically, producing the
/// canonical request (the engine's own rule, applied by hand).
fn canonical_request(ens: &Ensemble) -> Ensemble {
    let mut cols = ens.columns().to_vec();
    cols.sort();
    Ensemble::from_sorted_columns(ens.n_atoms(), cols).unwrap()
}

#[test]
fn exact_duplicate_hits() {
    let engine = small_engine();
    let ens = planted(128, 7);
    let cold = engine.solve(&ens).unwrap();
    let hot = engine.solve(&ens).unwrap();
    assert_eq!(cold, hot, "hot and cold answers are identical");
    let s = engine.stats();
    assert_eq!((s.misses, s.hits), (1, 1));
}

#[test]
fn column_permutation_hits_per_the_rule() {
    let engine = small_engine();
    let ens = planted(96, 3);
    let reversed =
        Ensemble::from_columns(ens.n_atoms(), ens.columns().iter().rev().cloned().collect())
            .unwrap();
    assert_ne!(ens, reversed, "a genuine permutation");
    let a = engine.solve(&ens).unwrap();
    let b = engine.solve(&reversed).unwrap();
    let s = engine.stats();
    assert_eq!((s.misses, s.hits), (1, 1), "column permutation must hit");
    // accept orders are column-order independent, so they coincide exactly
    assert_eq!(a, b);
    match (&a, &b) {
        (Verdict::C1p { order }, Verdict::C1p { .. }) => {
            verify_linear(&ens, order).unwrap();
            verify_linear(&reversed, order).unwrap();
        }
        _ => panic!("planted instances are C1P"),
    }
}

#[test]
fn column_permutation_hit_remaps_witness_columns() {
    let engine = small_engine();
    let (bad, _) = planted_reject(64, 2);
    let reversed =
        Ensemble::from_columns(bad.n_atoms(), bad.columns().iter().rev().cloned().collect())
            .unwrap();
    let a = engine.solve(&bad).unwrap();
    let b = engine.solve(&reversed).unwrap();
    let s = engine.stats();
    assert_eq!((s.misses, s.hits), (1, 1), "permuted reject must hit too");
    let (
        Verdict::NotC1p { witness: wa, rejection: ra },
        Verdict::NotC1p { witness: wb, rejection: rb },
    ) = (&a, &b)
    else {
        panic!("planted_reject instances are not C1P");
    };
    // atom-space parts identical; column ids remapped per request
    assert_eq!(ra, rb);
    assert_eq!(wa.family, wb.family);
    assert_eq!(wa.atom_rows, wb.atom_rows);
    verify_witness(&bad, wa).unwrap();
    verify_witness(&reversed, wb).unwrap();
}

#[test]
fn atom_renumbering_misses_per_the_rule() {
    let engine = small_engine();
    let ens = planted(80, 5);
    let n = ens.n_atoms();
    let perm: Vec<Atom> = (0..n as Atom).rev().collect();
    let renamed = ens.permute_atoms(&perm);
    let a = engine.solve(&ens).unwrap();
    let b = engine.solve(&renamed).unwrap();
    let s = engine.stats();
    assert_eq!((s.misses, s.hits), (2, 0), "atom renumbering must miss");
    // both verdicts valid for their own instance
    for (v, e) in [(&a, &ens), (&b, &renamed)] {
        match v {
            Verdict::C1p { order } => verify_linear(e, order).unwrap(),
            _ => panic!("planted instances are C1P"),
        }
    }
}

#[test]
fn hot_cold_and_direct_solve_agree() {
    for seed in 0..4u64 {
        let engine = small_engine();
        let raw = if seed % 2 == 0 { planted(72, seed) } else { planted_reject(72, seed).0 };
        // canonical-ordered request: the engine solves exactly this
        // ensemble, so equality with solve_certified is exact
        let ens = canonical_request(&raw);
        let cold = engine.solve(&ens).unwrap();
        let hot = engine.solve(&ens).unwrap();
        assert_eq!(cold, hot, "seed {seed}");
        match c1p_cert::solve_certified(&ens) {
            Ok(order) => assert_eq!(cold, Verdict::C1p { order }, "seed {seed}"),
            Err(cert) => assert_eq!(
                cold,
                Verdict::NotC1p { rejection: cert.rejection, witness: cert.witness },
                "seed {seed}"
            ),
        }
        // the non-canonical original gets the same verdict class and a
        // verdict valid in its own coordinates
        let other = engine.solve(&raw).unwrap();
        assert_eq!(other.is_c1p(), cold.is_c1p(), "seed {seed}");
        match &other {
            Verdict::C1p { order } => verify_linear(&raw, order).unwrap(),
            Verdict::NotC1p { witness, .. } => verify_witness(&raw, witness).unwrap(),
        }
    }
}

#[test]
fn eviction_is_lru_and_accounted() {
    // budget sized to hold only a few small entries
    let engine =
        Engine::new(EngineConfig { threads: 1, cache_bytes: 4 << 10, ..EngineConfig::default() });
    let instances: Vec<Ensemble> = (0..12).map(|i| planted(24, 1000 + i)).collect();
    for e in &instances {
        engine.solve(e).unwrap();
    }
    let s = engine.stats();
    assert_eq!(s.misses, 12);
    assert!(s.evictions > 0, "12 entries cannot fit in 4 KiB: {s:?}");
    assert!(s.cache_bytes <= 4 << 10, "budget respected: {s:?}");
    // the most recent instance is still resident, the oldest is not
    engine.solve(instances.last().unwrap()).unwrap();
    let s2 = engine.stats();
    assert_eq!(s2.hits, s.hits + 1, "most recent entry survived");
    engine.solve(&instances[0]).unwrap();
    let s3 = engine.stats();
    assert_eq!(s3.misses, s2.misses + 1, "oldest entry was evicted");
}

#[test]
fn inflight_survives_an_eviction_storm() {
    // Tiny cache: constant eviction churn. The big instance's computation
    // lives in the pending map, which eviction cannot touch; concurrent
    // duplicates must coalesce (or at worst recompute) to the same result.
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 1,
        cache_bytes: 2 << 10,
        ..EngineConfig::default()
    }));
    let big = planted(600, 99);
    let barrier = Arc::new(Barrier::new(3));
    let solvers: Vec<_> = (0..3)
        .map(|_| {
            let (engine, big, barrier) = (Arc::clone(&engine), big.clone(), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                engine.solve(&big).unwrap()
            })
        })
        .collect();
    // meanwhile: churn distinct small instances to force evictions
    for i in 0..40 {
        engine.solve(&planted(24, 2000 + i)).unwrap();
    }
    let results: Vec<Verdict> = solvers.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(results.windows(2).all(|w| w[0] == w[1]), "all waiters saw one result");
    match &results[0] {
        Verdict::C1p { order } => verify_linear(&big, order).unwrap(),
        _ => panic!("planted instance is C1P"),
    }
    let s = engine.stats();
    assert!(s.evictions > 0, "the storm really evicted: {s:?}");
    assert!(s.misses + s.hits + s.coalesced >= 43, "all requests accounted: {s:?}");
}

#[test]
fn cache_hit_is_ten_times_faster_than_cold_at_4096() {
    let engine = Engine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
    let ens = planted(1 << 12, 1);
    let t0 = Instant::now();
    let cold = engine.solve(&ens).unwrap();
    let t_cold = t0.elapsed();
    // median of three hot solves
    let mut hots = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        let hot = engine.solve(&ens).unwrap();
        hots.push(t0.elapsed());
        assert_eq!(hot, cold);
    }
    hots.sort();
    let t_hot = hots[1];
    assert!(
        t_cold >= 10 * t_hot,
        "cold {t_cold:?} must be >= 10x hot {t_hot:?} (acceptance: >= 10x at n=2^12)"
    );
}

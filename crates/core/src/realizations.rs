//! Counting all realizations of a C1P instance.
//!
//! The Tutte decomposition of a gp-realization represents the *entire*
//! 2-isomorphism class (paper Theorem 2), i.e. every valid linearization:
//! polygons contribute a free permutation of their non-parent edges, rigid
//! members a reflection, bonds nothing. Distinct arrangements give distinct
//! atom orders (members expand to disjoint, nonempty atom segments), so the
//! number of realizations is
//!
//! ```text
//!   Π_polygons (#non-parent ring edges)!  ×  2^(#rigid members)
//! ```
//!
//! — the exact analogue of Booth–Lueker's `Π_P (#children)! × 2^#Q`
//! permutation count, which [`c1p_pqtree::solve()`]-side code computes
//! independently; the test suites check the two always agree.
//!
//! In physical mapping this number measures *map ambiguity*: how many STS
//! orders are consistent with the clone fingerprints (1 and 2 mean the map
//! is determined up to reversal).

use c1p_matrix::Ensemble;
use c1p_tutte::{EdgeRef, MemberShape};

/// The number of atom orders realizing `ens`, saturating at `u128::MAX`;
/// `None` if the ensemble is not C1P. Counts both directions (reversals)
/// separately, like Booth–Lueker's frontier count; an edgeless instance on
/// `n` atoms yields `n!`.
pub fn count_realizations(ens: &Ensemble) -> Option<u128> {
    let order = crate::solve(ens).ok()?;
    let n = ens.n_atoms();
    if n <= 1 {
        return Some(1);
    }
    let mut pos = vec![0u32; n];
    for (i, &a) in order.iter().enumerate() {
        pos[a as usize] = i as u32;
    }
    // One decomposition over the full witness covers multi-component
    // instances too: component blocks become polygon edges of the same
    // tree, so cross-component arrangements (which C1P permits freely —
    // only column intervals constrain) are counted by the polygon
    // factorials.
    let chords: Vec<(u32, u32)> = ens
        .columns()
        .iter()
        .filter(|c| c.len() >= 2)
        .map(|col| {
            let mut lo = u32::MAX;
            let mut hi = 0;
            for &a in col {
                lo = lo.min(pos[a as usize]);
                hi = hi.max(pos[a as usize]);
            }
            (lo, hi + 1)
        })
        .collect();
    let tree = c1p_tutte::decompose(n, &chords).expect("witness spans are valid");
    let mut count: u128 = 1;
    for m in &tree.members {
        match &m.shape {
            MemberShape::Bond { .. } => {}
            MemberShape::Polygon { ring } => {
                // free permutation of the non-parent edges (the parent
                // marker — or e at the root — anchors the cycle)
                let j = ring
                    .iter()
                    .filter(|e| match e {
                        EdgeRef::E => false,
                        EdgeRef::Virt(_) => true,
                        _ => true,
                    })
                    .count()
                    - usize::from(m.parent.is_some());
                count = count.saturating_mul(factorial(j));
            }
            MemberShape::Rigid { .. } => {
                count = count.saturating_mul(2);
            }
        }
    }
    Some(count)
}

/// Booth–Lueker's independent count: build the PQ-tree for the instance and
/// evaluate `Π_P (#children)! × 2^#Q` over its nodes. `None` if not C1P.
pub fn count_realizations_pq(ens: &Ensemble) -> Option<u128> {
    let n = ens.n_atoms();
    if n <= 1 {
        return c1p_pqtree::solve(n, ens.columns()).map(|_| 1);
    }
    let mut tree = c1p_pqtree::PqTree::universal(n);
    for col in ens.columns() {
        if col.len() >= 2 && col.len() < n && tree.reduce(col).is_err() {
            return None;
        }
    }
    Some(tree.count_permutations())
}

fn factorial(j: usize) -> u128 {
    let mut out: u128 = 1;
    for i in 2..=j as u128 {
        out = out.saturating_mul(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::Atom;

    fn brute_count(ens: &Ensemble) -> u128 {
        use c1p_matrix::verify_linear;
        let n = ens.n_atoms();
        assert!(n <= 8);
        let mut order: Vec<Atom> = (0..n as Atom).collect();
        let mut count = 0u128;
        permute(&mut order, n, &mut |o| {
            if verify_linear(ens, o).is_ok() {
                count += 1;
            }
        });
        count
    }

    fn permute(xs: &mut Vec<Atom>, k: usize, f: &mut impl FnMut(&[Atom])) {
        if k <= 1 {
            f(xs);
            return;
        }
        for i in 0..k {
            permute(xs, k - 1, f);
            if k.is_multiple_of(2) {
                xs.swap(i, k - 1);
            } else {
                xs.swap(0, k - 1);
            }
        }
    }

    fn ens(n: usize, cols: Vec<Vec<Atom>>) -> Ensemble {
        Ensemble::from_columns(n, cols).unwrap()
    }

    #[test]
    fn unconstrained_counts_factorial() {
        assert_eq!(count_realizations(&ens(4, vec![])), Some(24));
        assert_eq!(count_realizations_pq(&ens(4, vec![])), Some(24));
    }

    #[test]
    fn single_pair_counts() {
        // {0,1} adjacent within 3 atoms: 2·2·... brute = 4
        let e = ens(3, vec![vec![0, 1]]);
        assert_eq!(brute_count(&e), 4);
        assert_eq!(count_realizations(&e), Some(4));
        assert_eq!(count_realizations_pq(&e), Some(4));
    }

    #[test]
    fn fully_determined_up_to_reversal() {
        let e = ens(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 1, 2]]);
        assert_eq!(brute_count(&e), 2);
        assert_eq!(count_realizations(&e), Some(2));
        assert_eq!(count_realizations_pq(&e), Some(2));
    }

    #[test]
    fn non_c1p_counts_none() {
        let e = c1p_matrix::tucker::m_i(1);
        assert_eq!(count_realizations(&e), None);
        assert_eq!(count_realizations_pq(&e), None);
    }

    #[test]
    fn exhaustive_counts_match_brute_force() {
        // all 2-column ensembles over 4 and 5 atoms
        for n in [4usize, 5] {
            let masks = 1usize << n;
            for c1 in 0..masks {
                for c2 in 0..masks {
                    let cols: Vec<Vec<Atom>> = [c1, c2]
                        .iter()
                        .map(|&m| (0..n as Atom).filter(|&a| m >> a & 1 == 1).collect())
                        .collect();
                    let e = ens(n, cols);
                    let expect = brute_count(&e);
                    let got = count_realizations(&e).unwrap_or(0);
                    let got_pq = count_realizations_pq(&e).unwrap_or(0);
                    assert_eq!(got, expect, "tutte count differs:\n{}", e.to_matrix());
                    assert_eq!(got_pq, expect, "pq count differs:\n{}", e.to_matrix());
                }
            }
        }
    }

    #[test]
    fn random_instances_two_counters_agree() {
        let mut state = 0xFEEDu64;
        let mut next = |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        for _ in 0..2000 {
            let n = 3 + next(18);
            let m = next(8);
            let cols: Vec<Vec<Atom>> = (0..m)
                .map(|_| {
                    let len = 2 + next(n - 1);
                    let start = next(n - len + 1);
                    (start as Atom..(start + len) as Atom).collect()
                })
                .collect();
            let e = ens(n, cols);
            assert_eq!(
                count_realizations(&e),
                count_realizations_pq(&e),
                "counters disagree:\n{}",
                e.to_matrix()
            );
        }
    }
}

//! # c1p-core: divide-and-conquer consecutive-ones testing
//!
//! The paper's contribution (Annexstein & Swaminathan): `Path-Realization`
//! (Fig. 3) decides C1P by
//!
//! 1. partitioning the atoms into a balanced pair `{A1, A2}` where `A1` is
//!    a connected segment — directly from a *proper-size column* (Case 1),
//!    or, after Tucker's complement transform, from a grown connected
//!    column union (Case 2, reducing to circular-ones);
//! 2. recursively realizing both subensembles;
//! 3. aligning the two realizations with **Whitney switches** — computed on
//!    the **Tutte decompositions** of the realizations — until the GAP/GAC
//!    conditions (Definitions 1–2) hold;
//! 4. merging: splitting the host realization at the *split vertex* `w` and
//!    inserting the segment realization (Theorems 3–6).
//!
//! The solver is exact: it returns a verified witness order for every C1P
//! instance and `None` otherwise. [`solve`] runs the sequential algorithm
//! (Theorem 9: `O(p log p)`); [`parallel::solve_par`] runs the recursion on
//! rayon with PRAM cost accounting (Theorem 9: `O(log² n)` modelled depth).

pub mod align;
pub mod circular;
pub mod flat;
pub mod interval_graphs;
pub mod merge;
pub mod parallel;
pub mod partition;
pub mod realizations;
pub mod solver;
pub mod stats;

pub use flat::{FlatCols, SplitCols};
pub use realizations::{count_realizations, count_realizations_pq};
pub use solver::{solve, solve_with, Config};
pub use stats::SolveStats;

/// The instance is not consecutive-ones realizable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotC1p;

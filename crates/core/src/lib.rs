//! # c1p-core: divide-and-conquer consecutive-ones testing
//!
//! The paper's contribution (Annexstein & Swaminathan): `Path-Realization`
//! (Fig. 3) decides C1P by
//!
//! 1. partitioning the atoms into a balanced pair `{A1, A2}` where `A1` is
//!    a connected segment — directly from a *proper-size column* (Case 1),
//!    or, after Tucker's complement transform, from a grown connected
//!    column union (Case 2, reducing to circular-ones);
//! 2. recursively realizing both subensembles;
//! 3. aligning the two realizations with **Whitney switches** — computed on
//!    the **Tutte decompositions** of the realizations — until the GAP/GAC
//!    conditions (Definitions 1–2) hold;
//! 4. merging: splitting the host realization at the *split vertex* `w` and
//!    inserting the segment realization (Theorems 3–6).
//!
//! The solver is exact: it returns a verified witness order for every C1P
//! instance and an evidence-carrying [`Rejection`] otherwise. [`solve`] runs
//! the sequential algorithm (Theorem 9: `O(p log p)`);
//! [`parallel::solve_par`] runs the recursion on rayon with PRAM cost
//! accounting (Theorem 9: `O(log² n)` modelled depth). The rejection's
//! evidence atoms feed the `c1p-cert` crate, which shrinks them to a
//! checkable Tucker witness.

pub mod align;
pub mod bitmat;
pub mod circular;
pub mod flat;
pub mod interval_graphs;
pub mod merge;
pub mod parallel;
pub mod partition;
pub mod realizations;
pub mod solver;
pub mod stats;

pub use flat::{FlatCols, SplitCols};
pub use realizations::{count_realizations, count_realizations_pq};
pub use solver::{solve, solve_with, Config};
pub use stats::SolveStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_fill_mapped_widened() {
        let r = Rejection::at(RejectSite::Merge).fill(3);
        assert_eq!(r.atoms, vec![0, 1, 2]);
        // fill never overwrites existing evidence
        let r = Rejection { site: RejectSite::PqBase, atoms: vec![1] }.fill(5);
        assert_eq!(r.atoms, vec![1]);
        let r = r.mapped(&[10, 20, 30]);
        assert_eq!(r.atoms, vec![20]);
        let r = r.widened(2);
        assert_eq!(r.atoms, vec![0, 1]);
        assert_eq!(r.site, RejectSite::PqBase);
    }
}

/// The pipeline stage that detected a rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectSite {
    /// A Booth–Lueker base case: a PQ-tree column reduction failed.
    PqBase,
    /// Step 7: no feasible split vertex / segment orientation survived the
    /// verifying merge.
    Merge,
    /// Section 4: a rigid member admitted neither orientation while
    /// funnelling a chord chain (normally absorbed by the merge fallback).
    Align,
}

/// The instance is not consecutive-ones realizable.
///
/// This is an *evidence-carrying* rejection: `atoms` names a set of atoms
/// whose induced subensemble is already non-C1P — inside the recursion
/// these are subproblem-local ids, mapped outward level by level; by the
/// time a rejection leaves [`solve`]/[`parallel::solve_par`] they are
/// global input atoms. `c1p-cert::extract_witness` shrinks this evidence
/// to a minimal Tucker submatrix witness.
///
/// Evidence stays valid across every divide boundary because each
/// subproblem is a constraint-restriction of its parent; the one exception
/// is the Case-2 Tucker transform (complemented columns, extra atom `r`),
/// where the evidence is widened to the whole pre-transform atom set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Stage that detected the failure.
    pub site: RejectSite,
    /// Sorted atom ids implicating a non-C1P subensemble (empty only while
    /// an error is in flight toward the nearest subproblem boundary).
    pub atoms: Vec<u32>,
}

impl Rejection {
    /// A rejection with no evidence attached yet (filled at the nearest
    /// subproblem boundary via [`Rejection::fill`]).
    pub fn at(site: RejectSite) -> Self {
        Rejection { site, atoms: Vec::new() }
    }

    /// If no evidence was attached yet, implicate all `k` local atoms of
    /// the failing subproblem.
    pub fn fill(mut self, k: usize) -> Self {
        if self.atoms.is_empty() {
            self.atoms = (0..k as u32).collect();
        }
        self
    }

    /// Maps local evidence into the parent's coordinates (`map[local] =
    /// parent`); `map` must be monotone, keeping the atoms sorted.
    pub fn mapped(mut self, map: &[u32]) -> Self {
        for a in &mut self.atoms {
            *a = map[*a as usize];
        }
        debug_assert!(self.atoms.windows(2).all(|w| w[0] < w[1]), "monotone evidence map");
        self
    }

    /// Conservative widening at a Tucker-transform boundary: evidence about
    /// the transformed instance (complements, atom `r`) cannot be mapped
    /// back atom-by-atom, but the whole pre-transform subproblem is known
    /// non-C1P.
    pub fn widened(mut self, k: usize) -> Self {
        self.atoms.clear();
        self.atoms.extend(0..k as u32);
        self
    }
}

/// Evidence-carrying alias kept so `Result<_, NotC1p>` signatures and
/// `Err(NotC1p { .. })` patterns stay readable across the workspace.
pub type NotC1p = Rejection;

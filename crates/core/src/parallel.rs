//! The parallel driver (paper Section 5 / Theorem 9).
//!
//! The recursion tree of `Path-Realization` has `O(log n)` depth with
//! independent siblings, so the two recursive calls run under
//! `rayon::join`; within a level the divide and combine steps use the
//! PRAM primitives of `c1p-pram` where data sizes warrant it. Divide
//! data lives in flat CSR arenas with per-thread scratch pools
//! ([`crate::flat`]) — rayon work-stealing composes with the pools
//! because every worker draws from its own thread-local pool.
//!
//! Alongside wall-clock execution the driver composes a **modelled PRAM
//! cost** ([`c1p_pram::Cost`]): sequential steps add work and depth,
//! sibling recursions join with `Cost::par` (work adds, depth maxes).
//! Per-step charges follow the paper's Section 5 accounting:
//!
//! * divide (transform, connected growth): `O(p)` work, `O(log n)` depth
//!   (tree contraction \[16\] / hooking);
//! * Tutte decomposition: `O((n+m) log log n)` work, `O(log n)` depth
//!   (Fussell–Ramachandran–Thurimella \[10\] — see DESIGN.md §4: we run the
//!   specialised decomposition and charge the cited bound);
//! * type identification: `O(p)` work, `O(1)` depth;
//! * minimal decomposition + switches: `O(n+m)` work, `O(log n)` depth
//!   (Euler tours \[17\]);
//! * merge scan: `O(p)` work, `O(log n)` depth (prefix scan).
//!
//! Experiment E2 checks the composed totals against Theorem 9's
//! `O(log² n)` time and `p log log n / log n` processor bounds.

use crate::bitmat::use_bitmat;
use crate::merge::MergeMode;
use crate::partition::{grow_segment, proper_column, tucker_transform, Growth};
use crate::solver::{
    combine, component_sub, cut_at_r, prepare_split, prepare_split_par, realize, SubProblem,
};
use crate::stats::SolveStats;
use crate::{Config, NotC1p, Rejection};
use c1p_matrix::{verify_linear, Atom, Ensemble};
use c1p_pram::cost::log2ceil;
use c1p_pram::Cost;

/// Subproblems whose CSR arena holds at least this many entries run the
/// two-pass parallel divide ([`prepare_split_par`]); lighter ones use
/// the single sequential scan (the parallel version's extra pass and
/// task overhead only amortize on heavy levels).
const PAR_DIVIDE_MIN_ENTRIES: usize = 1 << 14;

/// Resolved scheduling parameters for one driver run (ISSUE 3's
/// depth- and size-adaptive granularity control).
#[derive(Debug, Clone, Copy)]
struct Sched {
    /// Subproblems at or below this many atoms run sequentially.
    seq_cutoff: usize,
    /// Recursion depth at or beyond which no new tasks are forked: by
    /// depth `d` the tree already exposes `~2^d` independent branches,
    /// so once that saturates the pool (with a 4× steal-balancing
    /// margin), further forks are pure overhead.
    fork_depth: usize,
}

impl Sched {
    /// Resolves the knobs against the current pool. With
    /// [`Config::AUTO_CUTOFF`] the cutoff targets ~8 leaf tasks per
    /// worker (steal balance without task spam); an explicit cutoff is
    /// honored verbatim. A single-thread pool short-circuits the whole
    /// driver to the sequential solver.
    fn resolve(cfg: &Config, n_root: usize) -> Sched {
        let threads = rayon::current_num_threads();
        let seq_cutoff = if cfg.seq_cutoff == Config::AUTO_CUTOFF {
            if threads <= 1 {
                usize::MAX
            } else {
                (n_root / (threads * 8)).clamp(64, 4096)
            }
        } else {
            cfg.seq_cutoff
        };
        let fork_depth = if threads <= 1 { 0 } else { log2ceil(threads) as usize + 2 };
        Sched { seq_cutoff, fork_depth }
    }

    /// May this recursion level still fork new tasks?
    fn may_fork(&self, depth: usize) -> bool {
        depth < self.fork_depth
    }
}

/// Parallel C1P solve. Returns the verified witness order (or an
/// evidence-carrying [`Rejection`] in global atom ids) plus statistics
/// whose `cost` field carries the modelled PRAM work/depth.
///
/// Subproblems at or below the resolved sequential cutoff (see
/// [`Config::seq_cutoff`]) run sequentially — task overhead dominates
/// below it; the modelled cost still accounts them.
pub fn solve_par(ens: &Ensemble) -> (Result<Vec<Atom>, Rejection>, SolveStats) {
    solve_par_with(ens, &Config::default())
}

/// [`solve_par`] with configuration.
pub fn solve_par_with(ens: &Ensemble, cfg: &Config) -> (Result<Vec<Atom>, Rejection>, SolveStats) {
    let sched = Sched::resolve(cfg, ens.n_atoms());
    let mut stats = SolveStats::default();
    let mut order: Vec<Atom> = Vec::with_capacity(ens.n_atoms());
    let mut cost = Cost::ZERO;
    for (atoms, col_ids) in ens.components() {
        let sub = component_sub(
            &atoms,
            col_ids.iter().map(|&ci| ens.column(ci as usize)).filter(|c| c.len() >= 2),
        );
        match realize_par(&sub, cfg, &sched, 0) {
            Ok((local, branch_stats, branch_cost)) => {
                stats.absorb(&branch_stats);
                cost = cost.par(branch_cost); // components are independent
                order.extend(local.iter().map(|&i| atoms[i as usize]));
            }
            Err(rej) => {
                stats.cost = cost;
                // component-local evidence → global atom ids
                return (Err(rej.fill(sub.n).mapped(&atoms)), stats);
            }
        }
    }
    stats.cost = cost;
    verify_linear(ens, &order).expect("internal error: parallel order failed verification");
    (Ok(order), stats)
}

/// The parallel twin of [`crate::solver::solve_component`]: realizes one
/// connected component (sorted global `atoms`, columns in ascending
/// column-id order) on the *current* rayon pool, resolving the PR-3
/// scheduling knobs against the component size. Output order and
/// rejection evidence are bit-identical to the sequential entry for every
/// thread count and cutoff (the `par_determinism` contract), so the
/// incremental solver can route large re-solves here without changing any
/// verdict byte.
pub fn solve_component_par<'a>(
    atoms: &[Atom],
    cols: impl Iterator<Item = &'a [Atom]>,
    cfg: &Config,
) -> Result<Vec<Atom>, Rejection> {
    let sched = Sched::resolve(cfg, atoms.len());
    let sub = component_sub(atoms, cols.filter(|c| c.len() >= 2));
    match realize_par(&sub, cfg, &sched, 0) {
        Ok((local, _, _)) => {
            crate::solver::verify_spans(&sub, &local);
            Ok(local.iter().map(|&i| atoms[i as usize]).collect())
        }
        Err(rej) => Err(rej.fill(sub.n).mapped(atoms)),
    }
}

type ParResult = Result<(Vec<u32>, SolveStats, Cost), NotC1p>;

fn realize_par(sub: &SubProblem, cfg: &Config, sched: &Sched, depth: usize) -> ParResult {
    let mut stats = SolveStats::default();
    let k = sub.n;
    let p: usize = sub.cols.total_len();
    let lg = log2ceil(k.max(2));
    // Bit-matrix crossover: bit subtrees always run sequentially (they
    // sit below any sensible fork granularity), so the parallel driver
    // hands them to `realize`, whose own hook performs the conversion —
    // one decision rule shared by both drivers, which is what makes
    // mixed CSR/bitmat solves agree bit-for-bit with the sequential path.
    if use_bitmat(k, sub.cols.n_cols(), p, cfg.bitmat_threshold) {
        let order = realize(sub, cfg, &mut stats, depth)?;
        let cost = Cost::of((p.max(1) as u64) * lg.max(1), lg * lg.max(1));
        return Ok((order, stats, cost));
    }
    stats.subproblems += 1;
    stats.max_depth = depth;
    if k <= 2 || (cfg.pq_base_threshold > 0 && k <= cfg.pq_base_threshold) {
        // base case; modelled as the paper's small-subproblem sequential run
        let order = realize(sub, cfg, &mut stats, depth)?;
        return Ok((order, stats, Cost::of((p + k) as u64, (p + k) as u64)));
    }
    if k <= sched.seq_cutoff || !sched.may_fork(depth) {
        let order = realize(sub, cfg, &mut stats, depth)?;
        // charge the modelled parallel cost of the subtree conservatively:
        // O(p log k) work across O(log k) levels of O(log k)-depth steps
        let cost = Cost::of((p.max(1) as u64) * lg.max(1), lg * lg.max(1));
        return Ok((order, stats, cost));
    }
    let divide_cost = Cost::of(p.max(1) as u64, lg); // scan / transform / growth
    if let Some(ci) = proper_column(sub) {
        stats.case1 += 1;
        let (order, cost) =
            split_par(sub, sub.cols.col(ci), MergeMode::Linear, cfg, sched, depth, &mut stats)?;
        Ok((order, stats, divide_cost.seq(cost)))
    } else {
        stats.case2 += 1;
        let t = tucker_transform(sub);
        // Transform boundary: evidence about the transformed instance is
        // widened to this subproblem's whole atom set (see `realize`).
        let (cyclic, cost) = match grow_segment(&t) {
            Growth::Segment(a1) => {
                split_par(&t, &a1, MergeMode::Cyclic, cfg, sched, depth, &mut stats)
                    .map_err(|e| e.widened(k))?
            }
            Growth::Components(comps) => {
                // independent components: fan out across the pool
                let results = realize_comps_par(&comps, &t, cfg, sched, depth);
                let mut order = Vec::with_capacity(t.n);
                let mut cost = Cost::ZERO;
                for ((atoms, _), res) in comps.iter().zip(results) {
                    let (local, bstats, bcost) = res.map_err(|e| e.widened(k))?;
                    stats.absorb(&bstats);
                    cost = cost.par(bcost);
                    order.extend(local.iter().map(|&i| atoms[i as usize]));
                }
                (order, cost)
            }
        };
        let order = cut_at_r(&cyclic, k);
        Ok((order, stats, divide_cost.seq(cost).seq(Cost::of(k as u64, 1))))
    }
}

/// Case-2 fan-out: realizes every independent component of the
/// transformed instance, forking the component list in halves (larger
/// components migrate to idle workers via stealing). Results stay in
/// component order.
fn realize_comps_par(
    comps: &[(Vec<u32>, Vec<u32>)],
    t: &SubProblem,
    cfg: &Config,
    sched: &Sched,
    depth: usize,
) -> Vec<ParResult> {
    if comps.len() <= 1 || !sched.may_fork(depth) {
        return comps
            .iter()
            .map(|(atoms, col_ids)| {
                let csub = component_sub(atoms, col_ids.iter().map(|&ci| t.cols.col(ci as usize)));
                realize_par(&csub, cfg, sched, depth + 1)
            })
            .collect();
    }
    let mid = comps.len() / 2;
    let (mut left, right) = rayon::join(
        || realize_comps_par(&comps[..mid], t, cfg, sched, depth + 1),
        || realize_comps_par(&comps[mid..], t, cfg, sched, depth + 1),
    );
    left.extend(right);
    left
}

#[allow(clippy::too_many_arguments)]
fn split_par(
    sub: &SubProblem,
    a1: &[u32],
    mode: MergeMode,
    cfg: &Config,
    sched: &Sched,
    depth: usize,
    stats: &mut SolveStats,
) -> Result<(Vec<u32>, Cost), NotC1p> {
    // the divide itself runs parallel on heavy levels (top of the tree)
    stats.csr_divides += 1;
    let data = if sub.cols.total_len() >= PAR_DIVIDE_MIN_ENTRIES && rayon::current_num_threads() > 1
    {
        prepare_split_par(sub, a1)
    } else {
        prepare_split(sub, a1)
    };
    let (r1, r2) = rayon::join(
        || realize_par(&data.sub1, cfg, sched, depth + 1),
        || realize_par(&data.sub2, cfg, sched, depth + 1),
    );
    // child-local evidence → this subproblem's coordinates (see
    // `split_and_merge` in solver.rs for why the mapping stays valid)
    let (order1, s1, c1) = r1.map_err(|e| e.fill(data.sub1.n).mapped(&data.a1))?;
    let (order2, s2, c2) = r2.map_err(|e| e.fill(data.sub2.n).mapped(&data.a2))?;
    stats.absorb(&s1);
    stats.absorb(&s2);
    let order = combine(&data.a1, &data.a2, &data.split_cols, &order1, &order2, mode, stats, true)
        .map_err(|e| e.fill(sub.n))?;
    let k = sub.n;
    let m = sub.cols.n_cols();
    let p: usize = sub.cols.total_len();
    let lg = log2ceil(k.max(2));
    let lglg = log2ceil(lg as usize).max(1);
    // combine charges per Section 5 (decompose [10], types, switches [17],
    // merge scan)
    let combine_cost = Cost::of(((k + m) as u64) * lglg, lg) // Step 3
        .seq(Cost::step(p.max(1) as u64)) // Step 4
        .seq(Cost::of((k + m) as u64, lg)) // Steps 5–6
        .seq(Cost::of(p.max(1) as u64, lg)); // Step 7
    Ok((order, c1.par(c2).seq(combine_cost)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::generate::{planted_c1p, PlantedShape};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_agrees_with_sequential() {
        let mut rng = SmallRng::seed_from_u64(99);
        for n in [10usize, 100, 700] {
            let (ens, _) = planted_c1p(
                PlantedShape { n_atoms: n, n_columns: 2 * n, min_len: 2, max_len: n / 3 + 2 },
                &mut rng,
            );
            let (seq, _) = crate::solve_with(&ens, &Config::default());
            let (par, stats) = solve_par(&ens);
            assert_eq!(seq.is_ok(), par.is_ok());
            assert!(par.is_ok(), "planted instance accepted");
            assert!(stats.cost.work > 0);
            assert!(stats.cost.depth > 0);
        }
    }

    #[test]
    fn parallel_rejects_obstructions() {
        for (name, ens) in c1p_matrix::tucker::small_obstructions() {
            let (res, _) = solve_par(&ens);
            let rej = res.expect_err(name.as_str());
            assert!(!rej.atoms.is_empty(), "{name}: rejection carries evidence");
            assert!(rej.atoms.iter().all(|&a| (a as usize) < ens.n_atoms()), "{name}");
        }
    }

    #[test]
    fn seq_cutoff_sweep_agrees() {
        // the cutoff is a scheduling knob; verdicts must not depend on it
        let mut rng = SmallRng::seed_from_u64(17);
        let (ens, _) = planted_c1p(
            PlantedShape { n_atoms: 600, n_columns: 1200, min_len: 2, max_len: 80 },
            &mut rng,
        );
        let bad = c1p_matrix::tucker::embed_obstruction(
            &c1p_matrix::tucker::m_ii(2),
            600,
            123,
            &[(0, 200), (300, 200)],
        );
        for cutoff in [0usize, 4, 64, 256, 4096] {
            let cfg = Config { seq_cutoff: cutoff, ..Config::default() };
            assert!(solve_par_with(&ens, &cfg).0.is_ok(), "cutoff {cutoff}");
            assert!(solve_par_with(&bad, &cfg).0.is_err(), "cutoff {cutoff}");
        }
    }

    #[test]
    fn modelled_depth_is_polylog() {
        let mut rng = SmallRng::seed_from_u64(5);
        let (ens, _) = planted_c1p(
            PlantedShape { n_atoms: 4096, n_columns: 8192, min_len: 2, max_len: 600 },
            &mut rng,
        );
        let (res, stats) = solve_par(&ens);
        assert!(res.is_ok());
        let lg = 12u64; // log2(4096)
        assert!(
            stats.cost.depth <= 40 * lg * lg,
            "modelled depth {} should be O(log² n)",
            stats.cost.depth
        );
    }
}

//! Interval-graph recognition via C1P (the reduction the paper cites in
//! Section 1.4, due to Booth–Lueker \[6\] after Fulkerson–Gross).
//!
//! A graph is an interval graph iff it is chordal and its maximal-clique ×
//! vertex incidence matrix has the consecutive-ones property (columns =
//! vertices, atoms = maximal cliques). Pipeline:
//!
//! 1. Lex-BFS produces a vertex order; the graph is chordal iff that order
//!    is a perfect elimination order (checked directly);
//! 2. the maximal cliques of a chordal graph are read off the PEO
//!    (`{v} ∪ RN(v)` for vertices where that set is inclusion-maximal —
//!    at most `n` cliques);
//! 3. the clique–vertex ensemble goes through [`crate::solve`]; a
//!    realization is a consecutive clique order, i.e. an interval model.

use c1p_matrix::{Atom, Ensemble};

/// An adjacency-list graph for recognition (simple, undirected).
#[derive(Debug, Clone)]
pub struct SimpleGraph {
    adj: Vec<Vec<u32>>,
}

impl SimpleGraph {
    /// Builds from an edge list over `n` vertices (duplicates and
    /// self-loops ignored).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u != v {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        SimpleGraph { adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }
}

/// Why recognition failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotInterval {
    /// The graph is not chordal (no perfect elimination order).
    NotChordal,
    /// Chordal, but the clique matrix is not C1P (an asteroidal triple).
    CliquesNotConsecutive,
}

/// The certificate of interval-ness: an interval model.
#[derive(Debug, Clone)]
pub struct IntervalModel {
    /// Per vertex: `[lo, hi)` over clique positions — overlapping intervals
    /// reproduce exactly the input graph's edges.
    pub intervals: Vec<(u32, u32)>,
    /// The consecutive clique order (each entry lists its vertices).
    pub clique_order: Vec<Vec<u32>>,
}

/// Recognizes interval graphs; returns an interval model or the reason.
pub fn recognize(g: &SimpleGraph) -> Result<IntervalModel, NotInterval> {
    let n = g.n();
    if n == 0 {
        return Ok(IntervalModel { intervals: Vec::new(), clique_order: Vec::new() });
    }
    let order = lex_bfs(g);
    let cliques = peo_cliques(g, &order).ok_or(NotInterval::NotChordal)?;
    // ensemble: atoms = cliques, one column per vertex listing its cliques
    let mut cols: Vec<Vec<Atom>> = vec![Vec::new(); n];
    for (qi, clique) in cliques.iter().enumerate() {
        for &v in clique {
            cols[v as usize].push(qi as Atom);
        }
    }
    let ens = Ensemble::from_columns(cliques.len(), cols).expect("clique matrix is valid");
    let clique_perm = crate::solve(&ens).map_err(|_| NotInterval::CliquesNotConsecutive)?;
    // assemble the model
    let clique_order: Vec<Vec<u32>> =
        clique_perm.iter().map(|&q| cliques[q as usize].clone()).collect();
    let mut intervals = vec![(u32::MAX, 0u32); n];
    for (pos, clique) in clique_order.iter().enumerate() {
        for &v in clique {
            let (lo, hi) = &mut intervals[v as usize];
            *lo = (*lo).min(pos as u32);
            *hi = (*hi).max(pos as u32 + 1);
        }
    }
    Ok(IntervalModel { intervals, clique_order })
}

/// Lex-BFS (partition refinement over vertex lists).
fn lex_bfs(g: &SimpleGraph) -> Vec<u32> {
    let n = g.n();
    // sequence of cells; each cell is a vector of unvisited vertices
    let mut cells: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
    let mut order = Vec::with_capacity(n);
    while let Some(first) = cells.first_mut() {
        let v = first.pop().expect("cells are non-empty");
        if first.is_empty() {
            cells.remove(0);
        }
        order.push(v);
        // split every cell into (neighbours of v, rest)
        let mut next: Vec<Vec<u32>> = Vec::with_capacity(cells.len() * 2);
        for cell in cells.drain(..) {
            let (nb, rest): (Vec<u32>, Vec<u32>) =
                cell.into_iter().partition(|&u| g.has_edge(u, v));
            if !nb.is_empty() {
                next.push(nb);
            }
            if !rest.is_empty() {
                next.push(rest);
            }
        }
        cells = next;
    }
    order
}

/// Checks the reversed Lex-BFS order as a perfect elimination order and, if
/// chordal, returns the maximal cliques (`{v} ∪ RN(v)` for inclusion-
/// maximal right-neighbourhoods).
fn peo_cliques(g: &SimpleGraph, lexbfs: &[u32]) -> Option<Vec<Vec<u32>>> {
    let n = g.n();
    // eliminate in reverse Lex-BFS order
    let mut rank = vec![0u32; n];
    for (i, &v) in lexbfs.iter().enumerate() {
        rank[v as usize] = (n - 1 - i) as u32; // elimination position
    }
    // RN(v): neighbours eliminated after v
    let mut rn: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let mut later: Vec<u32> = g.adj[v as usize]
            .iter()
            .copied()
            .filter(|&u| rank[u as usize] > rank[v as usize])
            .collect();
        later.sort_unstable_by_key(|&u| rank[u as usize]);
        rn[v as usize] = later;
    }
    // PEO check: RN(v) minus its first element must be ⊆ RN(first)
    for v in 0..n as u32 {
        if let Some(&f) = rn[v as usize].first() {
            for &u in &rn[v as usize][1..] {
                if !g.has_edge(f, u) {
                    return None;
                }
            }
        }
    }
    // candidate cliques {v} ∪ RN(v); keep inclusion-maximal ones.
    // A candidate is non-maximal iff some earlier-eliminated vertex w has
    // {v} ∪ RN(v) ⊆ RN(w) ∪ {w}… the standard test: |RN(w)| where w is the
    // previous vertex pointing at v covers it; simplest robust filter:
    let mut cands: Vec<Vec<u32>> = (0..n as u32)
        .map(|v| {
            let mut c = rn[v as usize].clone();
            c.push(v);
            c.sort_unstable();
            c
        })
        .collect();
    cands.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut cliques: Vec<Vec<u32>> = Vec::new();
    for c in cands {
        let covered = cliques.iter().any(|big| c.iter().all(|v| big.binary_search(v).is_ok()));
        if !covered {
            cliques.push(c);
        }
    }
    Some(cliques)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_interval() {
        let g = SimpleGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let model = recognize(&g).expect("paths are interval graphs");
        assert_eq!(model.clique_order.len(), 3);
        check_model(&g, &model);
    }

    #[test]
    fn c4_is_not_chordal() {
        let g = SimpleGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(matches!(recognize(&g), Err(NotInterval::NotChordal)));
    }

    #[test]
    fn spider_is_chordal_but_not_interval() {
        // subdivided K_{1,3}: centre 0, legs 1-4, 2-5, 3-6 — an asteroidal
        // triple of leaf vertices
        let g = SimpleGraph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 5), (3, 6)]);
        assert!(matches!(recognize(&g), Err(NotInterval::CliquesNotConsecutive)));
    }

    #[test]
    fn complete_graph_single_clique() {
        let g = SimpleGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let model = recognize(&g).expect("complete graphs are interval");
        assert_eq!(model.clique_order.len(), 1);
        check_model(&g, &model);
    }

    #[test]
    fn random_interval_graphs_recognized() {
        // build a graph from known intervals; recognition must succeed and
        // reproduce exactly the same edges
        let intervals: Vec<(u32, u32)> =
            vec![(0, 4), (2, 6), (5, 9), (1, 3), (8, 12), (7, 10), (3, 5)];
        let n = intervals.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let (a, b) = intervals[i];
                let (c, d) = intervals[j];
                if a < d && c < b {
                    edges.push((i as u32, j as u32));
                }
            }
        }
        let g = SimpleGraph::from_edges(n, &edges);
        let model = recognize(&g).expect("interval graph recognized");
        check_model(&g, &model);
    }

    /// The model's intervals must reproduce the input graph exactly.
    fn check_model(g: &SimpleGraph, model: &IntervalModel) {
        let n = g.n();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                let (a, b) = model.intervals[u as usize];
                let (c, d) = model.intervals[v as usize];
                let overlap = a < d && c < b;
                assert_eq!(
                    overlap,
                    g.has_edge(u, v),
                    "interval model disagrees with the graph on ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = SimpleGraph::from_edges(0, &[]);
        assert!(recognize(&g).is_ok());
        // isolated vertices: each its own clique
        let g2 = SimpleGraph::from_edges(3, &[]);
        let model = recognize(&g2).expect("edgeless graphs are interval");
        check_model(&g2, &model);
    }
}

//! Flat CSR column storage for subproblems (DESIGN.md §3).
//!
//! The divide step of `Path-Realization` creates `O(log n)` levels of
//! subproblems, and every level re-materializes every column. With a
//! nested `Vec<Vec<u32>>` representation that is one heap allocation
//! per column per level — `O(m log n)` small allocations of the exact
//! kind the paper's PRAM accounting assumes away (the divide is "a
//! constant number of scans"). This module stores each subproblem's
//! columns as one CSR arena: an `offsets` array plus a single `data`
//! array, so a whole level's divide is two linear scans and at most
//! three amortized allocations total.
//!
//! **Sortedness invariant:** every column is strictly ascending. All
//! builders in the solver map sorted columns through *monotone*
//! renumberings (`place[a] < place[b]` whenever both are kept and
//! `a < b`), so sortedness is preserved structurally and never needs a
//! per-level re-sort; debug builds assert it on every finished column.

use crate::align::CrossType;
use std::cell::RefCell;

/// Columns in CSR form: column `i` is `data[offsets[i]..offsets[i+1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatCols {
    offsets: Vec<u32>,
    data: Vec<u32>,
}

// A derived `Default` would leave `offsets` empty, violating the
// "offsets always holds at least the leading 0" invariant every accessor
// leans on (`n_cols` would underflow on a defaulted value). `SubProblem`
// derives `Default`, so this constructor is reachable from public API.
impl Default for FlatCols {
    fn default() -> Self {
        FlatCols::new()
    }
}

impl FlatCols {
    /// An empty collection.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// An empty collection with room for `cols` columns over `entries`
    /// total atoms (no reallocation while building within those bounds).
    /// Buffers come from the per-thread recycling pool.
    pub fn with_capacity(cols: usize, entries: usize) -> Self {
        let mut offsets = take_u32(cols + 1);
        offsets.push(0);
        FlatCols { offsets, data: take_u32(entries) }
    }

    /// Builds from an iterator of slice-likes (test/interop helper).
    pub fn from_cols<C: AsRef<[u32]>>(cols: impl IntoIterator<Item = C>) -> Self {
        let mut out = FlatCols::new();
        for c in cols {
            out.push_col(c.as_ref().iter().copied());
        }
        out
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_cols() == 0
    }

    /// Total entry count `p = Σ |col|`.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// Raw CSR view `(offsets, data)` — lent to the growth BFS so the
    /// flat path shares [`crate::partition`]'s column→atom slice
    /// representation without copying.
    #[inline]
    pub(crate) fn raw_csr(&self) -> (&[u32], &[u32]) {
        (&self.offsets, &self.data)
    }

    /// Column `i` as a slice.
    #[inline]
    pub fn col(&self, i: usize) -> &[u32] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Length of column `i` without forming the slice.
    #[inline]
    pub fn col_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates the columns as slices.
    pub fn iter(&self) -> FlatColsIter<'_> {
        FlatColsIter { cols: self, i: 0 }
    }

    /// Appends one column from an iterator of atoms.
    pub fn push_col(&mut self, col: impl IntoIterator<Item = u32>) {
        self.data.extend(col);
        self.finish_col();
    }

    /// Appends a single atom to the column currently being built (pair
    /// with [`finish_col`](Self::finish_col) / [`cancel_col`](Self::cancel_col)).
    #[inline]
    pub fn push(&mut self, atom: u32) {
        self.data.push(atom);
    }

    /// Start offset of the in-progress column. `offsets` is never empty
    /// by construction, but degenerate shapes (0-column arenas handed
    /// through `from_raw`, defaulted values) must not be able to panic
    /// here even if that invariant is ever violated upstream.
    #[inline]
    fn building_start(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0) as usize
    }

    /// Atoms pushed to the in-progress column so far.
    #[inline]
    pub fn building_len(&self) -> usize {
        self.data.len() - self.building_start()
    }

    /// Seals the in-progress column.
    #[inline]
    pub fn finish_col(&mut self) {
        debug_assert!(
            self.data[self.building_start()..].windows(2).all(|w| w[0] < w[1]),
            "columns must stay strictly ascending (monotone renumbering invariant)"
        );
        self.offsets.push(self.data.len() as u32);
    }

    /// Appends a block of atoms to the column currently being built.
    #[inline]
    pub fn extend_building(&mut self, atoms: &[u32]) {
        self.data.extend_from_slice(atoms);
    }

    /// Appends atoms from an iterator to the column being built.
    #[inline]
    pub fn extend_building_from(&mut self, atoms: impl IntoIterator<Item = u32>) {
        self.data.extend(atoms);
    }

    /// Discards the in-progress column (e.g. it shrank below two atoms).
    #[inline]
    pub fn cancel_col(&mut self) {
        let start = self.building_start();
        self.data.truncate(start);
    }

    /// Removes all columns, keeping the allocations.
    pub fn clear(&mut self) {
        self.offsets.truncate(1);
        self.data.clear();
    }

    /// Assembles from prebuilt CSR parts — the parallel divide computes
    /// `offsets` with a prefix sum and fills `data` concurrently at the
    /// computed positions, then hands both over wholesale. `offsets`
    /// must start at 0, be non-decreasing, and end at `data.len()`;
    /// every column must obey the sortedness invariant (debug-checked).
    pub fn from_raw(mut offsets: Vec<u32>, data: Vec<u32>) -> Self {
        if offsets.is_empty() {
            // 0-column degenerate shape: normalize to the canonical empty
            // arena instead of producing a value whose accessors underflow
            debug_assert!(data.is_empty(), "data without offsets");
            offsets.push(0);
        }
        debug_assert!(
            offsets.first() == Some(&0)
                && offsets.last().copied().unwrap_or(0) as usize == data.len()
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let out = FlatCols { offsets, data };
        #[cfg(debug_assertions)]
        for col in out.iter() {
            debug_assert!(
                col.windows(2).all(|w| w[0] < w[1]),
                "columns must stay strictly ascending (monotone renumbering invariant)"
            );
        }
        out
    }
}

/// Slice iterator over a [`FlatCols`].
pub struct FlatColsIter<'a> {
    cols: &'a FlatCols,
    i: usize,
}

impl<'a> Iterator for FlatColsIter<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        (self.i < self.cols.n_cols()).then(|| {
            let c = self.cols.col(self.i);
            self.i += 1;
            c
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cols.n_cols() - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for FlatColsIter<'_> {}

impl<'a> IntoIterator for &'a FlatCols {
    type Item = &'a [u32];
    type IntoIter = FlatColsIter<'a>;

    fn into_iter(self) -> FlatColsIter<'a> {
        self.iter()
    }
}

// ---------------------------------------------------------------------
// split columns
// ---------------------------------------------------------------------

/// The per-column split of one divide step, in CSR form: column `i`'s
/// entry holds its segment part (atoms in `A1`) followed by its host
/// part (atoms in `A2`), both in ascending order, with the boundary in
/// `seg_len` and the crossing classification in `ty`. Replaces the
/// former `Vec<SplitColumn>`-of-`Vec`s (two heap columns per input
/// column per level).
#[derive(Debug, Clone, Default)]
pub struct SplitCols {
    pub(crate) parts: FlatCols,
    pub(crate) seg_len: Vec<u32>,
    pub(crate) ty: Vec<CrossType>,
}

impl SplitCols {
    /// Pre-sized builder state (pool-backed, like [`FlatCols`]).
    pub fn with_capacity(cols: usize, entries: usize) -> Self {
        SplitCols {
            parts: FlatCols::with_capacity(cols, entries),
            seg_len: take_u32(cols),
            ty: take_ty(cols),
        }
    }

    /// Number of split columns (same as the parent subproblem's).
    #[inline]
    pub fn len(&self) -> usize {
        self.seg_len.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The segment-side part of column `i` (subproblem-local atoms).
    #[inline]
    pub fn seg(&self, i: usize) -> &[u32] {
        &self.parts.col(i)[..self.seg_len[i] as usize]
    }

    /// The host-side part of column `i`.
    #[inline]
    pub fn host(&self, i: usize) -> &[u32] {
        &self.parts.col(i)[self.seg_len[i] as usize..]
    }

    /// Crossing classification of column `i`.
    #[inline]
    pub fn ty(&self, i: usize) -> CrossType {
        self.ty[i]
    }

    /// Assembles from prebuilt CSR parts; the parallel divide's
    /// counterpart of [`Self::finish_parts_col`]. Takes the raw
    /// offsets/data rather than a [`FlatCols`] because a parts column
    /// (segment half followed by host half) deliberately violates the
    /// whole-column ordering invariant [`FlatCols::from_raw`] checks;
    /// each *half* must be ascending (debug-checked below).
    pub(crate) fn from_raw(
        mut offsets: Vec<u32>,
        data: Vec<u32>,
        seg_len: Vec<u32>,
        ty: Vec<CrossType>,
    ) -> Self {
        if offsets.is_empty() {
            debug_assert!(data.is_empty(), "data without offsets");
            offsets.push(0);
        }
        debug_assert!(
            offsets.first() == Some(&0)
                && offsets.last().copied().unwrap_or(0) as usize == data.len()
        );
        let parts = FlatCols { offsets, data };
        debug_assert_eq!(parts.n_cols(), seg_len.len());
        debug_assert_eq!(parts.n_cols(), ty.len());
        let out = SplitCols { parts, seg_len, ty };
        #[cfg(debug_assertions)]
        for ci in 0..out.len() {
            debug_assert!(out.seg(ci).windows(2).all(|w| w[0] < w[1]));
            debug_assert!(out.host(ci).windows(2).all(|w| w[0] < w[1]));
        }
        out
    }

    /// Seals the in-progress parts column whose first `seg_len` atoms are
    /// the segment part. The two halves are each ascending; their
    /// concatenation deliberately is not, so this bypasses
    /// [`FlatCols::finish_col`]'s whole-column ordering assertion.
    #[inline]
    pub(crate) fn finish_parts_col(&mut self, seg_len: usize, ty: CrossType) {
        debug_assert!({
            let col = &self.parts.data[self.parts.building_start()..];
            col[..seg_len].windows(2).all(|w| w[0] < w[1])
                && col[seg_len..].windows(2).all(|w| w[0] < w[1])
        });
        self.parts.offsets.push(self.parts.data.len() as u32);
        self.seg_len.push(seg_len as u32);
        self.ty.push(ty);
    }
}

// ---------------------------------------------------------------------
// buffer recycling
// ---------------------------------------------------------------------

/// Per-thread freelists for the arena buffers behind [`FlatCols`],
/// [`SplitCols`], and the bit-matrix columns. Every divide materializes
/// child arenas and drops them when its subtree completes — with plain
/// `Vec`s that is ~10 round trips through the allocator per divide,
/// dominating the solver's allocation count. Dropping an arena instead
/// parks its buffers here and the next divide on the thread adopts them.
///
/// Two tiers per type: buffers up to [`RECYCLE_CAP_ELEMS`] elements park
/// on a long freelist (the bulk of the recursion), while the handful of
/// top-level arenas above it go to a short big-buffer list bounded by
/// [`BIG_POOL_VECS`] entries and [`BIG_POOL_TOTAL_ELEMS`] total retained
/// elements. Without the big tier every solve re-mmaps and re-faults the
/// multi-megabyte root arenas, which costs more wall time than all the
/// small allocations combined.
macro_rules! buf_pool {
    ($take:ident, $recycle:ident, $pool:ident, $big:ident, $t:ty) => {
        thread_local! {
            static $pool: RefCell<Vec<Vec<$t>>> = const { RefCell::new(Vec::new()) };
            static $big: RefCell<Vec<Vec<$t>>> = const { RefCell::new(Vec::new()) };
        }

        pub(crate) fn $take(cap: usize) -> Vec<$t> {
            let mut v = if cap > RECYCLE_CAP_ELEMS {
                // LIFO matches the recursion: the largest arena drops
                // last and is wanted first on the next solve
                $big.with(|p| p.borrow_mut().pop())
            } else {
                $pool.with(|p| p.borrow_mut().pop())
            }
            .unwrap_or_default();
            v.clear();
            if v.capacity() < cap {
                v.reserve(cap - v.capacity());
            }
            v
        }

        pub(crate) fn $recycle(v: Vec<$t>) {
            if v.capacity() == 0 {
                return;
            }
            if v.capacity() > RECYCLE_CAP_ELEMS {
                $big.with(|p| {
                    let mut pool = p.borrow_mut();
                    let held: usize = pool.iter().map(|b| b.capacity()).sum();
                    if pool.len() < BIG_POOL_VECS && held + v.capacity() <= BIG_POOL_TOTAL_ELEMS {
                        pool.push(v);
                    }
                });
                return;
            }
            $pool.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < 128 {
                    pool.push(v);
                }
            });
        }
    };
}

const RECYCLE_CAP_ELEMS: usize = 1 << 16;
/// Max entries on each big-buffer freelist.
const BIG_POOL_VECS: usize = 8;
/// Max total elements retained across one big-buffer freelist.
const BIG_POOL_TOTAL_ELEMS: usize = 1 << 22;

buf_pool!(take_u32, recycle_u32, BUF_U32, BIG_U32, u32);
buf_pool!(take_u64, recycle_u64, BUF_U64, BIG_U64, u64);
buf_pool!(take_ty, recycle_ty, BUF_TY, BIG_TY, CrossType);

impl Drop for FlatCols {
    fn drop(&mut self) {
        recycle_u32(std::mem::take(&mut self.offsets));
        recycle_u32(std::mem::take(&mut self.data));
    }
}

impl Drop for SplitCols {
    fn drop(&mut self) {
        recycle_u32(std::mem::take(&mut self.seg_len));
        recycle_ty(std::mem::take(&mut self.ty));
        // parts is a FlatCols — its own drop recycles the arena
    }
}

// ---------------------------------------------------------------------
// scratch pool
// ---------------------------------------------------------------------

/// Reusable per-thread working memory for the divide step: the `A1`
/// membership bitmap, the local renumbering table, and a position
/// table. All are `u32::MAX`/`false`-initialized and restored by their
/// users before release (`O(touched)` cleanup, never `O(capacity)`).
#[derive(Debug, Default)]
pub struct Scratch {
    /// Membership bitmap over subproblem-local atoms.
    pub mark: Vec<bool>,
    /// Local renumbering (`u32::MAX` = absent).
    pub place: Vec<u32>,
    /// Order positions (`u32::MAX` = absent).
    pub pos: Vec<u32>,
    /// Staging buffer (e.g. a column's host part while its segment part
    /// streams into the arena). Left empty between uses.
    pub tmp: Vec<u32>,
    /// Merge span-classification buffers (`merge.rs`): type-b columns
    /// with their host spans, type-a spans, type-c spans, candidate
    /// split vertices, and the forbidden-interval list. Cleared at each
    /// use, so unlike the tables above they carry no cleanliness
    /// invariant.
    pub type_b: Vec<(usize, u32, u32)>,
    /// Type-a host spans (see `type_b`).
    pub type_a: Vec<(u32, u32)>,
    /// Type-c host spans (see `type_b`).
    pub type_c: Vec<(u32, u32)>,
    /// Candidate split vertices (see `type_b`).
    pub cand: Vec<u32>,
    /// Forbidden split intervals (see `type_b`).
    pub forbidden: Vec<(u32, u32)>,
}

impl Scratch {
    /// Grows all tables to cover `n` slots.
    fn reserve(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, false);
            self.place.resize(n, u32::MAX);
            self.pos.resize(n, u32::MAX);
        }
    }

    #[cfg(debug_assertions)]
    fn assert_clean(&self) {
        debug_assert!(self.mark.iter().all(|&m| !m), "mark bitmap returned dirty");
        debug_assert!(self.place.iter().all(|&p| p == u32::MAX), "place table returned dirty");
        debug_assert!(self.pos.iter().all(|&p| p == u32::MAX), "pos table returned dirty");
        debug_assert!(self.tmp.is_empty(), "tmp buffer returned nonempty");
    }
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a pooled [`Scratch`] covering at least `n` slots.
/// Reentrant (recursive calls get distinct scratches) and
/// rayon-compatible (the pool is thread-local; a stolen task pulls from
/// its worker's pool). Users must leave the tables clean — debug builds
/// verify this on return to the pool.
pub fn with_scratch<R>(n: usize, f: impl FnOnce(&mut Scratch) -> R) -> R {
    let mut s = SCRATCH_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    s.reserve(n);
    let out = f(&mut s);
    #[cfg(debug_assertions)]
    s.assert_clean();
    SCRATCH_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 64 {
            pool.push(s);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let mut fc = FlatCols::new();
        fc.push_col([1, 3, 5]);
        fc.push_col([] as [u32; 0]);
        fc.push_col([0, 2]);
        assert_eq!(fc.n_cols(), 3);
        assert_eq!(fc.total_len(), 5);
        assert_eq!(fc.col(0), &[1, 3, 5]);
        assert_eq!(fc.col(1), &[] as &[u32]);
        assert_eq!(fc.col(2), &[0, 2]);
        assert_eq!(fc.iter().collect::<Vec<_>>(), vec![&[1, 3, 5][..], &[][..], &[0, 2][..]]);
    }

    #[test]
    fn incremental_build_with_cancel() {
        let mut fc = FlatCols::with_capacity(2, 4);
        fc.push(4);
        fc.push(7);
        assert_eq!(fc.building_len(), 2);
        fc.finish_col();
        fc.push(9);
        fc.cancel_col(); // too small, roll back
        fc.push(1);
        fc.push(2);
        fc.finish_col();
        assert_eq!(fc.n_cols(), 2);
        assert_eq!(fc.col(0), &[4, 7]);
        assert_eq!(fc.col(1), &[1, 2]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut fc = FlatCols::from_cols([[0u32, 1].as_slice(), [2, 3].as_slice()]);
        let cap = fc.data.capacity();
        fc.clear();
        assert_eq!(fc.n_cols(), 0);
        assert_eq!(fc.total_len(), 0);
        assert_eq!(fc.data.capacity(), cap);
    }

    #[test]
    fn from_cols_matches_nested() {
        let nested: Vec<Vec<u32>> = vec![vec![0, 5, 9], vec![1, 2]];
        let fc = FlatCols::from_cols(&nested);
        for (i, col) in nested.iter().enumerate() {
            assert_eq!(fc.col(i), col.as_slice());
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_column_panics_in_debug() {
        let mut fc = FlatCols::new();
        fc.push_col([3, 1]);
    }

    #[test]
    fn default_is_the_canonical_empty_arena() {
        // a derived Default would leave `offsets` empty and every
        // accessor would underflow/panic; the manual impl must match new()
        let fc = FlatCols::default();
        assert_eq!(fc.n_cols(), 0);
        assert!(fc.is_empty());
        assert_eq!(fc.total_len(), 0);
        assert_eq!(fc.building_len(), 0);
        assert_eq!(fc.iter().count(), 0);
        let mut fc = FlatCols::default();
        fc.push(0);
        fc.push(1);
        fc.finish_col();
        assert_eq!(fc.col(0), &[0, 1]);
        let sc = SplitCols::default();
        assert_eq!(sc.len(), 0);
        assert_eq!(sc.parts.n_cols(), 0);
    }

    #[test]
    fn from_raw_zero_columns() {
        // the parallel divide can legitimately produce a 0-column side;
        // both raw constructors must normalize empty offsets
        let fc = FlatCols::from_raw(Vec::new(), Vec::new());
        assert_eq!(fc.n_cols(), 0);
        let fc = FlatCols::from_raw(vec![0], Vec::new());
        assert_eq!(fc.n_cols(), 0);
        let sc = SplitCols::from_raw(Vec::new(), Vec::new(), Vec::new(), Vec::new());
        assert_eq!(sc.len(), 0);
    }

    #[test]
    fn all_singleton_columns_cancel_to_empty() {
        // every column shrinks below two atoms → all cancelled; the arena
        // must come out empty and stay usable
        let mut fc = FlatCols::new();
        for a in 0..4u32 {
            fc.push(a);
            fc.cancel_col();
        }
        assert_eq!(fc.n_cols(), 0);
        assert_eq!(fc.total_len(), 0);
        fc.push_col([0, 1]);
        assert_eq!(fc.col(0), &[0, 1]);
    }

    #[test]
    fn one_atom_universe_shapes() {
        // a 1-atom universe admits only singleton (dropped) or empty
        // columns; finishing/cancelling empty columns must be panic-free
        let mut fc = FlatCols::with_capacity(0, 0);
        fc.finish_col(); // empty column: windows(2) over an empty slice
        assert_eq!(fc.n_cols(), 1);
        assert_eq!(fc.col(0), &[] as &[u32]);
        fc.cancel_col();
        assert_eq!(fc.building_len(), 0);
        let mut sc = SplitCols::with_capacity(1, 1);
        sc.parts.push(0);
        sc.finish_parts_col(1, CrossType::C);
        assert_eq!(sc.seg(0), &[0]);
        assert_eq!(sc.host(0), &[] as &[u32]);
    }

    #[test]
    fn scratch_reuses_and_reserves() {
        let first_ptr = with_scratch(10, |s| {
            assert!(s.mark.len() >= 10);
            assert!(s.place.iter().all(|&p| p == u32::MAX));
            s.mark.as_ptr() as usize
        });
        let second_ptr = with_scratch(5, |s| s.mark.as_ptr() as usize);
        // same thread, no interleaving: the pool hands back the same buffer
        assert_eq!(first_ptr, second_ptr);
    }

    #[test]
    fn scratch_is_reentrant() {
        with_scratch(4, |outer| {
            outer.mark[0] = true;
            with_scratch(4, |inner| {
                assert!(!inner.mark[0], "nested scratch must be distinct");
            });
            outer.mark[0] = false;
        });
    }
}

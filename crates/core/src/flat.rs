//! Flat CSR column storage for subproblems (DESIGN.md §3).
//!
//! The divide step of `Path-Realization` creates `O(log n)` levels of
//! subproblems, and every level re-materializes every column. With a
//! nested `Vec<Vec<u32>>` representation that is one heap allocation
//! per column per level — `O(m log n)` small allocations of the exact
//! kind the paper's PRAM accounting assumes away (the divide is "a
//! constant number of scans"). This module stores each subproblem's
//! columns as one CSR arena: an `offsets` array plus a single `data`
//! array, so a whole level's divide is two linear scans and at most
//! three amortized allocations total.
//!
//! **Sortedness invariant:** every column is strictly ascending. All
//! builders in the solver map sorted columns through *monotone*
//! renumberings (`place[a] < place[b]` whenever both are kept and
//! `a < b`), so sortedness is preserved structurally and never needs a
//! per-level re-sort; debug builds assert it on every finished column.

use crate::align::CrossType;
use std::cell::RefCell;

/// Columns in CSR form: column `i` is `data[offsets[i]..offsets[i+1]]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatCols {
    offsets: Vec<u32>,
    data: Vec<u32>,
}

impl FlatCols {
    /// An empty collection.
    pub fn new() -> Self {
        FlatCols { offsets: vec![0], data: Vec::new() }
    }

    /// An empty collection with room for `cols` columns over `entries`
    /// total atoms (no reallocation while building within those bounds).
    pub fn with_capacity(cols: usize, entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(cols + 1);
        offsets.push(0);
        FlatCols { offsets, data: Vec::with_capacity(entries) }
    }

    /// Builds from an iterator of slice-likes (test/interop helper).
    pub fn from_cols<C: AsRef<[u32]>>(cols: impl IntoIterator<Item = C>) -> Self {
        let mut out = FlatCols::new();
        for c in cols {
            out.push_col(c.as_ref().iter().copied());
        }
        out
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_cols() == 0
    }

    /// Total entry count `p = Σ |col|`.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// Column `i` as a slice.
    #[inline]
    pub fn col(&self, i: usize) -> &[u32] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Length of column `i` without forming the slice.
    #[inline]
    pub fn col_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates the columns as slices.
    pub fn iter(&self) -> FlatColsIter<'_> {
        FlatColsIter { cols: self, i: 0 }
    }

    /// Appends one column from an iterator of atoms.
    pub fn push_col(&mut self, col: impl IntoIterator<Item = u32>) {
        self.data.extend(col);
        self.finish_col();
    }

    /// Appends a single atom to the column currently being built (pair
    /// with [`finish_col`](Self::finish_col) / [`cancel_col`](Self::cancel_col)).
    #[inline]
    pub fn push(&mut self, atom: u32) {
        self.data.push(atom);
    }

    /// Atoms pushed to the in-progress column so far.
    #[inline]
    pub fn building_len(&self) -> usize {
        self.data.len() - *self.offsets.last().unwrap() as usize
    }

    /// Seals the in-progress column.
    #[inline]
    pub fn finish_col(&mut self) {
        debug_assert!(
            self.data[*self.offsets.last().unwrap() as usize..].windows(2).all(|w| w[0] < w[1]),
            "columns must stay strictly ascending (monotone renumbering invariant)"
        );
        self.offsets.push(self.data.len() as u32);
    }

    /// Appends a block of atoms to the column currently being built.
    #[inline]
    pub fn extend_building(&mut self, atoms: &[u32]) {
        self.data.extend_from_slice(atoms);
    }

    /// Appends atoms from an iterator to the column being built.
    #[inline]
    pub fn extend_building_from(&mut self, atoms: impl IntoIterator<Item = u32>) {
        self.data.extend(atoms);
    }

    /// Discards the in-progress column (e.g. it shrank below two atoms).
    #[inline]
    pub fn cancel_col(&mut self) {
        self.data.truncate(*self.offsets.last().unwrap() as usize);
    }

    /// Removes all columns, keeping the allocations.
    pub fn clear(&mut self) {
        self.offsets.truncate(1);
        self.data.clear();
    }

    /// Assembles from prebuilt CSR parts — the parallel divide computes
    /// `offsets` with a prefix sum and fills `data` concurrently at the
    /// computed positions, then hands both over wholesale. `offsets`
    /// must start at 0, be non-decreasing, and end at `data.len()`;
    /// every column must obey the sortedness invariant (debug-checked).
    pub fn from_raw(offsets: Vec<u32>, data: Vec<u32>) -> Self {
        debug_assert!(
            offsets.first() == Some(&0) && *offsets.last().unwrap() as usize == data.len()
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let out = FlatCols { offsets, data };
        #[cfg(debug_assertions)]
        for col in out.iter() {
            debug_assert!(
                col.windows(2).all(|w| w[0] < w[1]),
                "columns must stay strictly ascending (monotone renumbering invariant)"
            );
        }
        out
    }
}

/// Slice iterator over a [`FlatCols`].
pub struct FlatColsIter<'a> {
    cols: &'a FlatCols,
    i: usize,
}

impl<'a> Iterator for FlatColsIter<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        (self.i < self.cols.n_cols()).then(|| {
            let c = self.cols.col(self.i);
            self.i += 1;
            c
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cols.n_cols() - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for FlatColsIter<'_> {}

impl<'a> IntoIterator for &'a FlatCols {
    type Item = &'a [u32];
    type IntoIter = FlatColsIter<'a>;

    fn into_iter(self) -> FlatColsIter<'a> {
        self.iter()
    }
}

// ---------------------------------------------------------------------
// split columns
// ---------------------------------------------------------------------

/// The per-column split of one divide step, in CSR form: column `i`'s
/// entry holds its segment part (atoms in `A1`) followed by its host
/// part (atoms in `A2`), both in ascending order, with the boundary in
/// `seg_len` and the crossing classification in `ty`. Replaces the
/// former `Vec<SplitColumn>`-of-`Vec`s (two heap columns per input
/// column per level).
#[derive(Debug, Clone, Default)]
pub struct SplitCols {
    pub(crate) parts: FlatCols,
    pub(crate) seg_len: Vec<u32>,
    pub(crate) ty: Vec<CrossType>,
}

impl SplitCols {
    /// Pre-sized builder state.
    pub fn with_capacity(cols: usize, entries: usize) -> Self {
        SplitCols {
            parts: FlatCols::with_capacity(cols, entries),
            seg_len: Vec::with_capacity(cols),
            ty: Vec::with_capacity(cols),
        }
    }

    /// Number of split columns (same as the parent subproblem's).
    #[inline]
    pub fn len(&self) -> usize {
        self.seg_len.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The segment-side part of column `i` (subproblem-local atoms).
    #[inline]
    pub fn seg(&self, i: usize) -> &[u32] {
        &self.parts.col(i)[..self.seg_len[i] as usize]
    }

    /// The host-side part of column `i`.
    #[inline]
    pub fn host(&self, i: usize) -> &[u32] {
        &self.parts.col(i)[self.seg_len[i] as usize..]
    }

    /// Crossing classification of column `i`.
    #[inline]
    pub fn ty(&self, i: usize) -> CrossType {
        self.ty[i]
    }

    /// Assembles from prebuilt CSR parts; the parallel divide's
    /// counterpart of [`Self::finish_parts_col`]. Takes the raw
    /// offsets/data rather than a [`FlatCols`] because a parts column
    /// (segment half followed by host half) deliberately violates the
    /// whole-column ordering invariant [`FlatCols::from_raw`] checks;
    /// each *half* must be ascending (debug-checked below).
    pub(crate) fn from_raw(
        offsets: Vec<u32>,
        data: Vec<u32>,
        seg_len: Vec<u32>,
        ty: Vec<CrossType>,
    ) -> Self {
        debug_assert!(
            offsets.first() == Some(&0) && *offsets.last().unwrap() as usize == data.len()
        );
        let parts = FlatCols { offsets, data };
        debug_assert_eq!(parts.n_cols(), seg_len.len());
        debug_assert_eq!(parts.n_cols(), ty.len());
        let out = SplitCols { parts, seg_len, ty };
        #[cfg(debug_assertions)]
        for ci in 0..out.len() {
            debug_assert!(out.seg(ci).windows(2).all(|w| w[0] < w[1]));
            debug_assert!(out.host(ci).windows(2).all(|w| w[0] < w[1]));
        }
        out
    }

    /// Seals the in-progress parts column whose first `seg_len` atoms are
    /// the segment part. The two halves are each ascending; their
    /// concatenation deliberately is not, so this bypasses
    /// [`FlatCols::finish_col`]'s whole-column ordering assertion.
    #[inline]
    pub(crate) fn finish_parts_col(&mut self, seg_len: usize, ty: CrossType) {
        debug_assert!({
            let col = &self.parts.data[*self.parts.offsets.last().unwrap() as usize..];
            col[..seg_len].windows(2).all(|w| w[0] < w[1])
                && col[seg_len..].windows(2).all(|w| w[0] < w[1])
        });
        self.parts.offsets.push(self.parts.data.len() as u32);
        self.seg_len.push(seg_len as u32);
        self.ty.push(ty);
    }
}

// ---------------------------------------------------------------------
// scratch pool
// ---------------------------------------------------------------------

/// Reusable per-thread working memory for the divide step: the `A1`
/// membership bitmap, the local renumbering table, and a position
/// table. All are `u32::MAX`/`false`-initialized and restored by their
/// users before release (`O(touched)` cleanup, never `O(capacity)`).
#[derive(Debug, Default)]
pub struct Scratch {
    /// Membership bitmap over subproblem-local atoms.
    pub mark: Vec<bool>,
    /// Local renumbering (`u32::MAX` = absent).
    pub place: Vec<u32>,
    /// Order positions (`u32::MAX` = absent).
    pub pos: Vec<u32>,
    /// Staging buffer (e.g. a column's host part while its segment part
    /// streams into the arena). Left empty between uses.
    pub tmp: Vec<u32>,
}

impl Scratch {
    /// Grows all tables to cover `n` slots.
    fn reserve(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, false);
            self.place.resize(n, u32::MAX);
            self.pos.resize(n, u32::MAX);
        }
    }

    #[cfg(debug_assertions)]
    fn assert_clean(&self) {
        debug_assert!(self.mark.iter().all(|&m| !m), "mark bitmap returned dirty");
        debug_assert!(self.place.iter().all(|&p| p == u32::MAX), "place table returned dirty");
        debug_assert!(self.pos.iter().all(|&p| p == u32::MAX), "pos table returned dirty");
        debug_assert!(self.tmp.is_empty(), "tmp buffer returned nonempty");
    }
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a pooled [`Scratch`] covering at least `n` slots.
/// Reentrant (recursive calls get distinct scratches) and
/// rayon-compatible (the pool is thread-local; a stolen task pulls from
/// its worker's pool). Users must leave the tables clean — debug builds
/// verify this on return to the pool.
pub fn with_scratch<R>(n: usize, f: impl FnOnce(&mut Scratch) -> R) -> R {
    let mut s = SCRATCH_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    s.reserve(n);
    let out = f(&mut s);
    #[cfg(debug_assertions)]
    s.assert_clean();
    SCRATCH_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 64 {
            pool.push(s);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let mut fc = FlatCols::new();
        fc.push_col([1, 3, 5]);
        fc.push_col([] as [u32; 0]);
        fc.push_col([0, 2]);
        assert_eq!(fc.n_cols(), 3);
        assert_eq!(fc.total_len(), 5);
        assert_eq!(fc.col(0), &[1, 3, 5]);
        assert_eq!(fc.col(1), &[] as &[u32]);
        assert_eq!(fc.col(2), &[0, 2]);
        assert_eq!(fc.iter().collect::<Vec<_>>(), vec![&[1, 3, 5][..], &[][..], &[0, 2][..]]);
    }

    #[test]
    fn incremental_build_with_cancel() {
        let mut fc = FlatCols::with_capacity(2, 4);
        fc.push(4);
        fc.push(7);
        assert_eq!(fc.building_len(), 2);
        fc.finish_col();
        fc.push(9);
        fc.cancel_col(); // too small, roll back
        fc.push(1);
        fc.push(2);
        fc.finish_col();
        assert_eq!(fc.n_cols(), 2);
        assert_eq!(fc.col(0), &[4, 7]);
        assert_eq!(fc.col(1), &[1, 2]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut fc = FlatCols::from_cols([[0u32, 1].as_slice(), [2, 3].as_slice()]);
        let cap = fc.data.capacity();
        fc.clear();
        assert_eq!(fc.n_cols(), 0);
        assert_eq!(fc.total_len(), 0);
        assert_eq!(fc.data.capacity(), cap);
    }

    #[test]
    fn from_cols_matches_nested() {
        let nested: Vec<Vec<u32>> = vec![vec![0, 5, 9], vec![1, 2]];
        let fc = FlatCols::from_cols(&nested);
        for (i, col) in nested.iter().enumerate() {
            assert_eq!(fc.col(i), col.as_slice());
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_column_panics_in_debug() {
        let mut fc = FlatCols::new();
        fc.push_col([3, 1]);
    }

    #[test]
    fn scratch_reuses_and_reserves() {
        let first_ptr = with_scratch(10, |s| {
            assert!(s.mark.len() >= 10);
            assert!(s.place.iter().all(|&p| p == u32::MAX));
            s.mark.as_ptr() as usize
        });
        let second_ptr = with_scratch(5, |s| s.mark.as_ptr() as usize);
        // same thread, no interleaving: the pool hands back the same buffer
        assert_eq!(first_ptr, second_ptr);
    }

    #[test]
    fn scratch_is_reentrant() {
        with_scratch(4, |outer| {
            outer.mark[0] = true;
            with_scratch(4, |inner| {
                assert!(!inner.mark[0], "nested scratch must be distinct");
            });
            outer.mark[0] = false;
        });
    }
}

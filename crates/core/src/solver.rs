//! `Path-Realization` (paper Fig. 3): the main divide-and-conquer solver.
//!
//! Steps per recursive call (numbering as in the paper):
//!
//! * **Step 0** — `|A| ≤ 2`: any order realizes the ensemble.
//! * **Step 1** — trivial columns never enter subproblems (restrictions
//!   below two atoms are dropped); the distinguished edge `e` is structural
//!   in our Tutte trees, so the complete column need not be materialized.
//! * **Step 2** — the divide: Case 1 (proper-size column) or Case 2
//!   (Tucker transform + connected growth), then two recursive calls.
//! * **Steps 3–5** — decompose each returned realization (`c1p-tutte`),
//!   classify chords (type a/b/c), take minimal decompositions.
//! * **Step 6** — compute the Whitney switches ([`crate::align`]).
//! * **Step 7** — merge at a feasible split vertex ([`crate::merge`]);
//!   Case 2 additionally cuts the merged cycle at the transform atom `r`.
//!
//! Subproblem columns live in flat CSR arenas ([`FlatCols`], DESIGN.md
//! §3): the whole divide is a constant number of linear scans through
//! per-thread [`Scratch`](crate::flat::Scratch) tables, with no
//! per-column heap traffic and no per-level re-sorting (sortedness is
//! preserved through monotone renumberings and asserted in debug).

use crate::align::{align_side1, align_side2, ChordInfo, CrossType};
use crate::bitmat::{
    component_sub_bits, prepare_split_bits, proper_column_bits, tucker_transform_bits, use_bitmat,
    verify_spans_bits, BitSub, BITMAT_DEFAULT_THRESHOLD,
};
use crate::flat::{with_scratch, FlatCols, SplitCols};
use crate::merge::{merge_with, MergeMode};
use crate::partition::{grow_segment, grow_segment_bits, proper_column, tucker_transform, Growth};
use crate::stats::{
    SolveStats, N_PHASES, PH_ALIGN, PH_BITMAT, PH_DECOMPOSE, PH_MERGE, PH_PARTITION, PH_PREPARE,
};
use crate::{NotC1p, RejectSite, Rejection};
use c1p_matrix::{verify_linear, Atom, Ensemble};

// Per-solve phase timing: two `Instant::now()` reads around the phase
// body, accumulated into the `SolveStats` already threaded through the
// recursion (plain u64 adds — no atomics, no globals, so concurrent
// solves never mix their timings). `stats.phase_ns` is indexed by the
// `PH_*` constants; `c1p_core::stats::PHASE_NAMES` is the label contract.
macro_rules! phase {
    ($stats:ident, $ix:ident, $e:expr) => {{
        let __t0 = std::time::Instant::now();
        let __r = $e;
        $stats.phase_ns[$ix] += __t0.elapsed().as_nanos() as u64;
        __r
    }};
}

// Variant crediting a phase with the *remainder* of a call: the wall time
// of the body minus everything the body itself attributed to other phase
// buckets. Used at the bit-matrix conversion point — the bit subtree has
// no fine-grained phase timing of its own (its per-divide work is too
// small to amortize `Instant` reads), but its combine steps still accrue
// decompose/align/merge through the shared `combine`; the rest of the
// subtree's time lands in the wrapped bucket, keeping phases disjoint.
macro_rules! phase_remainder {
    ($stats:ident, $ix:ident, $e:expr) => {{
        let __before: [u64; N_PHASES] = $stats.phase_ns;
        let __t0 = std::time::Instant::now();
        let __r = $e;
        let __spent = __t0.elapsed().as_nanos() as u64;
        let mut __nested = 0u64;
        for (__i, (__b, __a)) in __before.iter().zip($stats.phase_ns.iter()).enumerate() {
            if __i != $ix {
                __nested += __a - __b;
            }
        }
        $stats.phase_ns[$ix] += __spent.saturating_sub(__nested);
        __r
    }};
}

// Variant for a phase whose body itself records a nested phase (align
// wraps the Tutte decomposition): the nested accumulation observed across
// the call is subtracted so the phase buckets stay disjoint and their sum
// stays bounded by the solve's wall time on the sequential path.
macro_rules! phase_excluding {
    ($stats:ident, $ix:ident, $nested:ident, $e:expr) => {{
        let __n0 = $stats.phase_ns[$nested];
        let __t0 = std::time::Instant::now();
        let __r = $e;
        let __spent = __t0.elapsed().as_nanos() as u64;
        let __inner = $stats.phase_ns[$nested] - __n0;
        $stats.phase_ns[$ix] += __spent.saturating_sub(__inner);
        __r
    }};
}

/// A subproblem: `n` local atoms (`0..n`) and restricted columns (sorted
/// atom lists, each with ≥ 2 atoms) in one CSR arena.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubProblem {
    /// Local atom count.
    pub n: usize,
    /// Columns over local atoms.
    pub cols: FlatCols,
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Subproblems with at most this many atoms are handed to the
    /// Booth–Lueker baseline (`c1p-pqtree`), as the paper's Section 5
    /// suggests for small `p_i`. `0` disables the shortcut — the pure
    /// paper algorithm recurses to `|A| ≤ 2`.
    pub pq_base_threshold: usize,
    /// Verify every intermediate realization (O(p log n) extra work);
    /// always on in debug builds.
    pub paranoid: bool,
    /// Parallel driver only: subproblems at or below this many atoms run
    /// sequentially (task overhead dominates below it). The modelled
    /// PRAM cost still accounts them. `0` removes the size cutoff —
    /// though the scheduler's fork-depth limit (`log2(threads) + 2`;
    /// see `parallel::Sched`) still hands saturated subtrees to the
    /// sequential solver. [`Config::AUTO_CUTOFF`] (the default) sizes
    /// the cutoff from the instance and the current pool at driver
    /// entry.
    pub seq_cutoff: usize,
    /// Bit-matrix crossover (DESIGN.md §14): a subproblem switches to the
    /// packed-`u64` kernels of [`crate::bitmat`] when its atom count is
    /// at most this threshold *and* its rows are dense enough that the
    /// bit matrix stays within ~2× the CSR footprint (see
    /// `bitmat::use_bitmat` for the exact rule). `0` forces pure CSR,
    /// `usize::MAX` forces the bit path everywhere — the two endpoints of
    /// the differential threshold sweep. The verdict (order, evidence,
    /// witness) is identical for every value; only scheduling changes.
    pub bitmat_threshold: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            pq_base_threshold: 0,
            paranoid: cfg!(debug_assertions),
            seq_cutoff: Config::AUTO_CUTOFF,
            bitmat_threshold: BITMAT_DEFAULT_THRESHOLD,
        }
    }
}

impl Config {
    /// Sentinel for [`Config::seq_cutoff`]: auto-tune from
    /// `rayon::current_num_threads()` and the root instance size.
    pub const AUTO_CUTOFF: usize = usize::MAX;

    /// The practical profile: PQ-tree base case at the paper's `p_i ≲ log n`
    /// granularity (we cut on atom count instead; see EXPERIMENTS.md E10).
    pub fn fast() -> Self {
        Config {
            pq_base_threshold: 32,
            paranoid: false,
            seq_cutoff: Config::AUTO_CUTOFF,
            bitmat_threshold: BITMAT_DEFAULT_THRESHOLD,
        }
    }
}

/// Decides C1P for `ens`; returns a verified witness order of the atoms,
/// or an evidence-carrying [`Rejection`] in global atom ids.
pub fn solve(ens: &Ensemble) -> Result<Vec<Atom>, Rejection> {
    solve_with(ens, &Config::default()).0
}

/// [`solve`] with explicit configuration; also returns run statistics.
pub fn solve_with(ens: &Ensemble, cfg: &Config) -> (Result<Vec<Atom>, Rejection>, SolveStats) {
    let mut stats = SolveStats::default();
    let mut order: Vec<Atom> = Vec::with_capacity(ens.n_atoms());
    // Solve each connected component independently and concatenate
    // (isolated atoms ride along as singleton components).
    for (atoms, col_ids) in ens.components() {
        let cols = col_ids.iter().map(|&ci| ens.column(ci as usize));
        // fragment verification deferred: the whole-order verify_linear
        // below covers every component in one pass
        match component_realized(&atoms, cols, cfg, &mut stats, false) {
            Ok(part) => order.extend(part),
            Err(rej) => return (Err(rej), stats),
        }
    }
    // The witness is always validated: soundness does not depend on any
    // solver internals.
    verify_linear(ens, &order).expect("internal error: produced order failed verification");
    (Ok(order), stats)
}

/// Solves one connected component in isolation: `atoms` is the (sorted)
/// component atom set in *global* ids, `cols` its columns in ascending
/// column-id order (restrictions below two atoms are dropped internally,
/// exactly as the whole-ensemble driver does). Returns the realized order
/// and rejection evidence in global atom ids.
///
/// This is the loop body of [`solve_with`] — the incremental solver
/// (`c1p-incremental`) calls it per re-solved component, so a differential
/// re-solve is bit-identical to a from-scratch [`solve`] by construction,
/// not by test alone. The returned fragment is span-verified against the
/// component's own columns before it is handed out.
pub fn solve_component<'a>(
    atoms: &[Atom],
    cols: impl Iterator<Item = &'a [Atom]>,
    cfg: &Config,
) -> Result<Vec<Atom>, Rejection> {
    component_realized(atoms, cols, cfg, &mut SolveStats::default(), true)
}

/// [`solve_component`] with the caller's statistics threaded through and
/// fragment verification made optional: external entries always verify
/// (their callers splice the fragment unseen), while [`solve_with`] skips
/// it — its whole-order `verify_linear` already covers every component.
fn component_realized<'a>(
    atoms: &[Atom],
    cols: impl Iterator<Item = &'a [Atom]>,
    cfg: &Config,
    stats: &mut SolveStats,
    verify_fragment: bool,
) -> Result<Vec<Atom>, Rejection> {
    let sub = build_sub(atoms, cols);
    match realize(&sub, cfg, stats, 0) {
        Ok(local) => {
            if verify_fragment {
                verify_spans(&sub, &local);
            }
            Ok(local.iter().map(|&i| atoms[i as usize]).collect())
        }
        // component-local evidence → global atom ids
        Err(rej) => Err(rej.fill(sub.n).mapped(atoms)),
    }
}

/// Re-indexes global columns onto a local atom set. `atoms` and each
/// column must be sorted ascending (the [`Ensemble`] invariant), so the
/// local columns come out sorted without re-sorting.
fn build_sub<'a>(atoms: &[Atom], cols: impl Iterator<Item = &'a [Atom]>) -> SubProblem {
    let max = atoms.iter().copied().max().map_or(0, |m| m as usize + 1);
    with_scratch(max, |s| {
        for (i, &a) in atoms.iter().enumerate() {
            s.place[a as usize] = i as u32;
        }
        let mut out = FlatCols::new();
        for col in cols {
            for &a in col {
                let p = s.place[a as usize];
                if p != u32::MAX {
                    out.push(p);
                }
            }
            if out.building_len() >= 2 {
                out.finish_col();
            } else {
                out.cancel_col();
            }
        }
        for &a in atoms {
            s.place[a as usize] = u32::MAX;
        }
        SubProblem { n: atoms.len(), cols: out }
    })
}

/// Re-indexes the columns of a transformed subproblem onto one connected
/// component's (sorted) atom set.
pub(crate) fn component_sub<'a>(
    atoms: &[u32],
    cols: impl Iterator<Item = &'a [u32]>,
) -> SubProblem {
    let max = atoms.iter().copied().max().map_or(0, |m| m as usize + 1);
    with_scratch(max, |s| {
        for (i, &a) in atoms.iter().enumerate() {
            s.place[a as usize] = i as u32;
        }
        let mut out = FlatCols::new();
        for col in cols {
            out.push_col(col.iter().map(|&a| {
                debug_assert_ne!(s.place[a as usize], u32::MAX, "column atom in component");
                s.place[a as usize]
            }));
        }
        for &a in atoms {
            s.place[a as usize] = u32::MAX;
        }
        SubProblem { n: atoms.len(), cols: out }
    })
}

/// The recursive Path-Realization procedure. Returns an order of the local
/// atoms realizing all columns.
pub(crate) fn realize(
    sub: &SubProblem,
    cfg: &Config,
    stats: &mut SolveStats,
    depth: usize,
) -> Result<Vec<u32>, NotC1p> {
    // Representation crossover: once a subtree is small/dense enough the
    // whole recursion below this point runs on packed-u64 rows. The bit
    // path counts its own subproblems, so delegate before counting.
    if use_bitmat(sub.n, sub.cols.n_cols(), sub.cols.total_len(), cfg.bitmat_threshold) {
        stats.bitmat_converts += 1;
        return phase_remainder!(stats, PH_BITMAT, {
            let bsub = BitSub::from_sub(sub);
            realize_bits(&bsub, cfg, stats, depth)
        });
    }
    stats.subproblems += 1;
    stats.max_depth = stats.max_depth.max(depth);
    let k = sub.n;
    // Step 0
    if k <= 2 {
        stats.base_cases += 1;
        return Ok((0..k as u32).collect());
    }
    if cfg.pq_base_threshold > 0 && k <= cfg.pq_base_threshold {
        stats.pq_base_cases += 1;
        return c1p_pqtree::solve(k, &sub.cols)
            .ok_or_else(|| Rejection::at(RejectSite::PqBase).fill(k));
    }
    // Step 2: the divide
    if let Some(ci) = phase!(stats, PH_PARTITION, proper_column(sub)) {
        stats.case1 += 1;
        split_and_merge(sub, sub.cols.col(ci), MergeMode::Linear, cfg, stats, depth)
    } else {
        stats.case2 += 1;
        let t = phase!(stats, PH_PARTITION, tucker_transform(sub));
        // Failures inside the transformed instance cannot be mapped back
        // atom-by-atom (complemented columns, extra atom r): widen the
        // evidence to this subproblem's whole atom set.
        let cyclic = match phase!(stats, PH_PARTITION, grow_segment(&t)) {
            Growth::Segment(a1) => split_and_merge(&t, &a1, MergeMode::Cyclic, cfg, stats, depth)
                .map_err(|e| e.widened(k))?,
            Growth::Components(comps) => {
                // trivially decomposes: concatenate independent solutions
                let mut order = Vec::with_capacity(t.n);
                for (atoms, col_ids) in comps {
                    let csub =
                        component_sub(&atoms, col_ids.iter().map(|&ci| t.cols.col(ci as usize)));
                    let local = realize(&csub, cfg, stats, depth + 1).map_err(|e| e.widened(k))?;
                    order.extend(local.iter().map(|&i| atoms[i as usize]));
                }
                order
            }
        };
        // cut the cycle at r = k (paper Step 7 Case 2)
        let order = cut_at_r(&cyclic, k);
        if cfg.paranoid {
            verify_spans(sub, &order);
        }
        Ok(order)
    }
}

/// [`realize`] on the bit-matrix representation: the same Path-Realization
/// steps with the divide kernels swapped for their word-parallel twins
/// ([`crate::bitmat`]). Never converts back to CSR except at the PQ-tree
/// base case (whose solver consumes a [`FlatCols`]); the combine (Steps
/// 3–7) is the *shared* [`combine`], so verdict identity with the CSR
/// path reduces to the divide kernels producing identical splits — which
/// `split_differential.rs` pins across the threshold sweep.
fn realize_bits(
    sub: &BitSub,
    cfg: &Config,
    stats: &mut SolveStats,
    depth: usize,
) -> Result<Vec<u32>, NotC1p> {
    stats.subproblems += 1;
    stats.max_depth = stats.max_depth.max(depth);
    let k = sub.n;
    // Step 0
    if k <= 2 {
        stats.base_cases += 1;
        return Ok((0..k as u32).collect());
    }
    if cfg.pq_base_threshold > 0 && k <= cfg.pq_base_threshold {
        stats.pq_base_cases += 1;
        let flat = sub.cols.to_flat();
        return c1p_pqtree::solve(k, &flat)
            .ok_or_else(|| Rejection::at(RejectSite::PqBase).fill(k));
    }
    // Step 2: the divide, word-parallel
    if let Some(ci) = proper_column_bits(sub) {
        stats.case1 += 1;
        let a1: Vec<u32> = sub.cols.ones(ci).collect();
        split_and_merge_bits(sub, &a1, MergeMode::Linear, cfg, stats, depth)
    } else {
        stats.case2 += 1;
        let t = tucker_transform_bits(sub);
        // evidence widening at the transform boundary, as in `realize`
        let cyclic = match grow_segment_bits(&t) {
            Growth::Segment(a1) => {
                split_and_merge_bits(&t, &a1, MergeMode::Cyclic, cfg, stats, depth)
                    .map_err(|e| e.widened(k))?
            }
            Growth::Components(comps) => {
                let mut order = Vec::with_capacity(t.n);
                for (atoms, col_ids) in comps {
                    let csub = component_sub_bits(&atoms, &col_ids, &t);
                    let local =
                        realize_bits(&csub, cfg, stats, depth + 1).map_err(|e| e.widened(k))?;
                    order.extend(local.iter().map(|&i| atoms[i as usize]));
                }
                order
            }
        };
        let order = cut_at_r(&cyclic, k);
        if cfg.paranoid {
            verify_spans_bits(sub, &order);
        }
        Ok(order)
    }
}

/// [`split_and_merge`] on bit rows; the combine is shared with CSR.
fn split_and_merge_bits(
    sub: &BitSub,
    a1: &[u32],
    mode: MergeMode,
    cfg: &Config,
    stats: &mut SolveStats,
    depth: usize,
) -> Result<Vec<u32>, NotC1p> {
    stats.bitmat_divides += 1;
    let data = prepare_split_bits(sub, a1);
    let order1 = realize_bits(&data.sub1, cfg, stats, depth + 1)
        .map_err(|e| e.fill(data.sub1.n).mapped(&data.a1))?;
    let order2 = realize_bits(&data.sub2, cfg, stats, depth + 1)
        .map_err(|e| e.fill(data.sub2.n).mapped(&data.a2))?;
    combine(&data.a1, &data.a2, &data.split_cols, &order1, &order2, mode, stats, false)
        .map_err(|e| e.fill(sub.n))
}

/// Shared Case-1/Case-2 body: split on `a1`, recurse, align, merge.
fn split_and_merge(
    sub: &SubProblem,
    a1: &[u32],
    mode: MergeMode,
    cfg: &Config,
    stats: &mut SolveStats,
    depth: usize,
) -> Result<Vec<u32>, NotC1p> {
    stats.csr_divides += 1;
    let data = phase!(stats, PH_PREPARE, prepare_split(sub, a1));
    // Child evidence (child-local atoms with a non-C1P restriction) maps
    // injectively into this subproblem; each child is a constraint
    // restriction of it, so the mapped evidence stays valid.
    let order1 = realize(&data.sub1, cfg, stats, depth + 1)
        .map_err(|e| e.fill(data.sub1.n).mapped(&data.a1))?;
    let order2 = realize(&data.sub2, cfg, stats, depth + 1)
        .map_err(|e| e.fill(data.sub2.n).mapped(&data.a2))?;
    // A merge failure implicates the whole subproblem.
    combine(&data.a1, &data.a2, &data.split_cols, &order1, &order2, mode, stats, false)
        .map_err(|e| e.fill(sub.n))
}

/// Everything the combine step needs, precomputed before recursion
/// (shared between the sequential and the parallel drivers).
pub struct SplitData {
    /// Segment atoms (subproblem-local, sorted).
    pub a1: Vec<u32>,
    /// Host atoms.
    pub a2: Vec<u32>,
    /// Per-column split + crossing type.
    pub split_cols: SplitCols,
    /// Segment subproblem.
    pub sub1: SubProblem,
    /// Host subproblem.
    pub sub2: SubProblem,
}

/// The divide: split columns across `{A1, A2}` and classify (Step 2 +
/// Step 4's type identification). One counting-free linear pass: each
/// column streams its segment part into the CSR arena (staging the host
/// part in scratch), emitting both side projections on the fly through
/// the monotone `place` renumbering — which keeps every output column
/// sorted, so the old per-level `sort_unstable` calls are gone entirely.
///
/// Public so benches can measure the divide in isolation; not a stable
/// API.
pub fn prepare_split(sub: &SubProblem, a1: &[u32]) -> SplitData {
    let k = sub.n;
    let m = sub.cols.n_cols();
    let p = sub.cols.total_len();
    with_scratch(k, |s| {
        // place[a] = a's index within its own side; mark[a] = a ∈ A1
        for (i, &a) in a1.iter().enumerate() {
            s.mark[a as usize] = true;
            s.place[a as usize] = i as u32;
        }
        let mut a2: Vec<u32> = Vec::with_capacity(k - a1.len());
        for a in 0..k as u32 {
            if !s.mark[a as usize] {
                s.place[a as usize] = a2.len() as u32;
                a2.push(a);
            }
        }
        let (k1, k2) = (a1.len(), a2.len());
        debug_assert!(k1 > 0 && k2 > 0, "partition must be proper");
        let mut split_cols = SplitCols::with_capacity(m, p);
        let mut cols1 = FlatCols::with_capacity(m, p.min(k1 * m));
        let mut cols2 = FlatCols::with_capacity(m, p);
        for col in sub.cols.iter() {
            debug_assert!(s.tmp.is_empty());
            for &a in col {
                if s.mark[a as usize] {
                    split_cols.parts.push(a);
                    cols1.push(s.place[a as usize]);
                } else {
                    s.tmp.push(a);
                    cols2.push(s.place[a as usize]);
                }
            }
            let sn = split_cols.parts.building_len();
            let hn = s.tmp.len();
            split_cols.parts.extend_building(&s.tmp);
            s.tmp.clear();
            let ty = if sn == 0 || hn == 0 {
                CrossType::C
            } else if sn == k1 {
                CrossType::A
            } else {
                CrossType::B
            };
            split_cols.finish_parts_col(sn, ty);
            // side projections keep restrictions with ≥ 2 atoms that do
            // not cover the whole side
            if sn >= 2 && sn < k1 {
                cols1.finish_col();
            } else {
                cols1.cancel_col();
            }
            if hn >= 2 && hn < k2 {
                cols2.finish_col();
            } else {
                cols2.cancel_col();
            }
        }
        // restore scratch (O(k): every atom was touched)
        for a in 0..k {
            s.mark[a] = false;
            s.place[a] = u32::MAX;
        }
        SplitData {
            a1: a1.to_vec(),
            a2,
            split_cols,
            sub1: SubProblem { n: k1, cols: cols1 },
            sub2: SubProblem { n: k2, cols: cols2 },
        }
    })
}

/// Parallel divide (the paper's "cut" step off the critical path): the
/// same split as [`prepare_split`], computed as two chunk-parallel
/// column scans stitched by an `O(m)` prefix-sum pass.
///
/// * **pass 1** (parallel): per-column segment-part sizes + crossing
///   classification;
/// * **stitch** (sequential, `O(m)`): prefix sums turn the sizes into
///   CSR offsets for the parts arena and both side projections;
/// * **pass 2** (parallel): every column streams its entries into the
///   three arenas at its precomputed offsets — writes are disjoint by
///   construction, so the fills race-freely share the output buffers.
///
/// Output is bit-identical to the sequential divide (pinned by
/// `split_differential.rs`); `parallel.rs` switches between the two by
/// subproblem weight.
pub fn prepare_split_par(sub: &SubProblem, a1: &[u32]) -> SplitData {
    use c1p_pram::scan::SyncPtr;
    use rayon::prelude::*;

    let k = sub.n;
    let m = sub.cols.n_cols();
    // membership + per-side renumbering (O(k), sequential: cheap and
    // needed in full by both passes)
    let mut mark = vec![false; k];
    let mut place = vec![0u32; k];
    for (i, &a) in a1.iter().enumerate() {
        mark[a as usize] = true;
        place[a as usize] = i as u32;
    }
    let mut a2: Vec<u32> = Vec::with_capacity(k - a1.len());
    for a in 0..k as u32 {
        if !mark[a as usize] {
            place[a as usize] = a2.len() as u32;
            a2.push(a);
        }
    }
    let (k1, k2) = (a1.len(), a2.len());
    debug_assert!(k1 > 0 && k2 > 0, "partition must be proper");
    // pass 1: segment-part size per column
    let sn: Vec<u32> = (0..m as u32)
        .into_par_iter()
        .with_min_len(256)
        .map(|ci| sub.cols.col(ci as usize).iter().filter(|&&a| mark[a as usize]).count() as u32)
        .collect();
    // stitch: offsets for the parts arena and both kept-side projections
    let mut parts_off = Vec::with_capacity(m + 1);
    let mut off1 = vec![u32::MAX; m]; // u32::MAX = column dropped on that side
    let mut off2 = vec![u32::MAX; m];
    let mut offs1 = Vec::with_capacity(m + 1);
    let mut offs2 = Vec::with_capacity(m + 1);
    let mut ty = Vec::with_capacity(m);
    let (mut pp, mut p1, mut p2) = (0u32, 0u32, 0u32);
    parts_off.push(0);
    offs1.push(0);
    offs2.push(0);
    for ci in 0..m {
        let len = sub.cols.col_len(ci) as u32;
        let (s, h) = (sn[ci], len - sn[ci]);
        pp += len;
        parts_off.push(pp);
        ty.push(if s == 0 || h == 0 {
            CrossType::C
        } else if s as usize == k1 {
            CrossType::A
        } else {
            CrossType::B
        });
        if s >= 2 && (s as usize) < k1 {
            off1[ci] = p1;
            p1 += s;
            offs1.push(p1);
        }
        if h >= 2 && (h as usize) < k2 {
            off2[ci] = p2;
            p2 += h;
            offs2.push(p2);
        }
    }
    // pass 2: disjoint-range fills of the three data arenas
    let mut parts_data = vec![0u32; pp as usize];
    let mut data1 = vec![0u32; p1 as usize];
    let mut data2 = vec![0u32; p2 as usize];
    {
        let parts_ptr = SyncPtr(parts_data.as_mut_ptr());
        let d1_ptr = SyncPtr(data1.as_mut_ptr());
        let d2_ptr = SyncPtr(data2.as_mut_ptr());
        let (mark, place, sn) = (&mark, &place, &sn);
        (0..m as u32).into_par_iter().with_min_len(128).for_each(|ci| {
            let ci = ci as usize;
            let mut sp = parts_off[ci];
            let mut hp = parts_off[ci] + sn[ci];
            let mut c1 = off1[ci];
            let mut c2 = off2[ci];
            for &a in sub.cols.col(ci) {
                // SAFETY: every target index below belongs to column
                // `ci`'s precomputed half-open range in its arena; the
                // ranges of distinct columns are disjoint.
                if mark[a as usize] {
                    unsafe { parts_ptr.write(sp as usize, a) };
                    sp += 1;
                    if c1 != u32::MAX {
                        unsafe { d1_ptr.write(c1 as usize, place[a as usize]) };
                        c1 += 1;
                    }
                } else {
                    unsafe { parts_ptr.write(hp as usize, a) };
                    hp += 1;
                    if c2 != u32::MAX {
                        unsafe { d2_ptr.write(c2 as usize, place[a as usize]) };
                        c2 += 1;
                    }
                }
            }
        });
    }
    SplitData {
        a1: a1.to_vec(),
        a2,
        split_cols: SplitCols::from_raw(parts_off, parts_data, sn, ty),
        sub1: SubProblem { n: k1, cols: FlatCols::from_raw(offs1, data1) },
        sub2: SubProblem { n: k2, cols: FlatCols::from_raw(offs2, data2) },
    }
}

/// The combine: Steps 3–7 (decompose, align, merge). Each side's alignment
/// yields a small set of candidate re-arrangements (Section 4's switches);
/// every pair is checked by the verifying merge. Takes the split pieces
/// rather than a [`SplitData`] so the CSR and bit-matrix divides (whose
/// child subproblems differ in representation) share it verbatim.
#[allow(clippy::too_many_arguments)]
pub(crate) fn combine(
    a1: &[u32],
    a2: &[u32],
    split_cols: &SplitCols,
    order1: &[u32],
    order2: &[u32],
    mode: MergeMode,
    stats: &mut SolveStats,
    par: bool,
) -> Result<Vec<u32>, NotC1p> {
    // Identity fast path: the recursive orders are already realizations
    // of their side restrictions, and in practice they usually satisfy
    // the GAP/GAC junction conditions as-is. Trying them costs one O(p)
    // merge scan and skips Steps 3–6 (decompose + funnel) entirely when
    // it lands; the merge's own candidate checks (and the top-level
    // witness verification) keep this a pure scheduling shortcut.
    let id_seg: Vec<u32> = order1.iter().map(|&x| a1[x as usize]).collect();
    let id_host: Vec<u32> = order2.iter().map(|&x| a2[x as usize]).collect();
    if let Ok(m) = phase!(stats, PH_MERGE, merge_with(&id_seg, &id_host, split_cols, mode, par)) {
        stats.fast_merges += 1;
        return Ok(m);
    }
    // Host-side-first funnel: align the host side alone and try each
    // candidate against the identity segment order. Misalignment often
    // sits on one side only, and a hit here skips the segment side's
    // decomposition entirely. Trying extra pairs is sound and cannot
    // flip a verdict: the merge verifies every candidate against the
    // split columns, so a pair that merges is a realization either way,
    // and a truly non-C1P junction fails all pairs no matter the order.
    let host_cands = phase_excluding!(
        stats,
        PH_ALIGN,
        PH_DECOMPOSE,
        align_one_side(a2, order2, split_cols, false, stats)
    );
    let host_only = phase!(stats, PH_MERGE, {
        host_cands.iter().find_map(|host| merge_with(&id_seg, host, split_cols, mode, par).ok())
    });
    if let Some(m) = host_only {
        stats.fast_merges += 1;
        return Ok(m);
    }
    let seg_cands = phase_excluding!(
        stats,
        PH_ALIGN,
        PH_DECOMPOSE,
        align_one_side(a1, order1, split_cols, true, stats)
    );
    phase!(stats, PH_MERGE, {
        let mut result = Err(NotC1p::at(RejectSite::Merge));
        'outer: for host in &host_cands {
            for seg in &seg_cands {
                if let Ok(m) = merge_with(seg, host, split_cols, mode, par) {
                    result = Ok(m);
                    break 'outer;
                }
            }
        }
        result
    })
}

/// Step 7, Case 2: cut the merged cycle at the transform atom `r = k` —
/// a rotation done with two block copies.
pub(crate) fn cut_at_r(cyclic: &[u32], k: usize) -> Vec<u32> {
    debug_assert_eq!(cyclic.len(), k + 1, "cycle covers the transformed atom set");
    let rpos = cyclic.iter().position(|&a| a == k as u32).expect("r on the cycle");
    let mut order = Vec::with_capacity(k);
    order.extend_from_slice(&cyclic[rpos + 1..]);
    order.extend_from_slice(&cyclic[..rpos]);
    order
}

/// Steps 3–6 for one side: build the gp-realization's chords from the
/// returned order, compute the Tutte decomposition, run the alignment, and
/// compose each candidate back into an order over the side's
/// (subproblem-local) atoms.
fn align_one_side(
    atoms: &[u32],
    order: &[u32],
    split_cols: &SplitCols,
    seg_side: bool,
    stats: &mut SolveStats,
) -> Vec<Vec<u32>> {
    let kn = atoms.len();
    let max = atoms.iter().map(|&a| a as usize + 1).max().unwrap_or(0);
    with_scratch(max, |s| {
        // pos[subproblem-local atom] = position in this side's order
        for (i, &x) in order.iter().enumerate() {
            s.pos[atoms[x as usize] as usize] = i as u32;
        }
        let out = align_one_side_inner(atoms, order, split_cols, seg_side, stats, &s.pos, kn);
        for &a in atoms {
            s.pos[a as usize] = u32::MAX;
        }
        out
    })
}

fn align_one_side_inner(
    atoms: &[u32],
    order: &[u32],
    split_cols: &SplitCols,
    seg_side: bool,
    stats: &mut SolveStats,
    pos: &[u32],
    kn: usize,
) -> Vec<Vec<u32>> {
    // chords: every column restriction with ≥ 2 atoms (decomposition
    // fidelity: they pin the polygon re-linkings), plus crossing
    // restrictions of 1 atom (they must still reach the split vertex).
    let mut spans: Vec<(u32, u32)> = Vec::new();
    let mut infos: Vec<ChordInfo> = Vec::new();
    for ci in 0..split_cols.len() {
        let part = if seg_side { split_cols.seg(ci) } else { split_cols.host(ci) };
        if part.is_empty() {
            continue;
        }
        let ty = split_cols.ty(ci);
        if part.len() == 1 && ty == CrossType::C {
            continue;
        }
        let mut lo = u32::MAX;
        let mut hi = 0;
        for &a in part {
            let p = pos[a as usize];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        debug_assert_eq!(
            (hi - lo + 1) as usize,
            part.len(),
            "recursive order must realize the restriction"
        );
        spans.push((lo, hi + 1));
        infos.push(ChordInfo { span: (lo, hi + 1), ty });
    }
    let needs_alignment = infos.iter().any(|i| i.ty != CrossType::C);
    if !needs_alignment {
        // nothing constrains the junction; keep the recursive order
        return vec![order.iter().map(|&x| atoms[x as usize]).collect()];
    }
    let tree = phase!(stats, PH_DECOMPOSE, c1p_tutte::decompose(kn, &spans).expect("valid spans"));
    stats.decompositions += 1;
    stats.members += tree.n_members();
    let aligned = if seg_side { align_side1(&tree, &infos) } else { align_side2(&tree, &infos) };
    let mut out: Vec<Vec<u32>> = Vec::with_capacity(aligned.len());
    for cand in &aligned {
        let composed = cand.compose();
        // composed[i] = original order position at new position i
        let seq: Vec<u32> = composed.iter().map(|&p| atoms[order[p as usize] as usize]).collect();
        if !out.contains(&seq) {
            out.push(seq);
        }
    }
    out
}

/// Span check: `order` realizes the subproblem. O(p); used by the
/// paranoid mode and unconditionally on component fragments handed to
/// external callers ([`solve_component`]).
pub(crate) fn verify_spans(sub: &SubProblem, order: &[u32]) {
    let mut pos = vec![u32::MAX; sub.n];
    for (i, &a) in order.iter().enumerate() {
        pos[a as usize] = i as u32;
    }
    for col in sub.cols.iter() {
        let mut lo = u32::MAX;
        let mut hi = 0;
        for &a in col {
            lo = lo.min(pos[a as usize]);
            hi = hi.max(pos[a as usize]);
        }
        assert_eq!(
            (hi - lo + 1) as usize,
            col.len(),
            "realization invariant violated for {col:?} in {order:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::io::fig2_matrix;
    use c1p_matrix::tucker;
    use c1p_matrix::verify::brute_force_linear;

    fn ens(n: usize, cols: Vec<Vec<Atom>>) -> Ensemble {
        Ensemble::from_columns(n, cols).unwrap()
    }

    #[test]
    fn trivial_instances() {
        assert_eq!(solve(&ens(0, vec![])), Ok(vec![]));
        assert_eq!(solve(&ens(1, vec![vec![0]])), Ok(vec![0]));
        assert!(solve(&ens(2, vec![vec![0, 1]])).is_ok());
        assert!(solve(&ens(5, vec![])).is_ok());
    }

    #[test]
    fn simple_intervals() {
        let e = ens(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]]);
        let order = solve(&e).expect("C1P");
        verify_linear(&e, &order).unwrap();
    }

    #[test]
    fn rejects_cycle() {
        let e = ens(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        let rej = solve(&e).unwrap_err();
        // evidence: the restriction to the named atoms is itself non-C1P
        assert!(!rej.atoms.is_empty());
        let (sub, _) = e.restrict(&rej.atoms, 2);
        assert!(brute_force_linear(&sub).is_none(), "evidence must stay non-C1P");
    }

    #[test]
    fn fig2_running_example() {
        let e = fig2_matrix();
        let order = solve(&e).expect("the paper's Fig. 2 matrix is C1P");
        verify_linear(&e, &order).unwrap();
    }

    #[test]
    fn rejects_all_tucker() {
        for (name, e) in tucker::small_obstructions() {
            let rej = solve(&e).expect_err(&format!("{name} must be rejected"));
            assert!(!rej.atoms.is_empty(), "{name}: rejection carries evidence");
            assert!(rej.atoms.iter().all(|&a| (a as usize) < e.n_atoms()), "{name}");
            if e.n_atoms() <= 8 {
                let (sub, _) = e.restrict(&rej.atoms, 2);
                assert!(brute_force_linear(&sub).is_none(), "{name}: evidence non-C1P");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_small() {
        // exhaustive 4-atom, 2-column instances
        for n in [3usize, 4] {
            let masks = 1usize << n;
            for c1 in 0..masks {
                for c2 in 0..masks {
                    let cols: Vec<Vec<Atom>> = [c1, c2]
                        .iter()
                        .map(|&m| (0..n as Atom).filter(|&a| m >> a & 1 == 1).collect())
                        .collect();
                    let e = ens(n, cols);
                    let got = solve(&e).is_ok();
                    let expect = brute_force_linear(&e).is_some();
                    assert_eq!(got, expect, "mismatch on {:?}", e.to_matrix());
                }
            }
        }
    }

    #[test]
    fn cut_at_r_rotates() {
        // r = 4 in the middle
        assert_eq!(cut_at_r(&[2, 0, 4, 3, 1], 4), vec![3, 1, 2, 0]);
    }

    #[test]
    fn cut_at_r_at_front() {
        assert_eq!(cut_at_r(&[3, 1, 2, 0], 3), vec![1, 2, 0]);
    }

    #[test]
    fn cut_at_r_at_back() {
        assert_eq!(cut_at_r(&[1, 2, 0, 3], 3), vec![1, 2, 0]);
    }

    #[test]
    fn cut_at_r_two_atoms() {
        assert_eq!(cut_at_r(&[2, 0, 1], 2), vec![0, 1]);
        assert_eq!(cut_at_r(&[0, 1, 2], 2), vec![0, 1]);
    }

    #[test]
    fn prepare_split_partitions_and_classifies() {
        // 6 atoms, A1 = {1, 3, 4}: check parts, projections, types
        let sub = SubProblem {
            n: 6,
            cols: FlatCols::from_cols([
                [1u32, 3].as_slice(),    // inside A1 → C
                [0, 2].as_slice(),       // inside A2 → C
                [1, 2, 3, 4].as_slice(), // seg {1,3,4} = all of A1 → A
                [2, 3].as_slice(),       // proper crossing → B
            ]),
        };
        let data = prepare_split(&sub, &[1, 3, 4]);
        assert_eq!(data.a2, vec![0, 2, 5]);
        assert_eq!(data.split_cols.seg(0), &[1, 3]);
        assert_eq!(data.split_cols.host(0), &[] as &[u32]);
        assert_eq!(data.split_cols.ty(0), CrossType::C);
        assert_eq!(data.split_cols.ty(1), CrossType::C);
        assert_eq!(data.split_cols.seg(2), &[1, 3, 4]);
        assert_eq!(data.split_cols.host(2), &[2]);
        assert_eq!(data.split_cols.ty(2), CrossType::A);
        assert_eq!(data.split_cols.seg(3), &[3]);
        assert_eq!(data.split_cols.host(3), &[2]);
        assert_eq!(data.split_cols.ty(3), CrossType::B);
        // sub1 keeps only column 0 projected onto A1-local ids {1→0, 3→1}
        assert_eq!(data.sub1.cols.iter().collect::<Vec<_>>(), vec![&[0u32, 1][..]]);
        // sub2 keeps only column 1 projected onto A2-local ids {0→0, 2→1}
        assert_eq!(data.sub2.cols.iter().collect::<Vec<_>>(), vec![&[0u32, 1][..]]);
    }
}

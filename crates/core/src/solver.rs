//! `Path-Realization` (paper Fig. 3): the main divide-and-conquer solver.
//!
//! Steps per recursive call (numbering as in the paper):
//!
//! * **Step 0** — `|A| ≤ 2`: any order realizes the ensemble.
//! * **Step 1** — trivial columns never enter subproblems (restrictions
//!   below two atoms are dropped); the distinguished edge `e` is structural
//!   in our Tutte trees, so the complete column need not be materialized.
//! * **Step 2** — the divide: Case 1 (proper-size column) or Case 2
//!   (Tucker transform + connected growth), then two recursive calls.
//! * **Steps 3–5** — decompose each returned realization (`c1p-tutte`),
//!   classify chords (type a/b/c), take minimal decompositions.
//! * **Step 6** — compute the Whitney switches ([`crate::align`]).
//! * **Step 7** — merge at a feasible split vertex ([`crate::merge`]);
//!   Case 2 additionally cuts the merged cycle at the transform atom `r`.

use crate::align::{align_side1, align_side2, ChordInfo, CrossType};
use crate::merge::{merge, MergeMode, SplitColumn};
use crate::partition::{grow_segment, proper_column, tucker_transform, Growth};
use crate::stats::SolveStats;
use crate::NotC1p;
use c1p_matrix::{verify_linear, Atom, Ensemble};
use std::sync::atomic::{AtomicU64, Ordering};

/// Nanosecond phase counters, printed when `C1P_PHASE_TIMING` is set
/// (diagnostic aid for the scaling experiments).
pub static T_PARTITION: AtomicU64 = AtomicU64::new(0);
pub static T_RECURSE_PREP: AtomicU64 = AtomicU64::new(0);
pub static T_DECOMPOSE: AtomicU64 = AtomicU64::new(0);
pub static T_ALIGN: AtomicU64 = AtomicU64::new(0);
pub static T_MERGE: AtomicU64 = AtomicU64::new(0);

macro_rules! phase {
    ($counter:ident, $e:expr) => {{
        let __t0 = std::time::Instant::now();
        let __r = $e;
        $counter.fetch_add(__t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        __r
    }};
}

/// Prints and resets the phase counters.
pub fn dump_phase_timing() {
    for (name, c) in [
        ("partition", &T_PARTITION),
        ("prepare", &T_RECURSE_PREP),
        ("decompose", &T_DECOMPOSE),
        ("align", &T_ALIGN),
        ("merge", &T_MERGE),
    ] {
        eprintln!("  phase {name:>9}: {:.3}s", c.swap(0, Ordering::Relaxed) as f64 / 1e9);
    }
}

/// A subproblem: `n` local atoms (`0..n`) and restricted columns (sorted
/// atom lists, each with ≥ 2 atoms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubProblem {
    /// Local atom count.
    pub n: usize,
    /// Columns over local atoms.
    pub cols: Vec<Vec<u32>>,
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Subproblems with at most this many atoms are handed to the
    /// Booth–Lueker baseline (`c1p-pqtree`), as the paper's Section 5
    /// suggests for small `p_i`. `0` disables the shortcut — the pure
    /// paper algorithm recurses to `|A| ≤ 2`.
    pub pq_base_threshold: usize,
    /// Verify every intermediate realization (O(p log n) extra work);
    /// always on in debug builds.
    pub paranoid: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config { pq_base_threshold: 0, paranoid: cfg!(debug_assertions) }
    }
}

impl Config {
    /// The practical profile: PQ-tree base case at the paper's `p_i ≲ log n`
    /// granularity (we cut on atom count instead; see EXPERIMENTS.md E10).
    pub fn fast() -> Self {
        Config { pq_base_threshold: 32, paranoid: false }
    }
}

/// Decides C1P for `ens`; returns a verified witness order of the atoms.
pub fn solve(ens: &Ensemble) -> Option<Vec<Atom>> {
    solve_with(ens, &Config::default()).0
}

/// [`solve`] with explicit configuration; also returns run statistics.
pub fn solve_with(ens: &Ensemble, cfg: &Config) -> (Option<Vec<Atom>>, SolveStats) {
    let mut stats = SolveStats::default();
    let mut order: Vec<Atom> = Vec::with_capacity(ens.n_atoms());
    // Solve each connected component independently and concatenate
    // (isolated atoms ride along as singleton components).
    for (atoms, col_ids) in ens.components() {
        let sub = build_sub(&atoms, col_ids.iter().map(|&ci| ens.column(ci as usize)));
        match realize(&sub, cfg, &mut stats, 0) {
            Ok(local) => order.extend(local.iter().map(|&i| atoms[i as usize])),
            Err(NotC1p) => return (None, stats),
        }
    }
    // The witness is always validated: soundness does not depend on any
    // solver internals.
    verify_linear(ens, &order).expect("internal error: produced order failed verification");
    (Some(order), stats)
}

/// Re-indexes global columns onto a local atom set.
fn build_sub<'a>(atoms: &[Atom], cols: impl Iterator<Item = &'a [Atom]>) -> SubProblem {
    let max = atoms.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut place = vec![u32::MAX; max];
    for (i, &a) in atoms.iter().enumerate() {
        place[a as usize] = i as u32;
    }
    let mut out = Vec::new();
    for col in cols {
        let mut local: Vec<u32> = col
            .iter()
            .filter_map(|&a| {
                let p = place[a as usize];
                (p != u32::MAX).then_some(p)
            })
            .collect();
        if local.len() >= 2 {
            local.sort_unstable();
            out.push(local);
        }
    }
    SubProblem { n: atoms.len(), cols: out }
}

/// The recursive Path-Realization procedure. Returns an order of the local
/// atoms realizing all columns.
pub(crate) fn realize(
    sub: &SubProblem,
    cfg: &Config,
    stats: &mut SolveStats,
    depth: usize,
) -> Result<Vec<u32>, NotC1p> {
    stats.subproblems += 1;
    stats.max_depth = stats.max_depth.max(depth);
    let k = sub.n;
    // Step 0
    if k <= 2 {
        stats.base_cases += 1;
        return Ok((0..k as u32).collect());
    }
    if cfg.pq_base_threshold > 0 && k <= cfg.pq_base_threshold {
        stats.pq_base_cases += 1;
        return c1p_pqtree::solve(k, &sub.cols).ok_or(NotC1p);
    }
    // Step 2: the divide
    if let Some(ci) = phase!(T_PARTITION, proper_column(sub)) {
        stats.case1 += 1;
        let a1 = sub.cols[ci].clone();
        split_and_merge(sub, &a1, MergeMode::Linear, cfg, stats, depth)
    } else {
        stats.case2 += 1;
        let t = phase!(T_PARTITION, tucker_transform(sub));
        let cyclic = match phase!(T_PARTITION, grow_segment(&t)) {
            Growth::Segment(a1) => split_and_merge(&t, &a1, MergeMode::Cyclic, cfg, stats, depth)?,
            Growth::Components(comps) => {
                // trivially decomposes: concatenate independent solutions
                let mut order = Vec::with_capacity(t.n);
                for (atoms, col_ids) in comps {
                    let csub = SubProblem {
                        n: atoms.len(),
                        cols: col_ids
                            .iter()
                            .map(|&ci| {
                                let col = &t.cols[ci as usize];
                                let mut local: Vec<u32> = col
                                    .iter()
                                    .map(|&a| {
                                        atoms.binary_search(&a).expect("column atom in comp")
                                            as u32
                                    })
                                    .collect();
                                local.sort_unstable();
                                local
                            })
                            .collect(),
                    };
                    let local = realize(&csub, cfg, stats, depth + 1)?;
                    order.extend(local.iter().map(|&i| atoms[i as usize]));
                }
                order
            }
        };
        // cut the cycle at r = k (paper Step 7 Case 2)
        let order = cut_at_r(&cyclic, k);
        if cfg.paranoid {
            debug_verify(sub, &order);
        }
        Ok(order)
    }
}

/// Shared Case-1/Case-2 body: split on `a1`, recurse, align, merge.
fn split_and_merge(
    sub: &SubProblem,
    a1: &[u32],
    mode: MergeMode,
    cfg: &Config,
    stats: &mut SolveStats,
    depth: usize,
) -> Result<Vec<u32>, NotC1p> {
    let data = phase!(T_RECURSE_PREP, prepare_split(sub, a1));
    let order1 = realize(&data.sub1, cfg, stats, depth + 1)?;
    let order2 = realize(&data.sub2, cfg, stats, depth + 1)?;
    combine(&data, &order1, &order2, mode, stats)
}

/// Everything the combine step needs, precomputed before recursion
/// (shared between the sequential and the parallel drivers).
pub(crate) struct SplitData {
    /// Segment atoms (subproblem-local, sorted).
    pub a1: Vec<u32>,
    /// Host atoms.
    pub a2: Vec<u32>,
    /// Per-column split + crossing type.
    pub split_cols: Vec<SplitColumn>,
    /// Segment subproblem.
    pub sub1: SubProblem,
    /// Host subproblem.
    pub sub2: SubProblem,
}

/// The divide: split columns across `{A1, A2}` and classify (Step 2 +
/// Step 4's type identification).
pub(crate) fn prepare_split(sub: &SubProblem, a1: &[u32]) -> SplitData {
    let k = sub.n;
    let mut in_a1 = vec![false; k];
    for &a in a1 {
        in_a1[a as usize] = true;
    }
    let a2: Vec<u32> = (0..k as u32).filter(|&a| !in_a1[a as usize]).collect();
    debug_assert!(!a1.is_empty() && !a2.is_empty(), "partition must be proper");
    let mut split_cols: Vec<SplitColumn> = Vec::with_capacity(sub.cols.len());
    for col in &sub.cols {
        let (mut seg_part, mut host_part) = (Vec::new(), Vec::new());
        for &a in col {
            if in_a1[a as usize] {
                seg_part.push(a);
            } else {
                host_part.push(a);
            }
        }
        let ty = if host_part.is_empty() || seg_part.is_empty() {
            CrossType::C
        } else if seg_part.len() == a1.len() {
            CrossType::A
        } else {
            CrossType::B
        };
        split_cols.push(SplitColumn { seg_part, host_part, ty });
    }
    let sub1 = project(a1, &split_cols, true);
    let sub2 = project(&a2, &split_cols, false);
    SplitData { a1: a1.to_vec(), a2, split_cols, sub1, sub2 }
}

/// The combine: Steps 3–7 (decompose, align, merge). Each side's alignment
/// yields a small set of candidate re-arrangements (Section 4's switches);
/// every pair is checked by the verifying merge.
pub(crate) fn combine(
    data: &SplitData,
    order1: &[u32],
    order2: &[u32],
    mode: MergeMode,
    stats: &mut SolveStats,
) -> Result<Vec<u32>, NotC1p> {
    let seg_cands = phase!(T_ALIGN, align_one_side(&data.a1, order1, &data.split_cols, true, stats));
    let host_cands =
        phase!(T_ALIGN, align_one_side(&data.a2, order2, &data.split_cols, false, stats));
    phase!(T_MERGE, {
        let mut result = Err(NotC1p);
        'outer: for host in &host_cands {
            for seg in &seg_cands {
                if let Ok(m) = merge(seg, host, &data.split_cols, mode) {
                    result = Ok(m);
                    break 'outer;
                }
            }
        }
        result
    })
}

/// Step 7, Case 2: cut the merged cycle at the transform atom `r = k`.
pub(crate) fn cut_at_r(cyclic: &[u32], k: usize) -> Vec<u32> {
    let rpos = cyclic.iter().position(|&a| a == k as u32).expect("r on the cycle");
    let mut order = Vec::with_capacity(k);
    for i in 1..=k {
        order.push(cyclic[(rpos + i) % (k + 1)]);
    }
    order
}

/// Projects split columns onto one side as a local subproblem.
fn project(atoms: &[u32], split_cols: &[SplitColumn], seg_side: bool) -> SubProblem {
    let mut place = vec![u32::MAX; atoms.iter().map(|&a| a as usize + 1).max().unwrap_or(0)];
    for (i, &a) in atoms.iter().enumerate() {
        place[a as usize] = i as u32;
    }
    let mut cols = Vec::new();
    for sc in split_cols {
        let part = if seg_side { &sc.seg_part } else { &sc.host_part };
        if part.len() >= 2 && part.len() < atoms.len() {
            let mut local: Vec<u32> = part.iter().map(|&a| place[a as usize]).collect();
            local.sort_unstable();
            cols.push(local);
        }
    }
    SubProblem { n: atoms.len(), cols }
}

/// Steps 3–6 for one side: build the gp-realization's chords from the
/// returned order, compute the Tutte decomposition, run the alignment, and
/// compose each candidate back into an order over the side's
/// (subproblem-local) atoms.
fn align_one_side(
    atoms: &[u32],
    order: &[u32],
    split_cols: &[SplitColumn],
    seg_side: bool,
    stats: &mut SolveStats,
) -> Vec<Vec<u32>> {
    let kn = atoms.len();
    // pos[subproblem-local atom] = position in this side's order
    let mut pos = vec![u32::MAX; atoms.iter().map(|&a| a as usize + 1).max().unwrap_or(0)];
    for (i, &x) in order.iter().enumerate() {
        pos[atoms[x as usize] as usize] = i as u32;
    }
    // chords: every column restriction with ≥ 2 atoms (decomposition
    // fidelity: they pin the polygon re-linkings), plus crossing
    // restrictions of 1 atom (they must still reach the split vertex).
    let mut spans: Vec<(u32, u32)> = Vec::new();
    let mut infos: Vec<ChordInfo> = Vec::new();
    for sc in split_cols {
        let part = if seg_side { &sc.seg_part } else { &sc.host_part };
        if part.is_empty() {
            continue;
        }
        if part.len() == 1 && sc.ty == CrossType::C {
            continue;
        }
        let mut lo = u32::MAX;
        let mut hi = 0;
        for &a in part {
            let p = pos[a as usize];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        debug_assert_eq!(
            (hi - lo + 1) as usize,
            part.len(),
            "recursive order must realize the restriction"
        );
        spans.push((lo, hi + 1));
        infos.push(ChordInfo { span: (lo, hi + 1), ty: sc.ty });
    }
    let needs_alignment = infos.iter().any(|i| i.ty != CrossType::C);
    if !needs_alignment {
        // nothing constrains the junction; keep the recursive order
        return vec![order.iter().map(|&x| atoms[x as usize]).collect()];
    }
    let tree = phase!(T_DECOMPOSE, c1p_tutte::decompose(kn, &spans).expect("valid spans"));
    stats.decompositions += 1;
    stats.members += tree.n_members();
    let aligned = if seg_side { align_side1(&tree, &infos) } else { align_side2(&tree, &infos) };
    let mut out: Vec<Vec<u32>> = Vec::with_capacity(aligned.len());
    for cand in &aligned {
        let composed = cand.compose();
        // composed[i] = original order position at new position i
        let seq: Vec<u32> =
            composed.iter().map(|&p| atoms[order[p as usize] as usize]).collect();
        if !out.contains(&seq) {
            out.push(seq);
        }
    }
    out
}

/// Paranoid check: `order` realizes the subproblem.
fn debug_verify(sub: &SubProblem, order: &[u32]) {
    let mut pos = vec![u32::MAX; sub.n];
    for (i, &a) in order.iter().enumerate() {
        pos[a as usize] = i as u32;
    }
    for col in &sub.cols {
        let mut lo = u32::MAX;
        let mut hi = 0;
        for &a in col {
            lo = lo.min(pos[a as usize]);
            hi = hi.max(pos[a as usize]);
        }
        assert_eq!(
            (hi - lo + 1) as usize,
            col.len(),
            "realization invariant violated for {col:?} in {order:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::io::fig2_matrix;
    use c1p_matrix::tucker;
    use c1p_matrix::verify::brute_force_linear;

    fn ens(n: usize, cols: Vec<Vec<Atom>>) -> Ensemble {
        Ensemble::from_columns(n, cols).unwrap()
    }

    #[test]
    fn trivial_instances() {
        assert_eq!(solve(&ens(0, vec![])), Some(vec![]));
        assert_eq!(solve(&ens(1, vec![vec![0]])), Some(vec![0]));
        assert!(solve(&ens(2, vec![vec![0, 1]])).is_some());
        assert!(solve(&ens(5, vec![])).is_some());
    }

    #[test]
    fn simple_intervals() {
        let e = ens(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]]);
        let order = solve(&e).expect("C1P");
        verify_linear(&e, &order).unwrap();
    }

    #[test]
    fn rejects_cycle() {
        let e = ens(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert_eq!(solve(&e), None);
    }

    #[test]
    fn fig2_running_example() {
        let e = fig2_matrix();
        let order = solve(&e).expect("the paper's Fig. 2 matrix is C1P");
        verify_linear(&e, &order).unwrap();
    }

    #[test]
    fn rejects_all_tucker() {
        for (name, e) in tucker::small_obstructions() {
            assert_eq!(solve(&e), None, "{name} must be rejected");
        }
    }

    #[test]
    fn agrees_with_brute_force_small() {
        // exhaustive 4-atom, 2-column instances
        for n in [3usize, 4] {
            let masks = 1usize << n;
            for c1 in 0..masks {
                for c2 in 0..masks {
                    let cols: Vec<Vec<Atom>> = [c1, c2]
                        .iter()
                        .map(|&m| (0..n as Atom).filter(|&a| m >> a & 1 == 1).collect())
                        .collect();
                    let e = ens(n, cols);
                    let got = solve(&e).is_some();
                    let expect = brute_force_linear(&e).is_some();
                    assert_eq!(got, expect, "mismatch on {:?}", e.to_matrix());
                }
            }
        }
    }
}

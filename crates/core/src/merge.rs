//! Merging aligned realizations (paper Step 7, Theorems 3–6).
//!
//! After alignment, the host realization is split at a *split vertex* `w`
//! and the segment realization is inserted (GAP; Theorem 3), or the cycle
//! is cut at `w` (GAC; Theorem 5). The feasible `w` are pinned down exactly
//! as the paper says ("one can be found, if one exists, by computing the
//! common intersection of all the crossing columns … using a prefix scan"):
//!
//! * every type-b column's host span must *end* at `w`;
//! * every type-a column's host span must contain or touch `w`;
//! * no type-c column's host span may strictly contain `w`.
//!
//! With type-b chords present there are at most two candidate vertices;
//! each candidate (× the two segment orientations — GAP condition (3))
//! is verified against **all** columns of the subproblem in `O(p)`, so the
//! merge is sound by construction.

use crate::align::CrossType;
use crate::flat::{with_scratch, SplitCols};
use crate::{NotC1p, RejectSite};

/// Linear (GAP) or cyclic (GAC) merge semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// Theorem 3: insert the segment into the host path at `w`.
    Linear,
    /// Theorem 5: cut the host cycle at `w` and splice the segment in.
    Cyclic,
}

/// Merges `seg` into `host` at a feasible split vertex. `seg` and `host`
/// are sequences of subproblem-local atoms. Strictly sequential; the
/// parallel driver reaches the chunk-parallel span scan through the
/// crate-private `merge_with`.
///
/// Correctness layering: the candidate filter guarantees the type-a
/// (containment) and type-c (non-interior) conditions; the per-candidate
/// check below enforces the type-b conditions (GAP (1)/(3): the segment
/// part must sit at the junction-facing end). Debug builds re-verify every
/// column of the merged order, and the top-level solver always validates
/// its final witness, so release-mode trust is bounded.
pub fn merge(
    seg: &[u32],
    host: &[u32],
    columns: &SplitCols,
    mode: MergeMode,
) -> Result<Vec<u32>, NotC1p> {
    merge_with(seg, host, columns, mode, false)
}

/// [`merge`] with scheduling control: `par` permits the span scan to
/// fork onto the current pool (set only by the parallel driver — the
/// sequential solver must never spawn onto the global pool behind the
/// caller's back).
pub(crate) fn merge_with(
    seg: &[u32],
    host: &[u32],
    columns: &SplitCols,
    mode: MergeMode,
    par: bool,
) -> Result<Vec<u32>, NotC1p> {
    let n = seg.len() + host.len();
    with_scratch(n, |s| {
        // host positions in s.pos, segment positions in s.place; the
        // classification/candidate buffers ride along from the same pool
        let crate::flat::Scratch { pos, place, type_b, type_a, type_c, cand, forbidden, .. } = s;
        for (i, &a) in host.iter().enumerate() {
            pos[a as usize] = i as u32;
        }
        for (i, &a) in seg.iter().enumerate() {
            place[a as usize] = i as u32;
        }
        let bufs = MergeBufs { type_b, type_a, type_c, cand, forbidden };
        let out = merge_inner(seg, host, columns, mode, pos, place, bufs, par);
        for &a in host {
            pos[a as usize] = u32::MAX;
        }
        for &a in seg {
            place[a as usize] = u32::MAX;
        }
        out
    })
}

/// Pooled working vectors for one merge attempt (all cleared at use).
struct MergeBufs<'a> {
    type_b: &'a mut Vec<(usize, u32, u32)>,
    type_a: &'a mut Vec<(u32, u32)>,
    type_c: &'a mut Vec<(u32, u32)>,
    cand: &'a mut Vec<u32>,
    forbidden: &'a mut Vec<(u32, u32)>,
}

/// `(lo, hi+1)` span of `atoms` under `pos` (must be contiguous —
/// guaranteed because each side's order realizes its restrictions;
/// enforced with a debug assertion). `None` for empty.
fn span_of(pos: &[u32], atoms: &[u32]) -> Option<(u32, u32)> {
    if atoms.is_empty() {
        return None;
    }
    let mut lo = u32::MAX;
    let mut hi = 0;
    for &a in atoms {
        let p = pos[a as usize];
        debug_assert_ne!(p, u32::MAX, "atom must be on the host side");
        lo = lo.min(p);
        hi = hi.max(p);
    }
    debug_assert_eq!(
        (hi - lo + 1) as usize,
        atoms.len(),
        "side realization must keep restrictions contiguous"
    );
    Some((lo, hi + 1))
}

#[allow(clippy::too_many_arguments)]
fn merge_inner(
    seg: &[u32],
    host: &[u32],
    columns: &SplitCols,
    mode: MergeMode,
    host_pos: &[u32],
    seg_pos: &[u32],
    bufs: MergeBufs<'_>,
    par: bool,
) -> Result<Vec<u32>, NotC1p> {
    let hn = host.len();
    let MergeBufs { type_b, type_a: type_a_spans, type_c: type_c_spans, cand, forbidden } = bufs;
    classify_spans_into(columns, host_pos, par, type_b, type_a_spans, type_c_spans);
    let (type_b, type_a_spans, type_c_spans) = (&*type_b, &*type_a_spans, &*type_c_spans);
    // On the cycle, split vertices 0 and hn coincide (the glue point).
    let alt = |w: u32| -> Option<u32> {
        match mode {
            MergeMode::Linear => None,
            MergeMode::Cyclic if w == 0 => Some(hn as u32),
            MergeMode::Cyclic if w == hn as u32 => Some(0),
            MergeMode::Cyclic => None,
        }
    };
    let touches =
        |w: u32, x: u32, y: u32| w == x || w == y || alt(w).is_some_and(|a| a == x || a == y);
    // Candidate split vertices.
    let candidates = cand;
    candidates.clear();
    if let Some(&(_, x0, y0)) = type_b.first() {
        let seeds = [Some(x0), Some(y0), alt(x0), alt(y0)];
        for w in seeds.into_iter().flatten() {
            if type_b.iter().all(|&(_, x, y)| touches(w, x, y)) && !candidates.contains(&w) {
                candidates.push(w);
            }
        }
    } else {
        // no type-b: w must lie in the intersection of the type-a spans and
        // outside every type-c interior; find the extremes of that set.
        let lo_bound = type_a_spans.iter().map(|&(x, _)| x).max().unwrap_or(0);
        let hi_bound = type_a_spans.iter().map(|&(_, y)| y).min().unwrap_or(hn as u32);
        if lo_bound <= hi_bound {
            // merge forbidden open intervals and scan for the first/last gap
            forbidden.clear();
            forbidden.extend(
                type_c_spans.iter().filter(|&&(x, y)| x + 1 < y).map(|&(x, y)| (x + 1, y - 1)), // closed forbidden vertex range
            );
            forbidden.sort_unstable();
            let mut w = lo_bound;
            for &(fx, fy) in forbidden.iter() {
                if fx <= w && w <= fy {
                    w = fy + 1;
                }
            }
            if w <= hi_bound {
                candidates.push(w);
            }
            let mut w = hi_bound;
            for &(fx, fy) in forbidden.iter().rev() {
                if fx <= w && w <= fy {
                    w = fx.saturating_sub(1); // fx ≥ 1 by construction
                }
            }
            if w >= lo_bound && !candidates.contains(&w) {
                candidates.push(w);
            }
        }
    }
    // filter candidates against the remaining constraints
    candidates.retain(|&w| {
        type_a_spans.iter().all(|&(x, y)| (x <= w && w <= y) || touches(w, x, y))
            && type_c_spans.iter().all(|&(x, y)| !(x < w && w < y))
    });
    if mode == MergeMode::Cyclic && candidates.contains(&0) {
        candidates.retain(|&w| w != hn as u32);
    }
    let sn = seg.len() as u32;
    for &w in candidates.iter() {
        'orient: for rev in [false, true] {
            // GAP conditions (1)/(3): each type-b column's segment part
            // must occupy the end of the segment facing its host part.
            for &(ci, x, y) in type_b.iter() {
                let part = columns.seg(ci);
                let mut lo = u32::MAX;
                let mut hi = 0;
                for &a in part {
                    let p = seg_pos[a as usize];
                    let p = if rev { sn - 1 - p } else { p };
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
                if (hi - lo + 1) as usize != part.len() {
                    continue 'orient; // segment part not contiguous this way
                }
                // host part left of the junction (ends at w) → prefix;
                // right of it (starts at w) → suffix.
                let want_prefix = y == w || (mode == MergeMode::Cyclic && y == hn as u32 && w == 0);
                let want_suffix = x == w || (mode == MergeMode::Cyclic && x == 0 && w == hn as u32);
                let ok = (want_prefix && lo == 0) || (want_suffix && hi == sn - 1);
                if !ok {
                    continue 'orient;
                }
            }
            let mut merged = Vec::with_capacity(seg.len() + hn);
            merged.extend_from_slice(&host[..w as usize]);
            if rev {
                merged.extend(seg.iter().rev());
            } else {
                merged.extend_from_slice(seg);
            }
            merged.extend_from_slice(&host[w as usize..]);
            debug_assert!(
                verify_merged(&merged, columns, mode),
                "candidate checks must imply full merged validity"
            );
            return Ok(merged);
        }
    }
    if std::env::var_os("C1P_TRACE").is_some() {
        eprintln!("merge failed ({mode:?}): seg={seg:?} host={host:?}");
        eprintln!("  candidates={candidates:?}");
        eprintln!("  type_b={type_b:?} type_a={type_a_spans:?} type_c={type_c_spans:?}");
    }
    Err(NotC1p::at(RejectSite::Merge))
}

/// Entry weight above which the span scan forks (the scan is `O(p)`;
/// below this the fork overhead outweighs the chunked walk).
const PAR_SPAN_MIN_ENTRIES: usize = 1 << 14;

type SpanClasses = (Vec<(usize, u32, u32)>, Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Computes host spans per crossing/type-c column into the pooled output
/// vectors (cleared first) — the paper's "common intersection of all the
/// crossing columns" prefix scan. Heavy merges (top of the recursion)
/// walk the columns chunk-parallel when `par` permits it (parallel
/// driver only): halves classify independently, then concatenate in
/// column order, so the result is bit-identical to the sequential scan.
fn classify_spans_into(
    columns: &SplitCols,
    host_pos: &[u32],
    par: bool,
    type_b: &mut Vec<(usize, u32, u32)>,
    type_a: &mut Vec<(u32, u32)>,
    type_c: &mut Vec<(u32, u32)>,
) {
    fn go(
        columns: &SplitCols,
        host_pos: &[u32],
        range: std::ops::Range<usize>,
        par: bool,
        out: &mut SpanClasses,
    ) {
        // the O(range) weight sum only runs once forking is even on the
        // table (never for the sequential solver's merges)
        if par
            && range.len() > 1
            && rayon::current_num_threads() > 1
            && range.clone().map(|ci| columns.host(ci).len()).sum::<usize>() >= PAR_SPAN_MIN_ENTRIES
        {
            let mid = range.start + range.len() / 2;
            let (left, right) = rayon::join(
                || {
                    let mut l = SpanClasses::default();
                    go(columns, host_pos, range.start..mid, par, &mut l);
                    l
                },
                || {
                    let mut r = SpanClasses::default();
                    go(columns, host_pos, mid..range.end, par, &mut r);
                    r
                },
            );
            out.0.extend(left.0);
            out.1.extend(left.1);
            out.2.extend(left.2);
            out.0.extend(right.0);
            out.1.extend(right.1);
            out.2.extend(right.2);
            return;
        }
        for ci in range {
            let host_part = columns.host(ci);
            let Some((x, y)) = span_of(host_pos, host_part) else { continue };
            match columns.ty(ci) {
                CrossType::B => out.0.push((ci, x, y)),
                CrossType::A => out.1.push((x, y)),
                CrossType::C => {
                    if host_part.len() >= 2 {
                        out.2.push((x, y));
                    }
                }
            }
        }
    }
    type_b.clear();
    type_a.clear();
    type_c.clear();
    if par {
        let mut out = SpanClasses::default();
        go(columns, host_pos, 0..columns.len(), par, &mut out);
        type_b.extend(out.0);
        type_a.extend(out.1);
        type_c.extend(out.2);
    } else {
        let mut out = (std::mem::take(type_b), std::mem::take(type_a), std::mem::take(type_c));
        go(columns, host_pos, 0..columns.len(), par, &mut out);
        (*type_b, *type_a, *type_c) = out;
    }
}

/// Checks contiguity (linear or cyclic) of every column in the merged
/// order.
fn verify_merged(merged: &[u32], columns: &SplitCols, mode: MergeMode) -> bool {
    let n = merged.len();
    let mut pos = vec![u32::MAX; n];
    for (i, &a) in merged.iter().enumerate() {
        pos[a as usize] = i as u32;
    }
    let mut in_col = vec![false; n];
    for ci in 0..columns.len() {
        let seg_part = columns.seg(ci);
        let host_part = columns.host(ci);
        let len = seg_part.len() + host_part.len();
        if len <= 1 {
            continue;
        }
        match mode {
            MergeMode::Linear => {
                let mut lo = u32::MAX;
                let mut hi = 0;
                for &a in seg_part.iter().chain(host_part) {
                    let p = pos[a as usize];
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
                if (hi - lo + 1) as usize != len {
                    return false;
                }
            }
            MergeMode::Cyclic => {
                if len >= n - 1 {
                    continue; // always an arc
                }
                for &a in seg_part.iter().chain(host_part) {
                    in_col[pos[a as usize] as usize] = true;
                }
                let mut runs = 0;
                for i in 0..n {
                    if in_col[i] && !in_col[(i + n - 1) % n] {
                        runs += 1;
                    }
                }
                for &a in seg_part.iter().chain(host_part) {
                    in_col[pos[a as usize] as usize] = false;
                }
                if runs != 1 {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a [`SplitCols`] from explicit per-column (seg, host, ty)
    /// triples — test scaffolding for the CSR representation.
    fn split_cols(cols: &[(&[u32], &[u32], CrossType)]) -> SplitCols {
        let mut out = SplitCols::with_capacity(cols.len(), 0);
        for &(seg, host, ty) in cols {
            out.parts.extend_building(seg);
            out.parts.extend_building(host);
            out.finish_parts_col(seg.len(), ty);
        }
        out
    }

    #[test]
    fn plain_insert_no_crossing() {
        // host 0,1; seg 2,3; no constraints → w = 0 works
        let merged = merge(&[2, 3], &[0, 1], &split_cols(&[]), MergeMode::Linear).unwrap();
        assert_eq!(merged.len(), 4);
    }

    fn contiguous(merged: &[u32], atoms: &[u32]) -> bool {
        let p: Vec<usize> =
            atoms.iter().map(|&a| merged.iter().position(|&x| x == a).unwrap()).collect();
        let (lo, hi) = (*p.iter().min().unwrap(), *p.iter().max().unwrap());
        hi - lo + 1 == atoms.len()
    }

    #[test]
    fn type_b_pins_the_split() {
        // host = [0,1,2]; seg = [3,4]; column {2,3} must come out contiguous
        let cols = split_cols(&[(&[3], &[2], CrossType::B), (&[3, 4], &[], CrossType::C)]);
        let merged = merge(&[3, 4], &[0, 1, 2], &cols, MergeMode::Linear).unwrap();
        assert!(contiguous(&merged, &[2, 3]), "{merged:?}");
        assert!(contiguous(&merged, &[3, 4]), "{merged:?}");
    }

    #[test]
    fn type_b_with_reversal() {
        // column {4, 0}: seg's 4-end must touch the host's 0-end
        let cols = split_cols(&[(&[4], &[0], CrossType::B)]);
        let merged = merge(&[3, 4], &[0, 1, 2], &cols, MergeMode::Linear).unwrap();
        assert!(contiguous(&merged, &[0, 4]), "{merged:?}");
    }

    #[test]
    fn conflicting_type_b_fails() {
        // {3}-{0} wants w=0; {4}-{2} wants w=3; seg has only two ends but
        // both want opposite... actually both can work via orientation;
        // make it impossible: both seg parts share atom 3.
        let cols = split_cols(&[(&[3], &[0], CrossType::B), (&[3], &[2], CrossType::B)]);
        assert!(merge(&[3, 4], &[0, 1, 2], &cols, MergeMode::Linear).is_err());
    }

    #[test]
    fn type_a_needs_containment() {
        // type-a column = all of seg + host atom 1 (middle): w must be 1 or 2
        let cols = split_cols(&[(&[3, 4], &[1], CrossType::A)]);
        let merged = merge(&[3, 4], &[0, 1, 2], &cols, MergeMode::Linear).unwrap();
        let pos1 = merged.iter().position(|&a| a == 1).unwrap();
        let pos3 = merged.iter().position(|&a| a == 3).unwrap();
        let pos4 = merged.iter().position(|&a| a == 4).unwrap();
        let lo = pos1.min(pos3).min(pos4);
        let hi = pos1.max(pos3).max(pos4);
        assert_eq!(hi - lo, 2, "type-a column contiguous in {merged:?}");
    }

    #[test]
    fn type_c_blocks_interior() {
        // host column {0,1,2} entirely: w must be 0 or 3
        let cols = split_cols(&[(&[], &[0, 1, 2], CrossType::C)]);
        let merged = merge(&[3, 4], &[0, 1, 2], &cols, MergeMode::Linear).unwrap();
        let p: Vec<usize> =
            [0u32, 1, 2].iter().map(|&a| merged.iter().position(|&x| x == a).unwrap()).collect();
        let (lo, hi) = (*p.iter().min().unwrap(), *p.iter().max().unwrap());
        assert_eq!(hi - lo, 2);
    }

    #[test]
    fn cyclic_wraparound_merge() {
        // cyclic: column {4, 0} with host [0,1,2], seg [3,4]: an arc may wrap
        let cols = split_cols(&[(&[4], &[0], CrossType::B)]);
        let merged = merge(&[3, 4], &[0, 1, 2], &cols, MergeMode::Cyclic).unwrap();
        // contiguity holds cyclically
        assert!(verify_merged(&merged, &cols, MergeMode::Cyclic));
    }
}

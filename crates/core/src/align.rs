//! Computing the Whitney switches (paper Section 4).
//!
//! The recursion hands back two realizations; before merging they must be
//! re-arranged within their 2-isomorphism classes so the GAP/GAC conditions
//! hold. All available switches are exposed by the Tutte decomposition
//! (Theorem 2): polygons may permute their edges freely, rigid members only
//! reflect, markers only re-orient. The case algorithms of Section 4.1
//! *funnel* a chord's attachment along a decomposition-tree chain:
//!
//! * in every **polygon**, re-link the ring so the chain edge sits on the
//!   correct side of the entry edge (a Whitney re-linking — always legal);
//! * in every **rigid** member, the chain edge must share the required
//!   perimeter vertex with the entry edge; the only freedom is the
//!   member's reflection (a marker re-orientation). Failing both
//!   orientations is the paper's "halt: not path-graphic";
//! * **bonds** are transparent (every edge touches both member vertices).
//!
//! The funnel runs **top-down** tracking the member's composition
//! direction and the *side* (left/right boundary of the member's
//! expansion) the chain must exit through — this is what makes the chains
//! of two different leaves meet head-to-head at their junction.
//!
//! `align_side1` implements Section 4.2.1 (Cases A and B: type-b chords to
//! the path ends); `align_side2` implements Section 4.2.2 (Case C: crossing
//! chords funnelled to a common split vertex, using the paper's
//! nearest-to-the-root constraining edge `g`). Both return *candidate*
//! arrangements; the merge verifies each against every column, so
//! soundness never rests on the funnel geometry.

use crate::{NotC1p, RejectSite};
use c1p_tutte::{
    minimal_subtree, Arrangement, EdgeRef, MemberId, MemberKind, MemberShape, TutteTree,
};
use std::borrow::Cow;

/// Crossing classification of a column with respect to a partition
/// `{A1, A2}` (paper Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossType {
    /// `A1 ⊆ C`, crossing: the chord spans the whole inserted segment.
    A,
    /// Crossing with a proper, nonempty part in each side.
    B,
    /// Not crossing (entirely inside one side).
    C,
}

/// A chord of one side's gp-realization: its span in that side's order
/// plus its crossing type.
#[derive(Debug, Clone, Copy)]
pub struct ChordInfo {
    /// `(lo, hi)`: the column occupies order positions `lo..hi`.
    pub span: (u32, u32),
    /// Crossing classification.
    pub ty: CrossType,
}

/// Which boundary of a member's expansion the chain must exit through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// One aligned tree + arrangement, ready to compose. The tree starts
/// borrowed from the decomposition and is only deep-cloned on the first
/// polygon re-linking (most candidates never mutate it).
pub struct Aligned<'t> {
    tree: Cow<'t, TutteTree>,
    arr: Arrangement,
}

impl Aligned<'_> {
    /// Composes into the new sequence of original order positions.
    pub fn compose(&self) -> Vec<u32> {
        c1p_tutte::compose(&self.tree, &self.arr)
    }
}

/// Section 4.2.1 — candidates satisfying GAP condition (1): every type-b
/// chord of the segment realization reaches an end vertex of the path.
pub fn align_side1<'t>(tree: &'t TutteTree, infos: &[ChordInfo]) -> Vec<Aligned<'t>> {
    let type_b: Vec<u32> = pick(infos, |t| t == CrossType::B);
    let mut out = Vec::new();
    if type_b.is_empty() {
        out.push(identity(tree));
        return out;
    }
    let marked = marked_members(tree, &type_b);
    let mt = minimal_subtree(tree, &marked);
    match mt.leaves.len() {
        1 => {
            // Case A: one nested family — funnel its chain to either path
            // end (the merge tries both segment orientations, so one side
            // suffices; we emit both for robustness).
            for side in [Side::Right, Side::Left] {
                let mut cand = identity(tree);
                if funnel_from_root(&mut cand, mt.leaves[0], &type_b, side).is_ok() {
                    out.push(cand);
                }
            }
        }
        2 => {
            // Case B: the two families to distinct path ends.
            let mut cand = identity(tree);
            if funnel_two_chains(&mut cand, mt.leaves[0], mt.leaves[1], &type_b, true).is_ok() {
                out.push(cand);
            }
        }
        _ => {} // Theorem 7: >2 nested families — no candidate survives
    }
    if out.is_empty() {
        // fall back to the unaligned tree; the merge will reject it if the
        // conditions genuinely fail
        out.push(identity(tree));
    }
    out
}

/// Section 4.2.2 — candidates satisfying GAP/GAC condition (2): crossing
/// chords funnelled to a common split vertex.
pub fn align_side2<'t>(tree: &'t TutteTree, infos: &[ChordInfo]) -> Vec<Aligned<'t>> {
    let crossing: Vec<u32> = pick(infos, |t| t != CrossType::C);
    let mut out = Vec::new();
    if crossing.is_empty() {
        out.push(identity(tree));
        return out;
    }
    let marked = marked_members(tree, &crossing);
    let mt = minimal_subtree(tree, &marked);
    match mt.leaves.len() {
        1 => {
            let leaf = mt.leaves[0];
            let path = tree.path_to_root(leaf); // leaf … root
                                                // the paper's g: nearest-to-root constraining edge on the path
            let mut g_pick = None;
            'search: for idx in (1..path.len()).rev() {
                let m = path[idx];
                let down_edge = edge_toward_child(tree, m, path[idx - 1]);
                if let Some(g) = constraining_edge(tree, m, down_edge, infos) {
                    g_pick = Some((m, g));
                    break 'search;
                }
            }
            match g_pick {
                Some((gm, g)) => {
                    for side in [Side::Right, Side::Left] {
                        let mut cand = identity(tree);
                        if funnel_to_shared(&mut cand, leaf, &crossing, gm, g, side).is_ok() {
                            out.push(cand);
                        }
                        if tree.members[gm as usize].kind() != MemberKind::Bond {
                            break; // sides only differ for bond anchors
                        }
                    }
                }
                None => {
                    // Theorem 8's "no further alignment needed" — but the
                    // chain itself must still be stacked so the nested
                    // family shares an endpoint: funnel within the family
                    // to the topmost crossing member, both sides.
                    let top = topmost_crossing(tree, &path, &crossing);
                    for side in [Side::Right, Side::Left] {
                        let mut cand = identity(tree);
                        if funnel_chain_sided(&mut cand, top, leaf, &crossing, side).is_ok() {
                            out.push(cand);
                        }
                    }
                }
            }
        }
        2 => {
            let mut cand = identity(tree);
            if funnel_two_chains(&mut cand, mt.leaves[0], mt.leaves[1], &crossing, false).is_ok() {
                out.push(cand);
            }
        }
        _ => {} // Theorem 8: >2 nested families
    }
    if out.is_empty() {
        out.push(identity(tree));
    }
    out
}

fn pick(infos: &[ChordInfo], f: impl Fn(CrossType) -> bool) -> Vec<u32> {
    infos.iter().enumerate().filter(|(_, i)| f(i.ty)).map(|(k, _)| k as u32).collect()
}

fn identity(tree: &TutteTree) -> Aligned<'_> {
    Aligned { tree: Cow::Borrowed(tree), arr: Arrangement::identity(tree) }
}

/// Where a chord *effectively* lives for alignment purposes. The paper
/// removes parallel non-path edges before decomposing (Section 4.2), so a
/// chord stored in a parallel-group bond hanging off a rigid's chord
/// position acts as a chord of the rigid itself, attached at that
/// position's marker edge.
fn effective_loc(tree: &TutteTree, c: u32) -> (MemberId, EdgeRef) {
    let m = tree.chord_member[c as usize];
    if tree.members[m as usize].kind() == MemberKind::Bond {
        if let Some((p, v)) = tree.members[m as usize].parent {
            if let MemberShape::Rigid { chords, .. } = &tree.members[p as usize].shape {
                if chords.iter().any(|&(_, _, e)| e == EdgeRef::Virt(v)) {
                    return (p, EdgeRef::Virt(v));
                }
            }
        }
    }
    (m, EdgeRef::Chord(c))
}

fn marked_members(tree: &TutteTree, chords: &[u32]) -> Vec<MemberId> {
    let mut v: Vec<MemberId> = chords.iter().map(|&c| effective_loc(tree, c).0).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// The effective chord edge of some marked chord inside member `m`.
fn chord_edge_in(tree: &TutteTree, marked: &[u32], m: MemberId) -> EdgeRef {
    marked
        .iter()
        .copied()
        .find_map(|c| {
            let (em, edge) = effective_loc(tree, c);
            (em == m).then_some(edge)
        })
        .expect("member holds a marked chord")
}

/// The topmost member on `path` (leaf…root) containing a crossing chord.
fn topmost_crossing(tree: &TutteTree, path: &[MemberId], crossing: &[u32]) -> MemberId {
    for &m in path.iter().rev() {
        if crossing.iter().any(|&c| effective_loc(tree, c).0 == m) {
            return m;
        }
    }
    path[0]
}

// ---------------------------------------------------------------------
// geometry helpers
// ---------------------------------------------------------------------

/// Where an edge attaches inside a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attach {
    /// Bond edges: both member vertices.
    Everywhere,
    /// A ring edge at index `i` (vertices `{i, i+1 mod t}`).
    Ring(u32),
    /// A rigid chord with perimeter vertices `{a, b}`.
    Chord(u32, u32),
}

impl Attach {
    fn vertices(self, ring_len: u32) -> Option<(u32, u32)> {
        match self {
            Attach::Everywhere => None,
            Attach::Ring(i) => Some((i, (i + 1) % ring_len)),
            Attach::Chord(a, b) => Some((a, b)),
        }
    }

    fn touches(self, v: u32, ring_len: u32) -> bool {
        match self.vertices(ring_len) {
            None => true,
            Some((a, b)) => a == v || b == v,
        }
    }
}

fn attach_of(tree: &TutteTree, m: MemberId, edge: EdgeRef) -> Attach {
    match &tree.members[m as usize].shape {
        MemberShape::Bond { .. } => Attach::Everywhere,
        MemberShape::Polygon { ring } => {
            let i = ring.iter().position(|&e| e == edge).expect("edge on polygon ring") as u32;
            Attach::Ring(i)
        }
        MemberShape::Rigid { ring, chords } => {
            if let Some(i) = ring.iter().position(|&e| e == edge) {
                Attach::Ring(i as u32)
            } else {
                let &(a, b, _) =
                    chords.iter().find(|&&(_, _, c)| c == edge).expect("edge on rigid");
                Attach::Chord(a, b)
            }
        }
    }
}

fn ring_len(tree: &TutteTree, m: MemberId) -> u32 {
    match &tree.members[m as usize].shape {
        MemberShape::Bond { .. } => 0,
        MemberShape::Polygon { ring } => ring.len() as u32,
        MemberShape::Rigid { ring, .. } => ring.len() as u32,
    }
}

/// The edge inside `m` leading down toward child member `c`.
fn edge_toward_child(tree: &TutteTree, m: MemberId, c: MemberId) -> EdgeRef {
    let (p, v) = tree.members[c as usize].parent.expect("child has a parent");
    debug_assert_eq!(p, m, "c must be m's direct child");
    EdgeRef::Virt(v)
}

/// The entry (parent-side) edge of `m`.
fn entry_edge(tree: &TutteTree, m: MemberId) -> EdgeRef {
    match tree.members[m as usize].parent {
        Some((_, v)) => EdgeRef::Virt(v),
        None => EdgeRef::E,
    }
}

/// The boundary vertex of member `m`'s expansion (entered at `entry` with
/// direction `dir`) on the given side. Only meaningful for ring members.
fn boundary_vertex(tree: &TutteTree, m: MemberId, entry: EdgeRef, dir: bool, side: Side) -> u32 {
    let t = ring_len(tree, m);
    let Attach::Ring(i) = attach_of(tree, m, entry) else {
        panic!("entry must be a ring edge");
    };
    // dir = false: expansion walks successors of entry: left boundary is
    // vertex i+1, right boundary vertex i. dir = true mirrors.
    match (side, dir) {
        (Side::Right, false) | (Side::Left, true) => i,
        (Side::Left, false) | (Side::Right, true) => (i + 1) % t,
    }
}

/// Re-links a polygon so `mover` becomes the ring predecessor (`before ==
/// true`) or successor of `anchor`.
fn polygon_place(tree: &mut TutteTree, m: MemberId, anchor: EdgeRef, mover: EdgeRef, before: bool) {
    if anchor == mover {
        return;
    }
    let MemberShape::Polygon { ring } = &mut tree.members[m as usize].shape else {
        panic!("polygon expected");
    };
    let mi = ring.iter().position(|&e| e == mover).expect("mover on ring");
    ring.remove(mi);
    let ai = ring.iter().position(|&e| e == anchor).expect("anchor on ring");
    if before {
        ring.insert(ai, mover);
    } else {
        ring.insert(ai + 1, mover);
    }
}

// ---------------------------------------------------------------------
// the oriented funnel
// ---------------------------------------------------------------------

/// Walks one chain downward from `top` (which must be an ancestor-or-self
/// of `leaf`), arranging every member so the chain exits through the
/// required boundary. `side` is the requirement at `top`'s expansion; the
/// leaf chord is any marked chord in `leaf`.
///
/// `dir_at_top` is `top`'s composition direction under the current
/// arrangement.
fn funnel_chain(
    cand: &mut Aligned<'_>,
    top: MemberId,
    dir_at_top: bool,
    mut side: Side,
    leaf: MemberId,
    marked: &[u32],
) -> Result<(), NotC1p> {
    // materialize the chain top → leaf
    let mut chain: Vec<MemberId> = Vec::new();
    {
        let mut cur = leaf;
        loop {
            chain.push(cur);
            if cur == top {
                break;
            }
            cur = cand.tree.members[cur as usize].parent.expect("top is an ancestor").0;
        }
        chain.reverse();
    }
    let mut dir = dir_at_top;
    for w in 0..chain.len() {
        let m = chain[w];
        let entry = entry_edge(&cand.tree, m);
        let down: EdgeRef = if w + 1 < chain.len() {
            edge_toward_child(&cand.tree, m, chain[w + 1])
        } else {
            // the leaf: any marked chord effectively here
            chord_edge_in(&cand.tree, marked, m)
        };
        match cand.tree.members[m as usize].kind() {
            MemberKind::Bond => {
                // transparent; the next member keeps direction and side
            }
            MemberKind::Polygon => {
                // place down on the required side of entry
                let before = (side == Side::Right) != dir;
                polygon_place(cand.tree.to_mut(), m, entry, down, before);
                // side and dir propagate unchanged into the child
            }
            MemberKind::Rigid => {
                let t = ring_len(&cand.tree, m);
                let at_down = attach_of(&cand.tree, m, down);
                let mut req = boundary_vertex(&cand.tree, m, entry, dir, side);
                if !at_down.touches(req, t) {
                    // reflect the member by re-orienting its entry marker
                    flip_entry(cand, m, &mut dir);
                    req = boundary_vertex(&cand.tree, m, entry, dir, side);
                    if !at_down.touches(req, t) {
                        return Err(NotC1p::at(RejectSite::Align));
                    }
                }
                // descend: which side of the child's expansion is `req`?
                if w + 1 < chain.len() || matches!(down, EdgeRef::Virt(_)) {
                    if let Attach::Ring(j) = at_down {
                        let right_vertex = (j + 1) % t;
                        side = if (req == right_vertex) != dir { Side::Right } else { Side::Left };
                    }
                    // chord-position virt (group bond below): side-agnostic
                }
            }
        }
    }
    Ok(())
}

/// Toggles the reflection of member `m` (its entry marker's orientation, or
/// the global direction at the root), updating `dir` in place.
fn flip_entry(cand: &mut Aligned<'_>, m: MemberId, dir: &mut bool) {
    match cand.tree.members[m as usize].parent {
        Some((_, v)) => cand.arr.virt_flip[v as usize] = !cand.arr.virt_flip[v as usize],
        None => cand.arr.root_flip = !cand.arr.root_flip,
    }
    *dir = !*dir;
}

/// Case A driver: funnel `leaf`'s chain so it exits the whole realization
/// at the `side` path end.
fn funnel_from_root(
    cand: &mut Aligned<'_>,
    leaf: MemberId,
    marked: &[u32],
    side: Side,
) -> Result<(), NotC1p> {
    let root = cand.tree.root;
    funnel_chain(cand, root, cand.arr.root_flip, side, leaf, marked)
}

/// Side-2's Case C with a constraining edge `g` in ancestor `gm`: the
/// chain from `leaf` must share a vertex with `g` inside `gm`.
fn funnel_to_shared(
    cand: &mut Aligned<'_>,
    leaf: MemberId,
    marked: &[u32],
    gm: MemberId,
    g: EdgeRef,
    bond_side: Side,
) -> Result<(), NotC1p> {
    let dir_gm = dir_of(cand, gm);
    match cand.tree.members[gm as usize].kind() {
        MemberKind::Bond => {
            // g touches both bond vertices; the caller tries both sides.
            if gm == leaf {
                return Ok(());
            }
            let next = child_on_path(&cand.tree, gm, leaf);
            funnel_chain(cand, next, dir_gm, bond_side, leaf, marked)
        }
        MemberKind::Polygon => unreachable!("constraining edges live in bonds/rigids"),
        MemberKind::Rigid => {
            let t = ring_len(&cand.tree, gm);
            if gm == leaf {
                // both chords fixed in the same rigid: nothing to arrange
                return Ok(());
            }
            let down = edge_toward_child(&cand.tree, gm, child_on_path(&cand.tree, gm, leaf));
            let at_down = attach_of(&cand.tree, gm, down);
            let at_g = attach_of(&cand.tree, gm, g);
            // shared vertex of the chain edge and g
            let (da, db) = at_down.vertices(t).expect("rigid edges have vertices");
            let s = if at_g.touches(da, t) {
                da
            } else if at_g.touches(db, t) {
                db
            } else {
                return Err(NotC1p::at(RejectSite::Align));
            };
            // descend with the side implied by s on the down edge
            let side = match at_down {
                Attach::Ring(j) => {
                    let right_vertex = (j + 1) % t;
                    if (s == right_vertex) != dir_gm {
                        Side::Right
                    } else {
                        Side::Left
                    }
                }
                _ => Side::Right, // chord-position virt: group bond below (leaf)
            };
            let next = child_on_path(&cand.tree, gm, leaf);
            funnel_chain(cand, next, dir_gm, side, leaf, marked)
        }
    }
}

/// Funnel within a single nested family: stack the chain between the
/// topmost crossing member and the leaf so all endpoints meet (`side`
/// picks which end of the top member's expansion they meet at).
fn funnel_chain_sided(
    cand: &mut Aligned<'_>,
    top: MemberId,
    leaf: MemberId,
    marked: &[u32],
    side: Side,
) -> Result<(), NotC1p> {
    let dir = dir_of(cand, top);
    if top == leaf {
        return Ok(()); // single member: structure is fixed; the scan decides
    }
    // the top member holds crossing chords; treat the topmost one as the
    // anchor g
    let g = marked.iter().copied().find_map(|c| {
        let (em, edge) = effective_loc(&cand.tree, c);
        (em == top).then_some(edge)
    });
    match g {
        Some(g) => funnel_to_shared(cand, leaf, marked, top, g, side),
        None => {
            let next = child_on_path(&cand.tree, top, leaf);
            funnel_chain(cand, next, dir, side, leaf, marked)
        }
    }
}

/// Two chains meeting: either at distinct path ends (`to_ends == true`,
/// side-1 Case B) or head-to-head at their LCA (side-2 two families).
fn funnel_two_chains(
    cand: &mut Aligned<'_>,
    leaf1: MemberId,
    leaf2: MemberId,
    marked: &[u32],
    to_ends: bool,
) -> Result<(), NotC1p> {
    let lca = lowest_common(&cand.tree, leaf1, leaf2);
    let root = cand.tree.root;
    if to_ends {
        // members strictly above the LCA must be bonds (both path endpoints
        // ride the same marker), and e must be parallel to the chain
        let mut cur = lca;
        while cur != root {
            let (p, _) = cand.tree.members[cur as usize].parent.unwrap();
            if cand.tree.members[p as usize].kind() != MemberKind::Bond {
                return Err(NotC1p::at(RejectSite::Align));
            }
            cur = p;
        }
    }
    let x1 = down_or_chord(&cand.tree, lca, leaf1, marked);
    let x2 = down_or_chord(&cand.tree, lca, leaf2, marked);
    // arrange the LCA and derive each branch's exit side
    let t = ring_len(&cand.tree, lca);
    let mut dir = dir_of(cand, lca);
    let side_of = |at: Attach, junction: u32, dir: bool| -> Side {
        match at {
            Attach::Ring(j) => {
                if (junction == (j + 1) % t) != dir {
                    Side::Right
                } else {
                    Side::Left
                }
            }
            _ => Side::Right, // chord attachments are side-agnostic
        }
    };
    let (side1, side2) = match cand.tree.members[lca as usize].kind() {
        MemberKind::Bond => (Side::Right, Side::Left), // every edge touches both vertices
        MemberKind::Polygon => {
            let entry = entry_edge(&cand.tree, lca);
            if to_ends {
                // x1 at the left end, x2 at the right end of the expansion
                polygon_place(cand.tree.to_mut(), lca, entry, x1, dir);
                polygon_place(cand.tree.to_mut(), lca, entry, x2, !dir);
                (Side::Left, Side::Right)
            } else {
                // head-to-head: x2 directly after x1; junction between them
                polygon_place(cand.tree.to_mut(), lca, x1, x2, dir);
                (Side::Right, Side::Left)
            }
        }
        MemberKind::Rigid => {
            let a1 = attach_of(&cand.tree, lca, x1);
            let a2 = attach_of(&cand.tree, lca, x2);
            if to_ends {
                let entry = entry_edge(&cand.tree, lca);
                let mut lv = boundary_vertex(&cand.tree, lca, entry, dir, Side::Left);
                let mut rv = boundary_vertex(&cand.tree, lca, entry, dir, Side::Right);
                if !(a1.touches(lv, t) && a2.touches(rv, t)) {
                    flip_entry(cand, lca, &mut dir);
                    lv = boundary_vertex(&cand.tree, lca, entry, dir, Side::Left);
                    rv = boundary_vertex(&cand.tree, lca, entry, dir, Side::Right);
                    if !(a1.touches(lv, t) && a2.touches(rv, t)) {
                        return Err(NotC1p::at(RejectSite::Align));
                    }
                }
                (side_of(a1, lv, dir), side_of(a2, rv, dir))
            } else {
                // head-to-head: the two chain edges share the junction vertex
                let (v1, v2) = a1.vertices(t).expect("rigid edge");
                let s = if a2.touches(v1, t) {
                    v1
                } else if a2.touches(v2, t) {
                    v2
                } else {
                    return Err(NotC1p::at(RejectSite::Align));
                };
                (side_of(a1, s, dir), side_of(a2, s, dir))
            }
        }
    };
    for (x, leaf, side) in [(x1, leaf1, side1), (x2, leaf2, side2)] {
        let EdgeRef::Virt(v) = x else {
            continue; // a chord of the LCA sits at the junction already
        };
        let child = cand.tree.virt_child[v as usize];
        if child == leaf || cand.tree.path_to_root(leaf).contains(&child) {
            let dir_child = dir_of(cand, child);
            funnel_chain(cand, child, dir_child, side, leaf, marked)?;
        }
        // otherwise x is a parallel-group bond below the LCA: side-agnostic
    }
    Ok(())
}

/// Chain edge at `m` toward `leaf`: the chord itself when `m == leaf`.
fn down_or_chord(tree: &TutteTree, m: MemberId, leaf: MemberId, marked: &[u32]) -> EdgeRef {
    if m == leaf {
        chord_edge_in(tree, marked, m)
    } else {
        edge_toward_child(tree, m, child_on_path(tree, m, leaf))
    }
}

/// `m`'s direct child on the path toward descendant `d`.
fn child_on_path(tree: &TutteTree, m: MemberId, d: MemberId) -> MemberId {
    let path = tree.path_to_root(d); // d … m … root
    let pos = path.iter().position(|&x| x == m).expect("m is an ancestor of d");
    assert!(pos > 0, "d must be a strict descendant");
    path[pos - 1]
}

/// Composition direction of member `m` under the candidate's arrangement.
fn dir_of(cand: &Aligned<'_>, m: MemberId) -> bool {
    let mut dir = cand.arr.root_flip;
    for &x in cand.tree.path_to_root(m).iter().rev().skip(1) {
        let (_, v) = cand.tree.members[x as usize].parent.unwrap();
        dir ^= cand.arr.virt_flip[v as usize];
    }
    dir
}

/// The deepest common ancestor of two members.
fn lowest_common(tree: &TutteTree, a: MemberId, b: MemberId) -> MemberId {
    let pa = tree.path_to_root(a);
    let pb = tree.path_to_root(b);
    let mut lca = tree.root;
    let mut ia = pa.len();
    let mut ib = pb.len();
    while ia > 0 && ib > 0 && pa[ia - 1] == pb[ib - 1] {
        lca = pa[ia - 1];
        ia -= 1;
        ib -= 1;
    }
    lca
}

/// The paper's `g`-selection for Section 4.2.2: a chord of `m` (or of a
/// parallel-group bond hanging off `m`) that constrains the split vertex —
/// a type-b chord; a type-a chord that does *not* span the downward edge;
/// or a type-c chord that *does* span it.
fn constraining_edge(
    tree: &TutteTree,
    m: MemberId,
    down_edge: EdgeRef,
    infos: &[ChordInfo],
) -> Option<EdgeRef> {
    let member = &tree.members[m as usize];
    // chord-bearing edges: direct chords, plus virts to parallel-group bonds
    let mut entries: Vec<(EdgeRef, Vec<u32>)> = Vec::new();
    for e in member.edges() {
        match e {
            EdgeRef::Chord(c) => entries.push((e, vec![c])),
            EdgeRef::Virt(v) => {
                let child = tree.virt_child[v as usize];
                if child != m && tree.members[child as usize].kind() == MemberKind::Bond {
                    let chords: Vec<u32> = tree.members[child as usize]
                        .edges()
                        .into_iter()
                        .filter_map(|e| match e {
                            EdgeRef::Chord(c) => Some(c),
                            _ => None,
                        })
                        .collect();
                    if !chords.is_empty() && tree.virt_parent[v as usize] == m {
                        entries.push((e, chords));
                    }
                }
            }
            _ => {}
        }
    }
    if entries.is_empty() {
        return None;
    }
    match member.kind() {
        MemberKind::Bond => {
            // A bond chord spans exactly the carrier content the chain runs
            // through. Type-b chords must touch the split vertex and type-c
            // chords must not contain it, so both pin the junction to the
            // bond boundary; type-a chords span any interior vertex and
            // constrain nothing.
            entries
                .iter()
                .find(|(_, cs)| cs.iter().any(|&c| infos[c as usize].ty != CrossType::A))
                .map(|&(e, _)| e)
        }
        MemberKind::Polygon => None,
        MemberKind::Rigid => {
            let t = ring_len(tree, m);
            let down = attach_of(tree, m, down_edge);
            let di = match down {
                Attach::Ring(j) => j,
                Attach::Chord(a, _) => a,
                Attach::Everywhere => unreachable!(),
            };
            let spans_down = |a: u32, b: u32| a <= di && di < b;
            let _ = t;
            for (e, cs) in &entries {
                let Attach::Chord(a, b) = attach_of(tree, m, *e) else { continue };
                for &c in cs {
                    match infos[c as usize].ty {
                        CrossType::B => return Some(*e),
                        CrossType::A if !spans_down(a, b) => return Some(*e),
                        CrossType::C if spans_down(a, b) => return Some(*e),
                        _ => {}
                    }
                }
            }
            None
        }
    }
}

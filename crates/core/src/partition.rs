//! The divide step (paper Section 3.2): choosing the balanced connected
//! segment `A1`.
//!
//! **Case 1** — a *proper-size* column exists (`|A|/3 ≤ |C| ≤ 2|A|/3`):
//! take `A1 = C`. A column is trivially connected and always a segment.
//!
//! **Case 2** — all columns are small (`< |A|/3`) or large (`> 2|A|/3`):
//! apply Tucker's complement transform (add atom `r`, complement the large
//! columns) so every column becomes small and the problem turns circular;
//! then grow a connected union of columns past `|A'|/3` atoms. Because each
//! column is small the union lands in a balanced window, and a connected
//! union of arcs of a cycle is an arc — a segment. When every connected
//! component is smaller than the window, the instance "trivially
//! decomposes" into independent subproblems.
//!
//! Everything here is allocation-lean: the transform streams into one
//! CSR arena, and the growth labels atoms/columns with component ids so
//! the (sorted) atom sets fall out of a single `0..k` scan instead of
//! per-component sorts.

use crate::bitmat::{BitCols, BitSub};
use crate::flat::FlatCols;
use crate::solver::SubProblem;

/// Column access as one column→atoms CSR view `(offsets, data)` — the
/// one seam [`grow_segment`] needs, so the CSR and bit-matrix paths share
/// the growth BFS *body* and their [`Growth`] results are identical by
/// construction (same visit order, same component labels), not merely by
/// test. [`FlatCols`] lends its own arena; [`BitCols`] materializes into
/// the caller's scratch exactly once, so the growth's three walks over
/// the entries (count, place, visit) decode each bitset row once instead
/// of three times.
pub(crate) trait AtomCols {
    fn csr<'a>(
        &'a self,
        off_buf: &'a mut Vec<u32>,
        atoms_buf: &'a mut Vec<u32>,
    ) -> (&'a [u32], &'a [u32]);
}

impl AtomCols for FlatCols {
    #[inline]
    fn csr<'a>(
        &'a self,
        _off_buf: &'a mut Vec<u32>,
        _atoms_buf: &'a mut Vec<u32>,
    ) -> (&'a [u32], &'a [u32]) {
        self.raw_csr()
    }
}

impl AtomCols for BitCols {
    fn csr<'a>(
        &'a self,
        off_buf: &'a mut Vec<u32>,
        atoms_buf: &'a mut Vec<u32>,
    ) -> (&'a [u32], &'a [u32]) {
        off_buf.clear();
        off_buf.reserve(self.n_cols() + 1);
        off_buf.push(0);
        atoms_buf.clear();
        atoms_buf.reserve(self.total_len());
        for ci in 0..self.n_cols() {
            atoms_buf.extend(self.ones(ci));
            off_buf.push(atoms_buf.len() as u32);
        }
        (off_buf, atoms_buf)
    }
}

/// Finds a proper-size column: `|A|/3 ≤ |C| ≤ 2|A|/3` (paper Case 1).
pub fn proper_column(sub: &SubProblem) -> Option<usize> {
    let k = sub.n;
    (0..sub.cols.n_cols()).find(|&ci| {
        let len = sub.cols.col_len(ci);
        3 * len >= k && 3 * len <= 2 * k
    })
}

/// The transformed instance of Case 2 over `k + 1` atoms (`r = k`), per
/// column: the kept-or-complemented atom set (columns reduced below two
/// atoms are dropped).
///
/// Rejection-evidence note: the transform is *not* a constraint
/// restriction of its input (columns are complemented and the atom `r`
/// is invented), so [`crate::Rejection`] evidence produced inside the
/// transformed recursion cannot be mapped back atom-by-atom; the callers
/// in `solver.rs`/`parallel.rs` widen it to the whole pre-transform atom
/// set via [`crate::Rejection::widened`] instead.
pub fn tucker_transform(sub: &SubProblem) -> SubProblem {
    let k = sub.n;
    let r = k as u32;
    // exact arena size in one O(m) pass over the column lengths
    let mut entries = 0usize;
    for ci in 0..sub.cols.n_cols() {
        let len = sub.cols.col_len(ci);
        entries += if 3 * len <= 2 * k { len } else { k - len + 1 };
    }
    let mut cols = FlatCols::with_capacity(sub.cols.n_cols(), entries);
    crate::flat::with_scratch(k, |s| {
        // s.mark doubles as the "present" bitmap; restored per column
        for col in sub.cols.iter() {
            if 3 * col.len() <= 2 * k {
                // small column (Case-2 precondition: actually < k/3) — keep
                if col.len() >= 2 {
                    cols.push_col(col.iter().copied());
                }
                continue;
            }
            for &a in col {
                s.mark[a as usize] = true;
            }
            // complement stays ascending; r = k lands last
            cols.extend_building_from((0..k as u32).filter(|&a| !s.mark[a as usize]));
            cols.push(r);
            if cols.building_len() >= 2 {
                cols.finish_col();
            } else {
                cols.cancel_col();
            }
            for &a in col {
                s.mark[a as usize] = false;
            }
        }
    });
    SubProblem { n: k + 1, cols }
}

/// Result of the Case-2 growth.
pub enum Growth {
    /// A connected column union with `|A'|/3 < |A1|`, sorted ascending.
    Segment(Vec<u32>),
    /// Every connected component is small: the transformed instance
    /// decomposes into these independent components
    /// `(atom sets, column index sets)`; isolated atoms form singleton
    /// components.
    Components(Vec<(Vec<u32>, Vec<u32>)>),
}

/// Grows a connected set of columns of the transformed instance until its
/// atom union exceeds `|A'|/3` (paper Section 3.2's tree-contraction step,
/// done here by BFS over the column–atom bipartite graph, on a CSR
/// atom→columns adjacency).
pub fn grow_segment(sub: &SubProblem) -> Growth {
    grow_impl(sub.n, &sub.cols)
}

/// [`grow_segment`] for the bit-matrix representation — same BFS body via
/// `AtomCols`, so the component/segment choice is literally the same
/// code path.
pub fn grow_segment_bits(sub: &BitSub) -> Growth {
    grow_impl(sub.n, &sub.cols)
}

fn grow_impl<C: AtomCols>(k: usize, sub_cols: &C) -> Growth {
    GROW_SCRATCH.with(|cell| {
        let mut s = cell.borrow_mut();
        grow_body(k, sub_cols, &mut s)
    })
}

/// Reused working memory for [`grow_impl`]: the adjacency arrays and BFS
/// state are rebuilt on every Case-2 divide, so pooling them per thread
/// turns six allocations per call (one of them `O(p)`) into none after
/// warm-up. Contents are garbage between calls — every field is
/// re-lengthed and rewritten by `grow_body` before use.
#[derive(Default)]
struct GrowScratch {
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    cursor: Vec<u32>,
    col_comp: Vec<u32>,
    atom_comp: Vec<u32>,
    queue: std::collections::VecDeque<u32>,
    // bit-matrix callers decode their rows into this column→atoms CSR
    csr_off: Vec<u32>,
    csr_atoms: Vec<u32>,
}

thread_local! {
    static GROW_SCRATCH: std::cell::RefCell<GrowScratch> =
        std::cell::RefCell::new(GrowScratch::default());
}

fn grow_body<C: AtomCols>(k: usize, sub_cols: &C, s: &mut GrowScratch) -> Growth {
    let GrowScratch { adj_off, adj, cursor, col_comp, atom_comp, queue, csr_off, csr_atoms } = s;
    let (off, atoms) = sub_cols.csr(csr_off, csr_atoms);
    let m = off.len() - 1;
    const UNSEEN: u32 = u32::MAX;
    let col = |ci: usize| &atoms[off[ci] as usize..off[ci + 1] as usize];

    // Incremental union-find growth: columns ascending, each column unions
    // its atoms into one set. The first column that pushes a set past
    // `k/3` names a connected union of already-processed columns — in the
    // common case it is already balanced (Case 2's small columns add
    // `< k/3` atoms at a time) and the call ends having touched only a
    // prefix of the entries, instead of paying the full atom→column
    // adjacency build the BFS below needs.
    let parent = atom_comp; // role change: union-find parent, re-lengthed
    parent.clear();
    parent.extend(0..k as u32);
    let size = cursor; // role change: set size at each root
    size.clear();
    size.resize(k, 1);
    let mut crossed = None;
    for ci in 0..m {
        let c = col(ci);
        let Some((&a0, rest)) = c.split_first() else { continue };
        let mut r = find(parent, a0);
        for &a in rest {
            let ra = find(parent, a);
            if ra != r {
                let (big, small) =
                    if size[r as usize] >= size[ra as usize] { (r, ra) } else { (ra, r) };
                parent[small as usize] = big;
                size[big as usize] += size[small as usize];
                r = big;
            }
        }
        if 3 * size[r as usize] as usize > k {
            crossed = Some(r);
            break;
        }
    }
    match crossed {
        Some(r) if 3 * (size[r as usize] as usize) <= 2 * k => {
            // collect the grown atoms sorted via one ascending scan
            let a1: Vec<u32> = (0..k as u32).filter(|&a| find(parent, a) == r).collect();
            debug_assert_eq!(a1.len(), size[r as usize] as usize);
            Growth::Segment(a1)
        }
        Some(_) => {
            // overshoot: one column glued several near-window sets (only
            // possible when a column violates Case 2's `< k/3` bound, or
            // merges many sets at once). The BFS re-grows atom-by-atom,
            // which cannot overshoot a balanced window.
            grow_bfs(k, off, atoms, adj_off, adj, size, col_comp, parent, queue)
        }
        None => {
            // no set crossed the window: the union-find sets ARE the
            // connected components; emit them keyed by first column
            let root_comp = col_comp; // role change: root atom → comp index
            root_comp.clear();
            root_comp.resize(k, UNSEEN);
            let mut components: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
            for ci in 0..m {
                match col(ci).first() {
                    Some(&a0) => {
                        let r = find(parent, a0) as usize;
                        if root_comp[r] == UNSEEN {
                            root_comp[r] = components.len() as u32;
                            components.push((Vec::new(), Vec::new()));
                        }
                        components[root_comp[r] as usize].1.push(ci as u32);
                    }
                    // an empty column is its own (atomless) component
                    None => components.push((Vec::new(), vec![ci as u32])),
                }
            }
            // isolated atoms become singleton components
            for a in 0..k as u32 {
                match root_comp[find(parent, a) as usize] {
                    UNSEEN => components.push((vec![a], Vec::new())),
                    comp => components[comp as usize].0.push(a),
                }
            }
            Growth::Components(components)
        }
    }
}

/// Path-halving find for the growth's union-find pass.
#[inline]
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

/// The original adjacency-building BFS growth — now only the fallback for
/// the rare union-find overshoot. Grows atom-by-atom, so every window
/// check moves by less than one column's worth of atoms and the first
/// crossing is balanced by construction.
#[cold]
#[allow(clippy::too_many_arguments)]
fn grow_bfs(
    k: usize,
    off: &[u32],
    atoms: &[u32],
    adj_off: &mut Vec<u32>,
    adj: &mut Vec<u32>,
    cursor: &mut Vec<u32>,
    col_comp: &mut Vec<u32>,
    atom_comp: &mut Vec<u32>,
    queue: &mut std::collections::VecDeque<u32>,
) -> Growth {
    let m = off.len() - 1;
    let p = atoms.len();
    const UNSEEN: u32 = u32::MAX;
    let col = |ci: usize| &atoms[off[ci] as usize..off[ci + 1] as usize];
    // CSR adjacency atom → columns (counting pass + placement pass)
    adj_off.clear();
    adj_off.resize(k + 1, 0);
    for &a in atoms {
        adj_off[a as usize + 1] += 1;
    }
    for i in 0..k {
        adj_off[i + 1] += adj_off[i];
    }
    // every slot of adj[..p] is written by the placement pass, so stale
    // words from the previous call never escape — no zero fill needed
    if adj.len() < p {
        adj.resize(p, 0);
    }
    let adj = &mut adj[..p];
    cursor.clear();
    cursor.extend_from_slice(adj_off);
    for ci in 0..m {
        for &a in col(ci) {
            adj[cursor[a as usize] as usize] = ci as u32;
            cursor[a as usize] += 1;
        }
    }
    // BFS per component, labeling atoms and columns with component ids
    col_comp.clear();
    col_comp.resize(m, UNSEEN);
    atom_comp.clear();
    atom_comp.resize(k, UNSEEN);
    queue.clear();
    let mut comp_cols: Vec<Vec<u32>> = Vec::new();
    for start in 0..m {
        if col_comp[start] != UNSEEN {
            continue;
        }
        let comp = comp_cols.len() as u32;
        let mut cols: Vec<u32> = Vec::new();
        let mut n_atoms = 0usize;
        queue.push_back(start as u32);
        col_comp[start] = comp;
        while let Some(ci) = queue.pop_front() {
            cols.push(ci);
            for &a in col(ci as usize) {
                if atom_comp[a as usize] == UNSEEN {
                    atom_comp[a as usize] = comp;
                    n_atoms += 1;
                    for &cj in &adj[adj_off[a as usize] as usize..adj_off[a as usize + 1] as usize]
                    {
                        if col_comp[cj as usize] == UNSEEN {
                            col_comp[cj as usize] = comp;
                            queue.push_back(cj);
                        }
                    }
                }
            }
            if 3 * n_atoms > k {
                // collect the grown atoms sorted via one ascending scan
                let a1: Vec<u32> =
                    (0..k as u32).filter(|&a| atom_comp[a as usize] == comp).collect();
                debug_assert_eq!(a1.len(), n_atoms);
                return Growth::Segment(a1);
            }
        }
        comp_cols.push(cols);
    }
    // isolated atoms become singleton components
    let mut components: Vec<(Vec<u32>, Vec<u32>)> =
        comp_cols.into_iter().map(|cols| (Vec::new(), cols)).collect();
    for a in 0..k as u32 {
        match atom_comp[a as usize] {
            UNSEEN => components.push((vec![a], Vec::new())),
            comp => components[comp as usize].0.push(a),
        }
    }
    Growth::Components(components)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(n: usize, cols: &[&[u32]]) -> SubProblem {
        SubProblem { n, cols: FlatCols::from_cols(cols) }
    }

    #[test]
    fn proper_column_window() {
        let s = sub(9, &[&[0, 1], &[0, 1, 2], &[0, 1, 2, 3, 4, 5, 6]]);
        // sizes 2 (too small: 6 < 9), 3 (9 ∈ [9, 18] ✓), 7 (21 > 18)
        assert_eq!(proper_column(&s), Some(1));
        let none = sub(9, &[&[0, 1], &[0, 1, 2, 3, 4, 5, 6]]);
        assert_eq!(proper_column(&none), None);
    }

    #[test]
    fn transform_complements_large() {
        let s = sub(6, &[&[0, 1, 2, 3, 4], &[0, 1]]);
        let t = tucker_transform(&s);
        assert_eq!(t.n, 7);
        assert_eq!(t.cols, FlatCols::from_cols([[5u32, 6].as_slice(), &[0, 1]]));
    }

    #[test]
    fn transform_drops_trivial_complements() {
        // full column complements to {r} alone → dropped
        let s = sub(5, &[&[0, 1, 2, 3, 4]]);
        let t = tucker_transform(&s);
        assert!(t.cols.is_empty());
    }

    #[test]
    fn growth_finds_window() {
        // chain of overlapping pairs over 9 atoms: grows to > 3 atoms
        let s = sub(9, &[&[0, 1], &[1, 2], &[2, 3], &[5, 6], &[7, 8]]);
        match grow_segment(&s) {
            Growth::Segment(a1) => {
                assert!(3 * a1.len() > 9, "window: {a1:?}");
                assert!(a1.len() < 9);
                // connected: must be a prefix chain {0,1,2,...}
                assert!(a1.windows(2).all(|w| w[1] == w[0] + 1));
            }
            Growth::Components(_) => panic!("expected a segment"),
        }
    }

    #[test]
    fn growth_reports_components() {
        // all components have ≤ 2 atoms over 9: nothing crosses 3
        let s = sub(9, &[&[0, 1], &[3, 4], &[6, 7]]);
        match grow_segment(&s) {
            Growth::Segment(_) => panic!("components expected"),
            Growth::Components(comps) => {
                // three column components + isolated atoms 2, 5, 8
                assert_eq!(comps.len(), 6);
                let sizes: Vec<usize> = comps.iter().map(|(a, _)| a.len()).collect();
                assert_eq!(sizes.iter().sum::<usize>(), 9);
            }
        }
    }

    #[test]
    fn growth_component_atoms_are_sorted() {
        // shared atoms discovered out of order must still come out sorted
        let s = sub(10, &[&[4, 7], &[2, 7], &[0, 9]]);
        match grow_segment(&s) {
            Growth::Segment(_) => panic!("components expected"),
            Growth::Components(comps) => {
                for (atoms, _) in &comps {
                    assert!(atoms.windows(2).all(|w| w[0] < w[1]), "unsorted: {atoms:?}");
                }
            }
        }
    }
}

//! The divide step (paper Section 3.2): choosing the balanced connected
//! segment `A1`.
//!
//! **Case 1** — a *proper-size* column exists (`|A|/3 ≤ |C| ≤ 2|A|/3`):
//! take `A1 = C`. A column is trivially connected and always a segment.
//!
//! **Case 2** — all columns are small (`< |A|/3`) or large (`> 2|A|/3`):
//! apply Tucker's complement transform (add atom `r`, complement the large
//! columns) so every column becomes small and the problem turns circular;
//! then grow a connected union of columns past `|A'|/3` atoms. Because each
//! column is small the union lands in a balanced window, and a connected
//! union of arcs of a cycle is an arc — a segment. When every connected
//! component is smaller than the window, the instance "trivially
//! decomposes" into independent subproblems.
//!
//! Everything here is allocation-lean: the transform streams into one
//! CSR arena, and the growth labels atoms/columns with component ids so
//! the (sorted) atom sets fall out of a single `0..k` scan instead of
//! per-component sorts.

use crate::flat::FlatCols;
use crate::solver::SubProblem;

/// Finds a proper-size column: `|A|/3 ≤ |C| ≤ 2|A|/3` (paper Case 1).
pub fn proper_column(sub: &SubProblem) -> Option<usize> {
    let k = sub.n;
    (0..sub.cols.n_cols()).find(|&ci| {
        let len = sub.cols.col_len(ci);
        3 * len >= k && 3 * len <= 2 * k
    })
}

/// The transformed instance of Case 2 over `k + 1` atoms (`r = k`), per
/// column: the kept-or-complemented atom set (columns reduced below two
/// atoms are dropped).
///
/// Rejection-evidence note: the transform is *not* a constraint
/// restriction of its input (columns are complemented and the atom `r`
/// is invented), so [`crate::Rejection`] evidence produced inside the
/// transformed recursion cannot be mapped back atom-by-atom; the callers
/// in `solver.rs`/`parallel.rs` widen it to the whole pre-transform atom
/// set via [`crate::Rejection::widened`] instead.
pub fn tucker_transform(sub: &SubProblem) -> SubProblem {
    let k = sub.n;
    let r = k as u32;
    // exact arena size in one O(m) pass over the column lengths
    let mut entries = 0usize;
    for ci in 0..sub.cols.n_cols() {
        let len = sub.cols.col_len(ci);
        entries += if 3 * len <= 2 * k { len } else { k - len + 1 };
    }
    let mut cols = FlatCols::with_capacity(sub.cols.n_cols(), entries);
    let mut present = vec![false; k];
    for col in sub.cols.iter() {
        if 3 * col.len() <= 2 * k {
            // small column (Case-2 precondition: actually < k/3) — keep
            if col.len() >= 2 {
                cols.push_col(col.iter().copied());
            }
            continue;
        }
        for &a in col {
            present[a as usize] = true;
        }
        // complement stays ascending; r = k lands last
        cols.extend_building_from((0..k as u32).filter(|&a| !present[a as usize]));
        cols.push(r);
        if cols.building_len() >= 2 {
            cols.finish_col();
        } else {
            cols.cancel_col();
        }
        for &a in col {
            present[a as usize] = false;
        }
    }
    SubProblem { n: k + 1, cols }
}

/// Result of the Case-2 growth.
pub enum Growth {
    /// A connected column union with `|A'|/3 < |A1|`, sorted ascending.
    Segment(Vec<u32>),
    /// Every connected component is small: the transformed instance
    /// decomposes into these independent components
    /// `(atom sets, column index sets)`; isolated atoms form singleton
    /// components.
    Components(Vec<(Vec<u32>, Vec<u32>)>),
}

/// Grows a connected set of columns of the transformed instance until its
/// atom union exceeds `|A'|/3` (paper Section 3.2's tree-contraction step,
/// done here by BFS over the column–atom bipartite graph, on a CSR
/// atom→columns adjacency).
pub fn grow_segment(sub: &SubProblem) -> Growth {
    let k = sub.n;
    let m = sub.cols.n_cols();
    const UNSEEN: u32 = u32::MAX;
    // CSR adjacency atom → columns (counting pass + placement pass)
    let mut adj_off = vec![0u32; k + 1];
    for col in sub.cols.iter() {
        for &a in col {
            adj_off[a as usize + 1] += 1;
        }
    }
    for i in 0..k {
        adj_off[i + 1] += adj_off[i];
    }
    let mut adj = vec![0u32; sub.cols.total_len()];
    let mut cursor = adj_off.clone();
    for (ci, col) in sub.cols.iter().enumerate() {
        for &a in col {
            adj[cursor[a as usize] as usize] = ci as u32;
            cursor[a as usize] += 1;
        }
    }
    // BFS per component, labeling atoms and columns with component ids
    let mut col_comp = vec![UNSEEN; m];
    let mut atom_comp = vec![UNSEEN; k];
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut comp_cols: Vec<Vec<u32>> = Vec::new();
    for start in 0..m {
        if col_comp[start] != UNSEEN {
            continue;
        }
        let comp = comp_cols.len() as u32;
        let mut cols: Vec<u32> = Vec::new();
        let mut n_atoms = 0usize;
        queue.push_back(start as u32);
        col_comp[start] = comp;
        while let Some(ci) = queue.pop_front() {
            cols.push(ci);
            for &a in sub.cols.col(ci as usize) {
                if atom_comp[a as usize] == UNSEEN {
                    atom_comp[a as usize] = comp;
                    n_atoms += 1;
                    for &cj in &adj[adj_off[a as usize] as usize..adj_off[a as usize + 1] as usize]
                    {
                        if col_comp[cj as usize] == UNSEEN {
                            col_comp[cj as usize] = comp;
                            queue.push_back(cj);
                        }
                    }
                }
            }
            if 3 * n_atoms > k {
                // collect the grown atoms sorted via one ascending scan
                let a1: Vec<u32> =
                    (0..k as u32).filter(|&a| atom_comp[a as usize] == comp).collect();
                debug_assert_eq!(a1.len(), n_atoms);
                return Growth::Segment(a1);
            }
        }
        comp_cols.push(cols);
    }
    // isolated atoms become singleton components
    let mut components: Vec<(Vec<u32>, Vec<u32>)> =
        comp_cols.into_iter().map(|cols| (Vec::new(), cols)).collect();
    for a in 0..k as u32 {
        match atom_comp[a as usize] {
            UNSEEN => components.push((vec![a], Vec::new())),
            comp => components[comp as usize].0.push(a),
        }
    }
    Growth::Components(components)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(n: usize, cols: &[&[u32]]) -> SubProblem {
        SubProblem { n, cols: FlatCols::from_cols(cols) }
    }

    #[test]
    fn proper_column_window() {
        let s = sub(9, &[&[0, 1], &[0, 1, 2], &[0, 1, 2, 3, 4, 5, 6]]);
        // sizes 2 (too small: 6 < 9), 3 (9 ∈ [9, 18] ✓), 7 (21 > 18)
        assert_eq!(proper_column(&s), Some(1));
        let none = sub(9, &[&[0, 1], &[0, 1, 2, 3, 4, 5, 6]]);
        assert_eq!(proper_column(&none), None);
    }

    #[test]
    fn transform_complements_large() {
        let s = sub(6, &[&[0, 1, 2, 3, 4], &[0, 1]]);
        let t = tucker_transform(&s);
        assert_eq!(t.n, 7);
        assert_eq!(t.cols, FlatCols::from_cols([[5u32, 6].as_slice(), &[0, 1]]));
    }

    #[test]
    fn transform_drops_trivial_complements() {
        // full column complements to {r} alone → dropped
        let s = sub(5, &[&[0, 1, 2, 3, 4]]);
        let t = tucker_transform(&s);
        assert!(t.cols.is_empty());
    }

    #[test]
    fn growth_finds_window() {
        // chain of overlapping pairs over 9 atoms: grows to > 3 atoms
        let s = sub(9, &[&[0, 1], &[1, 2], &[2, 3], &[5, 6], &[7, 8]]);
        match grow_segment(&s) {
            Growth::Segment(a1) => {
                assert!(3 * a1.len() > 9, "window: {a1:?}");
                assert!(a1.len() < 9);
                // connected: must be a prefix chain {0,1,2,...}
                assert!(a1.windows(2).all(|w| w[1] == w[0] + 1));
            }
            Growth::Components(_) => panic!("expected a segment"),
        }
    }

    #[test]
    fn growth_reports_components() {
        // all components have ≤ 2 atoms over 9: nothing crosses 3
        let s = sub(9, &[&[0, 1], &[3, 4], &[6, 7]]);
        match grow_segment(&s) {
            Growth::Segment(_) => panic!("components expected"),
            Growth::Components(comps) => {
                // three column components + isolated atoms 2, 5, 8
                assert_eq!(comps.len(), 6);
                let sizes: Vec<usize> = comps.iter().map(|(a, _)| a.len()).collect();
                assert_eq!(sizes.iter().sum::<usize>(), 9);
            }
        }
    }

    #[test]
    fn growth_component_atoms_are_sorted() {
        // shared atoms discovered out of order must still come out sorted
        let s = sub(10, &[&[4, 7], &[2, 7], &[0, 9]]);
        match grow_segment(&s) {
            Growth::Segment(_) => panic!("components expected"),
            Growth::Components(comps) => {
                for (atoms, _) in &comps {
                    assert!(atoms.windows(2).all(|w| w[0] < w[1]), "unsorted: {atoms:?}");
                }
            }
        }
    }
}

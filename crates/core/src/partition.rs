//! The divide step (paper Section 3.2): choosing the balanced connected
//! segment `A1`.
//!
//! **Case 1** — a *proper-size* column exists (`|A|/3 ≤ |C| ≤ 2|A|/3`):
//! take `A1 = C`. A column is trivially connected and always a segment.
//!
//! **Case 2** — all columns are small (`< |A|/3`) or large (`> 2|A|/3`):
//! apply Tucker's complement transform (add atom `r`, complement the large
//! columns) so every column becomes small and the problem turns circular;
//! then grow a connected union of columns past `|A'|/3` atoms. Because each
//! column is small the union lands in a balanced window, and a connected
//! union of arcs of a cycle is an arc — a segment. When every connected
//! component is smaller than the window, the instance "trivially
//! decomposes" into independent subproblems.

use crate::solver::SubProblem;

/// Finds a proper-size column: `|A|/3 ≤ |C| ≤ 2|A|/3` (paper Case 1).
pub fn proper_column(sub: &SubProblem) -> Option<usize> {
    let k = sub.n;
    sub.cols.iter().position(|c| 3 * c.len() >= k && 3 * c.len() <= 2 * k)
}

/// The transformed instance of Case 2 over `k + 1` atoms (`r = k`), per
/// column: the kept-or-complemented atom set (columns reduced below two
/// atoms are dropped).
pub fn tucker_transform(sub: &SubProblem) -> SubProblem {
    let k = sub.n;
    let r = k as u32;
    let mut cols = Vec::with_capacity(sub.cols.len());
    let mut present = vec![false; k];
    for col in &sub.cols {
        if 3 * col.len() <= 2 * k {
            // small column (Case-2 precondition: actually < k/3) — keep
            if col.len() >= 2 {
                cols.push(col.clone());
            }
            continue;
        }
        for &a in col {
            present[a as usize] = true;
        }
        let mut comp: Vec<u32> = (0..k as u32).filter(|&a| !present[a as usize]).collect();
        comp.push(r);
        for &a in col {
            present[a as usize] = false;
        }
        if comp.len() >= 2 {
            cols.push(comp);
        }
    }
    SubProblem { n: k + 1, cols }
}

/// Result of the Case-2 growth.
pub enum Growth {
    /// A connected column union with `|A'|/3 < |A1|`, sorted ascending.
    Segment(Vec<u32>),
    /// Every connected component is small: the transformed instance
    /// decomposes into these independent components
    /// `(atom sets, column index sets)`; isolated atoms form singleton
    /// components.
    Components(Vec<(Vec<u32>, Vec<u32>)>),
}

/// Grows a connected set of columns of the transformed instance until its
/// atom union exceeds `|A'|/3` (paper Section 3.2's tree-contraction step,
/// done here by BFS over the column–atom bipartite graph).
pub fn grow_segment(sub: &SubProblem) -> Growth {
    let k = sub.n;
    let mut atom_cols: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (ci, col) in sub.cols.iter().enumerate() {
        for &a in col {
            atom_cols[a as usize].push(ci as u32);
        }
    }
    let mut col_seen = vec![false; sub.cols.len()];
    let mut atom_seen = vec![false; k];
    let mut components: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    for start in 0..sub.cols.len() {
        if col_seen[start] {
            continue;
        }
        // BFS accumulating whole columns
        let mut queue = std::collections::VecDeque::from([start as u32]);
        col_seen[start] = true;
        let mut atoms: Vec<u32> = Vec::new();
        let mut cols: Vec<u32> = Vec::new();
        while let Some(ci) = queue.pop_front() {
            cols.push(ci);
            for &a in &sub.cols[ci as usize] {
                if !atom_seen[a as usize] {
                    atom_seen[a as usize] = true;
                    atoms.push(a);
                    for &cj in &atom_cols[a as usize] {
                        if !col_seen[cj as usize] {
                            col_seen[cj as usize] = true;
                            queue.push_back(cj);
                        }
                    }
                }
            }
            if 3 * atoms.len() > k {
                atoms.sort_unstable();
                return Growth::Segment(atoms);
            }
        }
        atoms.sort_unstable();
        components.push((atoms, cols));
    }
    // isolated atoms become singleton components
    for a in 0..k as u32 {
        if !atom_seen[a as usize] {
            components.push((vec![a], Vec::new()));
        }
    }
    Growth::Components(components)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(n: usize, cols: &[&[u32]]) -> SubProblem {
        SubProblem { n, cols: cols.iter().map(|c| c.to_vec()).collect() }
    }

    #[test]
    fn proper_column_window() {
        let s = sub(9, &[&[0, 1], &[0, 1, 2], &[0, 1, 2, 3, 4, 5, 6]]);
        // sizes 2 (too small: 6 < 9), 3 (9 ∈ [9, 18] ✓), 7 (21 > 18)
        assert_eq!(proper_column(&s), Some(1));
        let none = sub(9, &[&[0, 1], &[0, 1, 2, 3, 4, 5, 6]]);
        assert_eq!(proper_column(&none), None);
    }

    #[test]
    fn transform_complements_large() {
        let s = sub(6, &[&[0, 1, 2, 3, 4], &[0, 1]]);
        let t = tucker_transform(&s);
        assert_eq!(t.n, 7);
        assert_eq!(t.cols, vec![vec![5, 6], vec![0, 1]]);
    }

    #[test]
    fn transform_drops_trivial_complements() {
        // full column complements to {r} alone → dropped
        let s = sub(5, &[&[0, 1, 2, 3, 4]]);
        let t = tucker_transform(&s);
        assert!(t.cols.is_empty());
    }

    #[test]
    fn growth_finds_window() {
        // chain of overlapping pairs over 9 atoms: grows to > 3 atoms
        let s = sub(9, &[&[0, 1], &[1, 2], &[2, 3], &[5, 6], &[7, 8]]);
        match grow_segment(&s) {
            Growth::Segment(a1) => {
                assert!(3 * a1.len() > 9, "window: {a1:?}");
                assert!(a1.len() < 9);
                // connected: must be a prefix chain {0,1,2,...}
                assert!(a1.windows(2).all(|w| w[1] == w[0] + 1));
            }
            Growth::Components(_) => panic!("expected a segment"),
        }
    }

    #[test]
    fn growth_reports_components() {
        // all components have ≤ 2 atoms over 9: nothing crosses 3
        let s = sub(9, &[&[0, 1], &[3, 4], &[6, 7]]);
        match grow_segment(&s) {
            Growth::Segment(_) => panic!("components expected"),
            Growth::Components(comps) => {
                // three column components + isolated atoms 2, 5, 8
                assert_eq!(comps.len(), 6);
                let sizes: Vec<usize> = comps.iter().map(|(a, _)| a.len()).collect();
                assert_eq!(sizes.iter().sum::<usize>(), 9);
            }
        }
    }
}

//! Run instrumentation: the counters behind experiment E8 (recursion
//! structure) and the PRAM cost accounting of experiment E2.

use c1p_pram::Cost;

/// Stable names for the solver's wall-clock phases, in pipeline order.
///
/// These labels are an API contract shared by the offline `phase_probe`
/// diagnostic and the live tracer's `solve/<phase>` span names: renaming
/// an entry breaks trace consumers, so treat additions as append-only.
pub const PHASE_NAMES: [&str; N_PHASES] =
    ["partition", "prepare", "decompose", "align", "merge", "bitmat"];

/// Number of instrumented solver phases (`PHASE_NAMES.len()`).
pub const N_PHASES: usize = 6;

/// Index of the partition phase (proper-column search, Tucker transform,
/// segment growth) in [`SolveStats::phase_ns`].
pub const PH_PARTITION: usize = 0;
/// Index of the recursion-prep phase (split materialization).
pub const PH_PREPARE: usize = 1;
/// Index of the Tutte decomposition phase (Steps 3/4).
pub const PH_DECOMPOSE: usize = 2;
/// Index of the alignment phase (Step 5).
pub const PH_ALIGN: usize = 3;
/// Index of the merge phase (Step 6 + final splice).
pub const PH_MERGE: usize = 4;
/// Index of the bit-matrix phase: time spent inside bit-path recursion
/// (conversion + word-parallel divides), *excluding* the shared combine
/// work, which keeps accruing to decompose/align/merge (DESIGN.md §14).
/// Appended in PR 10 — names are append-only by the contract above.
pub const PH_BITMAT: usize = 5;

/// Counters collected across one solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Recursive calls (subproblems realized).
    pub subproblems: usize,
    /// Deepest recursion level reached (paper: `O(log n)`).
    pub max_depth: usize,
    /// Case-1 divides (proper-size column found).
    pub case1: usize,
    /// Case-2 divides (Tucker transform + growth).
    pub case2: usize,
    /// `|A| ≤ 2` base cases.
    pub base_cases: usize,
    /// Subproblems delegated to the PQ-tree base solver.
    pub pq_base_cases: usize,
    /// Tutte decompositions computed (Steps 3/4).
    pub decompositions: usize,
    /// Total members across all decompositions.
    pub members: usize,
    /// Combines settled by the identity fast path (recursive orders
    /// merged as-is; Steps 3–6 skipped entirely).
    pub fast_merges: usize,
    /// Subtrees that crossed from the CSR to the bit-matrix
    /// representation (one conversion each; see `Config::bitmat_threshold`).
    pub bitmat_converts: usize,
    /// Divides executed on the bit-matrix path (word-parallel
    /// `prepare_split_bits` calls).
    pub bitmat_divides: usize,
    /// Divides executed on the CSR path (`prepare_split` /
    /// `prepare_split_par` calls) — together with `bitmat_divides` this
    /// makes the representation swap observable per run.
    pub csr_divides: usize,
    /// Wall-clock nanoseconds spent per solver phase, indexed by the
    /// `PH_*` constants / [`PHASE_NAMES`]. On the sequential path the
    /// phases are disjoint intervals of one thread, so their sum is
    /// bounded by the solve's wall time; under the parallel driver the
    /// entries are summed CPU time across branches and may exceed it.
    pub phase_ns: [u64; N_PHASES],
    /// Modelled PRAM cost (filled by the parallel driver).
    pub cost: Cost,
}

impl SolveStats {
    /// Merges another run's counters into this one (parallel driver joins).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.subproblems += other.subproblems;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.case1 += other.case1;
        self.case2 += other.case2;
        self.base_cases += other.base_cases;
        self.pq_base_cases += other.pq_base_cases;
        self.decompositions += other.decompositions;
        self.members += other.members;
        self.fast_merges += other.fast_merges;
        self.bitmat_converts += other.bitmat_converts;
        self.bitmat_divides += other.bitmat_divides;
        self.csr_divides += other.csr_divides;
        for (mine, theirs) in self.phase_ns.iter_mut().zip(other.phase_ns.iter()) {
            *mine += theirs;
        }
        // costs are composed explicitly by the parallel driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = SolveStats { subproblems: 2, max_depth: 3, case1: 1, ..Default::default() };
        let mut b = SolveStats { subproblems: 5, max_depth: 2, case2: 4, ..Default::default() };
        a.phase_ns[PH_PARTITION] = 10;
        b.phase_ns[PH_PARTITION] = 7;
        b.phase_ns[PH_MERGE] = 3;
        a.absorb(&b);
        assert_eq!(a.subproblems, 7);
        assert_eq!(a.max_depth, 3);
        assert_eq!(a.case1, 1);
        assert_eq!(a.case2, 4);
        assert_eq!(a.phase_ns, [17, 0, 0, 0, 3, 0]);
    }

    #[test]
    fn phase_names_match_slot_constants() {
        assert_eq!(PHASE_NAMES.len(), N_PHASES);
        assert_eq!(PHASE_NAMES[PH_PARTITION], "partition");
        assert_eq!(PHASE_NAMES[PH_PREPARE], "prepare");
        assert_eq!(PHASE_NAMES[PH_DECOMPOSE], "decompose");
        assert_eq!(PHASE_NAMES[PH_ALIGN], "align");
        assert_eq!(PHASE_NAMES[PH_MERGE], "merge");
        assert_eq!(PHASE_NAMES[PH_BITMAT], "bitmat");
        // append-only contract: the PR-9 prefix must never move
        assert_eq!(&PHASE_NAMES[..5], &["partition", "prepare", "decompose", "align", "merge"]);
    }
}

//! Run instrumentation: the counters behind experiment E8 (recursion
//! structure) and the PRAM cost accounting of experiment E2.

use c1p_pram::Cost;

/// Counters collected across one solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Recursive calls (subproblems realized).
    pub subproblems: usize,
    /// Deepest recursion level reached (paper: `O(log n)`).
    pub max_depth: usize,
    /// Case-1 divides (proper-size column found).
    pub case1: usize,
    /// Case-2 divides (Tucker transform + growth).
    pub case2: usize,
    /// `|A| ≤ 2` base cases.
    pub base_cases: usize,
    /// Subproblems delegated to the PQ-tree base solver.
    pub pq_base_cases: usize,
    /// Tutte decompositions computed (Steps 3/4).
    pub decompositions: usize,
    /// Total members across all decompositions.
    pub members: usize,
    /// Combines settled by the identity fast path (recursive orders
    /// merged as-is; Steps 3–6 skipped entirely).
    pub fast_merges: usize,
    /// Modelled PRAM cost (filled by the parallel driver).
    pub cost: Cost,
}

impl SolveStats {
    /// Merges another run's counters into this one (parallel driver joins).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.subproblems += other.subproblems;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.case1 += other.case1;
        self.case2 += other.case2;
        self.base_cases += other.base_cases;
        self.pq_base_cases += other.pq_base_cases;
        self.decompositions += other.decompositions;
        self.members += other.members;
        self.fast_merges += other.fast_merges;
        // costs are composed explicitly by the parallel driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = SolveStats { subproblems: 2, max_depth: 3, case1: 1, ..Default::default() };
        let b = SolveStats { subproblems: 5, max_depth: 2, case2: 4, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.subproblems, 7);
        assert_eq!(a.max_depth, 3);
        assert_eq!(a.case1, 1);
        assert_eq!(a.case2, 4);
    }
}

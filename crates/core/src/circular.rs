//! Circular-ones testing (the paper's cycle-graphic ensembles, Section 2).
//!
//! Tucker's reduction: fix any atom `a`; complementing every column that
//! contains `a` yields an instance that has C1P iff the original has the
//! circular-ones property — and any linear realization of the transform,
//! read cyclically, realizes the original.

use c1p_matrix::{verify_circular, Atom, Ensemble};

/// Decides the circular-ones property; returns a cyclic witness order.
pub fn solve_circular(ens: &Ensemble) -> Option<Vec<Atom>> {
    let n = ens.n_atoms();
    if n <= 2 || ens.n_columns() == 0 {
        let order: Vec<Atom> = (0..n as Atom).collect();
        return Some(order);
    }
    // fix atom 0; complement the columns containing it
    let anchor: Atom = 0;
    let mut present = vec![false; n];
    let mut cols = Vec::with_capacity(ens.n_columns());
    for col in ens.columns() {
        if col.binary_search(&anchor).is_ok() {
            for &a in col {
                present[a as usize] = true;
            }
            let comp: Vec<Atom> = (0..n as Atom).filter(|&a| !present[a as usize]).collect();
            for &a in col {
                present[a as usize] = false;
            }
            cols.push(comp);
        } else {
            cols.push(col.clone());
        }
    }
    let reduced = Ensemble::from_sorted_columns(n, cols).expect("complement is valid");
    let order = crate::solve(&reduced).ok()?;
    verify_circular(ens, &order).expect("internal error: circular witness failed verification");
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ens(n: usize, cols: Vec<Vec<Atom>>) -> Ensemble {
        Ensemble::from_columns(n, cols).unwrap()
    }

    #[test]
    fn cycle_matrix_is_circular() {
        // M_I(1) is not C1P but *is* circular-ones
        let e = ens(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert!(crate::solve(&e).is_err());
        assert!(solve_circular(&e).is_some());
    }

    #[test]
    fn bigger_cycle_cover() {
        // consecutive pairs around a 6-cycle, including the wrap pair
        let cols: Vec<Vec<Atom>> = (0..6).map(|i| vec![i, (i + 1) % 6]).collect();
        let e = ens(6, cols);
        assert!(crate::solve(&e).is_err());
        let order = solve_circular(&e).expect("circular-ones");
        verify_circular(&e, &order).unwrap();
    }

    #[test]
    fn not_even_circular() {
        // M_IV is neither C1P nor circular-ones
        let e = c1p_matrix::tucker::m_iv();
        assert_eq!(solve_circular(&e), None);
    }

    #[test]
    fn linear_implies_circular() {
        let e = ens(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4]]);
        let order = solve_circular(&e).expect("C1P implies circular-ones");
        verify_circular(&e, &order).unwrap();
    }
}

//! Bit-parallel column kernels (DESIGN.md §14).
//!
//! Below an adaptive size/density threshold the solver switches each
//! subproblem from the CSR arena ([`FlatCols`]) to a *bit matrix*: one
//! packed-`u64` row per column over the component-local atom universe
//! (`width = ⌈k/64⌉` words, atom `a` ↔ bit `a%64` of word `a/64`). At
//! those sizes every row is a handful of cache-resident words, so the
//! divide's hot inner loops become word-parallel:
//!
//! * **overlap/containment classification** — `popcount(row & mask(A1))`
//!   replaces the per-entry membership branch of `prepare_split`;
//! * **child renumbering** — projecting a column onto a sorted atom
//!   subset and renumbering it to `0..|subset|` is exactly *parallel bit
//!   extract* of the row by the subset mask (`PEXT` on x86-64 BMI2, a
//!   portable fallback elsewhere), because the renumbering is monotone;
//! * **Tucker complement** — `!row & universe` instead of an `O(k)`
//!   scan per large column.
//!
//! [`BitCols`] mirrors the [`FlatCols`] building/accessor interface
//! (`push`/`finish_col`/`cancel_col`/`n_cols`/`col_len`/`total_len`), so
//! the bit solver path in `solver.rs` is line-for-line the CSR path with
//! the representation swapped; `split_differential.rs` pins the two to
//! bit-identical verdicts, orders, and evidence across the threshold
//! sweep. Sortedness carries over for free: ascending atom order is
//! ascending bit order.

use crate::align::CrossType;
use crate::flat::{recycle_u32, recycle_u64, take_u32, take_u64, FlatCols, SplitCols};
use crate::solver::SubProblem;

/// Default for [`crate::Config::bitmat_threshold`]: subproblems at or
/// below this many atoms (8 words per row) switch to the bit-matrix
/// representation, subject to the density rule in `use_bitmat`.
pub const BITMAT_DEFAULT_THRESHOLD: usize = 512;

/// Words needed for `n` bits.
#[inline]
pub(crate) const fn words(n: usize) -> usize {
    n.div_ceil(64)
}

/// The representation choice, decided per conversion point from the
/// subproblem's shape alone (`k` atoms, `m` columns, `p` entries) so the
/// sequential and parallel drivers always agree:
///
/// * `threshold == 0` — never (pure CSR; the differential suites' lower
///   sweep point);
/// * `threshold == usize::MAX` — always (upper sweep point);
/// * otherwise bitmat iff `k ≤ threshold` and either a row is a single
///   word (`k ≤ 64` — the packed kernels always win there) or the rows
///   are dense enough that the average column holds at least eight atoms
///   per row word (`p ≥ 8·m·⌈k/64⌉`). The multiplier is measured, not
///   derived: sparse interval workloads at `64 < k ≤ 512` sit near one
///   atom per word, where the word-parallel divide scans mostly-zero
///   words and loses ~15% to CSR; at eight-plus atoms per word the
///   AND+popcount classification and `PEXT` renumbering win.
///
/// Once a subtree converts it stays converted — `k` only shrinks and the
/// decision is not revisited below the conversion point.
pub(crate) fn use_bitmat(k: usize, m: usize, p: usize, threshold: usize) -> bool {
    if threshold == 0 || m == 0 {
        return false;
    }
    if threshold == usize::MAX {
        return true;
    }
    k <= threshold && (k <= 64 || p >= 8 * m * words(k))
}

// ---------------------------------------------------------------------
// pext
// ---------------------------------------------------------------------

/// Parallel bit extract: gathers the bits of `x` selected by `mask` into
/// the low bits of the result. Hardware `PEXT` when the host has BMI2
/// (detected once), portable bit loop otherwise.
#[inline]
fn pext64(x: u64, mask: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if *HAVE_BMI2 {
            // SAFETY: guarded by the runtime BMI2 detection above.
            return unsafe { pext64_hw(x, mask) };
        }
    }
    pext64_soft(x, mask)
}

#[cfg(target_arch = "x86_64")]
static HAVE_BMI2: std::sync::LazyLock<bool> =
    std::sync::LazyLock::new(|| std::arch::is_x86_feature_detected!("bmi2"));

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
#[inline]
fn pext64_hw(x: u64, mask: u64) -> u64 {
    std::arch::x86_64::_pext_u64(x, mask)
}

/// Portable `PEXT`: one iteration per set mask bit.
fn pext64_soft(x: u64, mut mask: u64) -> u64 {
    let mut out = 0u64;
    let mut j = 0u32;
    while mask != 0 {
        let lsb = mask & mask.wrapping_neg();
        if x & lsb != 0 {
            out |= 1u64 << j;
        }
        j += 1;
        mask &= mask - 1;
    }
    out
}

/// Compacts `src`'s bits through `mask` into `dst` as one contiguous bit
/// stream: output bit `j` is the `j`-th set bit of `mask` (ascending)
/// present in `src`. This *is* the solver's monotone renumbering — the
/// `j`-th mask atom gets local id `j` — done a word at a time. `dst` must
/// be zeroed and hold at least `⌈popcount(mask)/64⌉` words. Public for
/// `c1p_cert`'s probe window; not a stable API.
pub fn compact(dst: &mut [u64], src: &[u64], mask: &[u64]) {
    let mut ob = 0usize; // output bit cursor
    for (&s, &m) in src.iter().zip(mask) {
        if m == 0 {
            continue;
        }
        let ext = pext64(s, m);
        let nb = m.count_ones() as usize;
        let w = ob >> 6;
        let sh = ob & 63;
        dst[w] |= ext << sh;
        if sh + nb > 64 {
            dst[w + 1] |= ext >> (64 - sh);
        }
        ob += nb;
    }
}

// ---------------------------------------------------------------------
// BitCols
// ---------------------------------------------------------------------

/// Columns as packed bit rows over a `0..n_atoms` universe, with the
/// same building protocol as [`FlatCols`]: `push` atoms into an
/// in-progress row, then `finish_col` or `cancel_col`. Row `i` is
/// `rows[i*width..(i+1)*width]`; the tail `width` words are the
/// in-progress row (kept zeroed between columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitCols {
    n_atoms: usize,
    width: usize,
    rows: Vec<u64>,
    lens: Vec<u32>,
    /// Σ lens — `FlatCols::total_len` parity without re-popcounting.
    entries: usize,
    /// Atoms in the in-progress row.
    building: u32,
}

impl BitCols {
    /// An empty collection over a `0..n_atoms` universe.
    pub fn new(n_atoms: usize) -> Self {
        Self::with_capacity(n_atoms, 0)
    }

    /// Room for `cols` columns without reallocation (pool-backed
    /// buffers, like [`FlatCols`]).
    pub fn with_capacity(n_atoms: usize, cols: usize) -> Self {
        let width = words(n_atoms);
        let mut rows = take_u64((cols + 1) * width);
        rows.resize(width, 0);
        BitCols { n_atoms, width, rows, lens: take_u32(cols), entries: 0, building: 0 }
    }

    /// Universe size.
    #[inline]
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// Words per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of sealed columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.lens.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Total atom count `p = Σ |col|` across sealed columns.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.entries
    }

    /// Length of column `i` without scanning its row.
    #[inline]
    pub fn col_len(&self, i: usize) -> usize {
        self.lens[i] as usize
    }

    /// Row `i` as a word slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.rows[i * self.width..(i + 1) * self.width]
    }

    /// Iterates column `i`'s atoms ascending (bit order == atom order).
    #[inline]
    pub fn ones(&self, i: usize) -> Ones<'_> {
        ones(self.row(i))
    }

    #[inline]
    fn tail_start(&self) -> usize {
        self.rows.len() - self.width
    }

    /// Adds `atom` to the in-progress column.
    #[inline]
    pub fn push(&mut self, atom: u32) {
        debug_assert!((atom as usize) < self.n_atoms);
        let start = self.tail_start();
        let w = &mut self.rows[start + (atom >> 6) as usize];
        debug_assert_eq!(*w >> (atom & 63) & 1, 0, "atom pushed twice");
        *w |= 1u64 << (atom & 63);
        self.building += 1;
    }

    /// Atoms pushed to the in-progress column so far.
    #[inline]
    pub fn building_len(&self) -> usize {
        self.building as usize
    }

    /// Seals the in-progress column.
    #[inline]
    pub fn finish_col(&mut self) {
        let len = self.building;
        self.finish_col_with_len(len);
    }

    /// Seals with a precomputed length (skips nothing today — the count
    /// is tracked — but lets kernel writers that fill the tail row
    /// directly state the popcount they already know).
    #[inline]
    fn finish_col_with_len(&mut self, len: u32) {
        debug_assert_eq!(
            self.rows[self.tail_start()..].iter().map(|w| w.count_ones()).sum::<u32>(),
            len
        );
        self.lens.push(len);
        self.entries += len as usize;
        self.building = 0;
        self.rows.resize(self.rows.len() + self.width, 0);
    }

    /// Discards the in-progress column.
    #[inline]
    pub fn cancel_col(&mut self) {
        let start = self.tail_start();
        self.rows[start..].fill(0);
        self.building = 0;
    }

    /// Appends one column from an iterator of atoms.
    pub fn push_col(&mut self, col: impl IntoIterator<Item = u32>) {
        for a in col {
            self.push(a);
        }
        self.finish_col();
    }

    /// Seals a column formed by compacting `src` through `mask` (see
    /// [`compact`]); `len` is its known popcount `|src ∩ mask|`.
    #[inline]
    fn push_compacted(&mut self, src: &[u64], mask: &[u64], len: u32) {
        let start = self.tail_start();
        compact(&mut self.rows[start..], src, mask);
        self.finish_col_with_len(len);
    }

    /// Materializes as a CSR arena (PQ-tree base case, differential
    /// tests).
    pub fn to_flat(&self) -> FlatCols {
        let mut out = FlatCols::with_capacity(self.n_cols(), self.total_len());
        for i in 0..self.n_cols() {
            out.push_col(self.ones(i));
        }
        out
    }
}

impl Drop for BitCols {
    fn drop(&mut self) {
        recycle_u64(std::mem::take(&mut self.rows));
        recycle_u32(std::mem::take(&mut self.lens));
    }
}

/// Ascending set-bit iterator over a word slice.
pub struct Ones<'a> {
    words: &'a [u64],
    wi: usize,
    cur: u64,
}

/// Iterates the set bits of `words` ascending.
#[inline]
pub fn ones(words: &[u64]) -> Ones<'_> {
    Ones { words, wi: 0, cur: words.first().copied().unwrap_or(0) }
}

impl Iterator for Ones<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.cur == 0 {
            self.wi += 1;
            if self.wi >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.wi];
        }
        let b = self.cur.trailing_zeros();
        self.cur &= self.cur - 1;
        Some((self.wi as u32) << 6 | b)
    }
}

/// Sets the bits named by a sorted atom slice (pool-backed; callers
/// recycle).
fn mask_from_atoms(atoms: &[u32], width: usize) -> Vec<u64> {
    let mut mask = take_u64(width);
    mask.resize(width, 0);
    for &a in atoms {
        mask[(a >> 6) as usize] |= 1u64 << (a & 63);
    }
    mask
}

/// The all-ones mask over a `0..n` universe (pool-backed; callers
/// recycle).
fn universe_mask(n: usize) -> Vec<u64> {
    let w = words(n);
    let mut mask = take_u64(w);
    mask.resize(w, !0u64);
    if n & 63 != 0 {
        mask[w - 1] = (1u64 << (n & 63)) - 1;
    }
    mask
}

// ---------------------------------------------------------------------
// BitSub: a subproblem in bit-matrix form
// ---------------------------------------------------------------------

/// A subproblem over `0..n` local atoms with bit-row columns — the
/// bit-matrix twin of [`SubProblem`].
#[derive(Debug, Clone)]
pub struct BitSub {
    /// Local atom count.
    pub n: usize,
    /// Columns as bit rows.
    pub cols: BitCols,
}

impl BitSub {
    /// Converts a CSR subproblem (the representation crossover,
    /// `O(p + m·width)`).
    pub fn from_sub(sub: &SubProblem) -> Self {
        let mut cols = BitCols::with_capacity(sub.n, sub.cols.n_cols());
        for col in sub.cols.iter() {
            for &a in col {
                cols.push(a);
            }
            cols.finish_col();
        }
        BitSub { n: sub.n, cols }
    }

    /// Materializes back to CSR form.
    pub fn to_sub(&self) -> SubProblem {
        SubProblem { n: self.n, cols: self.cols.to_flat() }
    }
}

/// [`crate::solver::SplitData`]'s bit-matrix twin: the split columns stay
/// CSR (the combine step — decompose/align/merge — is shared with the
/// CSR path and consumes atom slices), only the child subproblems stay
/// in bit form.
pub struct BitSplit {
    /// Segment atoms (subproblem-local, sorted).
    pub a1: Vec<u32>,
    /// Host atoms.
    pub a2: Vec<u32>,
    /// Per-column split + crossing type (shared combine input).
    pub split_cols: SplitCols,
    /// Segment subproblem.
    pub sub1: BitSub,
    /// Host subproblem.
    pub sub2: BitSub,
}

/// Word-parallel divide: the bit-matrix version of
/// [`crate::solver::prepare_split`], producing the same [`SplitCols`]
/// arena bit-for-bit and the two child subproblems as bit matrices.
/// Classification is one AND+popcount per row word; each kept child row
/// is a [`compact`] through its side's mask.
pub fn prepare_split_bits(sub: &BitSub, a1: &[u32]) -> BitSplit {
    let k = sub.n;
    let w = sub.cols.width();
    let m = sub.cols.n_cols();
    let p = sub.cols.total_len();
    let k1 = a1.len();
    let k2 = k - k1;
    debug_assert!(k1 > 0 && k2 > 0, "partition must be proper");
    let mask1 = mask_from_atoms(a1, w);
    let mut mask2 = universe_mask(k);
    for (m2, &m1) in mask2.iter_mut().zip(&mask1) {
        *m2 &= !m1;
    }
    let mut a2 = take_u32(k2);
    a2.extend(ones(&mask2));
    let mut split_cols = SplitCols::with_capacity(m, p);
    let mut cols1 = BitCols::with_capacity(k1, m);
    let mut cols2 = BitCols::with_capacity(k2, m);
    for ci in 0..m {
        let row = sub.cols.row(ci);
        let len = sub.cols.col_len(ci) as u32;
        let mut sn = 0u32;
        for (&r, &m1) in row.iter().zip(&mask1) {
            sn += (r & m1).count_ones();
        }
        let hn = len - sn;
        // parts arena: segment atoms ascending, then host atoms — the
        // same layout the CSR classifier streams out
        for (i, (&r, &m1)) in row.iter().zip(&mask1).enumerate() {
            let mut bits = r & m1;
            while bits != 0 {
                split_cols.parts.push((i as u32) << 6 | bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        for (i, (&r, &m2)) in row.iter().zip(&mask2).enumerate() {
            let mut bits = r & m2;
            while bits != 0 {
                split_cols.parts.push((i as u32) << 6 | bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        let ty = if sn == 0 || hn == 0 {
            CrossType::C
        } else if sn as usize == k1 {
            CrossType::A
        } else {
            CrossType::B
        };
        split_cols.finish_parts_col(sn as usize, ty);
        // side projections keep restrictions with ≥ 2 atoms that do not
        // cover the whole side — decided before any child work is done
        if sn >= 2 && (sn as usize) < k1 {
            cols1.push_compacted(row, &mask1, sn);
        }
        if hn >= 2 && (hn as usize) < k2 {
            cols2.push_compacted(row, &mask2, hn);
        }
    }
    let mut a1v = take_u32(k1);
    a1v.extend_from_slice(a1);
    recycle_u64(mask1);
    recycle_u64(mask2);
    BitSplit {
        a1: a1v,
        a2,
        split_cols,
        sub1: BitSub { n: k1, cols: cols1 },
        sub2: BitSub { n: k2, cols: cols2 },
    }
}

impl Drop for BitSplit {
    fn drop(&mut self) {
        recycle_u32(std::mem::take(&mut self.a1));
        recycle_u32(std::mem::take(&mut self.a2));
    }
}

/// [`crate::partition::proper_column`] on bit rows: lengths are cached,
/// so this is the same `O(m)` scan.
pub fn proper_column_bits(sub: &BitSub) -> Option<usize> {
    let k = sub.n;
    (0..sub.cols.n_cols()).find(|&ci| {
        let len = sub.cols.col_len(ci);
        3 * len >= k && 3 * len <= 2 * k
    })
}

/// [`crate::partition::tucker_transform`] on bit rows: small columns are
/// copied (zero-extended to the `k+1`-atom universe), large columns
/// complement in `O(width)` words instead of an `O(k)` scan, with the
/// transform atom `r = k` set as the top bit.
pub fn tucker_transform_bits(sub: &BitSub) -> BitSub {
    let k = sub.n;
    let w = sub.cols.width();
    let m = sub.cols.n_cols();
    let uni = universe_mask(k);
    let mut out = BitCols::with_capacity(k + 1, m);
    for ci in 0..m {
        let len = sub.cols.col_len(ci);
        let row = sub.cols.row(ci);
        if 3 * len <= 2 * k {
            // small column — keep (drop below two atoms)
            if len >= 2 {
                let start = out.tail_start();
                out.rows[start..start + w].copy_from_slice(row);
                out.finish_col_with_len(len as u32);
            }
            continue;
        }
        let clen = (k - len + 1) as u32; // complement + r
        if clen >= 2 {
            let start = out.tail_start();
            for i in 0..w {
                out.rows[start + i] = !row[i] & uni[i];
            }
            out.rows[start + (k >> 6)] |= 1u64 << (k & 63);
            out.finish_col_with_len(clen);
        }
    }
    BitSub { n: k + 1, cols: out }
}

/// Projects one connected component of a transformed instance onto its
/// (sorted) atom set — `component_sub`'s bit twin; the
/// renumbering is a [`compact`] through the component mask.
pub fn component_sub_bits(atoms: &[u32], col_ids: &[u32], t: &BitSub) -> BitSub {
    let kc = atoms.len();
    let mask = mask_from_atoms(atoms, t.cols.width());
    let mut cols = BitCols::with_capacity(kc, col_ids.len());
    for &ci in col_ids {
        let row = t.cols.row(ci as usize);
        debug_assert!(
            row.iter().zip(&mask).all(|(&r, &m)| r & !m == 0),
            "component column must stay inside the component atoms"
        );
        cols.push_compacted(row, &mask, t.cols.col_len(ci as usize) as u32);
    }
    BitSub { n: kc, cols }
}

/// Span check on bit rows — [`crate::solver::verify_spans`] for the
/// paranoid mode of the bit path.
pub(crate) fn verify_spans_bits(sub: &BitSub, order: &[u32]) {
    let mut pos = vec![u32::MAX; sub.n];
    for (i, &a) in order.iter().enumerate() {
        pos[a as usize] = i as u32;
    }
    for ci in 0..sub.cols.n_cols() {
        let mut lo = u32::MAX;
        let mut hi = 0;
        for a in sub.cols.ones(ci) {
            lo = lo.min(pos[a as usize]);
            hi = hi.max(pos[a as usize]);
        }
        assert_eq!(
            (hi - lo + 1) as usize,
            sub.cols.col_len(ci),
            "realization invariant violated on the bit path"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{grow_segment, tucker_transform, Growth};
    use crate::solver::prepare_split;

    #[test]
    fn pext_soft_matches_hw() {
        let cases = [
            (0u64, 0u64),
            (!0, !0),
            (0xDEAD_BEEF_0123_4567, 0xF0F0_F0F0_F0F0_F0F0),
            (0x8000_0000_0000_0001, 0x8000_0000_0000_0001),
            (u64::MAX, 1),
        ];
        for (x, m) in cases {
            assert_eq!(pext64(x, m), pext64_soft(x, m), "x={x:#x} m={m:#x}");
        }
    }

    #[test]
    fn build_and_read_back_bits() {
        let mut bc = BitCols::new(130);
        bc.push_col([1, 64, 129]);
        bc.push_col([] as [u32; 0]);
        bc.push(5);
        bc.cancel_col();
        bc.push_col([0, 2]);
        assert_eq!(bc.n_cols(), 3);
        assert_eq!(bc.total_len(), 5);
        assert_eq!(bc.col_len(0), 3);
        assert_eq!(bc.ones(0).collect::<Vec<_>>(), vec![1, 64, 129]);
        assert_eq!(bc.ones(1).count(), 0);
        assert_eq!(bc.ones(2).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(bc.to_flat(), FlatCols::from_cols([[1u32, 64, 129].as_slice(), &[], &[0, 2]]));
    }

    #[test]
    fn degenerate_universes() {
        // 0-atom and 1-atom universes: building protocol stays panic-free
        let mut bc = BitCols::new(0);
        bc.finish_col();
        assert_eq!(bc.n_cols(), 1);
        assert_eq!(bc.col_len(0), 0);
        let mut bc = BitCols::new(1);
        bc.push(0);
        bc.finish_col();
        assert_eq!(bc.ones(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(bc.to_flat().col(0), &[0]);
    }

    #[test]
    fn roundtrip_matches_flat() {
        let sub = SubProblem {
            n: 70,
            cols: FlatCols::from_cols([[0u32, 1, 69].as_slice(), &[63, 64, 65], &[2, 3]]),
        };
        let b = BitSub::from_sub(&sub);
        assert_eq!(b.to_sub(), sub);
        assert_eq!(b.cols.total_len(), sub.cols.total_len());
    }

    /// The bit divide must match the CSR divide's arena contents exactly.
    #[test]
    fn prepare_split_bits_matches_csr() {
        let sub = SubProblem {
            n: 6,
            cols: FlatCols::from_cols([[1u32, 3].as_slice(), &[0, 2], &[1, 2, 3, 4], &[2, 3]]),
        };
        let bsub = BitSub::from_sub(&sub);
        let a1 = [1u32, 3, 4];
        let csr = prepare_split(&sub, &a1);
        let bit = prepare_split_bits(&bsub, &a1);
        assert_eq!(bit.a1, csr.a1);
        assert_eq!(bit.a2, csr.a2);
        for ci in 0..csr.split_cols.len() {
            assert_eq!(bit.split_cols.seg(ci), csr.split_cols.seg(ci), "col {ci}");
            assert_eq!(bit.split_cols.host(ci), csr.split_cols.host(ci), "col {ci}");
            assert_eq!(bit.split_cols.ty(ci), csr.split_cols.ty(ci), "col {ci}");
        }
        assert_eq!(bit.sub1.to_sub(), csr.sub1);
        assert_eq!(bit.sub2.to_sub(), csr.sub2);
    }

    /// Multi-word randomized divide differential (crosses word
    /// boundaries so the compact spill path is exercised).
    #[test]
    fn prepare_split_bits_matches_csr_multiword() {
        let k = 150usize;
        let mut state = 0x9E37_79B9_u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut cols = FlatCols::new();
        for _ in 0..60 {
            let lo = rand() as usize % (k - 1);
            let len = 2 + rand() as usize % (k - lo - 1).max(1);
            cols.push_col((lo..(lo + len).min(k)).map(|a| a as u32));
        }
        let sub = SubProblem { n: k, cols };
        let bsub = BitSub::from_sub(&sub);
        // an interleaved split that straddles word boundaries
        let a1: Vec<u32> = (0..k as u32).filter(|a| a % 3 != 0).collect();
        let csr = prepare_split(&sub, &a1);
        let bit = prepare_split_bits(&bsub, &a1);
        assert_eq!(bit.a2, csr.a2);
        for ci in 0..csr.split_cols.len() {
            assert_eq!(bit.split_cols.seg(ci), csr.split_cols.seg(ci));
            assert_eq!(bit.split_cols.host(ci), csr.split_cols.host(ci));
            assert_eq!(bit.split_cols.ty(ci), csr.split_cols.ty(ci));
        }
        assert_eq!(bit.sub1.to_sub(), csr.sub1);
        assert_eq!(bit.sub2.to_sub(), csr.sub2);
    }

    #[test]
    fn transform_bits_matches_csr() {
        for (n, colsets) in [
            (6usize, vec![vec![0u32, 1, 2, 3, 4], vec![0, 1]]),
            (5, vec![vec![0, 1, 2, 3, 4]]),
            (65, vec![(0..64u32).collect::<Vec<_>>(), vec![1, 2]]),
            (64, vec![(0..63u32).collect::<Vec<_>>(), vec![0, 63]]),
        ] {
            let sub = SubProblem { n, cols: FlatCols::from_cols(&colsets) };
            let t_csr = tucker_transform(&sub);
            let t_bit = tucker_transform_bits(&BitSub::from_sub(&sub));
            assert_eq!(t_bit.n, t_csr.n, "n={n}");
            assert_eq!(t_bit.to_sub().cols, t_csr.cols, "n={n}");
        }
    }

    #[test]
    fn growth_bits_matches_csr() {
        let sub = SubProblem {
            n: 9,
            cols: FlatCols::from_cols([[0u32, 1].as_slice(), &[1, 2], &[2, 3], &[5, 6], &[7, 8]]),
        };
        let bsub = BitSub::from_sub(&sub);
        match (grow_segment(&sub), crate::partition::grow_segment_bits(&bsub)) {
            (Growth::Segment(a), Growth::Segment(b)) => assert_eq!(a, b),
            _ => panic!("both must grow the same segment"),
        }
        let sub = SubProblem {
            n: 9,
            cols: FlatCols::from_cols([[0u32, 1].as_slice(), &[3, 4], &[6, 7]]),
        };
        let bsub = BitSub::from_sub(&sub);
        match (grow_segment(&sub), crate::partition::grow_segment_bits(&bsub)) {
            (Growth::Components(a), Growth::Components(b)) => assert_eq!(a, b),
            _ => panic!("both must decompose"),
        }
    }

    #[test]
    fn component_sub_bits_matches_csr() {
        let t = SubProblem {
            n: 8,
            cols: FlatCols::from_cols([[1u32, 3].as_slice(), &[3, 5, 7], &[0, 2]]),
        };
        let bt = BitSub::from_sub(&t);
        let atoms = [1u32, 3, 5, 7];
        let col_ids = [0u32, 1];
        let csr =
            crate::solver::component_sub(&atoms, col_ids.iter().map(|&ci| t.cols.col(ci as usize)));
        let bit = component_sub_bits(&atoms, &col_ids, &bt);
        assert_eq!(bit.to_sub(), csr);
    }

    #[test]
    fn use_bitmat_threshold_semantics() {
        assert!(!use_bitmat(32, 10, 50, 0), "0 = always CSR");
        assert!(use_bitmat(1 << 20, 10, 11, usize::MAX), "MAX = always bitmat");
        assert!(use_bitmat(64, 100, 200, BITMAT_DEFAULT_THRESHOLD), "one word: always");
        // k = 512 spans 8 words: the 8-atoms-per-row-word bar is 8·m·8
        assert!(use_bitmat(512, 100, 6400, BITMAT_DEFAULT_THRESHOLD), "dense enough");
        assert!(!use_bitmat(512, 100, 6399, BITMAT_DEFAULT_THRESHOLD), "too sparse");
        assert!(!use_bitmat(513, 100, 10_000, 512), "above threshold");
        assert!(!use_bitmat(8, 0, 0, BITMAT_DEFAULT_THRESHOLD), "no columns");
    }
}

//! Thread-sweep determinism for the parallel driver (ISSUE 3).
//!
//! The scheduler (work-stealing pool, adaptive cutoff, parallel divide
//! and fan-out) must be *invisible* in the results: whatever the thread
//! count, `solve_par` must return exactly the order the sequential
//! solver returns on accepts, and the same verdict — with identical
//! evidence — on rejects. Combines are deterministic and sibling
//! results are consumed in a fixed order, so any divergence here means
//! a data race or a scheduling-dependent code path.

use c1p_core::parallel::solve_par;
use c1p_core::{solve, Config};
use c1p_matrix::generate::{planted_c1p, PlantedShape};
use c1p_matrix::tucker;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const THREADS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn accepts_agree_with_sequential_across_thread_counts() {
    for (seed, n) in [(11u64, 300usize), (12, 900), (13, 2500)] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (ens, _) = planted_c1p(
            PlantedShape { n_atoms: n, n_columns: 2 * n, min_len: 2, max_len: n / 3 + 2 },
            &mut rng,
        );
        let expect = solve(&ens).expect("planted instance accepted");
        for t in THREADS {
            let (got, stats) = c1p_pram::with_threads(t, || solve_par(&ens));
            let got = got.unwrap_or_else(|_| panic!("n={n} t={t}: parallel driver rejected"));
            assert_eq!(got, expect, "n={n} t={t}: order diverged from sequential");
            assert!(stats.cost.work > 0 && stats.cost.depth > 0, "n={n} t={t}");
        }
    }
}

#[test]
fn rejects_agree_with_sequential_across_thread_counts() {
    // planted instances with one embedded Tucker obstruction each
    let cases = [
        (600usize, tucker::m_i(3), 101usize),
        (600, tucker::m_ii(2), 102),
        (600, tucker::m_iii(2), 103),
        (600, tucker::m_iv(), 104),
        (600, tucker::m_v(), 105),
    ];
    for (n, obs, seed) in cases {
        let bad = tucker::embed_obstruction(&obs, n, seed, &[(0, n / 3), (n / 2, n / 3)]);
        let expect = solve(&bad).expect_err("obstruction must be rejected");
        for t in THREADS {
            let (got, _) = c1p_pram::with_threads(t, || solve_par(&bad));
            let rej = got.expect_err("parallel driver must reject");
            assert_eq!(rej.atoms, expect.atoms, "seed {seed} t={t}: evidence diverged");
        }
    }
    // the bare generators, swept too (tiny: exercises the base cases)
    for (name, ens) in tucker::small_obstructions() {
        for t in THREADS {
            let (got, _) = c1p_pram::with_threads(t, || solve_par(&ens));
            assert!(got.is_err(), "{name} t={t}: must reject");
        }
    }
}

/// ISSUE 10 satellites 3+4: the bitmat threshold swept against the thread
/// count. The parallel driver consults the same `use_bitmat` rule as the
/// sequential one, so whatever mix of CSR and bit-matrix subtrees a solve
/// lands on — pure CSR (0), pure bits (`usize::MAX`), adaptive default,
/// or a mid-tree flip (64) — every thread count must reproduce the
/// sequential order on accepts and the sequential evidence on rejects.
#[test]
fn bitmat_thresholds_agree_across_thread_counts() {
    let thresholds = [0usize, 64, c1p_core::bitmat::BITMAT_DEFAULT_THRESHOLD, usize::MAX];
    // accept side: planted instance large enough that the parallel driver
    // actually forks and the adaptive/mid thresholds flip mid-tree
    let mut rng = SmallRng::seed_from_u64(0xB17D);
    let (ens, _) = planted_c1p(
        PlantedShape { n_atoms: 1800, n_columns: 3600, min_len: 2, max_len: 200 },
        &mut rng,
    );
    // reject side: an embedded obstruction in a same-shaped instance
    let bad = tucker::embed_obstruction(&tucker::m_iii(2), 900, 42, &[(0, 300), (450, 300)]);
    let expect_order = solve(&ens).expect("planted instance accepted");
    let expect_rej = solve(&bad).expect_err("obstruction rejected");
    for threshold in thresholds {
        let cfg = Config { bitmat_threshold: threshold, ..Config::default() };
        let (seq_order, seq_stats) = c1p_core::solve_with(&ens, &cfg);
        assert_eq!(seq_order.as_ref().unwrap(), &expect_order, "threshold {threshold:#x}: seq");
        if threshold == 64 {
            // the satellite-3 shape: both representations in one solve
            assert!(
                seq_stats.bitmat_converts > 0 && seq_stats.csr_divides > 0,
                "threshold 64 must mix representations (converts={}, csr_divides={})",
                seq_stats.bitmat_converts,
                seq_stats.csr_divides
            );
        }
        let seq_rej = c1p_core::solve_with(&bad, &cfg).0.expect_err("seq reject");
        assert_eq!(seq_rej.atoms, expect_rej.atoms, "threshold {threshold:#x}: seq evidence");
        for t in THREADS {
            let (got, _) =
                c1p_pram::with_threads(t, || c1p_core::parallel::solve_par_with(&ens, &cfg));
            assert_eq!(got.unwrap(), expect_order, "threshold {threshold:#x} t={t}: order");
            let (got, _) =
                c1p_pram::with_threads(t, || c1p_core::parallel::solve_par_with(&bad, &cfg));
            assert_eq!(
                got.expect_err("par reject").atoms,
                expect_rej.atoms,
                "threshold {threshold:#x} t={t}: evidence"
            );
        }
    }
}

#[test]
fn explicit_and_auto_cutoffs_agree() {
    let mut rng = SmallRng::seed_from_u64(77);
    let (ens, _) = planted_c1p(
        PlantedShape { n_atoms: 1200, n_columns: 2400, min_len: 2, max_len: 150 },
        &mut rng,
    );
    let expect = solve(&ens).unwrap();
    for t in [2usize, 4] {
        for cutoff in [0usize, 32, 512, Config::AUTO_CUTOFF] {
            let cfg = Config { seq_cutoff: cutoff, ..Config::default() };
            let (got, _) =
                c1p_pram::with_threads(t, || c1p_core::parallel::solve_par_with(&ens, &cfg));
            assert_eq!(got.unwrap(), expect, "t={t} cutoff={cutoff:#x}");
        }
    }
}

//! Allocation-count regression test for the flat-CSR divide path.
//!
//! The seed's nested `Vec<Vec<u32>>` subproblems allocated ~155 heap
//! blocks per column on a planted instance (measured at n=4096, m=2n:
//! ~1.27M allocations). The CSR arenas cut that to ~54 per column
//! (~0.44M). This test pins the budget at 100 per column — roughly
//! midway — so a regression back to per-column-per-level heap traffic
//! fails loudly while normal drift doesn't.

use c1p_core::Config;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: Counting = Counting;

#[test]
fn divide_path_stays_allocation_lean() {
    let n = 4096;
    let m = 2 * n;
    let mut rng = SmallRng::seed_from_u64(0xC190 ^ 1);
    let (ens, _) = c1p_matrix::generate::planted_c1p(
        c1p_matrix::generate::PlantedShape { n_atoms: n, n_columns: m, min_len: 2, max_len: 24 },
        &mut rng,
    );
    // The same budget must hold for pure CSR (threshold 0), the adaptive
    // default (mixed CSR/bitmat), and pure bitmat (usize::MAX): the bit
    // path's arenas are recycled the same way, so swapping the column
    // representation must not reintroduce per-column heap traffic.
    for threshold in [0, c1p_core::bitmat::BITMAT_DEFAULT_THRESHOLD, usize::MAX] {
        // paranoid verification allocates per subproblem and is debug-only
        // noise — turn it off so debug and release measure the same solver.
        let cfg = Config {
            pq_base_threshold: 0,
            paranoid: false,
            bitmat_threshold: threshold,
            ..Config::default()
        };
        let before = ALLOCS.load(Ordering::Relaxed);
        let (order, stats) = c1p_core::solve_with(&ens, &cfg);
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        assert!(order.is_ok(), "planted instance must be accepted");
        let budget = 100 * m as u64;
        assert!(
            allocs < budget,
            "solve (bitmat_threshold={threshold:#x}) allocated {allocs} blocks (> {budget}) \
             across {} subproblems — did per-column heap traffic creep back into the divide path?",
            stats.subproblems
        );
    }
}

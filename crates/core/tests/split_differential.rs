//! Differential tests for the flat-CSR divide path.
//!
//! Two layers of evidence that the CSR rewrite preserved the seed
//! semantics exactly:
//!
//! 1. `prepare_split` is compared column-by-column against the seed's
//!    nested-vec divide (`c1p_bench::naive` — the one canonical copy,
//!    shared with the benchmarks), including its `sort_unstable` —
//!    which the monotone-renumbering argument says is the identity on
//!    already-sorted projections, and these tests confirm it.
//! 2. The whole solver is compared against the independent Booth–Lueker
//!    baseline (`c1p-pqtree`) on random ensembles — accept and reject
//!    paths — plus exhaustive small instances.

use c1p_bench::naive::{naive_prepare_split, NaiveSub};
use c1p_core::solver::{prepare_split, SubProblem};
use c1p_core::{Config, FlatCols};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

// ---------------------------------------------------------------------
// layer 1: the divide against the seed's nested-vec semantics
// ---------------------------------------------------------------------

fn random_subproblem(rng: &mut SmallRng, max_n: usize, max_m: usize) -> SubProblem {
    let n = rng.random_range(3..=max_n);
    let m = rng.random_range(1..=max_m);
    let mut cols = FlatCols::new();
    for _ in 0..m {
        let len = rng.random_range(2..=n);
        let start = rng.random_range(0..=n - len);
        // a random sorted subset: interval or scattered mask
        if rng.random_range(0..2usize) == 0 {
            cols.push_col(start as u32..(start + len) as u32);
        } else {
            let picked: Vec<u32> =
                (0..n as u32).filter(|_| rng.random_range(0..3usize) == 0).collect();
            if picked.len() >= 2 {
                cols.push_col(picked);
            } else {
                cols.push_col([0, n as u32 - 1]);
            }
        }
    }
    SubProblem { n, cols }
}

#[test]
fn flat_divide_matches_seed_semantics() {
    for seed in 0..400u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sub = random_subproblem(&mut rng, 24, 8);
        let n = sub.n;
        // random proper A1 (nonempty, not everything)
        let a1: Vec<u32> = loop {
            let cut: Vec<u32> =
                (0..n as u32).filter(|_| rng.random_range(0..2usize) == 0).collect();
            if !cut.is_empty() && cut.len() < n {
                break cut;
            }
        };
        let nested = NaiveSub { n, cols: sub.cols.iter().map(|c| c.to_vec()).collect() };
        let (ref_split, ref_sub1, ref_sub2) = naive_prepare_split(&nested, &a1);
        let got = prepare_split(&sub, &a1);
        assert_eq!(got.a1, a1, "seed {seed}");
        assert_eq!(got.split_cols.len(), ref_split.len(), "seed {seed}");
        for (ci, sc) in ref_split.iter().enumerate() {
            assert_eq!(got.split_cols.seg(ci), sc.seg_part.as_slice(), "seed {seed} col {ci}");
            assert_eq!(got.split_cols.host(ci), sc.host_part.as_slice(), "seed {seed} col {ci}");
            // CrossType discriminants: A=0, B=1, C=2 (naive.ty encoding)
            assert_eq!(got.split_cols.ty(ci) as u8, sc.ty, "seed {seed} col {ci}");
        }
        assert_eq!(got.sub1.n, ref_sub1.n, "seed {seed}");
        assert_eq!(got.sub2.n, ref_sub2.n, "seed {seed}");
        let got_cols1: Vec<Vec<u32>> = got.sub1.cols.iter().map(|c| c.to_vec()).collect();
        let got_cols2: Vec<Vec<u32>> = got.sub2.cols.iter().map(|c| c.to_vec()).collect();
        assert_eq!(got_cols1, ref_sub1.cols, "seed {seed}: segment projection differs");
        assert_eq!(got_cols2, ref_sub2.cols, "seed {seed}: host projection differs");
    }
}

#[test]
fn parallel_divide_matches_sequential_divide() {
    use c1p_core::solver::prepare_split_par;
    // run on a real multi-worker pool so the fills genuinely race
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    pool.install(|| {
        for seed in 0..200u64 {
            let mut rng = SmallRng::seed_from_u64(0x9A7 ^ seed);
            let sub = random_subproblem(&mut rng, 40, 12);
            let n = sub.n;
            let a1: Vec<u32> = loop {
                let cut: Vec<u32> =
                    (0..n as u32).filter(|_| rng.random_range(0..2usize) == 0).collect();
                if !cut.is_empty() && cut.len() < n {
                    break cut;
                }
            };
            let seq = prepare_split(&sub, &a1);
            let par = prepare_split_par(&sub, &a1);
            assert_eq!(par.a1, seq.a1, "seed {seed}");
            assert_eq!(par.a2, seq.a2, "seed {seed}");
            assert_eq!(par.sub1, seq.sub1, "seed {seed}: segment projection differs");
            assert_eq!(par.sub2, seq.sub2, "seed {seed}: host projection differs");
            assert_eq!(par.split_cols.len(), seq.split_cols.len(), "seed {seed}");
            for ci in 0..seq.split_cols.len() {
                assert_eq!(par.split_cols.seg(ci), seq.split_cols.seg(ci), "seed {seed} col {ci}");
                assert_eq!(
                    par.split_cols.host(ci),
                    seq.split_cols.host(ci),
                    "seed {seed} col {ci}"
                );
                assert_eq!(par.split_cols.ty(ci), seq.split_cols.ty(ci), "seed {seed} col {ci}");
            }
        }
    });
}

#[test]
fn bit_divide_matches_flat_divide() {
    use c1p_core::bitmat::{prepare_split_bits, BitSub};
    for seed in 0..300u64 {
        let mut rng = SmallRng::seed_from_u64(0xB17 ^ seed);
        // > 64 atoms sometimes, so multi-word rows are exercised
        let sub = random_subproblem(&mut rng, 100, 12);
        let n = sub.n;
        let a1: Vec<u32> = loop {
            let cut: Vec<u32> =
                (0..n as u32).filter(|_| rng.random_range(0..2usize) == 0).collect();
            if !cut.is_empty() && cut.len() < n {
                break cut;
            }
        };
        let seq = prepare_split(&sub, &a1);
        let bit = prepare_split_bits(&BitSub::from_sub(&sub), &a1);
        assert_eq!(bit.a1, seq.a1, "seed {seed}");
        assert_eq!(bit.a2, seq.a2, "seed {seed}");
        assert_eq!(bit.split_cols.len(), seq.split_cols.len(), "seed {seed}");
        for ci in 0..seq.split_cols.len() {
            assert_eq!(bit.split_cols.seg(ci), seq.split_cols.seg(ci), "seed {seed} col {ci}");
            assert_eq!(bit.split_cols.host(ci), seq.split_cols.host(ci), "seed {seed} col {ci}");
            assert_eq!(bit.split_cols.ty(ci), seq.split_cols.ty(ci), "seed {seed} col {ci}");
        }
        assert_eq!(bit.sub1.to_sub(), seq.sub1, "seed {seed}: segment projection differs");
        assert_eq!(bit.sub2.to_sub(), seq.sub2, "seed {seed}: host projection differs");
    }
}

// ---------------------------------------------------------------------
// layer 2: whole-solver differential vs Booth–Lueker
// ---------------------------------------------------------------------

fn mask_ensemble(rng: &mut SmallRng, max_n: usize, max_m: usize) -> c1p_matrix::Ensemble {
    let n = rng.random_range(2..=max_n);
    let m = rng.random_range(0..=max_m);
    let cols: Vec<Vec<u32>> = (0..m)
        .map(|_| {
            let mask = rng.random_range(1u64..(1 << n));
            (0..n as u32).filter(|&a| mask >> a & 1 == 1).collect()
        })
        .collect();
    c1p_matrix::Ensemble::from_columns(n, cols).unwrap()
}

#[test]
fn solver_matches_pqtree_on_random_accept_and_reject() {
    let mut accepts = 0usize;
    let mut rejects = 0usize;
    for seed in 0..600u64 {
        let mut rng = SmallRng::seed_from_u64(0x5EED ^ seed);
        let ens = mask_ensemble(&mut rng, 10, 7);
        let dc = c1p_core::solve(&ens);
        let pq = c1p_pqtree::solve(ens.n_atoms(), ens.columns());
        assert_eq!(dc.is_ok(), pq.is_some(), "seed {seed}:\n{}", ens.to_matrix());
        if let Ok(o) = &dc {
            accepts += 1;
            c1p_matrix::verify_linear(&ens, o).unwrap();
        } else {
            rejects += 1;
        }
    }
    // both paths must actually be exercised for the test to mean anything
    assert!(accepts > 50, "too few accepts ({accepts}) — workload drifted");
    assert!(rejects > 50, "too few rejects ({rejects}) — workload drifted");
}

#[test]
fn solver_matches_pqtree_on_planted_with_noise() {
    for seed in 0..120u64 {
        let mut rng = SmallRng::seed_from_u64(0xA150 ^ seed);
        let n = rng.random_range(16..=160);
        let (ens, _) = c1p_matrix::generate::planted_c1p(
            c1p_matrix::generate::PlantedShape {
                n_atoms: n,
                n_columns: 2 * n,
                min_len: 2,
                max_len: (n / 3).max(2),
            },
            &mut rng,
        );
        // clean planted: must accept
        assert!(c1p_core::solve(&ens).is_ok(), "seed {seed}: clean planted rejected");
        // flip a handful of random entries; whatever the verdict, it must
        // match the PQ-tree baseline (both fast() and pure configurations)
        let mut mat = ens.to_matrix();
        for _ in 0..4 {
            let r = rng.random_range(0..mat.n_rows());
            let c = rng.random_range(0..mat.n_cols());
            mat.flip(r, c);
        }
        let noisy = mat.to_ensemble();
        let pq = c1p_pqtree::solve(noisy.n_atoms(), noisy.columns()).is_some();
        let pure = c1p_core::solve(&noisy).is_ok();
        let fast = c1p_core::solve_with(&noisy, &Config::fast()).0.is_ok();
        assert_eq!(pure, pq, "seed {seed}: pure divide-and-conquer vs pqtree");
        assert_eq!(fast, pq, "seed {seed}: pq-base-case config vs pqtree");
    }
}

/// The bitmat threshold picks a column *representation*, never a verdict:
/// pure CSR (0), pure bit-matrix (`usize::MAX`), and the adaptive default
/// must return byte-identical orders on accepts and byte-identical
/// rejection evidence on rejects, and both must match the PQ-tree.
#[test]
fn bitmat_threshold_sweep_is_verdict_invariant() {
    let thresholds = [0usize, c1p_core::bitmat::BITMAT_DEFAULT_THRESHOLD, usize::MAX];
    let mut accepts = 0usize;
    let mut rejects = 0usize;
    for seed in 0..250u64 {
        let mut rng = SmallRng::seed_from_u64(0xB175EED ^ seed);
        let ens = mask_ensemble(&mut rng, 10, 7);
        let pq = c1p_pqtree::solve(ens.n_atoms(), ens.columns()).is_some();
        let baseline =
            c1p_core::solve_with(&ens, &Config { bitmat_threshold: 0, ..Config::default() }).0;
        assert_eq!(baseline.is_ok(), pq, "seed {seed}:\n{}", ens.to_matrix());
        if baseline.is_ok() {
            accepts += 1
        } else {
            rejects += 1
        }
        for threshold in thresholds {
            let cfg = Config { bitmat_threshold: threshold, ..Config::default() };
            let (got, stats) = c1p_core::solve_with(&ens, &cfg);
            assert_eq!(got, baseline, "seed {seed} threshold {threshold:#x}:\n{}", ens.to_matrix());
            // singleton columns are dropped before realize, so the bit
            // path only ever sees components with a real column
            if threshold == usize::MAX && ens.columns().iter().any(|c| c.len() >= 2) {
                assert!(stats.bitmat_converts > 0, "seed {seed}: bit path never engaged");
            }
            if threshold == 0 {
                assert_eq!(stats.bitmat_converts, 0, "seed {seed}: bit path must stay off");
            }
        }
    }
    assert!(accepts > 20, "too few accepts ({accepts}) — workload drifted");
    assert!(rejects > 20, "too few rejects ({rejects}) — workload drifted");
    // larger planted instances: the adaptive default flips representation
    // mid-tree (CSR at the top, bitmat once components narrow)
    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0xB170 ^ seed);
        let (ens, _) = c1p_matrix::generate::planted_c1p(
            c1p_matrix::generate::PlantedShape {
                n_atoms: 1500,
                n_columns: 3000,
                min_len: 2,
                max_len: 400,
            },
            &mut rng,
        );
        let baseline =
            c1p_core::solve_with(&ens, &Config { bitmat_threshold: 0, ..Config::default() }).0;
        for threshold in thresholds {
            let cfg = Config { bitmat_threshold: threshold, ..Config::default() };
            let (got, stats) = c1p_core::solve_with(&ens, &cfg);
            assert_eq!(got, baseline, "seed {seed} threshold {threshold:#x}");
            if threshold == c1p_core::bitmat::BITMAT_DEFAULT_THRESHOLD {
                assert!(
                    stats.bitmat_converts > 0 && stats.csr_divides > 0,
                    "seed {seed}: adaptive run must mix both representations \
                     (bitmat_converts={}, csr_divides={})",
                    stats.bitmat_converts,
                    stats.csr_divides
                );
            }
        }
    }
}

#[test]
fn solver_matches_brute_force_exhaustively() {
    // every ≤ 3-column ensemble over 4 atoms
    let n = 4usize;
    let masks = 1u32 << n;
    for c1 in 0..masks {
        for c2 in 0..masks {
            for c3 in [0u32, 0b0110, 0b1011] {
                let cols: Vec<Vec<u32>> = [c1, c2, c3]
                    .iter()
                    .map(|&m| (0..n as u32).filter(|&a| m >> a & 1 == 1).collect())
                    .collect();
                let ens = c1p_matrix::Ensemble::from_columns(n, cols).unwrap();
                let dc = c1p_core::solve(&ens).is_ok();
                let brute = c1p_matrix::verify::brute_force_linear(&ens).is_some();
                assert_eq!(dc, brute, "mismatch:\n{}", ens.to_matrix());
            }
        }
    }
}

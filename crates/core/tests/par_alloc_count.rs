//! Allocation-count regression test for the *parallel* driver — the
//! sibling of `alloc_count.rs` (which pins the sequential path).
//!
//! The parallel path adds per-fork overhead on top of the CSR divide:
//! task bookkeeping, the two-pass parallel divide's offset tables, and
//! per-worker scratch pools. All of that is O(subproblems), not
//! O(p · levels): the budget below fails loudly if per-column heap
//! traffic creeps into the parallel divide or the fan-out starts
//! cloning columns. Measured after a warm-up run so one-time pool and
//! thread-local initialization stays out of the count.

use c1p_core::parallel::solve_par;
use c1p_core::Config;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: Counting = Counting;

#[test]
fn parallel_path_stays_allocation_lean() {
    let n = 4096;
    let m = 2 * n;
    let mut rng = SmallRng::seed_from_u64(0xC190 ^ 2);
    let (ens, _) = c1p_matrix::generate::planted_c1p(
        c1p_matrix::generate::PlantedShape { n_atoms: n, n_columns: m, min_len: 2, max_len: 24 },
        &mut rng,
    );
    // force real forking even on a single-core host: explicit cutoff,
    // 4-worker pool (paranoid off so debug and release measure alike)
    let cfg =
        Config { pq_base_threshold: 0, paranoid: false, seq_cutoff: 256, ..Config::default() };
    c1p_pram::with_threads(4, || {
        let (order, _) = c1p_core::parallel::solve_par_with(&ens, &cfg);
        assert!(order.is_ok(), "warm-up solve must accept");
        let before = ALLOCS.load(Ordering::Relaxed);
        let (order, stats) = c1p_core::parallel::solve_par_with(&ens, &cfg);
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        assert!(order.is_ok(), "planted instance must be accepted");
        let budget = 120 * m as u64;
        assert!(
            allocs < budget,
            "solve_par allocated {allocs} blocks (> {budget}) across {} subproblems — \
             did per-column heap traffic creep into the parallel divide or fan-out?",
            stats.subproblems
        );
    });
    // the default driver (auto cutoff, ambient pool) must stay lean too
    let (_, _) = solve_par(&ens);
    let before = ALLOCS.load(Ordering::Relaxed);
    let (order, _) = solve_par(&ens);
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(order.is_ok());
    assert!(allocs < 120 * m as u64, "default solve_par allocated {allocs} blocks");
}

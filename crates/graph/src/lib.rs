//! # c1p-graph: the general graph substrate
//!
//! Graph-theoretic foundations for the paper's Section 2: edge-labeled
//! multigraphs, connectivity and 2-connectivity (Proposition 1), separation
//! pairs and 2-separations, Whitney switches and 2-isomorphism (Theorem 1),
//! cycle-space comparison over GF(2), and a **reference Tutte
//! decomposition** (Section 2.2) computed by naive recursive splitting.
//!
//! The reference decomposition is deliberately simple and obviously correct
//! rather than fast: it exists to differentially validate the specialised
//! linear-time decomposition in `c1p-tutte` (Cunningham–Edmonds: the Tutte
//! decomposition is unique, so the two implementations must agree on every
//! input).

pub mod biconnected;
pub mod cycle_space;
pub mod multigraph;
pub mod separation;
pub mod tutte_ref;
pub mod whitney;

pub use multigraph::{EdgeId, MultiGraph, VertexId};
pub use tutte_ref::{MemberKind, RefDecomposition, RefMember};

//! Cycle spaces over GF(2), used to decide 2-isomorphism.
//!
//! Whitney's theorem (the paper's Theorem 1): two 2-connected graphs on the
//! same edge set have the same set of cycles iff they are 2-isomorphic.
//! Cycle *sets* coincide exactly when cycle *spaces* (GF(2) spans of the
//! cycle indicator vectors) coincide — every space element is a disjoint
//! union of cycles and the cycles are its minimal nonzero elements — so
//! 2-isomorphism reduces to comparing reduced bases of the two spaces.

use crate::multigraph::{EdgeId, MultiGraph};

/// A reduced (RREF) basis of a subspace of GF(2)^universe; rows are
/// bitsets over edge labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Basis {
    universe: usize,
    words: usize,
    rows: Vec<Vec<u64>>,
}

impl Gf2Basis {
    /// An empty basis over `universe` labels.
    pub fn new(universe: usize) -> Self {
        Gf2Basis { universe, words: universe.div_ceil(64).max(1), rows: Vec::new() }
    }

    /// Dimension of the spanned subspace.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    fn leading_bit(row: &[u64]) -> Option<usize> {
        for (w, &word) in row.iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Inserts a vector, reducing against the basis; returns true if it was
    /// independent (rank grew).
    pub fn insert(&mut self, mut vec: Vec<u64>) -> bool {
        assert_eq!(vec.len(), self.words);
        for row in &self.rows {
            let lead = Self::leading_bit(row).expect("basis rows are nonzero");
            if vec[lead / 64] >> (lead % 64) & 1 == 1 {
                for (a, b) in vec.iter_mut().zip(row) {
                    *a ^= b;
                }
            }
        }
        if vec.iter().all(|&w| w == 0) {
            return false;
        }
        // Back-substitute to keep RREF: clear the new leading bit from
        // existing rows, then insert keeping rows sorted by leading bit.
        let lead = Self::leading_bit(&vec).unwrap();
        for row in &mut self.rows {
            if row[lead / 64] >> (lead % 64) & 1 == 1 {
                for (a, b) in row.iter_mut().zip(&vec) {
                    *a ^= b;
                }
            }
        }
        let pos = self.rows.partition_point(|r| Self::leading_bit(r).unwrap() < lead);
        self.rows.insert(pos, vec);
        true
    }

    /// Is `vec` in the spanned subspace?
    pub fn contains(&self, mut vec: Vec<u64>) -> bool {
        assert_eq!(vec.len(), self.words);
        for row in &self.rows {
            let lead = Self::leading_bit(row).expect("basis rows are nonzero");
            if vec[lead / 64] >> (lead % 64) & 1 == 1 {
                for (a, b) in vec.iter_mut().zip(row) {
                    *a ^= b;
                }
            }
        }
        vec.iter().all(|&w| w == 0)
    }
}

/// Computes the cycle space of `g` as a reduced basis over `universe` edge
/// labels, where edge `i` of `g` carries label `labels[i]`.
///
/// Uses fundamental cycles of a DFS spanning forest: for each non-tree edge,
/// the tree path between its endpoints plus the edge itself.
pub fn cycle_space_with_labels(g: &MultiGraph, labels: &[u32], universe: usize) -> Gf2Basis {
    assert_eq!(labels.len(), g.n_edges());
    let n = g.n_vertices();
    let adj = g.adjacency();
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut parent: Vec<u32> = vec![u32::MAX; n];
    let mut depth = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut tree_edge = vec![false; g.n_edges()];
    let mut order = Vec::with_capacity(n);
    for root in 0..n as u32 {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            order.push(v);
            for &(w, eid) in &adj[v as usize] {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    parent[w as usize] = v;
                    parent_edge[w as usize] = Some(eid);
                    depth[w as usize] = depth[v as usize] + 1;
                    tree_edge[eid as usize] = true;
                    stack.push(w);
                }
            }
        }
    }
    let mut basis = Gf2Basis::new(universe);
    let words = universe.div_ceil(64).max(1);
    let set = |vec: &mut Vec<u64>, label: u32| {
        let b = label as usize;
        assert!(b < universe, "label out of universe");
        vec[b / 64] ^= 1 << (b % 64);
    };
    for (eid, &(a, b)) in g.edges().iter().enumerate() {
        if tree_edge[eid] {
            continue;
        }
        let mut vec = vec![0u64; words];
        set(&mut vec, labels[eid]);
        let (mut x, mut y) = (a, b);
        while x != y {
            if depth[x as usize] < depth[y as usize] {
                std::mem::swap(&mut x, &mut y);
            }
            let pe = parent_edge[x as usize].expect("non-root has a parent edge");
            set(&mut vec, labels[pe as usize]);
            x = parent[x as usize];
        }
        basis.insert(vec);
    }
    basis
}

/// Cycle space with identity labels (edge `i` ↦ label `i`).
pub fn cycle_space(g: &MultiGraph) -> Gf2Basis {
    let labels: Vec<u32> = (0..g.n_edges() as u32).collect();
    cycle_space_with_labels(g, &labels, g.n_edges())
}

/// Do two graphs over the same edge-label set have equal cycle spaces?
/// For 2-connected graphs this decides 2-isomorphism (Whitney / Theorem 1).
pub fn same_cycle_space(g1: &MultiGraph, g2: &MultiGraph) -> bool {
    if g1.n_edges() != g2.n_edges() {
        return false;
    }
    cycle_space(g1) == cycle_space(g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_rank_is_m_minus_n_plus_c() {
        let g = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert_eq!(cycle_space(&g).rank(), 5 - 4 + 1);
    }

    #[test]
    fn tree_has_empty_cycle_space() {
        let g = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        assert_eq!(cycle_space(&g).rank(), 0);
    }

    #[test]
    fn triangle_contains_its_cycle() {
        let g = MultiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let basis = cycle_space(&g);
        assert!(basis.contains(vec![0b111]));
        assert!(!basis.contains(vec![0b011]));
    }

    #[test]
    fn relabeling_vertices_preserves_cycle_space() {
        // same edge ids, different vertex names (an isomorphism fixing edges)
        let g1 = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g2 = MultiGraph::from_edges(4, &[(2, 3), (3, 0), (0, 1), (1, 2)]);
        assert!(same_cycle_space(&g1, &g2));
    }

    #[test]
    fn different_structure_differs() {
        // 4-cycle vs path+parallel: different cycle sets
        let g1 = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g2 = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (2, 3)]);
        assert!(!same_cycle_space(&g1, &g2));
    }

    #[test]
    fn parallel_edges_two_cycle() {
        let g = MultiGraph::from_edges(2, &[(0, 1), (0, 1)]);
        let basis = cycle_space(&g);
        assert_eq!(basis.rank(), 1);
        assert!(basis.contains(vec![0b11]));
    }

    #[test]
    fn disconnected_components_independent() {
        let g = MultiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert_eq!(cycle_space(&g).rank(), 2);
    }
}

//! 2-separations and separation pairs (paper Section 2.1).
//!
//! A *2-separation* of a 2-connected graph `G` is a partition `{E1, E2}` of
//! the edges with `|E1|, |E2| ≥ 2` whose edge-induced subgraphs share exactly
//! two vertices. A 2-connected graph with no 2-separation is *3-connected*.
//!
//! Everything here is brute force (`O(n·m)` per pair enumeration) — this is
//! the reference layer used to validate the fast decomposition, and to
//! decide member types in `tutte_ref`.

use crate::multigraph::{EdgeId, MultiGraph, VertexId};

/// The *separation classes* of `G` with respect to the vertex pair
/// `{u, v}`: edges grouped by the component of `G − {u, v}` they touch;
/// every edge joining `u` and `v` directly forms its own singleton class.
/// (These are Hopcroft–Tarjan's separation classes.)
pub fn separation_classes(g: &MultiGraph, u: VertexId, v: VertexId) -> Vec<Vec<EdgeId>> {
    let n = g.n_vertices();
    // Label components of G - {u, v} with a DFS that never enters u or v.
    let adj = g.adjacency();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for s in 0..n as VertexId {
        if s == u || s == v || comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        stack.push(s);
        while let Some(x) = stack.pop() {
            for &(w, _) in &adj[x as usize] {
                if w != u && w != v && comp[w as usize] == u32::MAX {
                    comp[w as usize] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    let mut classes: Vec<Vec<EdgeId>> = vec![Vec::new(); count as usize];
    for (id, &(a, b)) in g.edges().iter().enumerate() {
        let inner = if a != u && a != v {
            Some(a)
        } else if b != u && b != v {
            Some(b)
        } else {
            None
        };
        match inner {
            Some(x) => classes[comp[x as usize] as usize].push(id as EdgeId),
            None => classes.push(vec![id as EdgeId]), // direct u-v edge
        }
    }
    classes.retain(|c| !c.is_empty());
    classes
}

/// A valid 2-separation grouping of the separation classes of `{u, v}`,
/// if one exists: returns `(E1, E2)` with both sides ≥ 2 edges.
///
/// Validity: with `k` classes, a grouping exists iff `k == 2` and both
/// classes have ≥ 2 edges, or `k ≥ 3` and either some class has ≥ 2 edges
/// (that class vs the rest) or `k ≥ 4` (two singletons vs the rest).
pub fn two_separation_at(
    g: &MultiGraph,
    u: VertexId,
    v: VertexId,
) -> Option<(Vec<EdgeId>, Vec<EdgeId>)> {
    let classes = separation_classes(g, u, v);
    let k = classes.len();
    if k < 2 {
        return None;
    }
    let flat = |ix: &[usize]| -> Vec<EdgeId> {
        let mut out = Vec::new();
        for &i in ix {
            out.extend_from_slice(&classes[i]);
        }
        out
    };
    if k == 2 {
        if classes[0].len() >= 2 && classes[1].len() >= 2 {
            return Some((flat(&[0]), flat(&[1])));
        }
        return None;
    }
    // k >= 3: prefer isolating a big class.
    if let Some(big) = (0..k).find(|&i| classes[i].len() >= 2) {
        let rest: Vec<usize> = (0..k).filter(|&i| i != big).collect();
        return Some((flat(&[big]), flat(&rest)));
    }
    // all singletons
    if k >= 4 {
        let rest: Vec<usize> = (2..k).collect();
        return Some((flat(&[0, 1]), flat(&rest)));
    }
    None
}

/// All separation pairs of a 2-connected graph: vertex pairs admitting a
/// valid 2-separation. Brute force over all pairs.
pub fn separation_pairs(g: &MultiGraph) -> Vec<(VertexId, VertexId)> {
    let n = g.n_vertices() as VertexId;
    let mut out = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if two_separation_at(g, u, v).is_some() {
                out.push((u, v));
            }
        }
    }
    out
}

/// Finds one 2-separation of `g`, if any.
pub fn find_two_separation(
    g: &MultiGraph,
) -> Option<(VertexId, VertexId, Vec<EdgeId>, Vec<EdgeId>)> {
    let n = g.n_vertices() as VertexId;
    for u in 0..n {
        for v in u + 1..n {
            if let Some((e1, e2)) = two_separation_at(g, u, v) {
                return Some((u, v, e1, e2));
            }
        }
    }
    None
}

/// Is `g` 3-connected in the decomposition sense: a simple 2-connected
/// graph on ≥ 4 vertices with no 2-separation?
pub fn is_triconnected(g: &MultiGraph) -> bool {
    if g.n_vertices() < 4 || !g.is_biconnected() {
        return false;
    }
    // simplicity
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in g.edges() {
        if !seen.insert((a.min(b), a.max(b))) {
            return false;
        }
    }
    find_two_separation(g).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_of_a_theta_graph() {
        // theta: 0-1 via three internally disjoint paths
        let g = MultiGraph::from_edges(4, &[(0, 2), (2, 1), (0, 3), (3, 1), (0, 1)]);
        let classes = separation_classes(&g, 0, 1);
        assert_eq!(classes.len(), 3);
        let mut sizes: Vec<usize> = classes.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn cycle_separation_pairs() {
        // On a 4-cycle every opposite pair separates, and adjacent pairs too
        // (both arcs have ≥2 edges only for opposite pairs).
        let g = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pairs = separation_pairs(&g);
        assert_eq!(pairs, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn triangle_has_no_two_separation() {
        let g = MultiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(find_two_separation(&g).is_none());
        // but a triangle is not "3-connected" in the member sense (n < 4):
        assert!(!is_triconnected(&g));
    }

    #[test]
    fn k4_is_triconnected() {
        let g = MultiGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(is_triconnected(&g));
        assert!(separation_pairs(&g).is_empty());
    }

    #[test]
    fn wheel5_is_triconnected() {
        // hub 0, rim 1-2-3-4
        let g = MultiGraph::from_edges(
            5,
            &[(1, 2), (2, 3), (3, 4), (4, 1), (0, 1), (0, 2), (0, 3), (0, 4)],
        );
        assert!(is_triconnected(&g));
    }

    #[test]
    fn bond3_has_no_separation() {
        let g = MultiGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert!(find_two_separation(&g).is_none());
        assert!(!is_triconnected(&g)); // bonds are their own member type
    }

    #[test]
    fn bond4_separates() {
        let g = MultiGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1), (0, 1)]);
        let (u, v, e1, e2) = find_two_separation(&g).unwrap();
        assert_eq!((u, v), (0, 1));
        assert_eq!(e1.len(), 2);
        assert_eq!(e2.len(), 2);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // vertices 0,1 shared; triangles 0-1-2, 0-1-3, edge 0-1 once
        let g = MultiGraph::from_edges(4, &[(0, 1), (0, 2), (2, 1), (0, 3), (3, 1)]);
        let pairs = separation_pairs(&g);
        assert_eq!(pairs, vec![(0, 1)]);
        let (e1, e2) = two_separation_at(&g, 0, 1).unwrap();
        assert!(e1.len() >= 2 && e2.len() >= 2);
        assert_eq!(e1.len() + e2.len(), 5);
    }

    #[test]
    fn gp_graph_with_nested_chords() {
        // path 0..6 + e + chords (1,3) and (2,4) interlace: K4-ish core
        let g = MultiGraph::gp_graph(6, &[(1, 3), (2, 4)]);
        assert!(!separation_pairs(&g).is_empty());
        assert!(!is_triconnected(&g));
    }
}

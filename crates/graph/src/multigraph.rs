//! Edge-labeled multigraphs.
//!
//! The paper's constructions (gp-realizations, Tutte members) are
//! multigraphs whose *edges* carry identity (atoms, columns, markers);
//! vertices are anonymous. Parallel edges are essential (bond members);
//! self-loops are forbidden.

use std::fmt;

/// Vertex index.
pub type VertexId = u32;
/// Edge index (stable: edges are never reordered once added).
pub type EdgeId = u32;

/// An undirected multigraph with stable edge identifiers.
#[derive(Clone, PartialEq, Eq)]
pub struct MultiGraph {
    n: usize,
    ends: Vec<(VertexId, VertexId)>,
}

impl fmt::Debug for MultiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MultiGraph(n={}, m={}; {:?})", self.n, self.ends.len(), self.ends)
    }
}

impl MultiGraph {
    /// A graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        MultiGraph { n, ends: Vec::new() }
    }

    /// Builds from an edge list.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut g = MultiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The gp-pair graph of the paper's Section 2: a Hamiltonian path on
    /// `n_atoms` edges (vertices `0..=n_atoms`), the distinguished edge `e`
    /// joining the path's ends, and one chord per `(lo, hi)` span.
    ///
    /// Edge ids: `0..n_atoms` are the path edges (edge `i` joins `i, i+1`),
    /// `n_atoms` is `e`, and `n_atoms + 1 + j` is chord `j`.
    pub fn gp_graph(n_atoms: usize, chords: &[(u32, u32)]) -> Self {
        let mut g = MultiGraph::new(n_atoms + 1);
        for i in 0..n_atoms as u32 {
            g.add_edge(i, i + 1);
        }
        g.add_edge(0, n_atoms as u32); // e
        for &(lo, hi) in chords {
            assert!(lo < hi && (hi as usize) <= n_atoms, "chord out of range");
            g.add_edge(lo, hi);
        }
        g
    }

    /// Adds an edge, returning its id. Panics on self-loops or out-of-range
    /// endpoints.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        assert!(u != v, "self-loops are not allowed");
        assert!((u as usize) < self.n && (v as usize) < self.n, "endpoint out of range");
        let id = self.ends.len() as EdgeId;
        self.ends.push((u, v));
        id
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.ends.len()
    }

    /// Endpoints of edge `e`.
    #[inline]
    pub fn ends(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.ends[e as usize]
    }

    /// All endpoint pairs, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.ends
    }

    /// The endpoint of `e` that is not `v` (panics if `v` is not an end).
    pub fn other_end(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.ends(e);
        if a == v {
            b
        } else {
            assert_eq!(b, v, "vertex is not an endpoint of the edge");
            a
        }
    }

    /// Adjacency lists `(neighbour, edge_id)`, built fresh on each call.
    pub fn adjacency(&self) -> Vec<Vec<(VertexId, EdgeId)>> {
        let mut adj = vec![Vec::new(); self.n];
        for (id, &(u, v)) in self.ends.iter().enumerate() {
            adj[u as usize].push((v, id as EdgeId));
            adj[v as usize].push((u, id as EdgeId));
        }
        adj
    }

    /// Vertex degrees (parallel edges counted with multiplicity).
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for &(u, v) in &self.ends {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg
    }

    /// Connected-component label per vertex plus the component count.
    /// Isolated vertices form their own components.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let adj = self.adjacency();
        let mut comp = vec![u32::MAX; self.n];
        let mut count = 0;
        let mut stack = Vec::new();
        for s in 0..self.n {
            if comp[s] != u32::MAX {
                continue;
            }
            comp[s] = count as u32;
            stack.push(s as VertexId);
            while let Some(v) = stack.pop() {
                for &(w, _) in &adj[v as usize] {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = count as u32;
                        stack.push(w);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }

    /// Is the graph connected? (Vacuously true for ≤ 1 vertex.)
    pub fn is_connected(&self) -> bool {
        self.components().1 <= 1
    }

    /// Cut vertices (articulation points), via iterative Tarjan low-points.
    /// Parallel edges are handled correctly: only the specific tree edge to
    /// the parent is skipped, so a doubled edge never creates a spurious cut.
    pub fn cut_vertices(&self) -> Vec<VertexId> {
        let adj = self.adjacency();
        let n = self.n;
        let mut disc = vec![0u32; n];
        let mut low = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut is_cut = vec![false; n];
        let mut timer = 1u32;
        // Explicit DFS stack: (vertex, parent_edge, adjacency cursor).
        let mut stack: Vec<(VertexId, EdgeId, usize)> = Vec::new();
        for root in 0..n as VertexId {
            if visited[root as usize] {
                continue;
            }
            visited[root as usize] = true;
            disc[root as usize] = timer;
            low[root as usize] = timer;
            timer += 1;
            let mut root_children = 0;
            stack.push((root, EdgeId::MAX, 0));
            while let Some(&mut (v, pe, ref mut cursor)) = stack.last_mut() {
                if *cursor < adj[v as usize].len() {
                    let (w, eid) = adj[v as usize][*cursor];
                    *cursor += 1;
                    if eid == pe {
                        continue;
                    }
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        disc[w as usize] = timer;
                        low[w as usize] = timer;
                        timer += 1;
                        if v == root {
                            root_children += 1;
                        }
                        stack.push((w, eid, 0));
                    } else {
                        low[v as usize] = low[v as usize].min(disc[w as usize]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(parent, _, _)) = stack.last() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                        if parent != root && low[v as usize] >= disc[parent as usize] {
                            is_cut[parent as usize] = true;
                        }
                    }
                }
            }
            if root_children >= 2 {
                is_cut[root as usize] = true;
            }
        }
        (0..n as VertexId).filter(|&v| is_cut[v as usize]).collect()
    }

    /// Is the graph 2-connected in the paper's sense (Section 2.1: connected
    /// with no cut vertex)? Requires ≥ 2 edges so bonds qualify; a single
    /// edge or a lone vertex does not.
    pub fn is_biconnected(&self) -> bool {
        self.n >= 2 && self.n_edges() >= 2 && self.is_connected() && self.cut_vertices().is_empty()
    }

    /// The subgraph induced by an edge set: vertices are renumbered
    /// compactly; returns (subgraph, vertex_map old→new).
    pub fn edge_subgraph(&self, edge_ids: &[EdgeId]) -> (MultiGraph, Vec<VertexId>) {
        let mut map = vec![VertexId::MAX; self.n];
        let mut next = 0;
        let mut ends = Vec::with_capacity(edge_ids.len());
        for &e in edge_ids {
            let (u, v) = self.ends(e);
            for x in [u, v] {
                if map[x as usize] == VertexId::MAX {
                    map[x as usize] = next;
                    next += 1;
                }
            }
            ends.push((map[u as usize], map[v as usize]));
        }
        let mut g = MultiGraph::new(next as usize);
        for (u, v) in ends {
            g.add_edge(u, v);
        }
        (g, map)
    }

    /// True iff the graph is a *bond*: exactly two vertices, ≥ 2 parallel
    /// edges, connected and loopless (the paper's Section 2.2).
    pub fn is_bond(&self) -> bool {
        self.n == 2 && self.n_edges() >= 2
    }

    /// True iff the graph is a *polygon*: a single cycle with ≥ 3 edges.
    pub fn is_polygon(&self) -> bool {
        self.n >= 3
            && self.n_edges() == self.n
            && self.is_connected()
            && self.degrees().iter().all(|&d| d == 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let g = MultiGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2), (0, 1)]);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.ends(3), (0, 1));
        assert_eq!(g.other_end(1, 2), 1);
        assert_eq!(g.degrees(), vec![3, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        MultiGraph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = MultiGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let (comp, count) = g.components();
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert!(!g.is_connected());
        assert!(MultiGraph::from_edges(1, &[]).is_connected());
    }

    #[test]
    fn cut_vertices_path_and_cycle() {
        // path 0-1-2-3: cuts are 1, 2
        let p = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(p.cut_vertices(), vec![1, 2]);
        // cycle: no cuts
        let c = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(c.cut_vertices().is_empty());
        assert!(c.is_biconnected());
    }

    #[test]
    fn parallel_edges_make_biconnected() {
        // two vertices with a doubled edge: biconnected (a bond)
        let b = MultiGraph::from_edges(2, &[(0, 1), (0, 1)]);
        assert!(b.is_biconnected());
        assert!(b.is_bond());
        // single edge: not biconnected, not a bond
        let s = MultiGraph::from_edges(2, &[(0, 1)]);
        assert!(!s.is_biconnected());
        assert!(!s.is_bond());
    }

    #[test]
    fn bowtie_has_cut_vertex() {
        // two triangles sharing vertex 2
        let g = MultiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        assert_eq!(g.cut_vertices(), vec![2]);
        assert!(!g.is_biconnected());
    }

    #[test]
    fn polygon_recognition() {
        assert!(MultiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).is_polygon());
        assert!(!MultiGraph::from_edges(2, &[(0, 1), (0, 1)]).is_polygon());
        // theta graph is not a polygon
        assert!(!MultiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2)]).is_polygon());
    }

    #[test]
    fn gp_graph_layout() {
        let g = MultiGraph::gp_graph(4, &[(1, 3)]);
        assert_eq!(g.n_vertices(), 5);
        assert_eq!(g.n_edges(), 6); // 4 path + e + 1 chord
        assert_eq!(g.ends(4), (0, 4)); // e
        assert_eq!(g.ends(5), (1, 3)); // chord
        assert!(g.is_biconnected());
    }

    #[test]
    fn edge_subgraph_renumbers() {
        let g = MultiGraph::from_edges(5, &[(0, 1), (1, 4), (4, 0), (2, 3)]);
        let (sub, map) = g.edge_subgraph(&[0, 1, 2]);
        assert_eq!(sub.n_vertices(), 3);
        assert_eq!(sub.n_edges(), 3);
        assert!(sub.is_polygon());
        assert_eq!(map[2], VertexId::MAX);
    }
}

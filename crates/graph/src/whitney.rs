//! Whitney switches and 2-isomorphism (paper Section 2.1).
//!
//! Given a 2-separation `{E1, E2}` sharing vertices `{u, v}`, the *Whitney
//! switch* exchanges the incidences of `u` and `v` inside `G[E1]`. Graphs
//! related by a sequence of switches are *2-isomorphic*; by Whitney's
//! theorem (Theorem 1) this is equivalent to having the same cycle set.

use crate::cycle_space::same_cycle_space;
use crate::multigraph::{EdgeId, MultiGraph, VertexId};

/// The two vertices shared by `G[part]` and `G[rest]`, or `None` if the
/// partition does not share exactly two vertices (i.e. is not a
/// 2-separation boundary).
pub fn shared_vertices(g: &MultiGraph, part: &[EdgeId]) -> Option<(VertexId, VertexId)> {
    let mut in_part = vec![false; g.n_edges()];
    for &e in part {
        in_part[e as usize] = true;
    }
    let mut side = vec![0u8; g.n_vertices()]; // bit 0: touched by part, bit 1: by rest
    for (id, &(a, b)) in g.edges().iter().enumerate() {
        let bit = if in_part[id] { 1 } else { 2 };
        side[a as usize] |= bit;
        side[b as usize] |= bit;
    }
    let mut shared = side.iter().enumerate().filter(|&(_, &s)| s == 3).map(|(v, _)| v as VertexId);
    let u = shared.next()?;
    let v = shared.next()?;
    if shared.next().is_some() {
        return None;
    }
    Some((u, v))
}

/// Performs the Whitney switch of `u` and `v` inside `G[part]`: every edge
/// of `part` incident to `u` becomes incident to `v` and vice versa.
/// `part` must share exactly `{u, v}` with the rest of the graph (checked).
pub fn whitney_switch(g: &MultiGraph, part: &[EdgeId]) -> MultiGraph {
    let (u, v) = shared_vertices(g, part).expect("partition must share exactly two vertices");
    let mut in_part = vec![false; g.n_edges()];
    for &e in part {
        in_part[e as usize] = true;
    }
    let swap = |x: VertexId| {
        if x == u {
            v
        } else if x == v {
            u
        } else {
            x
        }
    };
    let mut out = MultiGraph::new(g.n_vertices());
    for (id, &(a, b)) in g.edges().iter().enumerate() {
        if in_part[id] {
            out.add_edge(swap(a), swap(b));
        } else {
            out.add_edge(a, b);
        }
    }
    out
}

/// Decides 2-isomorphism of two 2-connected graphs over the same edge-id
/// set, via Whitney's theorem (equal cycle spaces).
pub fn are_2_isomorphic(g1: &MultiGraph, g2: &MultiGraph) -> bool {
    same_cycle_space(g1, g2)
}

/// A reproduction of the *phenomenon* of the paper's Fig. 1: a pair of
/// 2-isomorphic graphs on edge set `{0..7}` that are **not** isomorphic
/// (their degree sequences differ), together with the switched part.
///
/// Construction: a 6-cycle `(edges 0..5)` with chords 6 = (0,2) and
/// 7 = (3,5); switching `{2,3,4,7}` (the half containing vertices 3,4,5 with
/// its chord) across the separation pair {2, 5} re-embeds that half
/// reversed, changing which vertices carry degree 3.
pub fn fig1_pair() -> (MultiGraph, MultiGraph, Vec<EdgeId>) {
    let g = MultiGraph::from_edges(
        6,
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2), (3, 5)],
    );
    let part: Vec<EdgeId> = vec![2, 3, 4, 7];
    let switched = whitney_switch(&g, &part);
    (g, switched, part)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_vertices_of_theta_half() {
        let g = MultiGraph::from_edges(4, &[(0, 2), (2, 1), (0, 3), (3, 1), (0, 1)]);
        assert_eq!(shared_vertices(&g, &[0, 1]), Some((0, 1)));
        // the single direct edge also shares exactly {0,1} with the rest
        assert_eq!(shared_vertices(&g, &[4]), Some((0, 1)));
    }

    #[test]
    fn switch_preserves_cycle_space() {
        let g = MultiGraph::gp_graph(6, &[(1, 4)]);
        // separation pair (1, 4): inner arc = path edges 1,2,3 (path 1-2-3-4)
        let part = vec![1, 2, 3];
        assert_eq!(shared_vertices(&g, &part), Some((1, 4)));
        let s = whitney_switch(&g, &part);
        assert!(are_2_isomorphic(&g, &s));
        assert_ne!(g, s, "switch must actually change the embedding");
    }

    #[test]
    fn switch_is_involutive() {
        let g = MultiGraph::gp_graph(5, &[(1, 3)]);
        let part = vec![1, 2];
        let once = whitney_switch(&g, &part);
        let twice = whitney_switch(&once, &part);
        assert_eq!(g, twice);
    }

    #[test]
    fn fig1_two_isomorphic_but_not_isomorphic() {
        let (g1, g2, _) = fig1_pair();
        assert!(are_2_isomorphic(&g1, &g2), "Fig. 1 graphs share all cycles");
        let mut d1 = g1.degrees();
        let mut d2 = g2.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        // The switch glues both chords onto one separation vertex, creating
        // a degree-4 vertex that g1 does not have: the degree multisets
        // differ, so no isomorphism exists at all — yet the cycle sets are
        // identical. This is exactly the Fig. 1 phenomenon.
        assert_ne!(d1, d2);
    }

    #[test]
    fn non_two_isomorphic_rejected() {
        let g1 = MultiGraph::gp_graph(4, &[(1, 3)]);
        let g2 = MultiGraph::gp_graph(4, &[(0, 2)]);
        assert!(!are_2_isomorphic(&g1, &g2));
    }
}

//! Biconnected components (blocks): the edge partition into maximal
//! 2-connected pieces. Proposition 1 of the paper says gp-realizations of
//! connected ensembles are 2-connected, i.e. consist of a single block —
//! an invariant our tests assert through this module.

use crate::multigraph::{EdgeId, MultiGraph, VertexId};

/// Partitions the edges into biconnected components (blocks). Bridges form
/// singleton blocks. Runs iterative Tarjan with an edge stack.
pub fn biconnected_components(g: &MultiGraph) -> Vec<Vec<EdgeId>> {
    let n = g.n_vertices();
    let adj = g.adjacency();
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut timer = 1u32;
    let mut blocks: Vec<Vec<EdgeId>> = Vec::new();
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    let mut edge_seen = vec![false; g.n_edges()];
    let mut stack: Vec<(VertexId, EdgeId, usize)> = Vec::new();
    for root in 0..n as VertexId {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, EdgeId::MAX, 0));
        while !stack.is_empty() {
            let (v, pe, cursor) = {
                let top = stack.last_mut().unwrap();
                let c = top.2;
                top.2 += 1;
                (top.0, top.1, c)
            };
            if cursor < adj[v as usize].len() {
                let (w, eid) = adj[v as usize][cursor];
                if eid == pe {
                    continue;
                }
                if !edge_seen[eid as usize] {
                    edge_seen[eid as usize] = true;
                    edge_stack.push(eid);
                }
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, eid, 0));
                } else {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(top) = stack.last_mut() {
                    let parent = top.0;
                    let pe_of_v = pe;
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    if low[v as usize] >= disc[parent as usize] {
                        // v's subtree hangs off an articulation (or root):
                        // pop the block delimited by the tree edge pe_of_v.
                        let mut block = Vec::new();
                        while let Some(&top_edge) = edge_stack.last() {
                            edge_stack.pop();
                            block.push(top_edge);
                            if top_edge == pe_of_v {
                                break;
                            }
                        }
                        if !block.is_empty() {
                            blocks.push(block);
                        }
                    }
                }
            }
        }
        debug_assert!(edge_stack.is_empty(), "root pops all remaining edges");
    }
    for b in &mut blocks {
        b.sort_unstable();
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_for_biconnected() {
        let g = MultiGraph::gp_graph(5, &[(1, 3), (2, 4)]);
        let blocks = biconnected_components(&g);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), g.n_edges());
    }

    #[test]
    fn bowtie_splits_into_two_triangles() {
        let g = MultiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let mut blocks = biconnected_components(&g);
        blocks.sort();
        assert_eq!(blocks, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn bridges_are_singletons() {
        // path of 3 edges
        let g = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let blocks = biconnected_components(&g);
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn parallel_edges_share_a_block() {
        let g = MultiGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        let mut blocks = biconnected_components(&g);
        blocks.sort();
        assert_eq!(blocks, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn disconnected_graphs_handled() {
        let g = MultiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let blocks = biconnected_components(&g);
        assert_eq!(blocks.len(), 2);
    }
}

//! Reference Tutte decomposition by naive recursive splitting
//! (paper Section 2.2; Tutte \[20\], Cunningham–Edmonds \[8\]).
//!
//! The decomposition of a 2-connected graph is built exactly as the paper
//! defines it: while some member has a 2-separation, replace it by the two
//! sides of a simple decomposition with a fresh pair of *marker edges*;
//! finally merge any two bonds or two polygons sharing a marker. The result
//! is the unique set of bonds, polygons and 3-connected members.
//!
//! This implementation optimizes nothing — it enumerates vertex pairs to
//! find 2-separations (`O(n²·m)` per split) — and exists as ground truth
//! for differential tests against the specialised decomposition in
//! `c1p-tutte`. Use it on small graphs only.

use crate::multigraph::{EdgeId, MultiGraph, VertexId};
use crate::separation::{find_two_separation, is_triconnected};

/// Member type in a Tutte decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemberKind {
    /// Two vertices joined by ≥ 3 parallel edges.
    Bond,
    /// A cycle of ≥ 3 edges.
    Polygon,
    /// A simple 3-connected graph on ≥ 4 vertices.
    Rigid,
}

/// An edge of a member: either a real edge of the original graph or a
/// marker shared with exactly one other member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Element {
    /// Original edge id.
    Real(EdgeId),
    /// Marker id; the same id appears in exactly two members.
    Marker(u32),
}

/// One member of the decomposition: a small multigraph whose edge `i`
/// carries label `elements[i]`.
#[derive(Debug, Clone)]
pub struct RefMember {
    /// Bond / polygon / rigid classification.
    pub kind: MemberKind,
    /// The member graph (compact vertex numbering).
    pub graph: MultiGraph,
    /// Edge labels aligned with `graph` edge ids.
    pub elements: Vec<Element>,
}

impl RefMember {
    /// Sorted list of the real (original) edges in this member.
    pub fn real_edges(&self) -> Vec<EdgeId> {
        let mut v: Vec<EdgeId> = self
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Real(id) => Some(*id),
                Element::Marker(_) => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Sorted list of marker ids in this member.
    pub fn markers(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::Marker(id) => Some(*id),
                Element::Real(_) => None,
            })
            .collect();
        v.sort_unstable();
        v
    }
}

/// A full reference Tutte decomposition.
#[derive(Debug, Clone)]
pub struct RefDecomposition {
    /// The members (bonds, polygons, rigids).
    pub members: Vec<RefMember>,
    /// Number of edges of the decomposed graph.
    pub n_original_edges: usize,
}

impl RefDecomposition {
    /// Canonical signatures for cross-implementation comparison: the sorted
    /// multiset of `(kind, sorted real edge ids)` per member.
    pub fn signatures(&self) -> Vec<(MemberKind, Vec<EdgeId>)> {
        let mut sigs: Vec<(MemberKind, Vec<EdgeId>)> =
            self.members.iter().map(|m| (m.kind, m.real_edges())).collect();
        sigs.sort();
        sigs
    }

    /// Adjacency signatures: for each marker, the unordered pair of member
    /// real-edge sets it joins. Together with [`Self::signatures`] this pins
    /// down the decomposition tree on all but pathological inputs.
    pub fn adjacency_signatures(&self) -> Vec<(Vec<EdgeId>, Vec<EdgeId>)> {
        use std::collections::HashMap;
        let mut by_marker: HashMap<u32, Vec<usize>> = HashMap::new();
        for (mi, m) in self.members.iter().enumerate() {
            for mk in m.markers() {
                by_marker.entry(mk).or_default().push(mi);
            }
        }
        let mut out = Vec::new();
        for (_, mems) in by_marker {
            assert_eq!(mems.len(), 2, "every marker joins exactly two members");
            let mut a = self.members[mems[0]].real_edges();
            let mut b = self.members[mems[1]].real_edges();
            if b < a {
                std::mem::swap(&mut a, &mut b);
            }
            out.push((a, b));
        }
        out.sort();
        out
    }

    /// Re-composes the decomposition into a single graph `m(𝒟)` over the
    /// original edge ids (marker orientations chosen arbitrarily, so the
    /// result is determined up to 2-isomorphism — per Cunningham–Edmonds it
    /// then has the same cycle space as the decomposed graph).
    pub fn compose(&self) -> (MultiGraph, Vec<EdgeId>) {
        // Work on a soup of (u, v, element) with globally renumbered
        // vertices, merging one marker at a time.
        #[derive(Clone)]
        struct Piece {
            edges: Vec<(u32, u32, Element)>,
        }
        let mut next_vertex = 0u32;
        let mut pieces: Vec<Piece> = Vec::new();
        for m in &self.members {
            let base = next_vertex;
            next_vertex += m.graph.n_vertices() as u32;
            let edges = m
                .graph
                .edges()
                .iter()
                .zip(&m.elements)
                .map(|(&(u, v), &el)| (base + u, base + v, el))
                .collect();
            pieces.push(Piece { edges });
        }
        // Union-find over vertices for the identifications.
        let mut parent: Vec<u32> = (0..next_vertex).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut r = x;
            while parent[r as usize] != r {
                r = parent[r as usize];
            }
            let mut c = x;
            while parent[c as usize] != r {
                let nxt = parent[c as usize];
                parent[c as usize] = r;
                c = nxt;
            }
            r
        }
        // Find each marker's two occurrences and identify endpoints.
        use std::collections::HashMap;
        let mut occurrences: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for p in &pieces {
            for &(u, v, el) in &p.edges {
                if let Element::Marker(id) = el {
                    occurrences.entry(id).or_default().push((u, v));
                }
            }
        }
        for (_, occ) in occurrences {
            assert_eq!(occ.len(), 2, "marker must occur exactly twice");
            let (a1, b1) = occ[0];
            let (a2, b2) = occ[1];
            // arbitrary orientation: a1~a2, b1~b2
            let ra = find(&mut parent, a1);
            let rb = find(&mut parent, a2);
            parent[ra as usize] = rb;
            let ra = find(&mut parent, b1);
            let rb = find(&mut parent, b2);
            parent[ra as usize] = rb;
        }
        // Collect real edges with identified endpoints.
        let mut label_of: Vec<(u32, u32, EdgeId)> = Vec::new();
        for p in &pieces {
            for &(u, v, el) in &p.edges {
                if let Element::Real(id) = el {
                    label_of.push((find(&mut parent, u), find(&mut parent, v), id));
                }
            }
        }
        // compact vertices
        let mut map: HashMap<u32, u32> = HashMap::new();
        for &(u, v, _) in &label_of {
            let next = map.len() as u32;
            map.entry(u).or_insert(next);
            let next = map.len() as u32;
            map.entry(v).or_insert(next);
        }
        let mut g = MultiGraph::new(map.len());
        label_of.sort_by_key(|&(_, _, id)| id);
        let mut labels = Vec::with_capacity(label_of.len());
        for &(u, v, id) in &label_of {
            g.add_edge(map[&u], map[&v]);
            labels.push(id);
        }
        (g, labels)
    }
}

/// Computes the reference Tutte decomposition of a 2-connected graph.
///
/// Panics if `g` is not 2-connected (the paper only defines the
/// decomposition there) or has < 3 edges.
pub fn decompose(g: &MultiGraph) -> RefDecomposition {
    assert!(g.is_biconnected(), "Tutte decomposition requires a 2-connected graph");
    assert!(g.n_edges() >= 3, "need at least 3 edges");
    let elements: Vec<Element> = (0..g.n_edges() as u32).map(Element::Real).collect();
    let mut next_marker = 0u32;
    let mut members = Vec::new();
    split_recursive(g.clone(), elements, &mut next_marker, &mut members);
    merge_same_kind(&mut members);
    RefDecomposition { members, n_original_edges: g.n_edges() }
}

fn classify(g: &MultiGraph) -> Option<MemberKind> {
    if g.is_bond() {
        Some(MemberKind::Bond)
    } else if g.is_polygon() {
        Some(MemberKind::Polygon)
    } else if is_triconnected(g) {
        Some(MemberKind::Rigid)
    } else {
        None
    }
}

fn split_recursive(
    g: MultiGraph,
    elements: Vec<Element>,
    next_marker: &mut u32,
    out: &mut Vec<RefMember>,
) {
    if let Some(kind) = classify(&g) {
        out.push(RefMember { kind, graph: g, elements });
        return;
    }
    let (u, v, e1, e2) =
        find_two_separation(&g).expect("a non-bond/polygon/rigid 2-connected graph splits");
    let marker = *next_marker;
    *next_marker += 1;
    for side in [e1, e2] {
        let (mut sub, vmap) = g.edge_subgraph(&side);
        let mut els: Vec<Element> = side.iter().map(|&e| elements[e as usize]).collect();
        // add the marker edge between the images of u and v
        let (mut mu, mut mv) = (vmap[u as usize], vmap[v as usize]);
        if mu == VertexId::MAX || mv == VertexId::MAX {
            // the side might not touch u or v compactly if... cannot happen:
            // every separation class attaches to both u and v in a
            // 2-connected graph.
            unreachable!("both separation vertices appear on each side");
        }
        if mu > mv {
            std::mem::swap(&mut mu, &mut mv);
        }
        sub.add_edge(mu, mv);
        els.push(Element::Marker(marker));
        split_recursive(sub, els, next_marker, out);
    }
}

/// Merges pairs of bonds / pairs of polygons sharing a marker until none
/// remain (the final clean-up in the paper's definition).
fn merge_same_kind(members: &mut Vec<RefMember>) {
    loop {
        // find a marker shared by two members of equal mergeable kind
        let mut found: Option<(usize, usize, u32)> = None;
        'outer: for i in 0..members.len() {
            if members[i].kind == MemberKind::Rigid {
                continue;
            }
            for mk in members[i].markers() {
                for (j, other) in members.iter().enumerate() {
                    if j != i && other.kind == members[i].kind && other.markers().contains(&mk) {
                        found = Some((i.min(j), i.max(j), mk));
                        break 'outer;
                    }
                }
            }
        }
        let Some((i, j, mk)) = found else { break };
        let b = members.remove(j);
        let a = members.remove(i);
        members.push(merge_pair(a, b, mk));
    }
}

/// Merges two members of the same kind at marker `mk`: delete both copies of
/// the marker edge and identify its endpoints pairwise.
fn merge_pair(a: RefMember, b: RefMember, mk: u32) -> RefMember {
    let kind = a.kind;
    let find_marker = |m: &RefMember| -> usize {
        m.elements.iter().position(|e| *e == Element::Marker(mk)).expect("marker present")
    };
    let ea = find_marker(&a);
    let eb = find_marker(&b);
    let (ua, va) = a.graph.ends(ea as EdgeId);
    let (ub, vb) = b.graph.ends(eb as EdgeId);
    // b's vertices get offset; then ub ↦ ua, vb ↦ va (orientation arbitrary —
    // for bonds and polygons both orientations give the same member type).
    let offset = a.graph.n_vertices() as u32;
    let mut soup: Vec<(u32, u32, Element)> = Vec::new();
    for (id, &(x, y)) in a.graph.edges().iter().enumerate() {
        if id != ea {
            soup.push((x, y, a.elements[id]));
        }
    }
    let remap = |x: u32| {
        if x == ub {
            ua
        } else if x == vb {
            va
        } else {
            x + offset
        }
    };
    for (id, &(x, y)) in b.graph.edges().iter().enumerate() {
        if id != eb {
            soup.push((remap(x), remap(y), b.elements[id]));
        }
    }
    // compact vertices
    let mut map = std::collections::HashMap::new();
    for &(x, y, _) in &soup {
        let next = map.len() as u32;
        map.entry(x).or_insert(next);
        let next = map.len() as u32;
        map.entry(y).or_insert(next);
    }
    let mut graph = MultiGraph::new(map.len());
    let mut elements = Vec::with_capacity(soup.len());
    for &(x, y, el) in &soup {
        graph.add_edge(map[&x], map[&y]);
        elements.push(el);
    }
    debug_assert!(classify(&graph) == Some(kind), "merged member keeps its kind");
    RefMember { kind, graph, elements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_space::{cycle_space, cycle_space_with_labels};

    fn check_invariants(g: &MultiGraph, dec: &RefDecomposition) {
        // every real edge in exactly one member
        let mut seen = vec![0u32; g.n_edges()];
        for m in &dec.members {
            for e in m.real_edges() {
                seen[e as usize] += 1;
            }
            match m.kind {
                MemberKind::Bond => {
                    assert!(m.graph.is_bond() && m.graph.n_edges() >= 3);
                }
                MemberKind::Polygon => assert!(m.graph.is_polygon()),
                MemberKind::Rigid => assert!(is_triconnected(&m.graph)),
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "edge partition violated: {seen:?}");
        // no two bonds or two polygons share a marker
        for (i, a) in dec.members.iter().enumerate() {
            for b in dec.members.iter().skip(i + 1) {
                if a.kind == b.kind && a.kind != MemberKind::Rigid {
                    let ma = a.markers();
                    assert!(
                        !b.markers().iter().any(|mk| ma.contains(mk)),
                        "same-kind members share a marker"
                    );
                }
            }
        }
        // composition is 2-isomorphic to the original (same cycle space)
        let (comp, labels) = dec.compose();
        assert_eq!(comp.n_edges(), g.n_edges());
        let b1 = cycle_space(g);
        let labels32: Vec<u32> = labels.to_vec();
        let b2 = cycle_space_with_labels(&comp, &labels32, g.n_edges());
        assert_eq!(b1, b2, "composition must be 2-isomorphic to the input");
    }

    #[test]
    fn cycle_is_one_polygon() {
        let g = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let dec = decompose(&g);
        assert_eq!(dec.members.len(), 1);
        assert_eq!(dec.members[0].kind, MemberKind::Polygon);
        check_invariants(&g, &dec);
    }

    #[test]
    fn bond_is_one_bond() {
        let g = MultiGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1), (0, 1)]);
        let dec = decompose(&g);
        assert_eq!(dec.members.len(), 1);
        assert_eq!(dec.members[0].kind, MemberKind::Bond);
        check_invariants(&g, &dec);
    }

    #[test]
    fn k4_is_one_rigid() {
        let g = MultiGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let dec = decompose(&g);
        assert_eq!(dec.members.len(), 1);
        assert_eq!(dec.members[0].kind, MemberKind::Rigid);
        check_invariants(&g, &dec);
    }

    #[test]
    fn theta_decomposes_into_bond_and_polygons() {
        // 0-1 direct edge + two 2-edge paths: bond of 3 + two triangles...
        // actually: polygons {path1+marker}, {path2+marker}, bond{e, m1, m2}
        let g = MultiGraph::from_edges(4, &[(0, 2), (2, 1), (0, 3), (3, 1), (0, 1)]);
        let dec = decompose(&g);
        check_invariants(&g, &dec);
        let mut kinds: Vec<MemberKind> = dec.members.iter().map(|m| m.kind).collect();
        kinds.sort();
        assert_eq!(kinds, vec![MemberKind::Bond, MemberKind::Polygon, MemberKind::Polygon]);
    }

    #[test]
    fn single_chord_cycle() {
        // the paper's simplest example: cycle + one chord = bond + 2 polygons
        let g = MultiGraph::gp_graph(4, &[(1, 3)]);
        let dec = decompose(&g);
        check_invariants(&g, &dec);
        let sigs = dec.signatures();
        // bond member holds only the chord (edge 5); polygons hold the arcs.
        assert!(sigs.iter().any(|(k, re)| *k == MemberKind::Bond && re == &vec![5]));
    }

    #[test]
    fn interlacing_chords_make_a_rigid() {
        // cycle 0..5 + e + chords (1,3),(2,4): chords interlace -> rigid core
        let g = MultiGraph::gp_graph(5, &[(1, 3), (2, 4)]);
        let dec = decompose(&g);
        check_invariants(&g, &dec);
        assert!(dec.members.iter().any(|m| m.kind == MemberKind::Rigid));
    }

    #[test]
    fn nested_chords_make_polygon_chain() {
        let g = MultiGraph::gp_graph(8, &[(1, 6), (2, 5), (3, 4)]);
        let dec = decompose(&g);
        check_invariants(&g, &dec);
        assert!(dec.members.iter().all(|m| m.kind != MemberKind::Rigid));
    }

    #[test]
    fn wheel_plus_pendant_triangle() {
        // wheel (rigid) with a triangle glued on one rim edge via 2-separation
        let mut g = MultiGraph::from_edges(
            5,
            &[(1, 2), (2, 3), (3, 4), (4, 1), (0, 1), (0, 2), (0, 3), (0, 4)],
        );
        let v5 = 5;
        let mut g2 = MultiGraph::new(6);
        for &(a, b) in g.edges() {
            g2.add_edge(a, b);
        }
        g2.add_edge(1, v5);
        g2.add_edge(v5, 2);
        g = g2;
        let dec = decompose(&g);
        check_invariants(&g, &dec);
        let mut kinds: Vec<MemberKind> = dec.members.iter().map(|m| m.kind).collect();
        kinds.sort();
        // rim edge (1,2) + triangle (1,5,2) across pair {1,2}:
        // rigid wheel, a triangle polygon, and a bond {rim edge, m, m'}? No —
        // the rim edge and the 2-path form a polygon with the marker; kinds:
        assert_eq!(kinds[kinds.len() - 1], MemberKind::Rigid);
    }
}

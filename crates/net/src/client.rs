//! The self-healing client: deadline budgets, exponential backoff with
//! decorrelated jitter, and a recovered-hash handshake that makes
//! session pushes **idempotent across retries**.
//!
//! The problem it solves is the classic ambiguous-ack window: a client
//! writes a `PushAtoms` frame and the connection dies before the verdict
//! arrives. Was the push applied? Blind resend risks double-applying the
//! columns (the stream is append-only — a duplicate is a different,
//! wrong instance); giving up loses an acknowledged-durable push. Two
//! server facts close the window exactly:
//!
//! 1. The engine folds every **accepted** push into a session stream
//!    hash (FNV-1a over the column stream — `c1p_incremental`), and a
//!    **rejected** push folds nothing. The client mirrors the fold with
//!    [`fold_stream_hash`], so after reconnecting it can ask the server
//!    (`QuerySession` → `SessionStatus`) which side of the push the
//!    authoritative state is on: `hash == pre-push` means the push never
//!    applied (resend is safe), `hash == post-push` means it applied and
//!    only the reply was lost. Anything else is real divergence and is
//!    reported, never papered over.
//! 2. The fsync-before-ack WAL ordering (DESIGN.md §10) means the
//!    recovered hash reflects exactly the durable prefix — the handshake
//!    is sound even when the loss was a shard crash, not just a dropped
//!    packet.
//!
//! Retry policy: only **connection-level** failures (socket errors, lost
//! frames, `ErrorCode::Unavailable` from a supervised-but-down shard)
//! are retried; semantic errors (`Malformed`, `TooLarge`, `NoSession`,
//! …) surface immediately. Every operation runs under one deadline
//! budget; sleeps use exponential backoff with decorrelated jitter
//! (`sleep = min(cap, rand(base, prev * 3))`) so a thundering herd of
//! retrying clients decorrelates instead of re-synchronizing.

use crate::fault::FaultPlan;
use c1p_engine::proto::{
    decode_msg, encode_msg, read_frame, write_frame, ErrorCode, Msg, DEFAULT_MAX_FRAME,
};
use c1p_incremental::{fold_stream_hash, initial_stream_hash};
use c1p_matrix::io::WireVerdict;
use c1p_matrix::Ensemble;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retry/backoff knobs for one [`Client`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total wall-clock budget for one logical operation, reconnects,
    /// handshakes and sleeps included. When it runs out the operation
    /// fails with [`ClientError::DeadlineExceeded`] — a chaos run
    /// asserts no request ever outlives this.
    pub deadline: Duration,
    /// First backoff sleep (and the jitter floor).
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed: two clients with different seeds decorrelate; the
    /// same seed replays the same sleep schedule (deterministic tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            deadline: Duration::from_secs(10),
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            seed: 1,
        }
    }
}

/// How a logical operation ultimately failed (transport failures are
/// retried internally and only surface as `DeadlineExceeded`).
#[derive(Debug)]
pub enum ClientError {
    /// The deadline budget ran out before a conclusive reply. The last
    /// transport-level error is carried for diagnosis.
    DeadlineExceeded {
        /// Operation name (`"push"`, `"seal"`, …).
        op: &'static str,
        /// Last underlying failure before the budget expired.
        last: String,
    },
    /// A semantic server error — not retryable by definition.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The reply decoded but was not a legal response to the request.
    Protocol(String),
    /// The recovered-hash handshake found server state that is neither
    /// pre-push nor post-push: the session has genuinely diverged from
    /// the client's mirror. Never retried — this is a correctness bug
    /// surfacing, exactly what a chaos gate wants loud.
    StateDiverged {
        /// The session handle.
        session: u64,
        /// What the server recovered.
        server_hash: u64,
        /// The client's hash before the ambiguous push.
        expected_pre: u64,
        /// The client's hash after the ambiguous push.
        expected_post: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::DeadlineExceeded { op, last } => {
                write!(f, "{op}: deadline exceeded (last error: {last})")
            }
            ClientError::Server { code, message } => write!(f, "server error {code:?}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::StateDiverged { session, server_hash, expected_pre, expected_post } => {
                write!(
                    f,
                    "session {session} diverged: server hash {server_hash:#x} is neither \
                     pre-push {expected_pre:#x} nor post-push {expected_post:#x}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A push's outcome once retries settle.
#[derive(Debug)]
pub enum PushOutcome {
    /// The server's verdict arrived (possibly after safe resends).
    Verdict(WireVerdict),
    /// The handshake proved the push **was** applied, but the verdict
    /// frame itself was lost to a fault. The session state is exactly
    /// post-push; only the witness order is missing (re-derivable by a
    /// `Solve` of the accepted concatenation, which the seal returns
    /// anyway).
    RecoveredAccepted,
}

/// A seal's outcome once retries settle.
#[derive(Debug)]
pub enum SealOutcome {
    /// The sealed witness order.
    Order(Vec<u32>),
    /// The handshake found the session gone — the seal applied and the
    /// reply was lost. The order is recoverable via [`Client::solve`] of
    /// the accepted concatenation (a cache hit: sealing inserted it).
    LostButSealed,
}

/// What one transport exchange produced (internal).
enum Exchange {
    Reply(Msg),
    /// Connection-level failure; whether the request reached the server
    /// is unknown.
    Lost(String),
    /// The server said `Unavailable` — the owning shard is down or the
    /// request outlived the server-side deadline. Equally ambiguous:
    /// the reaper answers for requests that may have already applied.
    Unavailable(String),
}

/// A reconnecting frame client with retry and backoff. One instance ==
/// one logical connection; it transparently re-dials after failures.
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    conn: Option<(BufReader<TcpStream>, BufWriter<TcpStream>)>,
    next_id: u64,
    rng: u64,
    prev_sleep: Duration,
    retries: u64,
    /// Optional client-side chaos: faults injected into this client's
    /// own socket I/O (the chaos driver points it at the same plan
    /// shape the server uses, with a different seed).
    fault: Option<Arc<FaultPlan>>,
}

impl Client {
    /// A client for `addr` (dialed lazily on first use).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Client {
        let seed = policy.seed;
        Client {
            addr: addr.into(),
            policy,
            conn: None,
            next_id: 0,
            rng: seed | 1,
            prev_sleep: Duration::ZERO,
            retries: 0,
            fault: None,
        }
    }

    /// Injects faults into this client's own reads/writes (testing the
    /// retry machinery without a faulty server).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Client {
        self.fault = Some(plan);
        self
    }

    /// Transport retries performed so far (reconnect-and-resend or
    /// handshake rounds) — the client-side mirror of the server's
    /// `c1pd_retries_total`.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn next_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// splitmix64 step — the jitter source.
    fn rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Sleeps the next decorrelated-jitter interval, truncated to the
    /// remaining budget. Returns `false` when the budget is exhausted.
    fn backoff(&mut self, deadline: Instant) -> bool {
        let base = self.policy.base.max(Duration::from_micros(100));
        let lo = base.as_micros() as u64;
        let hi = (self.prev_sleep.as_micros() as u64).saturating_mul(3).max(lo + 1);
        let us = lo + self.rand() % (hi - lo);
        let sleep = Duration::from_micros(us).min(self.policy.cap);
        self.prev_sleep = sleep;
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        std::thread::sleep(sleep.min(deadline - now));
        Instant::now() < deadline
    }

    fn dial(&mut self) -> std::io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some((reader, BufWriter::new(stream)));
        Ok(())
    }

    /// One request/reply round: dial if needed, write, read, decode.
    /// Any socket-level failure drops the connection and comes back as
    /// [`Exchange::Lost`] — the caller decides whether resending is safe.
    fn exchange(&mut self, msg: &Msg) -> Exchange {
        if let Err(e) = self.dial() {
            return Exchange::Lost(format!("connect: {e}"));
        }
        let plan = self.fault.clone();
        let (reader, writer) = self.conn.as_mut().expect("dialed above");
        let payload = encode_msg(msg);
        let wrote = match &plan {
            Some(p) => {
                let mut fio = crate::fault::FaultyIo::new(writer, p);
                write_frame(&mut fio, &payload).and_then(|()| fio.flush())
            }
            None => write_frame(writer, &payload).and_then(|()| writer.flush()),
        };
        if let Err(e) = wrote {
            self.conn = None;
            return Exchange::Lost(format!("write: {e}"));
        }
        let read = match &plan {
            Some(p) => {
                let mut fio = crate::fault::FaultyIo::new(reader, p);
                read_frame(&mut fio, DEFAULT_MAX_FRAME)
            }
            None => read_frame(reader, DEFAULT_MAX_FRAME),
        };
        let frame = match read {
            Ok(Some(f)) => f,
            Ok(None) => {
                self.conn = None;
                return Exchange::Lost("connection closed before the reply".into());
            }
            Err(e) => {
                self.conn = None;
                return Exchange::Lost(format!("read: {e}"));
            }
        };
        match decode_msg(&frame) {
            Ok(Msg::Error { code: ErrorCode::Unavailable, message, .. }) => {
                Exchange::Unavailable(message)
            }
            Ok(m) => Exchange::Reply(m),
            Err(e) => {
                self.conn = None;
                Exchange::Lost(format!("undecodable reply: {e}"))
            }
        }
    }

    /// Retries `msg` until a conclusive reply, for requests that are
    /// naturally idempotent (`Solve`, `Ping`, `QuerySession`, `GetStats`
    /// — resending can at worst repeat read-only or pure work).
    fn call_idempotent(
        &mut self,
        op: &'static str,
        msg: &Msg,
        deadline: Instant,
    ) -> Result<Msg, ClientError> {
        loop {
            let last = match self.exchange(msg) {
                Exchange::Reply(Msg::Error { code, message, .. }) => {
                    return Err(ClientError::Server { code, message })
                }
                Exchange::Reply(m) => return Ok(m),
                Exchange::Lost(e) | Exchange::Unavailable(e) => e,
            };
            self.retries += 1;
            if !self.backoff(deadline) {
                return Err(ClientError::DeadlineExceeded { op, last });
            }
        }
    }

    /// Solves one instance with retry (pure request — blind resend is
    /// always safe).
    pub fn solve(&mut self, ens: &Ensemble) -> Result<WireVerdict, ClientError> {
        let deadline = Instant::now() + self.policy.deadline;
        let id = self.next_id();
        match self.call_idempotent("solve", &Msg::Solve { id, ens: ens.clone() }, deadline)? {
            Msg::Verdict { id: rid, verdict } if rid == id => Ok(verdict),
            other => Err(ClientError::Protocol(format!("expected Verdict, got {other:?}"))),
        }
    }

    /// Fetches the server's retained request traces as JSONL (one trace
    /// object per line, oldest first per shard ring; empty when tracing
    /// is off). Pure read — retrying is always safe.
    pub fn traces(&mut self) -> Result<String, ClientError> {
        let deadline = Instant::now() + self.policy.deadline;
        match self.call_idempotent("traces", &Msg::GetTraces, deadline)? {
            Msg::Traces { jsonl } => Ok(jsonl),
            other => Err(ClientError::Protocol(format!("expected Traces, got {other:?}"))),
        }
    }

    /// Health-checks the server with retry.
    pub fn ping(&mut self) -> Result<Msg, ClientError> {
        let deadline = Instant::now() + self.policy.deadline;
        let id = self.next_id();
        match self.call_idempotent("ping", &Msg::Ping { id }, deadline)? {
            m @ Msg::Pong { .. } => Ok(m),
            other => Err(ClientError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Opens a session, returning its handle. Ambiguously-lost opens are
    /// simply re-sent: a duplicate open leaks an empty orphan session,
    /// which the server's idle sweep reclaims — no state is corrupted.
    pub fn open_session(&mut self, n_atoms: usize) -> Result<SessionClient<'_>, ClientError> {
        let deadline = Instant::now() + self.policy.deadline;
        let id = self.next_id();
        let msg = Msg::OpenSession { id, n_atoms: n_atoms as u64 };
        match self.call_idempotent("open", &msg, deadline)? {
            Msg::SessionVerdict { id: rid, session, verdict: WireVerdict::Accept { order } }
                if rid == id && order.is_empty() =>
            {
                Ok(SessionClient {
                    client: self,
                    session,
                    hash: initial_stream_hash(n_atoms),
                    columns: 0,
                })
            }
            other => {
                Err(ClientError::Protocol(format!("expected an empty-state ack, got {other:?}")))
            }
        }
    }
}

/// One open session driven through the self-healing client. Tracks the
/// engine's stream hash push-by-push (the [`fold_stream_hash`] mirror),
/// which is what makes retries exact rather than hopeful.
pub struct SessionClient<'a> {
    client: &'a mut Client,
    session: u64,
    hash: u64,
    columns: u64,
}

impl SessionClient<'_> {
    /// The server-issued public session handle.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The client-side mirror of the engine's stream hash.
    pub fn stream_hash(&self) -> u64 {
        self.hash
    }

    /// Accepted columns so far (mirror of the server's count).
    pub fn columns(&self) -> u64 {
        self.columns
    }

    /// Asks the server what it believes about this session, with retry.
    /// `Ok(None)` means the session does not exist (`NoSession`) — which
    /// after an ambiguous seal is the *success* signal.
    fn query(&mut self, deadline: Instant) -> Result<Option<(u64, u64)>, ClientError> {
        let id = self.client.next_id();
        let msg = Msg::QuerySession { id, session: self.session };
        match self.client.call_idempotent("query-session", &msg, deadline) {
            Ok(Msg::SessionStatus { id: rid, session, stream_hash, columns })
                if rid == id && session == self.session =>
            {
                Ok(Some((stream_hash, columns)))
            }
            Ok(other) => {
                Err(ClientError::Protocol(format!("expected SessionStatus, got {other:?}")))
            }
            Err(ClientError::Server { code: ErrorCode::NoSession, .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Pushes `delta`, surviving lost connections, downed shards and
    /// dropped replies without ever double-applying. The ambiguous-ack
    /// window is resolved by the recovered-hash handshake described in
    /// the module docs.
    pub fn push(&mut self, delta: &Ensemble) -> Result<PushOutcome, ClientError> {
        let deadline = Instant::now() + self.client.policy.deadline;
        let pre = self.hash;
        let post = fold_stream_hash(pre, delta);
        loop {
            let id = self.client.next_id();
            let msg = Msg::PushAtoms { id, session: self.session, delta: delta.clone() };
            let last = match self.client.exchange(&msg) {
                Exchange::Reply(Msg::SessionVerdict { id: rid, session, verdict })
                    if rid == id && session == self.session =>
                {
                    if matches!(verdict, WireVerdict::Accept { .. }) {
                        self.hash = post;
                        self.columns += delta.n_columns() as u64;
                    }
                    return Ok(PushOutcome::Verdict(verdict));
                }
                Exchange::Reply(Msg::Error { code, message, .. }) => {
                    return Err(ClientError::Server { code, message })
                }
                Exchange::Reply(other) => {
                    return Err(ClientError::Protocol(format!(
                        "expected SessionVerdict, got {other:?}"
                    )))
                }
                Exchange::Lost(e) | Exchange::Unavailable(e) => e,
            };
            // Ambiguous: the push may or may not have applied. Back off,
            // then ask the server which world we are in before resending.
            self.client.retries += 1;
            if !self.client.backoff(deadline) {
                return Err(ClientError::DeadlineExceeded { op: "push", last });
            }
            match self.query(deadline)? {
                Some((h, _cols)) if h == post => {
                    // applied; only the verdict frame was lost
                    self.hash = post;
                    self.columns += delta.n_columns() as u64;
                    return Ok(PushOutcome::RecoveredAccepted);
                }
                Some((h, _cols)) if h == pre => {
                    // never applied (or applied-and-rejected, which
                    // folds nothing and rolls back — either way the
                    // stream is at `pre` and resending is exact)
                }
                Some((h, _)) => {
                    return Err(ClientError::StateDiverged {
                        session: self.session,
                        server_hash: h,
                        expected_pre: pre,
                        expected_post: post,
                    })
                }
                None => {
                    return Err(ClientError::Server {
                        code: ErrorCode::NoSession,
                        message: format!("session {} vanished mid-stream", self.session),
                    })
                }
            }
        }
    }

    /// Seals the session. An ambiguously-lost seal is resolved the same
    /// way: if the handshake finds the session gone, the seal applied
    /// (sealing removes it) and only the reply was lost.
    pub fn seal(mut self) -> Result<SealOutcome, ClientError> {
        let deadline = Instant::now() + self.client.policy.deadline;
        loop {
            let id = self.client.next_id();
            let msg = Msg::SealSession { id, session: self.session };
            let last = match self.client.exchange(&msg) {
                Exchange::Reply(Msg::SessionVerdict {
                    id: rid,
                    session,
                    verdict: WireVerdict::Accept { order },
                }) if rid == id && session == self.session => return Ok(SealOutcome::Order(order)),
                Exchange::Reply(Msg::Error { code, message, .. }) => {
                    return Err(ClientError::Server { code, message })
                }
                Exchange::Reply(other) => {
                    return Err(ClientError::Protocol(format!(
                        "expected a sealed Accept, got {other:?}"
                    )))
                }
                Exchange::Lost(e) | Exchange::Unavailable(e) => e,
            };
            self.client.retries += 1;
            if !self.client.backoff(deadline) {
                return Err(ClientError::DeadlineExceeded { op: "seal", last });
            }
            match self.query(deadline)? {
                None => return Ok(SealOutcome::LostButSealed),
                Some((h, _)) if h == self.hash => {} // still open: resend
                Some((h, _)) => {
                    return Err(ClientError::StateDiverged {
                        session: self.session,
                        server_hash: h,
                        expected_pre: self.hash,
                        expected_post: self.hash,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_decorrelated_bounded_and_deadline_capped() {
        let mut c = Client::new(
            "127.0.0.1:1",
            RetryPolicy {
                deadline: Duration::from_millis(50),
                base: Duration::from_micros(200),
                cap: Duration::from_millis(2),
                seed: 7,
            },
        );
        let deadline = Instant::now() + Duration::from_millis(50);
        let mut sleeps = Vec::new();
        for _ in 0..6 {
            assert!(c.backoff(deadline));
            sleeps.push(c.prev_sleep);
        }
        for s in &sleeps {
            assert!(*s >= Duration::from_micros(200), "below base: {s:?}");
            assert!(*s <= Duration::from_millis(2), "above cap: {s:?}");
        }
        // decorrelated jitter must not produce a constant schedule
        assert!(sleeps.windows(2).any(|w| w[0] != w[1]));
        // an expired deadline refuses to sleep
        let past = Instant::now() - Duration::from_millis(1);
        assert!(!c.backoff(past));
    }

    #[test]
    fn same_seed_replays_the_same_jitter_schedule() {
        let mk = |seed| {
            let mut c = Client::new("127.0.0.1:1", RetryPolicy { seed, ..RetryPolicy::default() });
            (0..8).map(|_| c.rand()).collect::<Vec<_>>()
        };
        assert_eq!(mk(3), mk(3));
        assert_ne!(mk(3), mk(4));
    }

    #[test]
    fn connect_failure_is_retried_until_the_deadline_then_reported() {
        // port 1 on localhost refuses connections; the client must keep
        // retrying within the budget and fail with DeadlineExceeded, not
        // hang or panic
        let mut c = Client::new(
            "127.0.0.1:1",
            RetryPolicy {
                deadline: Duration::from_millis(30),
                base: Duration::from_micros(200),
                cap: Duration::from_millis(2),
                seed: 1,
            },
        );
        let ens = Ensemble::from_sorted_columns(4, vec![vec![0, 1]]).unwrap();
        let t0 = Instant::now();
        match c.solve(&ens) {
            Err(ClientError::DeadlineExceeded { op: "solve", .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "must not hang");
        assert!(c.retries() > 0, "retries must be counted");
    }
}

//! `c1p-net` — the serving layer: an event-driven sharded TCP front-end
//! for the C1P engine, its legacy thread-per-connection twin, and the
//! metrics registry both export.
//!
//! The crate exists because at the scale ROADMAP names, the accept/read
//! path — not the solver — is the ceiling: a blocked thread per idle
//! connection is pure overhead on a small host, and one shared engine
//! means one shared cache lock. The answer here is classic and std-only
//! (the workspace is offline/vendored — no tokio, no mio):
//!
//! * [`poll`] — a raw `poll(2)` shim, one `extern "C"` declaration, the
//!   same trick `c1pd` already uses for `signal(2)`.
//! * [`conn`] — per-socket frame reassembly (a frame may arrive a byte
//!   per wakeup) and a bounded outbox with explicit back-pressure.
//! * [`event_loop`] — one readiness thread multiplexing every socket,
//!   dispatching complete frames to N shard workers, each owning an
//!   [`Engine`] whose LRU covers a consistent-hash slice of canonical
//!   keys ([`route_hash`] + [`pick_shard`]).
//! * [`legacy`] — the PR 4 thread-per-connection server as a library,
//!   kept behind `c1pd`'s default mode for differential testing: both
//!   modes must produce bit-identical verdicts on the same seeds.
//! * [`metrics`] — the stable-name counter/histogram registry exported
//!   over `GetStats`/`GetMetrics` frames by both modes.
//! * [`fault`] — seeded deterministic fault injection (chaos testing):
//!   socket, mailbox and WAL-append fault schedules, zero-cost when
//!   empty, driving the shard supervision in [`event_loop`].
//! * [`client`] — the self-healing client: deadline budgets, backoff
//!   with decorrelated jitter, and the recovered-hash handshake that
//!   makes session pushes idempotent across retries.
//!
//! Both servers speak the `c1p_engine::proto` frame protocol unchanged:
//! one response per request, in order, per connection — the event loop
//! re-establishes that order with per-connection sequence numbers when
//! shards complete out of order.

pub mod client;
pub mod conn;
#[cfg(unix)]
pub mod event_loop;
pub mod fault;
pub mod legacy;
pub mod metrics;
pub mod poll;
pub mod trace;

use c1p_engine::proto::{ErrorCode, Msg};
use c1p_engine::{Engine, EngineError};
use c1p_matrix::Ensemble;
use std::time::Duration;

/// Options shared by both server modes (the `c1pd` flag surface).
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Connection cap; excess connections get one `Overloaded` frame.
    pub max_conns: usize,
    /// Frame byte cap; over-cap frames get one `TooLarge` frame, then
    /// the connection closes.
    pub max_frame: usize,
    /// Mid-frame stall budget (`--read-timeout-ms`): a connection whose
    /// partial frame makes no progress for this long gets one `Timeout`
    /// error frame and is closed. `None` disables the reaper. Idle
    /// connections *between* frames are never timed out.
    pub read_timeout: Option<Duration>,
    /// Per-connection outbox byte cap (`--outbox-kb`): a reader that
    /// falls this far behind gets one `Overloaded` ("slow reader")
    /// frame and is disconnected.
    pub outbox_limit: usize,
    /// Request tracing policy (`--trace-sample`/`--slow-ms`/
    /// `--trace-seed`/`--trace-ring`); `sample_every == 0` disables.
    pub trace: trace::TraceConfig,
}

impl Default for ServerOpts {
    fn default() -> ServerOpts {
        ServerOpts {
            max_conns: 64,
            max_frame: c1p_engine::proto::DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_millis(250)),
            outbox_limit: 8 << 20,
            trace: trace::TraceConfig::default(),
        }
    }
}

/// Shard-routing hash of an instance: invariant under column permutation,
/// exactly the quotient the engine's cache key takes (canonicalization
/// sorts columns lexicographically and leaves atoms untouched — see
/// `c1p_engine::canonical`). Two requests with the same canonical key
/// always hash alike, so they land on the same shard and its LRU can
/// coalesce them; requests differing in atom numbering spread out.
///
/// Per-column FNV-1a folded with a wrapping sum: the sum commutes, the
/// per-column hash does not.
pub fn route_hash(ens: &Ensemble) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut acc = (ens.n_atoms() as u64).wrapping_mul(FNV_PRIME) ^ FNV_OFFSET;
    for col in ens.columns() {
        let mut h = FNV_OFFSET;
        for &atom in col {
            for b in atom.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
        }
        // length disambiguates [] vs [0] (FNV of nothing vs something)
        h = (h ^ col.len() as u64).wrapping_mul(FNV_PRIME);
        acc = acc.wrapping_add(h);
    }
    acc
}

/// Rendezvous (highest-random-weight) shard choice: every key ranks all
/// shards and takes the max, so changing the shard count reshuffles only
/// the keys whose winner changed — no modulo avalanche.
pub fn pick_shard(hash: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut best = 0usize;
    let mut best_w = 0u64;
    for s in 0..shards {
        // splitmix64 over (key hash ⊕ shard id) as the weight
        let mut w = hash ^ (s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        w = (w ^ (w >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        w = (w ^ (w >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        w ^= w >> 31;
        if s == 0 || w > best_w {
            best = s;
            best_w = w;
        }
    }
    best
}

/// Maps an [`EngineError`] onto the wire error frame, identically in
/// both server modes (the differential tests compare these byte for
/// byte).
pub fn engine_error(id: u64, e: EngineError) -> Msg {
    let code = match e {
        EngineError::Overloaded => ErrorCode::Overloaded,
        EngineError::TooLarge { .. }
        | EngineError::SessionFull { .. }
        | EngineError::SessionOverBudget { .. } => ErrorCode::TooLarge,
        EngineError::ShuttingDown => ErrorCode::Internal,
        EngineError::NoSuchSession { .. } => ErrorCode::NoSession,
        EngineError::SessionMismatch { .. } => ErrorCode::Malformed,
    };
    Msg::Error { id, code, message: e.to_string() }
}

/// Serves one `PushAtoms`/`SealSession` request against `engine`, with
/// the session handle already translated to the engine-local id `local`.
/// The reply carries `public` as its handle. Used verbatim by the legacy
/// handler (`public == local`) and the shard workers (public ids
/// interleave shard-local ones — see [`event_loop`]); `OpenSession`
/// stays with the callers, whose id mapping differs.
pub fn session_reply(engine: &Engine, msg: &Msg, local: u64, public: u64) -> Msg {
    session_reply_traced(engine, msg, local, public, None)
}

/// [`session_reply`] with a span recorder: `PushAtoms` solve/WAL work is
/// recorded into `trace` when sampled (seal and query reuse the untraced
/// engine paths — their lifecycle spans come from the front end).
pub fn session_reply_traced(
    engine: &Engine,
    msg: &Msg,
    local: u64,
    public: u64,
    trace: Option<&c1p_engine::trace::ReqTrace>,
) -> Msg {
    match *msg {
        Msg::PushAtoms { id, ref delta, .. } => {
            match engine.session_push_traced(local, delta, trace) {
                Ok(verdict) => {
                    Msg::SessionVerdict { id, session: public, verdict: verdict.to_wire() }
                }
                Err(e) => engine_error(id, e),
            }
        }
        Msg::SealSession { id, .. } => match engine.seal_session(local) {
            Ok(verdict) => Msg::SessionVerdict { id, session: public, verdict: verdict.to_wire() },
            Err(e) => engine_error(id, e),
        },
        Msg::QuerySession { id, .. } => match engine.session_status(local) {
            Ok((stream_hash, columns)) => {
                Msg::SessionStatus { id, session: public, stream_hash, columns }
            }
            Err(e) => engine_error(id, e),
        },
        _ => Msg::Error {
            id: 0,
            code: ErrorCode::Malformed,
            message: "unexpected message kind for a server".into(),
        },
    }
}

/// Probes the durability directory for a [`Msg::Pong`]: a tiny write
/// (created and removed) answers "can accepted pushes still be made
/// durable right now?" — `Disabled` when the server runs without a WAL.
pub fn wal_health(dir: Option<&std::path::Path>) -> c1p_engine::proto::WalHealth {
    use c1p_engine::proto::WalHealth;
    let Some(dir) = dir else {
        return WalHealth::Disabled;
    };
    let probe = dir.join(".health-probe");
    match std::fs::write(&probe, b"ok") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
            WalHealth::Writable
        }
        Err(_) => WalHealth::Unwritable,
    }
}

/// The `OpenSession` reply: the empty state's witness is the identity —
/// elided (empty order) so a 17-byte open cannot amplify into a multi-MB
/// reply at large `n_atoms`.
pub fn open_reply(id: u64, public: u64) -> Msg {
    Msg::SessionVerdict {
        id,
        session: public,
        verdict: c1p_matrix::io::WireVerdict::Accept { order: Vec::new() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_matrix::Ensemble;
    use rand::{RngExt, SeedableRng, StdRng};

    fn random_ensemble(rng: &mut StdRng, n_atoms: usize, n_cols: usize) -> Ensemble {
        let mut ens = Ensemble::new(n_atoms);
        for _ in 0..n_cols {
            let len = rng.random_range(1..=n_atoms.min(6));
            let mut col: Vec<u32> = (0..n_atoms as u32).collect();
            for i in 0..len {
                let j = rng.random_range(i..n_atoms);
                col.swap(i, j);
            }
            col.truncate(len);
            ens.push_column(col);
        }
        ens
    }

    #[test]
    fn route_hash_is_column_permutation_invariant() {
        let mut rng = StdRng::seed_from_u64(0xC1F0);
        for _ in 0..50 {
            let ens = random_ensemble(&mut rng, 12, 8);
            let mut cols: Vec<Vec<u32>> = ens.columns().to_vec();
            // rotate + swap: a nontrivial permutation of the columns
            cols.rotate_left(3);
            let last = cols.len() - 1;
            cols.swap(0, last);
            let permuted = Ensemble::from_sorted_columns(ens.n_atoms(), cols).unwrap();
            assert_eq!(route_hash(&ens), route_hash(&permuted));
        }
    }

    #[test]
    fn route_hash_distinguishes_atom_count_and_content() {
        let a = Ensemble::from_sorted_columns(8, vec![vec![0, 1]]).unwrap();
        let b = Ensemble::from_sorted_columns(9, vec![vec![0, 1]]).unwrap();
        let c = Ensemble::from_sorted_columns(8, vec![vec![0, 2]]).unwrap();
        assert_ne!(route_hash(&a), route_hash(&b));
        assert_ne!(route_hash(&a), route_hash(&c));
        // empty column vs singleton atom 0: length folding keeps them apart
        let d = Ensemble::from_sorted_columns(8, vec![vec![], vec![0, 1]]).unwrap();
        assert_ne!(route_hash(&a), route_hash(&d));
    }

    #[test]
    fn pick_shard_is_stable_and_spreads() {
        let mut counts = [0usize; 4];
        for k in 0..4096u64 {
            let s = pick_shard(k.wrapping_mul(0x9e3779b97f4a7c15), 4);
            assert_eq!(s, pick_shard(k.wrapping_mul(0x9e3779b97f4a7c15), 4), "deterministic");
            counts[s] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 4096 / 8, "shard {s} got {c}/4096 — rendezvous should spread evenly");
        }
        // single shard degenerates to 0
        assert_eq!(pick_shard(123, 1), 0);
    }

    #[test]
    fn rendezvous_moves_few_keys_when_a_shard_is_added() {
        let moved = (0..4096u64)
            .filter(|k| {
                let h = k.wrapping_mul(0x9e3779b97f4a7c15);
                let before = pick_shard(h, 4);
                let after = pick_shard(h, 5);
                before != after && after != 4
            })
            .count();
        // growing 4 → 5 shards may move keys *to* the new shard, but
        // must not reshuffle keys among the old ones
        assert_eq!(moved, 0, "{moved} keys changed owner among surviving shards");
    }
}

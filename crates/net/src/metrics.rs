//! First-class serving telemetry: a stable-name registry of atomic
//! counters, gauges and log-bucketed latency histograms.
//!
//! Design rules (DESIGN.md §11):
//!
//! * **Names are API.** Every exported series carries one of the names in
//!   [`STABLE_NAMES`]; renaming one is a breaking change to every
//!   dashboard and CI gate scraping the dump, so names are declared once,
//!   here, and tests pin that the rendered text contains all of them.
//!   The convention follows the related repos' `*_cache_*` telemetry:
//!   monotone counters end in `_total`, instantaneous values do not, and
//!   histograms expand to `_bucket{le="..."}`/`_sum`/`_count` series.
//! * **Two transports, one truth.** The same snapshot backs both the
//!   `GetStats` JSON frame (engine counters, summed across shards) and
//!   the plain-text [`Metrics::render`] dump (engine counters *plus* the
//!   front-end's own series) — a scraper and a wire client can never
//!   disagree about what the server did.
//! * **Engine counters are folded in, not duplicated.** The engine
//!   already counts cache/WAL/snapshot/session events
//!   ([`c1p_engine::EngineStats`]); the registry renders those under
//!   stable `c1pd_*` names at snapshot time instead of double-counting
//!   them on the hot path.
//!
//! The front-end's own series (connections, frames, bytes, queue depth,
//! per-frame latency, per-shard job counts) are plain relaxed atomics —
//! one `fetch_add` per event, no locks, shared freely across the event
//! loop, shard workers and the legacy per-connection threads.

use c1p_engine::EngineStats;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (goes up and down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets: powers of two from 1 µs up to
/// 2^21 µs (~2.1 s); anything slower lands in `+Inf`.
pub const HIST_BUCKETS: usize = 22;

/// A log2-bucketed latency histogram over microseconds. Observation is
/// two relaxed `fetch_add`s and a `leading_zeros` — cheap enough for
/// every frame.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS + 1], // [le 2^0 .. le 2^21, +Inf]
    /// Per-bucket exemplar: the most recent *retained* trace id whose
    /// observation landed in the bucket (`0` = none — trace ids are
    /// splitmix64 outputs, so a real zero id is vanishingly unlikely and
    /// merely loses its exemplar slot). The tracer clears a slot when the
    /// trace it names is evicted, keeping the exemplar → retained-trace
    /// invariant (DESIGN.md §13).
    exemplars: [AtomicU64; HIST_BUCKETS + 1],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Bucket index for an observation of `us` microseconds.
fn bucket_ix(us: u64) -> usize {
    let ix = if us <= 1 { 0 } else { (64 - (us - 1).leading_zeros()) as usize };
    ix.min(HIST_BUCKETS)
}

impl Histogram {
    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        self.buckets[bucket_ix(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Stamps `trace_id` as the exemplar of the bucket an observation of
    /// `us` lands in (the observation itself was already counted by
    /// [`Histogram::observe_us`] — retention is decided later than
    /// observation, so the two are separate calls).
    pub fn attach_exemplar(&self, us: u64, trace_id: u64) {
        self.exemplars[bucket_ix(us)].store(trace_id, Ordering::Relaxed);
    }

    /// Clears every exemplar slot naming `trace_id` (called when the
    /// trace is evicted from its ring, so dangling ids never render).
    pub fn clear_exemplar(&self, trace_id: u64) {
        for e in &self.exemplars {
            let _ = e.compare_exchange(trace_id, 0, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Renders the cumulative `_bucket`/`_sum`/`_count` series. Buckets
    /// with an exemplar append ` # {trace_id="<hex>"}` — the trace is
    /// retrievable via `GetTraces` as long as the suffix renders.
    fn render(&self, name: &str, out: &mut String) {
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if i < HIST_BUCKETS {
                let _ = write!(out, "{name}_bucket{{le=\"{}\"}} {cum}", 1u64 << i);
            } else {
                let _ = write!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            }
            let ex = self.exemplars[i].load(Ordering::Relaxed);
            if ex != 0 {
                let _ = write!(out, " # {{trace_id=\"{ex:016x}\"}}");
            }
            out.push('\n');
        }
        let _ = writeln!(out, "{name}_sum {}", self.sum_us());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// Per-shard series (labelled `{shard="i"}` in the dump).
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Jobs dispatched to this shard's worker.
    pub jobs_total: Counter,
    /// Jobs currently queued or running on this shard.
    pub queue_depth: Gauge,
}

/// The front-end's own registry. One instance per server; shared by the
/// event loop, every shard worker, and (in legacy mode) every connection
/// thread.
#[derive(Debug)]
pub struct Metrics {
    /// Connections accepted (both modes).
    pub connections_accepted_total: Counter,
    /// Connections refused at the `--max-conns` limit.
    pub connections_refused_total: Counter,
    /// Currently open connections.
    pub connections_open: Gauge,
    /// Connections closed for any reason (EOF, error, policy).
    pub disconnects_total: Counter,
    /// Connections dropped because their outbox exceeded the byte cap.
    pub slow_reader_disconnects_total: Counter,
    /// Connections dropped because a partial frame stalled past the
    /// `--read-timeout-ms` budget.
    pub read_timeout_disconnects_total: Counter,
    /// Complete request frames parsed.
    pub frames_read_total: Counter,
    /// Response frames fully written.
    pub frames_written_total: Counter,
    /// Payload + prefix bytes read off sockets.
    pub bytes_read_total: Counter,
    /// Payload + prefix bytes written to sockets.
    pub bytes_written_total: Counter,
    /// Frames whose payload failed to decode.
    pub malformed_frames_total: Counter,
    /// Frames whose declared length exceeded the frame cap.
    pub oversize_frames_total: Counter,
    /// Requests currently in flight across all shards (dispatch → reply).
    pub queue_depth: Gauge,
    /// Bytes currently parked in connection outboxes.
    pub outbox_bytes: Gauge,
    /// Frame service latency: complete request parsed → response queued.
    pub frame_latency_us: Histogram,
    /// Faults injected by the front-end's chaos plan (socket read/write
    /// faults, shard kills, dropped/delayed replies). Engine-side WAL
    /// fault injections are folded in at render time.
    pub faults_injected_total: Counter,
    /// Client retries observed server-side: `QuerySession` handshake
    /// frames served. A well-behaved client only sends one after a
    /// connection-level failure, so this counts retry reconciliations.
    pub retries_total: Counter,
    /// Shard workers respawned after a panic or injected kill.
    pub shard_restarts_total: Counter,
    /// `Unavailable` error frames sent because the owning shard was
    /// down, degraded, or mid-restart.
    pub degraded_replies_total: Counter,
    /// Requests answered `Unavailable` because they outlived the
    /// `--request-deadline-ms` budget (reply lost to a fault or a dead
    /// shard, and reaped instead of hanging).
    pub deadline_expired_total: Counter,
    /// Traces retained in the ring buffers (head-sampled + tail-kept).
    pub traces_retained_total: Counter,
    /// Finished traces discarded by the sampling policy.
    pub traces_dropped_total: Counter,
    /// Per-shard series, indexed by shard id.
    pub shards: Vec<ShardMetrics>,
    /// Serving mode label for `c1pd_build_info` (`legacy` /
    /// `event-loop`), set once at server start.
    mode: OnceLock<&'static str>,
    /// Registry construction time — the `c1pd_uptime_seconds` epoch.
    start: Instant,
}

/// Every stable series name the dump exports (histograms listed by base
/// name; the rendered form appends `_bucket`/`_sum`/`_count`, labelled
/// series append `{shard="i"}`). Tests and CI gates iterate this list —
/// adding a metric means adding its name here, and renaming one fails
/// the `stable_names` test.
pub const STABLE_NAMES: &[&str] = &[
    // engine-derived (folded from `EngineStats` at render time)
    "c1pd_requests_total",
    "c1pd_batches_total",
    "c1pd_cache_hits_total",
    "c1pd_cache_misses_total",
    "c1pd_cache_evictions_total",
    "c1pd_cache_insertions_total",
    "c1pd_cache_uncacheable_total",
    "c1pd_cache_entries",
    "c1pd_cache_bytes",
    "c1pd_coalesced_total",
    "c1pd_overloaded_total",
    "c1pd_batched_small_total",
    "c1pd_large_direct_total",
    "c1pd_sessions_opened_total",
    "c1pd_sessions_sealed_total",
    "c1pd_sessions_evicted_total",
    "c1pd_session_pushes_total",
    "c1pd_session_rejects_total",
    "c1pd_open_sessions",
    "c1pd_wal_appends_total",
    "c1pd_wal_fsyncs_total",
    "c1pd_recovered_sessions_total",
    "c1pd_quarantined_wals_total",
    "c1pd_snapshot_writes_total",
    "c1pd_warm_start_hits_total",
    // front-end
    "c1pd_connections_accepted_total",
    "c1pd_connections_refused_total",
    "c1pd_connections_open",
    "c1pd_disconnects_total",
    "c1pd_slow_reader_disconnects_total",
    "c1pd_read_timeout_disconnects_total",
    "c1pd_frames_read_total",
    "c1pd_frames_written_total",
    "c1pd_bytes_read_total",
    "c1pd_bytes_written_total",
    "c1pd_malformed_frames_total",
    "c1pd_oversize_frames_total",
    "c1pd_queue_depth",
    "c1pd_outbox_bytes",
    "c1pd_frame_latency_us",
    // chaos / supervision (front-end counters; `faults_injected_total`
    // also folds the engine's injected-WAL-fault count at render time)
    "c1pd_faults_injected_total",
    "c1pd_retries_total",
    "c1pd_shard_restarts_total",
    "c1pd_degraded_replies_total",
    "c1pd_deadline_expired_total",
    // build / process identity + tracing (DESIGN.md §13)
    "c1pd_build_info",
    "c1pd_uptime_seconds",
    "c1pd_traces_retained_total",
    "c1pd_traces_dropped_total",
    "c1pd_shard_jobs_total",
    "c1pd_shard_queue_depth",
    "c1pd_shard_cache_hits_total",
];

/// `# TYPE` classification for a series name (histograms are rendered by
/// [`Histogram::render`] and typed at the base name).
fn type_of(name: &str) -> &'static str {
    if name.ends_with("_total") {
        "counter"
    } else if name.ends_with("_us") {
        "histogram"
    } else {
        "gauge"
    }
}

/// `# HELP` text: the series name read out loud — mechanical, but every
/// line parses and no series ships without one.
fn help_of(name: &str) -> String {
    name.strip_prefix("c1pd_").unwrap_or(name).replace('_', " ")
}

impl Metrics {
    /// A registry for a server with `shards` shard workers (legacy mode
    /// passes 1: its single engine is shard 0).
    pub fn new(shards: usize) -> Metrics {
        Metrics {
            connections_accepted_total: Counter::default(),
            connections_refused_total: Counter::default(),
            connections_open: Gauge::default(),
            disconnects_total: Counter::default(),
            slow_reader_disconnects_total: Counter::default(),
            read_timeout_disconnects_total: Counter::default(),
            frames_read_total: Counter::default(),
            frames_written_total: Counter::default(),
            bytes_read_total: Counter::default(),
            bytes_written_total: Counter::default(),
            malformed_frames_total: Counter::default(),
            oversize_frames_total: Counter::default(),
            queue_depth: Gauge::default(),
            outbox_bytes: Gauge::default(),
            frame_latency_us: Histogram::default(),
            faults_injected_total: Counter::default(),
            retries_total: Counter::default(),
            shard_restarts_total: Counter::default(),
            degraded_replies_total: Counter::default(),
            deadline_expired_total: Counter::default(),
            traces_retained_total: Counter::default(),
            traces_dropped_total: Counter::default(),
            shards: (0..shards.max(1)).map(|_| ShardMetrics::default()).collect(),
            mode: OnceLock::new(),
            start: Instant::now(),
        }
    }

    /// Sets the serving-mode label of `c1pd_build_info` (first caller
    /// wins; unset renders as `unknown`).
    pub fn set_mode(&self, mode: &'static str) {
        let _ = self.mode.set(mode);
    }

    /// Renders the full plain-text dump: `# HELP`/`# TYPE` comments plus
    /// one `name value` line per series, engine counters folded in from
    /// the per-shard stats snapshots (`per_shard[i]` = shard `i`'s
    /// engine).
    pub fn render(&self, per_shard: &[EngineStats]) -> String {
        let mut sum = EngineStats::default();
        for s in per_shard {
            sum.absorb(s);
        }
        let mut out = String::with_capacity(8192);
        let head = |out: &mut String, name: &str| {
            let _ = writeln!(out, "# HELP {name} {}", help_of(name));
            let _ = writeln!(out, "# TYPE {name} {}", type_of(name));
        };
        let c = |out: &mut String, name: &str, v: u64| {
            head(out, name);
            let _ = writeln!(out, "{name} {v}");
        };
        let g = |out: &mut String, name: &str, v: i64| {
            head(out, name);
            let _ = writeln!(out, "{name} {v}");
        };
        c(&mut out, "c1pd_requests_total", sum.requests);
        c(&mut out, "c1pd_batches_total", sum.batches);
        c(&mut out, "c1pd_cache_hits_total", sum.hits);
        c(&mut out, "c1pd_cache_misses_total", sum.misses);
        c(&mut out, "c1pd_cache_evictions_total", sum.evictions);
        c(&mut out, "c1pd_cache_insertions_total", sum.insertions);
        c(&mut out, "c1pd_cache_uncacheable_total", sum.uncacheable);
        c(&mut out, "c1pd_cache_entries", sum.cache_entries);
        c(&mut out, "c1pd_cache_bytes", sum.cache_bytes);
        c(&mut out, "c1pd_coalesced_total", sum.coalesced);
        c(&mut out, "c1pd_overloaded_total", sum.overloaded);
        c(&mut out, "c1pd_batched_small_total", sum.batched_small);
        c(&mut out, "c1pd_large_direct_total", sum.large_direct);
        c(&mut out, "c1pd_sessions_opened_total", sum.sessions_opened);
        c(&mut out, "c1pd_sessions_sealed_total", sum.sessions_sealed);
        c(&mut out, "c1pd_sessions_evicted_total", sum.sessions_evicted);
        c(&mut out, "c1pd_session_pushes_total", sum.session_pushes);
        c(&mut out, "c1pd_session_rejects_total", sum.session_rejects);
        c(&mut out, "c1pd_open_sessions", sum.open_sessions);
        c(&mut out, "c1pd_wal_appends_total", sum.wal_appends);
        c(&mut out, "c1pd_wal_fsyncs_total", sum.wal_fsyncs);
        c(&mut out, "c1pd_recovered_sessions_total", sum.recovered_sessions);
        c(&mut out, "c1pd_quarantined_wals_total", sum.quarantined_wals);
        c(&mut out, "c1pd_snapshot_writes_total", sum.snapshot_writes);
        c(&mut out, "c1pd_warm_start_hits_total", sum.warm_start_hits);
        c(&mut out, "c1pd_connections_accepted_total", self.connections_accepted_total.get());
        c(&mut out, "c1pd_connections_refused_total", self.connections_refused_total.get());
        g(&mut out, "c1pd_connections_open", self.connections_open.get());
        c(&mut out, "c1pd_disconnects_total", self.disconnects_total.get());
        c(&mut out, "c1pd_slow_reader_disconnects_total", self.slow_reader_disconnects_total.get());
        c(
            &mut out,
            "c1pd_read_timeout_disconnects_total",
            self.read_timeout_disconnects_total.get(),
        );
        c(&mut out, "c1pd_frames_read_total", self.frames_read_total.get());
        c(&mut out, "c1pd_frames_written_total", self.frames_written_total.get());
        c(&mut out, "c1pd_bytes_read_total", self.bytes_read_total.get());
        c(&mut out, "c1pd_bytes_written_total", self.bytes_written_total.get());
        c(&mut out, "c1pd_malformed_frames_total", self.malformed_frames_total.get());
        c(&mut out, "c1pd_oversize_frames_total", self.oversize_frames_total.get());
        g(&mut out, "c1pd_queue_depth", self.queue_depth.get());
        g(&mut out, "c1pd_outbox_bytes", self.outbox_bytes.get());
        head(&mut out, "c1pd_frame_latency_us");
        self.frame_latency_us.render("c1pd_frame_latency_us", &mut out);
        c(
            &mut out,
            "c1pd_faults_injected_total",
            self.faults_injected_total.get() + sum.wal_faults_injected,
        );
        c(&mut out, "c1pd_retries_total", self.retries_total.get());
        c(&mut out, "c1pd_shard_restarts_total", self.shard_restarts_total.get());
        c(&mut out, "c1pd_degraded_replies_total", self.degraded_replies_total.get());
        c(&mut out, "c1pd_deadline_expired_total", self.deadline_expired_total.get());
        head(&mut out, "c1pd_build_info");
        let _ = writeln!(
            out,
            "c1pd_build_info{{version=\"{}\",mode=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION"),
            self.mode.get().copied().unwrap_or("unknown"),
        );
        g(&mut out, "c1pd_uptime_seconds", self.start.elapsed().as_secs() as i64);
        c(&mut out, "c1pd_traces_retained_total", self.traces_retained_total.get());
        c(&mut out, "c1pd_traces_dropped_total", self.traces_dropped_total.get());
        head(&mut out, "c1pd_shard_jobs_total");
        for (i, sh) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "c1pd_shard_jobs_total{{shard=\"{i}\"}} {}", sh.jobs_total.get());
        }
        head(&mut out, "c1pd_shard_queue_depth");
        for (i, sh) in self.shards.iter().enumerate() {
            let _ =
                writeln!(out, "c1pd_shard_queue_depth{{shard=\"{i}\"}} {}", sh.queue_depth.get());
        }
        head(&mut out, "c1pd_shard_cache_hits_total");
        for (i, s) in per_shard.iter().enumerate() {
            let _ = writeln!(out, "c1pd_shard_cache_hits_total{{shard=\"{i}\"}} {}", s.hits);
        }
        out
    }
}

/// Scans one series value out of a rendered dump (test/CI helper — the
/// scrapers in this workspace carry no text-format parser beyond this).
/// For histograms pass the `_count`/`_sum` form; for labelled series the
/// full `name{label}` prefix. `# HELP`/`# TYPE` comment lines are
/// skipped, and only the first value token is parsed, so bucket lines
/// carrying an exemplar suffix scrape like any other.
pub fn scrape(dump: &str, series: &str) -> Option<i64> {
    dump.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let rest = l.strip_prefix(series)?;
        let rest = rest.strip_prefix(' ')?;
        rest.split_whitespace().next()?.parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises every metric in the registry to a nonzero value and
    /// checks the render reflects it — the mechanics behind the
    /// "every metric nonzero-exercised by at least one test" gate (the
    /// serving integration tests cover the realistic paths).
    #[test]
    fn every_registered_series_renders_nonzero_when_exercised() {
        let m = Metrics::new(2);
        m.connections_accepted_total.inc();
        m.connections_refused_total.inc();
        m.connections_open.inc();
        m.disconnects_total.inc();
        m.slow_reader_disconnects_total.inc();
        m.read_timeout_disconnects_total.inc();
        m.frames_read_total.add(3);
        m.frames_written_total.add(3);
        m.bytes_read_total.add(100);
        m.bytes_written_total.add(100);
        m.malformed_frames_total.inc();
        m.oversize_frames_total.inc();
        m.queue_depth.inc();
        m.outbox_bytes.add(64);
        m.frame_latency_us.observe_us(37);
        m.faults_injected_total.inc();
        m.retries_total.inc();
        m.shard_restarts_total.inc();
        m.degraded_replies_total.inc();
        m.deadline_expired_total.inc();
        m.traces_retained_total.inc();
        m.traces_dropped_total.inc();
        m.set_mode("event-loop");
        for sh in &m.shards {
            sh.jobs_total.inc();
            sh.queue_depth.inc();
        }
        let engine = EngineStats {
            requests: 1,
            batches: 1,
            hits: 1,
            misses: 1,
            evictions: 1,
            insertions: 1,
            uncacheable: 1,
            cache_entries: 1,
            cache_bytes: 1,
            coalesced: 1,
            overloaded: 1,
            batched_small: 1,
            large_direct: 1,
            sessions_opened: 1,
            sessions_sealed: 1,
            sessions_evicted: 1,
            session_pushes: 1,
            session_rejects: 1,
            open_sessions: 1,
            wal_appends: 1,
            wal_fsyncs: 1,
            recovered_sessions: 1,
            quarantined_wals: 1,
            snapshot_writes: 1,
            warm_start_hits: 1,
            wal_faults_injected: 1,
        };
        let dump = m.render(&[engine, EngineStats::default()]);
        for name in STABLE_NAMES {
            let probe = match *name {
                "c1pd_frame_latency_us" => scrape(&dump, "c1pd_frame_latency_us_count"),
                "c1pd_shard_jobs_total" => scrape(&dump, "c1pd_shard_jobs_total{shard=\"0\"}"),
                "c1pd_shard_queue_depth" => scrape(&dump, "c1pd_shard_queue_depth{shard=\"1\"}"),
                "c1pd_shard_cache_hits_total" => {
                    scrape(&dump, "c1pd_shard_cache_hits_total{shard=\"0\"}")
                }
                "c1pd_build_info" => scrape(
                    &dump,
                    &format!(
                        "c1pd_build_info{{version=\"{}\",mode=\"event-loop\"}}",
                        env!("CARGO_PKG_VERSION")
                    ),
                ),
                // a fresh registry has zero whole seconds of uptime;
                // presence is the contract, monotonicity is the OS's
                "c1pd_uptime_seconds" => {
                    assert!(scrape(&dump, name).is_some(), "{name} missing from dump");
                    continue;
                }
                _ => scrape(&dump, name),
            };
            let v = probe.unwrap_or_else(|| panic!("{name} missing from dump"));
            assert!(v > 0, "{name} rendered zero after being exercised");
        }
    }

    /// Every exported series is preceded by `# HELP` and `# TYPE`
    /// comments a Prometheus text-format scrape parses cleanly, and
    /// `scrape` skips them.
    #[test]
    fn render_emits_help_and_type_comments_for_every_series() {
        let m = Metrics::new(1);
        let dump = m.render(&[EngineStats::default()]);
        for name in STABLE_NAMES {
            assert!(dump.contains(&format!("# TYPE {name} ")), "{name} has no # TYPE line");
            assert!(dump.contains(&format!("# HELP {name} ")), "{name} has no # HELP line");
        }
        assert!(dump.contains("# TYPE c1pd_requests_total counter"));
        assert!(dump.contains("# TYPE c1pd_queue_depth gauge"));
        assert!(dump.contains("# TYPE c1pd_frame_latency_us histogram"));
        // comments never shadow values
        assert_eq!(scrape(&dump, "c1pd_requests_total"), Some(0));
    }

    /// Exemplars render as a ` # {trace_id="..."}` suffix on the exact
    /// bucket the latency landed in, survive scraping, and clear when
    /// their trace is evicted.
    #[test]
    fn exemplars_attach_render_and_clear() {
        let h = Histogram::default();
        h.observe_us(3); // le 4 bucket
        h.attach_exemplar(3, 0xabcd);
        let mut out = String::new();
        h.render("lat", &mut out);
        assert!(out.contains("lat_bucket{le=\"4\"} 1 # {trace_id=\"000000000000abcd\"}"));
        assert_eq!(scrape(&out, "lat_bucket{le=\"4\"}"), Some(1), "exemplar breaks scraping");
        // a newer retained trace in the same bucket replaces the exemplar
        h.observe_us(4);
        h.attach_exemplar(4, 0xbeef);
        out.clear();
        h.render("lat", &mut out);
        assert!(out.contains("lat_bucket{le=\"4\"} 2 # {trace_id=\"000000000000beef\"}"));
        // eviction clears only the slot naming the evicted trace
        h.clear_exemplar(0xabcd); // stale id: no-op
        h.clear_exemplar(0xbeef);
        out.clear();
        h.render("lat", &mut out);
        assert!(!out.contains("trace_id"), "cleared exemplar still renders: {out}");
    }

    /// Engine-side injected WAL faults and front-end injections land in
    /// the same `c1pd_faults_injected_total` series — one number tells a
    /// chaos gate how much havoc the run actually exercised.
    #[test]
    fn faults_injected_folds_engine_wal_faults_into_the_frontend_count() {
        let m = Metrics::new(1);
        m.faults_injected_total.add(3);
        let engine = EngineStats { wal_faults_injected: 2, ..EngineStats::default() };
        let dump = m.render(&[engine]);
        assert_eq!(scrape(&dump, "c1pd_faults_injected_total"), Some(5));
    }

    #[test]
    fn stable_names_all_appear_even_on_an_idle_server() {
        let m = Metrics::new(1);
        let dump = m.render(&[EngineStats::default()]);
        for name in STABLE_NAMES {
            assert!(
                dump.lines().any(|l| l.starts_with(name)),
                "{name} absent from an idle dump — the name set is the contract"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_log2() {
        let h = Histogram::default();
        h.observe_us(0); // le 1
        h.observe_us(1); // le 1
        h.observe_us(2); // le 2
        h.observe_us(3); // le 4
        h.observe_us(1024); // le 1024
        h.observe_us(u64::MAX); // +Inf
        assert_eq!(h.count(), 6);
        let mut out = String::new();
        h.render("lat", &mut out);
        assert!(out.contains("lat_bucket{le=\"1\"} 2"));
        assert!(out.contains("lat_bucket{le=\"2\"} 3"));
        assert!(out.contains("lat_bucket{le=\"4\"} 4"));
        assert!(out.contains("lat_bucket{le=\"1024\"} 5"));
        assert!(out.contains("lat_bucket{le=\"+Inf\"} 6"));
        assert!(out.contains("lat_count 6"));
    }

    #[test]
    fn scrape_reads_exact_series_only() {
        let dump = "a_total 5\na_total_more 7\nb{shard=\"1\"} 9\n";
        assert_eq!(scrape(dump, "a_total"), Some(5));
        assert_eq!(scrape(dump, "b{shard=\"1\"}"), Some(9));
        assert_eq!(scrape(dump, "missing"), None);
    }
}

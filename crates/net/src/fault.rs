//! Deterministic fault injection for chaos testing (DESIGN.md §12).
//!
//! A [`FaultPlan`] is a seeded schedule of injected failures at the three
//! I/O boundaries of the event-loop server:
//!
//! - **sockets** — every N-th read or write call suffers a seeded fault:
//!   an I/O error, a fake disconnect, a short transfer (a chosen byte
//!   offset), or a small delay ([`FaultyIo`] wraps the stream);
//! - **shard mailboxes** — every N-th completed job has its reply dropped
//!   or delayed ([`FaultPlan::reply_fault`]), and every N-th job kills
//!   the worker outright ([`FaultPlan::kill_now`] → a panic the
//!   supervisor catches and turns into a shard restart);
//! - **WAL appends** — scheduled by [`c1p_engine::WalFaultPlan`], which
//!   [`FaultPlan::wal`] translates into (torn and refused appends that
//!   panic the pushing worker).
//!
//! The plan is compiled in always and *zero-cost when empty*: every
//! injection point starts with one branch on a plain field, and an empty
//! plan never touches an atomic. Given the same seed and knobs, the
//! schedule — which op faults, and how — is a pure function of the op
//! index, so a chaos run is exactly reproducible.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Splitmix64: the one-instruction-ish seeded mixer used across the
/// workspace for deterministic choices.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One injected socket fault, chosen deterministically per faulted op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// The op fails with `ConnectionReset` (the server drops the peer).
    Error,
    /// The peer "vanishes": reads see EOF, writes see `BrokenPipe`.
    Disconnect,
    /// The op transfers at most this many bytes (never zero — a short
    /// transfer still makes progress, it just lands at a chosen offset).
    Short(usize),
    /// The op is stalled by this much first (a scheduling hiccup; kept
    /// small so a chaos run still terminates briskly).
    Delay(Duration),
}

/// One injected mailbox fault for a completed shard job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyFault {
    /// The reply is never posted; the request-deadline reaper answers
    /// `Unavailable` in its place.
    Drop,
    /// The reply is withheld for this long before the event loop may
    /// release it.
    Delay(Duration),
}

/// A seeded, deterministic fault schedule. All knobs are "every N-th op"
/// rates (`0` = off); the seed staggers each schedule's phase and picks
/// each fault's flavor. Share it with `Arc` — counters are atomic.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    read_every: u64,
    write_every: u64,
    kill_every: u64,
    drop_every: u64,
    delay_every: u64,
    reads: AtomicU64,
    writes: AtomicU64,
    jobs: AtomicU64,
    replies: AtomicU64,
}

impl FaultPlan {
    /// The empty plan: nothing ever faults (the production state).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with every schedule driven by `seed`. Knobs start at 0
    /// (off); chain the `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Faults every N-th socket read call.
    pub fn with_read_every(mut self, n: u64) -> FaultPlan {
        self.read_every = n;
        self
    }

    /// Faults every N-th socket write call.
    pub fn with_write_every(mut self, n: u64) -> FaultPlan {
        self.write_every = n;
        self
    }

    /// Kills the owning shard worker before every N-th job (a panic the
    /// supervisor turns into a restart).
    pub fn with_kill_every(mut self, n: u64) -> FaultPlan {
        self.kill_every = n;
        self
    }

    /// Drops every N-th shard reply on the mailbox floor.
    pub fn with_drop_every(mut self, n: u64) -> FaultPlan {
        self.drop_every = n;
        self
    }

    /// Delays every N-th shard reply.
    pub fn with_delay_every(mut self, n: u64) -> FaultPlan {
        self.delay_every = n;
        self
    }

    /// `true` when no schedule is armed — the zero-cost fast path.
    pub fn is_empty(&self) -> bool {
        self.read_every == 0
            && self.write_every == 0
            && self.kill_every == 0
            && self.drop_every == 0
            && self.delay_every == 0
    }

    /// The WAL-append schedule this plan implies (same seed; rates set by
    /// the caller). Lives in `c1p_engine` because the append path does.
    pub fn wal(&self, torn_every: u64, fail_every: u64) -> c1p_engine::WalFaultPlan {
        c1p_engine::WalFaultPlan::new(torn_every, fail_every, self.seed)
    }

    /// Whether schedule op index `i` (1-based after the increment) under
    /// rate `every` fires, with a seed-dependent phase so independent
    /// schedules interleave.
    fn fires(&self, every: u64, k: u64, i: u64) -> bool {
        if every == 0 {
            return false;
        }
        let phase = mix(self.seed ^ k) % every;
        i % every == phase
    }

    /// Consults the read schedule; advances its op counter.
    pub fn read_fault(&self) -> Option<SocketFault> {
        if self.read_every == 0 {
            return None;
        }
        let i = self.reads.fetch_add(1, Ordering::Relaxed);
        self.fires(self.read_every, 1, i).then(|| self.socket_flavor(1, i))
    }

    /// Consults the write schedule; advances its op counter.
    pub fn write_fault(&self) -> Option<SocketFault> {
        if self.write_every == 0 {
            return None;
        }
        let i = self.writes.fetch_add(1, Ordering::Relaxed);
        self.fires(self.write_every, 2, i).then(|| self.socket_flavor(2, i))
    }

    /// Whether the worker should die before running its next job.
    pub fn kill_now(&self) -> bool {
        if self.kill_every == 0 {
            return false;
        }
        let i = self.jobs.fetch_add(1, Ordering::Relaxed);
        self.fires(self.kill_every, 3, i)
    }

    /// Consults the reply (mailbox) schedules; advances their op counter.
    pub fn reply_fault(&self) -> Option<ReplyFault> {
        if self.drop_every == 0 && self.delay_every == 0 {
            return None;
        }
        let i = self.replies.fetch_add(1, Ordering::Relaxed);
        if self.fires(self.drop_every, 4, i) {
            return Some(ReplyFault::Drop);
        }
        if self.fires(self.delay_every, 5, i) {
            let ms = 1 + mix(self.seed ^ 5 ^ i) % 40;
            return Some(ReplyFault::Delay(Duration::from_millis(ms)));
        }
        None
    }

    /// The flavor of socket fault for op `i` of schedule `k` — a pure
    /// function of the seed, so runs replay identically.
    fn socket_flavor(&self, k: u64, i: u64) -> SocketFault {
        let r = mix(self.seed ^ (k << 32) ^ i);
        match r % 4 {
            0 => SocketFault::Error,
            1 => SocketFault::Disconnect,
            2 => SocketFault::Short(1 + (r >> 8) as usize % 64),
            _ => SocketFault::Delay(Duration::from_millis(1 + (r >> 8) % 4)),
        }
    }
}

/// A stream wrapper applying a [`FaultPlan`]'s socket schedules to every
/// read/write call. `injected` counts the faults actually delivered (the
/// caller feeds its metrics counter from it).
pub struct FaultyIo<'a, S> {
    /// The real stream.
    pub inner: S,
    /// The schedule.
    pub plan: &'a FaultPlan,
    /// Faults delivered through this wrapper.
    pub injected: u64,
}

impl<'a, S> FaultyIo<'a, S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: &'a FaultPlan) -> FaultyIo<'a, S> {
        FaultyIo { inner, plan, injected: 0 }
    }
}

impl<S: Read> Read for FaultyIo<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.plan.read_fault() {
            None => self.inner.read(buf),
            Some(fault) => {
                self.injected += 1;
                match fault {
                    SocketFault::Error => Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "chaos: injected read error",
                    )),
                    SocketFault::Disconnect => Ok(0),
                    SocketFault::Short(n) => {
                        let cap = if buf.is_empty() { 0 } else { n.clamp(1, buf.len()) };
                        self.inner.read(&mut buf[..cap])
                    }
                    SocketFault::Delay(d) => {
                        std::thread::sleep(d);
                        self.inner.read(buf)
                    }
                }
            }
        }
    }
}

impl<S: Write> Write for FaultyIo<'_, S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.plan.write_fault() {
            None => self.inner.write(buf),
            Some(fault) => {
                self.injected += 1;
                match fault {
                    SocketFault::Error => Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "chaos: injected write error",
                    )),
                    SocketFault::Disconnect => {
                        Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: injected disconnect"))
                    }
                    SocketFault::Short(n) => {
                        let cap = if buf.is_empty() { 0 } else { n.clamp(1, buf.len()) };
                        self.inner.write(&buf[..cap])
                    }
                    SocketFault::Delay(d) => {
                        std::thread::sleep(d);
                        self.inner.write(buf)
                    }
                }
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults_and_never_counts() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for _ in 0..1000 {
            assert_eq!(plan.read_fault(), None);
            assert_eq!(plan.write_fault(), None);
            assert!(!plan.kill_now());
            assert_eq!(plan.reply_fault(), None);
        }
        // the fast path must not even tick the op counters
        assert_eq!(plan.reads.load(Ordering::Relaxed), 0);
        assert_eq!(plan.jobs.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn schedules_are_deterministic_and_hit_the_configured_rate() {
        let run = |seed| {
            let plan = FaultPlan::seeded(seed)
                .with_read_every(10)
                .with_write_every(7)
                .with_kill_every(50)
                .with_drop_every(9)
                .with_delay_every(11);
            let mut log = Vec::new();
            for i in 0..1000u64 {
                log.push((
                    i,
                    plan.read_fault(),
                    plan.write_fault(),
                    plan.kill_now(),
                    plan.reply_fault(),
                ));
            }
            log
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same schedule");
        assert_ne!(a, run(43), "different seed, different schedule");
        assert_eq!(a.iter().filter(|e| e.1.is_some()).count(), 100, "every 10th read");
        assert_eq!(a.iter().filter(|e| e.3).count(), 20, "every 50th job");
        // drop wins ties, so drops land exactly at their rate
        let drops = a.iter().filter(|e| e.4 == Some(ReplyFault::Drop)).count();
        assert_eq!(drops, 1000 / 9);
    }

    #[test]
    fn faulty_io_applies_short_transfers_and_errors() {
        // every write faults; flavors are seed-chosen, so scan a window
        // and check each flavor behaves as specified
        let plan = FaultPlan::seeded(7).with_write_every(1);
        let mut sink = Vec::new();
        let mut seen_short = false;
        let mut seen_err = false;
        for _ in 0..64 {
            let mut io = FaultyIo::new(&mut sink, &plan);
            match io.write(&[0xAB; 100]) {
                Ok(n) => {
                    assert!((1..=100).contains(&n));
                    seen_short |= n < 100;
                }
                Err(e) => {
                    assert!(
                        e.kind() == io::ErrorKind::ConnectionReset
                            || e.kind() == io::ErrorKind::BrokenPipe
                    );
                    seen_err = true;
                }
            }
            assert_eq!(io.injected, 1, "every call faults under with_write_every(1)");
        }
        assert!(seen_short && seen_err, "the seed must exercise both flavor classes");
        // reads: a Disconnect flavor reads as EOF, a Short flavor still
        // makes progress (never Ok(0) on a nonempty buffer with data)
        let plan = FaultPlan::seeded(9).with_read_every(1);
        let data = [1u8; 256];
        for _ in 0..64 {
            let mut src: &[u8] = &data;
            let mut io = FaultyIo::new(&mut src, &plan);
            let mut buf = [0u8; 128];
            match io.read(&mut buf) {
                // Ok(0) is an injected disconnect; anything else made progress
                Ok(n) => assert!(n <= 128),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::ConnectionReset),
            }
        }
    }
}

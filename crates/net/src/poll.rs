//! A std-only `poll(2)` shim.
//!
//! The workspace is offline and vendored — no `libc` crate, no `mio`, no
//! tokio. But std already links the C runtime, so the readiness syscall
//! the event loop needs is one `extern "C"` declaration away, exactly the
//! way `c1pd` binds `signal(2)` for graceful shutdown. Only the Linux
//! (and, incidentally, any LP64 unix) ABI is bound: `struct pollfd` is
//! `{ int fd; short events; short revents; }` and `nfds_t` is
//! `unsigned long`.
//!
//! Non-unix hosts get a stub that always fails; the event-loop front-end
//! is gated on it at startup (the thread-per-connection mode keeps
//! working everywhere std does).

use std::io;

/// Readable readiness (data, EOF, or a pending accept).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (the send buffer has room again).
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only) — a bookkeeping bug, not a peer action.
pub const POLLNVAL: i16 = 0x020;

/// One `struct pollfd`, ABI-compatible with the C definition.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (negative = ignore this slot).
    pub fd: i32,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events (filled by the kernel).
    pub revents: i16,
}

impl PollFd {
    /// A slot watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// Did the kernel report any of `mask` (or an error/hangup, which is
    /// always actionable)?
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(unix)]
extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Blocks until at least one slot is ready or `timeout_ms` elapses.
/// Returns the number of ready slots (0 on timeout). `EINTR` — e.g. the
/// SIGTERM that is the whole reason the loop polls — reads as a timeout,
/// so the caller re-checks its stop flag and carries on.
#[cfg(unix)]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        return Ok(0);
    }
    Err(err)
}

/// Non-unix stub: the event loop refuses to start ([`crate::EventLoopOpts`]
/// documents the fallback is the thread-per-connection mode).
#[cfg(not(unix))]
pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "poll(2) shim requires a unix host"))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readable_after_a_write_and_times_out_before() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "nothing written yet");
        assert!(!fds[0].ready(POLLIN));
        a.write_all(b"x").unwrap();
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].ready(POLLIN));
        let mut buf = [0u8; 1];
        (&b).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
    }

    #[test]
    fn reports_hangup_as_ready() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].ready(POLLIN), "EOF/hangup must wake a reader");
    }
}

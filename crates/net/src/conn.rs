//! Per-connection byte plumbing for the event loop: frame reassembly
//! across wakeups, and a bounded outbox with explicit back-pressure.
//!
//! A nonblocking socket delivers a frame in as many pieces as the peer
//! and the kernel feel like — a single byte of the length prefix per
//! wakeup is legal. [`FrameReader`] accumulates bytes and yields only
//! complete frames; it also remembers *when* the current partial frame
//! last advanced, which is exactly the state the slow-loris reaper needs
//! (`--read-timeout-ms` bites only mid-frame; idle between frames is
//! free).
//!
//! [`Outbox`] is the write half: responses are queued as whole frames,
//! flushed as far as the kernel allows on each writable wakeup, and
//! capped — a reader that stops draining its socket cannot pin server
//! memory. Crossing the cap is the caller's signal to disconnect the
//! slow reader (with an exact error frame, not a silent drop).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::Instant;

/// What one readable wakeup produced.
#[derive(Debug, Default)]
pub struct Pull {
    /// Complete frame payloads, in arrival order (length prefix removed).
    pub frames: Vec<Vec<u8>>,
    /// The peer closed its write half (frames already pulled are valid).
    pub eof: bool,
    /// Raw bytes read off the socket by this pull.
    pub bytes: u64,
}

/// Reassembly failure: the declared frame length exceeds the cap. The
/// stream position is unrecoverable, so the connection must close after
/// one exact `TooLarge` error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oversize {
    /// The declared length.
    pub len: usize,
    /// The cap it exceeded.
    pub cap: usize,
}

/// Accumulates socket bytes and yields complete length-prefixed frames.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: usize,
    /// When the current partial frame last advanced (`None` = at a frame
    /// boundary, nothing buffered).
    progress: Option<Instant>,
}

impl FrameReader {
    /// A reader enforcing `max_frame` on every declared length.
    pub fn new(max_frame: usize) -> FrameReader {
        FrameReader { buf: Vec::new(), max_frame, progress: None }
    }

    /// Is a partial frame buffered (prefix or body)? This is the state
    /// the read-timeout reaper keys on.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// When the buffered partial frame last grew; `None` at a boundary.
    pub fn stalled_since(&self) -> Option<Instant> {
        self.progress
    }

    /// Drains everything currently readable from `stream` (until
    /// `WouldBlock`), returning complete frames and whether EOF was hit.
    pub fn pull(&mut self, stream: &mut impl Read) -> Result<Pull, PullError> {
        let mut out = Pull::default();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    out.eof = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    out.bytes += n as u64;
                    self.progress = Some(Instant::now());
                    self.drain_complete(&mut out)?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(PullError::Io(e)),
            }
        }
        if !self.mid_frame() {
            self.progress = None;
        }
        Ok(out)
    }

    /// Bytes read but not yet part of a yielded frame (test hook).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn drain_complete(&mut self, out: &mut Pull) -> Result<(), PullError> {
        let mut at = 0usize;
        while self.buf.len() - at >= 4 {
            let len =
                u32::from_le_bytes(self.buf[at..at + 4].try_into().expect("4 bytes")) as usize;
            if len > self.max_frame {
                return Err(PullError::Oversize(Oversize { len, cap: self.max_frame }));
            }
            if self.buf.len() - at - 4 < len {
                break;
            }
            out.frames.push(self.buf[at + 4..at + 4 + len].to_vec());
            at += 4 + len;
        }
        if at > 0 {
            self.buf.drain(..at);
        }
        Ok(())
    }
}

/// Why a [`FrameReader::pull`] failed.
#[derive(Debug)]
pub enum PullError {
    /// The socket errored.
    Io(io::Error),
    /// The peer declared an over-cap frame.
    Oversize(Oversize),
}

/// A bounded queue of response bytes awaiting a writable socket.
#[derive(Debug, Default)]
pub struct Outbox {
    buf: VecDeque<u8>,
    /// Cumulative bytes handed to the kernel.
    written: u64,
    /// Cumulative end offsets of queued frames (against `written`), so
    /// the flusher can count *fully written* frames, not queued ones.
    ends: VecDeque<u64>,
}

impl Outbox {
    /// Bytes queued and not yet written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Nothing left to write?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Queues one already-encoded frame (length prefix + payload).
    pub fn push_frame(&mut self, frame: &[u8]) {
        self.buf.extend(frame);
        self.ends.push_back(self.written + self.buf.len() as u64);
    }

    /// Writes as much as the kernel will take. Returns
    /// `(bytes_written, frames_completed)`; an empty outbox afterwards
    /// means write interest can be dropped.
    ///
    /// `frames_completed` counts frames whose final byte reached the
    /// kernel *during this call*, in push order — never queued or
    /// partially written ones. The event loop's trace flush accounting
    /// leans on that exactness: it keeps a per-connection queue of
    /// in-flight traces aligned 1:1 with pushed frames and finishes one
    /// trace per completed frame, so the `flush` span ends when the
    /// response bytes are actually handed off, not when they are queued.
    pub fn flush(&mut self, stream: &mut impl Write) -> io::Result<(u64, u64)> {
        let mut bytes = 0u64;
        while !self.buf.is_empty() {
            let (head, _) = self.buf.as_slices();
            match stream.write(head) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "socket refused bytes"))
                }
                Ok(n) => {
                    self.buf.drain(..n);
                    bytes += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.written += bytes;
        let mut frames = 0u64;
        while self.ends.front().is_some_and(|&end| end <= self.written) {
            self.ends.pop_front();
            frames += 1;
        }
        Ok((bytes, frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c1p_engine::proto::write_frame;

    /// An in-memory "socket": reads drain a script of chunks, then
    /// report WouldBlock (like a nonblocking socket with nothing left).
    struct Chunked {
        chunks: VecDeque<Vec<u8>>,
        eof_at_end: bool,
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.chunks.pop_front() {
                Some(c) => {
                    assert!(buf.len() >= c.len(), "test chunks fit the read buffer");
                    buf[..c.len()].copy_from_slice(&c);
                    Ok(c.len())
                }
                None if self.eof_at_end => Ok(0),
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "drained")),
            }
        }
    }

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        write_frame(&mut f, payload).unwrap();
        f
    }

    #[test]
    fn reassembles_one_byte_at_a_time_across_pulls() {
        let mut wire = frame_bytes(b"hello");
        wire.extend(frame_bytes(b"")); // empty payload frame rides along
        let mut reader = FrameReader::new(1024);
        let mut got = Vec::new();
        for b in wire {
            // each byte arrives on its own wakeup
            let mut s = Chunked { chunks: VecDeque::from([vec![b]]), eof_at_end: false };
            let pull = reader.pull(&mut s).unwrap();
            got.extend(pull.frames);
            assert!(!pull.eof);
        }
        assert_eq!(got, vec![b"hello".to_vec(), Vec::new()]);
        assert!(!reader.mid_frame());
        assert!(reader.stalled_since().is_none(), "boundary resets the stall clock");
    }

    #[test]
    fn yields_multiple_frames_from_one_pull_and_keeps_the_tail() {
        let mut wire = frame_bytes(b"a");
        wire.extend(frame_bytes(b"bb"));
        wire.extend(&frame_bytes(b"ccc")[..3]); // truncated mid-prefix
        let mut s = Chunked { chunks: VecDeque::from([wire]), eof_at_end: false };
        let mut reader = FrameReader::new(1024);
        let pull = reader.pull(&mut s).unwrap();
        assert_eq!(pull.frames, vec![b"a".to_vec(), b"bb".to_vec()]);
        assert!(reader.mid_frame(), "3 bytes of the next length prefix are buffered");
        assert_eq!(reader.buffered(), 3);
        assert!(reader.stalled_since().is_some(), "partial frame arms the stall clock");
    }

    #[test]
    fn oversize_declared_length_is_rejected_at_the_prefix() {
        let mut wire = Vec::new();
        wire.extend((4096u32).to_le_bytes());
        let mut s = Chunked { chunks: VecDeque::from([wire]), eof_at_end: false };
        let mut reader = FrameReader::new(64);
        match reader.pull(&mut s) {
            Err(PullError::Oversize(o)) => assert_eq!(o, Oversize { len: 4096, cap: 64 }),
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    #[test]
    fn eof_after_complete_frames_is_reported_with_them() {
        let mut s = Chunked { chunks: VecDeque::from([frame_bytes(b"last")]), eof_at_end: true };
        let mut reader = FrameReader::new(1024);
        let pull = reader.pull(&mut s).unwrap();
        assert_eq!(pull.frames, vec![b"last".to_vec()]);
        assert!(pull.eof);
    }

    /// A writer that accepts `cap` bytes per call, then WouldBlocks.
    struct Throttled {
        taken: Vec<u8>,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.budget);
            self.taken.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn outbox_flushes_incrementally_and_counts_completed_frames() {
        let mut ob = Outbox::default();
        let f1 = frame_bytes(b"first");
        let f2 = frame_bytes(b"second");
        ob.push_frame(&f1);
        ob.push_frame(&f2);
        let total = (f1.len() + f2.len()) as u64;
        // first flush covers f1 and a sliver of f2
        let mut w = Throttled { taken: Vec::new(), budget: f1.len() + 2 };
        let (bytes, frames) = ob.flush(&mut w).unwrap();
        assert_eq!((bytes, frames), ((f1.len() + 2) as u64, 1));
        assert!(!ob.is_empty());
        // second flush finishes f2
        let mut w2 = Throttled { taken: Vec::new(), budget: 1024 };
        let (bytes2, frames2) = ob.flush(&mut w2).unwrap();
        assert_eq!((bytes + bytes2, frames + frames2), (total, 2));
        assert!(ob.is_empty());
        let mut wire = w.taken;
        wire.extend(w2.taken);
        let mut expect = f1;
        expect.extend(f2);
        assert_eq!(wire, expect, "bytes leave in order, frame boundaries irrelevant");
    }
}

//! The event-driven sharded server: one readiness thread multiplexing
//! every socket over `poll(2)`, N supervised shard workers each owning
//! an engine.
//!
//! ```text
//!            poll(2)                       mpsc per shard
//!  sockets ──────────► event-loop thread ─────────────────► shard worker 0..N
//!     ▲                    │    ▲                                │
//!     │   outbox flush     │    │  events + wake pipe            │ Engine
//!     └────────────────────┘    └────────────────────────────────┘
//! ```
//!
//! **Sharding.** Each worker owns an [`Engine`] whose LRU covers a
//! consistent-hash slice of canonical keys: solves route by
//! [`route_hash`]/[`pick_shard`] (invariant under column permutation —
//! the same quotient the cache key takes), so one instance always lands
//! on the same shard and shards never contend on a cache lock. Sessions
//! pin to the shard that opened them; the public handle encodes the
//! shard (`public = local·shards + shard`, locals start at 1, so public
//! handles are collision-free and `handle % shards` recovers the owner).
//! With `--wal-dir`, shard `i` logs under `<dir>/shard-i`.
//!
//! **Ordering.** The protocol promises one response per request, in
//! request order, per connection. Shards complete out of order, so every
//! accepted frame gets a per-connection sequence number and replies are
//! released strictly in sequence; early completions park in a BTreeMap.
//!
//! **Back-pressure.** Responses queue in a bounded per-connection
//! [`Outbox`]; write interest is registered only while it is nonempty. A
//! reader that lets the outbox cross `--outbox-kb` is disconnected with
//! one best-effort `Overloaded` ("slow reader") frame. A peer that
//! stalls mid-frame past `--read-timeout-ms` gets an exact `Timeout`
//! error frame, then the connection closes; idle connections *between*
//! frames cost one pollfd and nothing else. Admission mirrors the legacy
//! mode: over `max_conns` connections are refused with `Overloaded`,
//! frames over the byte cap answer `TooLarge` and close, and solves
//! beyond the engine queue depth answer `Overloaded` without ever
//! reaching a shard.
//!
//! **Supervision** (DESIGN.md §12). A shard worker that panics — an
//! injected chaos kill, an injected WAL fault, or a real bug — does not
//! take the server down. The worker runs under `catch_unwind` and its
//! last act is posting `WorkerDown`; the event loop then (1) answers
//! every request in flight on that shard with an exact `Unavailable`
//! error — a request is *never* silently dropped — and (2) respawns the
//! worker, which rebuilds its engine from `<wal_dir>/shard-i` off the
//! event thread: the same boot-time recovery a process restart runs,
//! exercised within one process lifetime. Sessions whose last accepted
//! push was fsynced recover exactly; the in-memory state the panic tore
//! dies with the old engine. A shard whose replacements die three times
//! in a row without completing a single job is marked permanently
//! degraded and answers `Unavailable` thereafter. The global in-flight
//! map doubles as a request-deadline reaper: with a deadline configured,
//! a request whose reply was lost (a dropped chaos reply, a worker death
//! race) is answered `Unavailable` when its budget expires, and the late
//! completion — if it ever arrives — is dropped by map absence, so a
//! reply is sent exactly once.
//!
//! **Fault injection.** When [`EventLoopOpts::fault`] is armed, every
//! connection's reads and writes go through [`FaultyIo`] and each worker
//! consults the plan's kill/reply schedules — see [`crate::fault`]. An
//! empty plan costs one branch per I/O pass.
//!
//! **Shutdown.** When `stop` flips: stop accepting, let mid-frame
//! connections finish the frame they started, answer everything already
//! dispatched, flush outboxes, then `flush_durability` on every shard —
//! all bounded by `drain`.

use crate::conn::{FrameReader, Outbox, PullError};
use crate::fault::{FaultPlan, FaultyIo, ReplyFault};
use crate::metrics::Metrics;
use crate::poll::{poll_fds, PollFd, POLLIN, POLLOUT};
use crate::trace::{Finishing, TraceBuilder, Tracer};
use crate::{
    engine_error, open_reply, pick_shard, route_hash, session_reply, session_reply_traced,
    ServerOpts,
};
use c1p_engine::proto::{decode_msg, encode_msg, ErrorCode, Msg, ShardHealth};
use c1p_engine::trace::ReqTrace;
use c1p_engine::{Engine, EngineConfig, EngineError};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::Scope;
use std::time::{Duration, Instant};

/// Consecutive zero-job worker deaths before a shard is given up on.
const MAX_ZERO_JOB_DEATHS: u32 = 3;

/// Event-loop server configuration.
#[derive(Debug, Clone)]
pub struct EventLoopOpts {
    /// Shard (engine) count; each shard is one worker thread + engine.
    pub shards: usize,
    /// The shared flag surface (connection cap, frame cap, timeouts).
    pub server: ServerOpts,
    /// Per-shard engine configuration. `wal_dir` is treated as the base
    /// directory: shard `i` logs under `<wal_dir>/shard-i`.
    pub engine_cfg: EngineConfig,
    /// Graceful-shutdown budget: drain connections, then flush.
    pub drain: Duration,
    /// Chaos schedule for socket/mailbox faults and worker kills
    /// (WAL-append faults ride in `engine_cfg.wal_faults`). The empty
    /// plan — the default — injects nothing and costs one branch.
    pub fault: Arc<FaultPlan>,
    /// Server-side request deadline: a dispatched request still
    /// unanswered after this long is answered `Unavailable` by the
    /// reaper (its late reply, if any, is dropped). `None` disables the
    /// reaper; chaos plans that drop replies need it, or the dropped
    /// request would hang its connection slot forever.
    pub request_deadline: Option<Duration>,
}

impl Default for EventLoopOpts {
    fn default() -> EventLoopOpts {
        EventLoopOpts {
            shards: 1,
            server: ServerOpts::default(),
            engine_cfg: EngineConfig::default(),
            drain: Duration::from_secs(30),
            fault: Arc::new(FaultPlan::none()),
            request_deadline: None,
        }
    }
}

/// A sampled request's span recorder riding along with its [`Job`]: the
/// shared [`ReqTrace`] plus the enqueue offset (the `queue` span start).
type JobTrace = Option<(Arc<ReqTrace>, u64)>;

/// One unit of work for a shard worker.
enum Job {
    Solve { conn: u64, seq: u64, id: u64, ens: c1p_matrix::Ensemble, trace: JobTrace },
    Open { conn: u64, seq: u64, id: u64, n_atoms: u64, trace: JobTrace },
    Session { conn: u64, seq: u64, msg: Msg, local: u64, public: u64, trace: JobTrace },
}

impl Job {
    fn trace(&self) -> &JobTrace {
        match self {
            Job::Solve { trace, .. } | Job::Open { trace, .. } | Job::Session { trace, .. } => {
                trace
            }
        }
    }
}

/// A finished job on its way back to the event loop.
struct Completion {
    conn: u64,
    seq: u64,
    reply: Msg,
}

/// Everything a worker can tell the event loop (posted under one mutex,
/// drained each iteration; the wake pipe signals "look now").
enum Event {
    /// A job finished; `reply` releases when its sequence is next.
    Done(Completion),
    /// A respawned worker finished rebuilding its engine — swap it in.
    WorkerUp { shard: usize, engine: Arc<Engine> },
    /// A worker panicked. `jobs_done` = jobs it completed since spawn
    /// (0 ⇒ it died before doing anything — the degradation signal).
    WorkerDown { shard: usize, jobs_done: u64 },
}

/// Pushes one event, riding over a poisoned lock: supervision must keep
/// working precisely when other threads are panicking.
fn push_event(events: &Mutex<Vec<Event>>, ev: Event) {
    match events.lock() {
        Ok(mut q) => q.push(ev),
        Err(poisoned) => poisoned.into_inner().push(ev),
    }
}

/// Drains all queued events (same poison tolerance).
fn take_events(events: &Mutex<Vec<Event>>) -> Vec<Event> {
    match events.lock() {
        Ok(mut q) => std::mem::take(&mut *q),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    }
}

/// Rings the wake pipe. One byte must actually land, so `Interrupted`
/// retries; `WouldBlock` means the pipe already holds pending wakeups
/// and the event loop will drain it regardless — safe to drop.
fn ring(wake: &UnixStream) {
    loop {
        match (&*wake).write(&[1u8]) {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            _ => return,
        }
    }
}

/// The event-loop's supervision handle on one shard.
struct ShardCtl {
    /// Job channel to the live worker; `None` while degraded.
    tx: Option<mpsc::Sender<Job>>,
    /// `false` between a worker's death and its replacement's
    /// `WorkerUp` (the replacement is rebuilding its engine).
    up: bool,
    /// Permanently down: respawns kept dying before completing a job.
    degraded: bool,
    /// Consecutive deaths with `jobs_done == 0`.
    zero_job_deaths: u32,
}

/// One dispatched request awaiting its shard reply, keyed globally by
/// `(conn, seq)`. Single-settlement: whoever removes the entry —
/// completion, worker-death sweep, or deadline reaper — owns sending
/// the one reply and balancing the queue gauges; a late completion
/// finding no entry is dropped.
struct Pending {
    shard: usize,
    /// Request id, echoed in an `Unavailable` frame if one is needed.
    id: u64,
    t0: Instant,
    /// Trace context when the request is sampled; settles with the
    /// reply, whichever path sends it.
    trace: Option<TraceBuilder>,
}

/// Per-connection event-loop state.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    outbox: Outbox,
    /// Next sequence number to assign to an accepted frame.
    next_seq: u64,
    /// Sequence whose reply is released next.
    next_send: u64,
    /// Replies completed ahead of `next_send`, with the trace context
    /// that finishes once the reply's bytes leave the socket.
    parked: BTreeMap<u64, (Msg, Option<Finishing>)>,
    /// One entry per frame pushed onto the outbox, in order: the flush
    /// pass pops as many entries as frames it flushed and finishes the
    /// `Some` ones. Dropped (traces lost) when the connection dies with
    /// frames still queued — a dead peer never reads them anyway.
    finishing: VecDeque<Option<Finishing>>,
    /// Frames dispatched to shards and not yet completed.
    inflight: usize,
    /// No more reads: EOF, poisoned stream, or a policy close.
    read_closed: bool,
    /// Close once the outbox, parked map and inflight count drain.
    closing: bool,
    /// Immediate close: write this best-effort farewell frame (possibly
    /// empty) directly and drop the connection without waiting for the
    /// outbox — the slow-reader and poisoned-stream path.
    kill: Option<Vec<u8>>,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(max_frame),
            outbox: Outbox::default(),
            next_seq: 0,
            next_send: 0,
            parked: BTreeMap::new(),
            finishing: VecDeque::new(),
            inflight: 0,
            read_closed: false,
            closing: false,
            kill: None,
        }
    }

    fn idle(&self) -> bool {
        self.inflight == 0 && self.parked.is_empty() && self.outbox.is_empty()
    }
}

/// Runs the event-loop server on `listener` until `stop` flips. Returns
/// the per-shard engines (stats drained, durability flushed) so callers
/// — tests, benches — can inspect them.
///
/// The listener must already be nonblocking. `metrics` is shared so the
/// caller can watch the registry live; pass a fresh one otherwise.
pub fn serve(
    listener: TcpListener,
    opts: &EventLoopOpts,
    stop: &AtomicBool,
    metrics: &Arc<Metrics>,
) -> io::Result<Vec<Arc<Engine>>> {
    assert!(opts.shards >= 1, "at least one shard");
    assert_eq!(metrics.shards.len(), opts.shards, "metrics registry sized for the shard count");
    metrics.set_mode("event-loop");
    let tracer = Tracer::new(opts.server.trace, opts.shards);
    listener.set_nonblocking(true)?;
    let engines: Vec<Arc<Engine>> =
        (0..opts.shards).map(|i| Arc::new(Engine::new(shard_cfg(&opts.engine_cfg, i)))).collect();
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;

    let max_batch = opts.engine_cfg.max_batch.max(1);
    // clone the wake pipe up front so every worker is guaranteed to spawn
    // (a failure mid-spawn would leave senders alive and the scope stuck)
    let wakes: Vec<UnixStream> =
        (0..opts.shards).map(|_| wake_tx.try_clone()).collect::<io::Result<_>>()?;
    let engines = std::thread::scope(|scope| {
        let mut ctls: Vec<ShardCtl> = Vec::with_capacity(opts.shards);
        for (shard, wake) in wakes.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            spawn_worker(
                scope,
                shard,
                rx,
                Some(Arc::clone(&engines[shard])),
                shard_cfg(&opts.engine_cfg, shard),
                WorkerEnv {
                    events: &events,
                    wake,
                    plan: Arc::clone(&opts.fault),
                    metrics: Arc::clone(metrics),
                    shards: opts.shards,
                    max_batch,
                },
            );
            ctls.push(ShardCtl { tx: Some(tx), up: true, degraded: false, zero_job_deaths: 0 });
        }
        // dropping the ctls (done inside event_loop when it returns)
        // ends the workers; the scope joins them before we flush below
        event_loop(
            scope, &listener, opts, stop, metrics, &tracer, engines, ctls, &wake_tx, wake_rx,
            &events,
        )
    })?;
    for e in &engines {
        e.flush_durability();
    }
    Ok(engines)
}

/// The shard-`i` engine configuration: same knobs, shard-scoped WAL dir.
fn shard_cfg(base: &EngineConfig, shard: usize) -> EngineConfig {
    let mut cfg = base.clone();
    cfg.wal_dir = base.wal_dir.as_ref().map(|d| d.join(format!("shard-{shard}")));
    cfg
}

/// Everything a worker thread owns besides its job channel and engine.
struct WorkerEnv<'scope> {
    events: &'scope Mutex<Vec<Event>>,
    wake: UnixStream,
    plan: Arc<FaultPlan>,
    metrics: Arc<Metrics>,
    shards: usize,
    max_batch: usize,
}

/// Spawns one supervised shard worker. `engine: None` means "rebuild
/// from the WAL first" — the respawn path: recovery runs on the worker
/// thread, never the event thread, and announces itself with `WorkerUp`.
/// Any panic — injected kill, injected WAL fault, engine bug, even a
/// panic inside `Engine::new` recovery — is caught and reported as
/// `WorkerDown` with the number of jobs this incarnation completed.
fn spawn_worker<'scope>(
    scope: &'scope Scope<'scope, '_>,
    shard: usize,
    rx: mpsc::Receiver<Job>,
    engine: Option<Arc<Engine>>,
    cfg: EngineConfig,
    env: WorkerEnv<'scope>,
) {
    scope.spawn(move || {
        let mut jobs_done = 0u64;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let engine = match engine {
                Some(e) => e,
                None => {
                    let e = Arc::new(Engine::new(cfg));
                    push_event(env.events, Event::WorkerUp { shard, engine: Arc::clone(&e) });
                    ring(&env.wake);
                    e
                }
            };
            worker_loop(shard, &rx, &engine, &env, &mut jobs_done)
        }));
        if result.is_err() {
            // the receiver died with the loop: in-flight and queued jobs
            // are lost, and the event loop answers for them
            push_event(env.events, Event::WorkerDown { shard, jobs_done });
            ring(&env.wake);
        }
    });
}

/// A shard worker: drain the queue in batches, funnel solves through
/// `solve_batch` so the engine's batching/coalescing still amortizes,
/// run open/push/seal in arrival order, post completions, ring the wake
/// pipe. Consults the fault plan's kill and reply schedules; panics from
/// the engine (injected WAL faults) propagate to the supervisor.
fn worker_loop(
    shard: usize,
    rx: &mpsc::Receiver<Job>,
    engine: &Arc<Engine>,
    env: &WorkerEnv<'_>,
    jobs_done: &mut u64,
) {
    let chaos = !env.plan.is_empty();
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        if chaos && env.plan.kill_now() {
            env.metrics.faults_injected_total.inc();
            panic!("chaos: injected shard worker kill (shard {shard})");
        }
        let mut batch = vec![first];
        while batch.len() < env.max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        // queue spans end at dequeue; the mailbox span runs from there to
        // the moment the job actually executes (batch solve start for
        // solves, in-order execution for opens and session ops)
        let mailbox_at: Vec<Option<u64>> = batch
            .iter()
            .map(|j| {
                j.trace().as_ref().map(|(t, enq)| {
                    t.record("queue", *enq);
                    t.now_us()
                })
            })
            .collect();
        let mut solves: Vec<c1p_matrix::Ensemble> = Vec::new();
        let mut solve_traces: Vec<Option<Arc<ReqTrace>>> = Vec::new();
        for (j, mb) in batch.iter().zip(&mailbox_at) {
            if let Job::Solve { ens, trace, .. } = j {
                solves.push(ens.clone());
                solve_traces.push(trace.as_ref().map(|(t, _)| {
                    t.record("mailbox", mb.expect("traced job has a mailbox mark"));
                    Arc::clone(t)
                }));
            }
        }
        let mut verdicts = if solves.is_empty() {
            Vec::new()
        } else {
            engine.solve_batch_traced(&solves, &solve_traces)
        }
        .into_iter();
        let mut done: Vec<Completion> = Vec::with_capacity(batch.len());
        for (job, mb) in batch.into_iter().zip(mailbox_at) {
            let completion = match job {
                Job::Solve { conn, seq, id, .. } => {
                    let reply = match verdicts.next().expect("one verdict per solve") {
                        Ok(verdict) => Msg::Verdict { id, verdict: verdict.to_wire() },
                        Err(e) => engine_error(id, e),
                    };
                    Completion { conn, seq, reply }
                }
                Job::Open { conn, seq, id, n_atoms, trace } => {
                    if let Some((t, _)) = &trace {
                        t.record("mailbox", mb.expect("traced job has a mailbox mark"));
                    }
                    let reply = match engine.open_session(n_atoms as usize) {
                        // locals start at 1, so publics are nonzero and
                        // collision-free across shards
                        Ok(local) => open_reply(id, local * env.shards as u64 + shard as u64),
                        Err(e) => engine_error(id, e),
                    };
                    Completion { conn, seq, reply }
                }
                Job::Session { conn, seq, msg, local, public, trace } => {
                    let reply = if let Some((t, _)) = &trace {
                        t.record("mailbox", mb.expect("traced job has a mailbox mark"));
                        session_reply_traced(engine, &msg, local, public, Some(t))
                    } else {
                        session_reply(engine, &msg, local, public)
                    };
                    Completion { conn, seq, reply }
                }
            };
            *jobs_done += 1;
            done.push(completion);
        }
        // mailbox faults: a dropped reply is simply never posted (the
        // deadline reaper answers for it); a delayed one holds this batch
        let posted = if chaos {
            done.into_iter()
                .filter_map(|c| match env.plan.reply_fault() {
                    None => Some(c),
                    Some(ReplyFault::Delay(d)) => {
                        env.metrics.faults_injected_total.inc();
                        std::thread::sleep(d);
                        Some(c)
                    }
                    Some(ReplyFault::Drop) => {
                        env.metrics.faults_injected_total.inc();
                        None
                    }
                })
                .collect()
        } else {
            done
        };
        for c in posted {
            push_event(env.events, Event::Done(c));
        }
        ring(&env.wake);
    }
}

/// Encodes one message as a ready-to-write frame.
fn frame_of(msg: &Msg) -> Vec<u8> {
    let payload = encode_msg(msg);
    let mut frame = Vec::with_capacity(payload.len() + 4);
    c1p_engine::proto::write_frame(&mut frame, &payload).expect("vec write cannot fail");
    frame
}

/// The exact error frame for a request whose shard cannot answer.
fn unavailable(id: u64, shard: usize, why: &str) -> Msg {
    Msg::Error {
        id,
        code: ErrorCode::Unavailable,
        message: format!("shard {shard} {why}; safe to retry"),
    }
}

/// Best-effort `Overloaded` frame to a refused connection (the accepted
/// socket is still blocking — the write is tiny and mirrors legacy).
fn refuse(stream: TcpStream) {
    let mut w = io::BufWriter::new(stream);
    let msg = Msg::Error {
        id: 0,
        code: ErrorCode::Overloaded,
        message: "connection limit reached".into(),
    };
    let _ = w.write_all(&frame_of(&msg));
    let _ = w.flush();
}

/// Best-effort full write of a farewell frame to a (nonblocking) socket:
/// short writes continue where they left off and `Interrupted` retries,
/// so a farewell is never truncated by transient conditions; a hard
/// error or `WouldBlock` abandons it — the peer is leaving anyway.
/// (A bare `write()` here once sent partial frames under signal load.)
fn write_farewell(stream: &mut impl Write, frame: &[u8]) {
    let mut off = 0;
    while off < frame.len() {
        match stream.write(&frame[off..]) {
            Ok(0) => return,
            Ok(n) => off += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Queues `reply` for `seq`, releasing every reply that is now in order,
/// and applies the outbox cap (the slow-reader disconnect). A sampled
/// request's trace parks with its reply; when the reply is released onto
/// the outbox its `flush` span starts and a [`Finishing`] queues up for
/// the flush pass to settle once the bytes actually leave the socket.
fn deliver(
    conn: &mut Conn,
    seq: u64,
    reply: Msg,
    t0: Instant,
    trace: Option<TraceBuilder>,
    metrics: &Metrics,
    outbox_limit: usize,
) {
    let latency_us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
    metrics.frame_latency_us.observe_us(latency_us);
    let fin = trace.map(|b| {
        let error = matches!(reply, Msg::Error { .. });
        Finishing { b, latency_us, error, flush_start_us: 0 }
    });
    conn.parked.insert(seq, (reply, fin));
    while let Some((msg, mut fin)) = conn.parked.remove(&conn.next_send) {
        let frame = frame_of(&msg);
        metrics.outbox_bytes.add(frame.len() as i64);
        conn.outbox.push_frame(&frame);
        if let Some(f) = fin.as_mut() {
            f.flush_start_us = f.b.req.now_us();
        }
        conn.finishing.push_back(fin);
        conn.next_send += 1;
    }
    if conn.outbox.len() > outbox_limit && conn.kill.is_none() {
        // the peer stopped draining its socket: there is no way to flush
        // the backlog, so drop it, say why (best effort), and close
        metrics.slow_reader_disconnects_total.inc();
        conn.read_closed = true;
        conn.kill = Some(frame_of(&Msg::Error {
            id: 0,
            code: ErrorCode::Overloaded,
            message: format!("outbox exceeded {outbox_limit} bytes: slow reader disconnected"),
        }));
    }
}

/// Hands `job` to its shard if the shard can take it, recording the
/// request in the global in-flight map; a degraded or mid-death shard
/// answers `Unavailable` immediately instead — never a hang.
#[allow(clippy::too_many_arguments)]
fn send_job(
    conn: &mut Conn,
    conn_id: u64,
    seq: u64,
    t0: Instant,
    rid: u64,
    shard: usize,
    job: Job,
    trace: Option<TraceBuilder>,
    ctls: &[ShardCtl],
    pending: &mut HashMap<(u64, u64), Pending>,
    metrics: &Metrics,
    outbox_limit: usize,
) {
    let sent = match &ctls[shard].tx {
        // send fails only when the receiver is gone: the worker died and
        // its WorkerDown is still in the queue
        Some(tx) if !ctls[shard].degraded => tx.send(job).is_ok(),
        _ => false,
    };
    if sent {
        conn.inflight += 1;
        metrics.queue_depth.inc();
        metrics.shards[shard].queue_depth.inc();
        metrics.shards[shard].jobs_total.inc();
        pending.insert((conn_id, seq), Pending { shard, id: rid, t0, trace });
    } else {
        metrics.degraded_replies_total.inc();
        deliver(
            conn,
            seq,
            unavailable(rid, shard, "is unavailable"),
            t0,
            trace,
            metrics,
            outbox_limit,
        );
    }
}

/// Routes one complete frame: inline answers (stats, metrics, traces,
/// health, admission and decode errors) deliver immediately; solves and
/// session ops become shard jobs.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    conn: &mut Conn,
    conn_id: u64,
    payload: &[u8],
    opts: &EventLoopOpts,
    metrics: &Metrics,
    engines: &[Arc<Engine>],
    retired: &[c1p_engine::EngineStats],
    ctls: &[ShardCtl],
    pending: &mut HashMap<(u64, u64), Pending>,
    rr_open: &mut usize,
    tracer: &Tracer,
) {
    let t0 = Instant::now();
    metrics.frames_read_total.inc();
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let shards = opts.shards as u64;
    let outbox_limit = opts.server.outbox_limit;
    // trace epoch = frame arrival; the decode span covers id derivation
    // (a payload hash) plus the decode itself, starting at offset ~0
    let mut tb = tracer.begin(payload);
    let decoded = decode_msg(payload);
    // admission starts where decode ends; each branch closes it once its
    // admission verdict (cap checks, shard choice) is in
    let adm = tb.as_ref().map_or(0, |b| {
        b.req.record("decode", 0);
        b.req.now_us()
    });
    match decoded {
        Ok(Msg::Solve { id, ens }) => {
            // mirror `Engine::submit` admission, in its order: the atom
            // cap first (TooLarge wins even with a full queue), then —
            // beyond max_queue in-flight jobs — Overloaded, without
            // either touching a shard
            if let Some(b) = tb.as_mut() {
                b.id = id;
                b.kind = "solve";
            }
            if ens.n_atoms() > opts.engine_cfg.max_atoms {
                let e = EngineError::TooLarge {
                    n_atoms: ens.n_atoms(),
                    max_atoms: opts.engine_cfg.max_atoms,
                };
                if let Some(b) = tb.as_ref() {
                    b.req.record("admission", adm);
                }
                deliver(conn, seq, engine_error(id, e), t0, tb, metrics, outbox_limit);
            } else if metrics.queue_depth.get() >= opts.engine_cfg.max_queue as i64 {
                if let Some(b) = tb.as_ref() {
                    b.req.record("admission", adm);
                }
                deliver(
                    conn,
                    seq,
                    engine_error(id, EngineError::Overloaded),
                    t0,
                    tb,
                    metrics,
                    outbox_limit,
                );
            } else {
                let shard = pick_shard(route_hash(&ens), opts.shards);
                let jt = tb.as_mut().map(|b| {
                    b.shard = shard;
                    b.req.record("admission", adm);
                    (Arc::clone(&b.req), b.req.now_us())
                });
                let job = Job::Solve { conn: conn_id, seq, id, ens, trace: jt };
                send_job(
                    conn,
                    conn_id,
                    seq,
                    t0,
                    id,
                    shard,
                    job,
                    tb,
                    ctls,
                    pending,
                    metrics,
                    outbox_limit,
                );
            }
        }
        Ok(Msg::OpenSession { id, n_atoms }) => {
            // round-robin over the shards still willing to take work
            let mut shard = None;
            for k in 0..opts.shards {
                let s = (*rr_open + k) % opts.shards;
                if !ctls[s].degraded && ctls[s].tx.is_some() {
                    shard = Some(s);
                    *rr_open = s + 1;
                    break;
                }
            }
            if let Some(b) = tb.as_mut() {
                b.id = id;
                b.kind = "open";
                b.req.record("admission", adm);
            }
            match shard {
                Some(shard) => {
                    let jt = tb.as_mut().map(|b| {
                        b.shard = shard;
                        (Arc::clone(&b.req), b.req.now_us())
                    });
                    let job = Job::Open { conn: conn_id, seq, id, n_atoms, trace: jt };
                    send_job(
                        conn,
                        conn_id,
                        seq,
                        t0,
                        id,
                        shard,
                        job,
                        tb,
                        ctls,
                        pending,
                        metrics,
                        outbox_limit,
                    );
                }
                None => {
                    metrics.degraded_replies_total.inc();
                    deliver(
                        conn,
                        seq,
                        Msg::Error {
                            id,
                            code: ErrorCode::Unavailable,
                            message: "every shard is degraded".into(),
                        },
                        t0,
                        tb,
                        metrics,
                        outbox_limit,
                    );
                }
            }
        }
        Ok(msg @ (Msg::PushAtoms { .. } | Msg::SealSession { .. } | Msg::QuerySession { .. })) => {
            let (id, public) = match &msg {
                Msg::PushAtoms { id, session, .. }
                | Msg::SealSession { id, session }
                | Msg::QuerySession { id, session } => (*id, *session),
                _ => unreachable!(),
            };
            // a served QuerySession is a client reconciling after a
            // retry — the server-observable measure of client retries
            if matches!(msg, Msg::QuerySession { .. }) {
                metrics.retries_total.inc();
            }
            // public = local·shards + shard (locals start at 1); a bogus
            // handle decodes to some shard whose engine answers NoSession
            let shard = (public % shards) as usize;
            let local = public / shards;
            let jt = tb.as_mut().map(|b| {
                b.id = id;
                b.kind = "session";
                b.shard = shard;
                b.req.record("admission", adm);
                (Arc::clone(&b.req), b.req.now_us())
            });
            let job = Job::Session { conn: conn_id, seq, msg, local, public, trace: jt };
            send_job(
                conn,
                conn_id,
                seq,
                t0,
                id,
                shard,
                job,
                tb,
                ctls,
                pending,
                metrics,
                outbox_limit,
            );
        }
        Ok(Msg::Ping { id }) => {
            // health is answered from the event thread so it reflects
            // what the dispatcher itself believes — a Pong can arrive
            // while every shard is down
            let wal = crate::wal_health(opts.engine_cfg.wal_dir.as_deref());
            let shards = ctls
                .iter()
                .map(|c| ShardHealth { live: c.up && !c.degraded, degraded: c.degraded })
                .collect();
            deliver(conn, seq, Msg::Pong { id, wal, shards }, t0, tb, metrics, outbox_limit);
        }
        Ok(Msg::GetStats) => {
            // safe even while a shard is down: `stats()` takes only the
            // cache and session-map locks, and the two injected panic
            // sites (worker kill, WAL append) hold neither
            let mut sum = c1p_engine::EngineStats::default();
            for (e, r) in engines.iter().zip(retired) {
                sum.absorb(&e.stats());
                sum.absorb(r);
            }
            deliver(conn, seq, Msg::Stats { json: sum.to_json() }, t0, tb, metrics, outbox_limit);
        }
        Ok(Msg::GetMetrics) => {
            // each shard's series = its live engine + every engine
            // supervision retired on that shard
            let stats: Vec<c1p_engine::EngineStats> = engines
                .iter()
                .zip(retired)
                .map(|(e, r)| {
                    let mut s = e.stats();
                    s.absorb(r);
                    s
                })
                .collect();
            deliver(
                conn,
                seq,
                Msg::Metrics { text: metrics.render(&stats) },
                t0,
                tb,
                metrics,
                outbox_limit,
            );
        }
        Ok(Msg::GetTraces) => {
            // answered from the event thread, like GetMetrics: the dump
            // is a snapshot of the per-shard retention rings
            deliver(conn, seq, Msg::Traces { jsonl: tracer.dump() }, t0, tb, metrics, outbox_limit);
        }
        Ok(_) => deliver(
            conn,
            seq,
            Msg::Error {
                id: 0,
                code: ErrorCode::Malformed,
                message: "unexpected message kind for a server".into(),
            },
            t0,
            tb,
            metrics,
            outbox_limit,
        ),
        Err(e) => {
            metrics.malformed_frames_total.inc();
            deliver(
                conn,
                seq,
                Msg::Error { id: 0, code: ErrorCode::Malformed, message: e.to_string() },
                t0,
                tb,
                metrics,
                outbox_limit,
            );
        }
    }
}

/// Settles one in-flight entry with an `Unavailable` error: balances the
/// queue gauges and, if the connection is still open, delivers the frame
/// (keeping per-connection ordering intact).
fn settle_unavailable(
    key: (u64, u64),
    p: Pending,
    why: &str,
    conns: &mut HashMap<u64, Conn>,
    metrics: &Metrics,
    outbox_limit: usize,
) {
    metrics.queue_depth.dec();
    metrics.shards[p.shard].queue_depth.dec();
    if let Some(conn) = conns.get_mut(&key.0) {
        conn.inflight -= 1;
        deliver(conn, key.1, unavailable(p.id, p.shard, why), p.t0, p.trace, metrics, outbox_limit);
    }
}

/// The readiness loop proper. Owns the sockets; never blocks on any of
/// them. Returns when `stop` has flipped and every connection drained
/// (or the drain deadline passed). Owns the engine vector because
/// supervision swaps rebuilt engines in; the final vector is returned.
#[allow(clippy::too_many_arguments)]
fn event_loop<'scope>(
    scope: &'scope Scope<'scope, '_>,
    listener: &TcpListener,
    opts: &EventLoopOpts,
    stop: &AtomicBool,
    metrics: &Arc<Metrics>,
    tracer: &Tracer,
    mut engines: Vec<Arc<Engine>>,
    mut ctls: Vec<ShardCtl>,
    wake_tx: &UnixStream,
    wake_rx: UnixStream,
    events: &'scope Mutex<Vec<Event>>,
) -> io::Result<Vec<Arc<Engine>>> {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut pending: HashMap<(u64, u64), Pending> = HashMap::new();
    // counters of engines retired by supervision, folded into stats and
    // metrics renders — restarts must not zero a shard's history
    let mut retired: Vec<c1p_engine::EngineStats> = vec![Default::default(); opts.shards];
    let mut ids: Vec<u64> = Vec::new();
    let mut next_conn = 0u64;
    let mut rr_open = 0usize;
    let mut drain_deadline: Option<Instant> = None;
    let chaos = !opts.fault.is_empty();
    let max_batch = opts.engine_cfg.max_batch.max(1);
    loop {
        if drain_deadline.is_none() && stop.load(Ordering::Acquire) {
            drain_deadline = Some(Instant::now() + opts.drain);
        }
        let draining = drain_deadline.is_some();
        if draining && conns.is_empty() {
            break;
        }
        if let Some(deadline) = drain_deadline {
            if Instant::now() >= deadline {
                for (_, c) in conns.drain() {
                    metrics.connections_open.dec();
                    metrics.disconnects_total.inc();
                    metrics.outbox_bytes.add(-(c.outbox.len() as i64));
                }
                break;
            }
        }

        // one pollfd per socket, rebuilt per iteration (cheap at this
        // scale, and it keeps interest exactly in sync with state)
        ids.clear();
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd::new(if draining { -1 } else { listener.as_raw_fd() }, POLLIN));
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        for (&id, c) in conns.iter() {
            let mut interest = 0i16;
            if !c.read_closed {
                interest |= POLLIN;
            }
            if !c.outbox.is_empty() {
                interest |= POLLOUT;
            }
            ids.push(id);
            fds.push(PollFd::new(c.stream.as_raw_fd(), interest));
        }
        poll_fds(&mut fds, 50)?;

        // drain the wake pipe (level-triggered: one byte per worker batch)
        if fds[1].ready(POLLIN) {
            let mut sink = [0u8; 256];
            loop {
                match (&wake_rx).read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }

        // worker events (checked every iteration — the lock is cheap)
        for ev in take_events(events) {
            match ev {
                Event::Done(c) => {
                    // single settlement: no map entry ⇒ this reply was
                    // already answered (reaped or swept) — drop it
                    let Some(p) = pending.remove(&(c.conn, c.seq)) else { continue };
                    metrics.queue_depth.dec();
                    metrics.shards[p.shard].queue_depth.dec();
                    if let Some(conn) = conns.get_mut(&c.conn) {
                        conn.inflight -= 1;
                        deliver(
                            conn,
                            c.seq,
                            c.reply,
                            p.t0,
                            p.trace,
                            metrics,
                            opts.server.outbox_limit,
                        );
                    }
                }
                Event::WorkerUp { shard, engine } => {
                    // fold the dead engine's final counters into the
                    // shard's retired history — but not its gauges: the
                    // replacement re-opens recovered sessions and re-fills
                    // its cache, so carrying those forward double-counts
                    let mut fin = engines[shard].stats();
                    fin.cache_entries = 0;
                    fin.cache_bytes = 0;
                    fin.open_sessions = 0;
                    retired[shard].absorb(&fin);
                    // the old (possibly poisoned) engine drops here; its
                    // background threads join on a clean shutdown flag
                    engines[shard] = engine;
                    ctls[shard].up = true;
                }
                Event::WorkerDown { shard, jobs_done } => {
                    ctls[shard].up = false;
                    ctls[shard].tx = None;
                    // every request on the dead shard gets an exact
                    // Unavailable — in the channel, mid-job, or with a
                    // reply lost in the unwind, none of them will answer
                    let dead: Vec<(u64, u64)> =
                        pending.iter().filter(|(_, p)| p.shard == shard).map(|(k, _)| *k).collect();
                    for key in dead {
                        let p = pending.remove(&key).expect("key collected above");
                        metrics.degraded_replies_total.inc();
                        settle_unavailable(
                            key,
                            p,
                            "restarted mid-request",
                            &mut conns,
                            metrics,
                            opts.server.outbox_limit,
                        );
                    }
                    ctls[shard].zero_job_deaths =
                        if jobs_done == 0 { ctls[shard].zero_job_deaths + 1 } else { 0 };
                    if ctls[shard].degraded {
                        continue;
                    }
                    if ctls[shard].zero_job_deaths >= MAX_ZERO_JOB_DEATHS {
                        ctls[shard].degraded = true;
                        eprintln!(
                            "c1pd: shard {shard} degraded: {MAX_ZERO_JOB_DEATHS} consecutive \
                             workers died before completing a job"
                        );
                        continue;
                    }
                    metrics.shard_restarts_total.inc();
                    eprintln!(
                        "c1pd: shard {shard} worker died after {jobs_done} job(s); \
                         respawning with WAL recovery"
                    );
                    let (tx, rx) = mpsc::channel();
                    ctls[shard].tx = Some(tx);
                    spawn_worker(
                        scope,
                        shard,
                        rx,
                        None, // rebuild from <wal_dir>/shard-i on the worker thread
                        shard_cfg(&opts.engine_cfg, shard),
                        WorkerEnv {
                            events,
                            wake: wake_tx.try_clone()?,
                            plan: Arc::clone(&opts.fault),
                            metrics: Arc::clone(metrics),
                            shards: opts.shards,
                            max_batch,
                        },
                    );
                }
            }
        }

        // request-deadline reaper: a dispatched request whose reply was
        // lost (dropped by chaos, raced by a death) is answered instead
        // of hanging; its late reply is dropped by map absence
        if let Some(budget) = opts.request_deadline {
            let expired: Vec<(u64, u64)> =
                pending.iter().filter(|(_, p)| p.t0.elapsed() >= budget).map(|(k, _)| *k).collect();
            for key in expired {
                let p = pending.remove(&key).expect("key collected above");
                metrics.deadline_expired_total.inc();
                settle_unavailable(
                    key,
                    p,
                    "did not answer within the request deadline",
                    &mut conns,
                    metrics,
                    opts.server.outbox_limit,
                );
            }
        }

        // accept burst
        if !draining && fds[0].ready(POLLIN) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if conns.len() >= opts.server.max_conns {
                            metrics.connections_refused_total.inc();
                            refuse(stream);
                            continue;
                        }
                        stream.set_nodelay(true).ok();
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        metrics.connections_accepted_total.inc();
                        metrics.connections_open.inc();
                        conns.insert(next_conn, Conn::new(stream, opts.server.max_frame));
                        next_conn += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => {
                        eprintln!("c1pd: accept failed: {e}");
                        break;
                    }
                }
            }
        }

        // readable sockets: reassemble, dispatch every complete frame
        for (ix, &id) in ids.iter().enumerate() {
            let ready = fds[ix + 2].ready(POLLIN);
            let Some(conn) = conns.get_mut(&id) else { continue };
            if conn.read_closed || !ready {
                continue;
            }
            let pull = {
                let Conn { reader, stream, .. } = conn;
                if chaos {
                    let mut fio = FaultyIo::new(&mut *stream, &opts.fault);
                    let r = reader.pull(&mut fio);
                    metrics.faults_injected_total.add(fio.injected);
                    r
                } else {
                    reader.pull(stream)
                }
            };
            match pull {
                Ok(pull) => {
                    metrics.bytes_read_total.add(pull.bytes);
                    for payload in pull.frames {
                        dispatch(
                            conn,
                            id,
                            &payload,
                            opts,
                            metrics,
                            &engines,
                            &retired,
                            &ctls,
                            &mut pending,
                            &mut rr_open,
                            tracer,
                        );
                    }
                    if pull.eof {
                        conn.read_closed = true;
                        conn.closing = true;
                    }
                }
                Err(PullError::Oversize(o)) => {
                    // admission control, not line noise: answer with the
                    // exact TooLarge frame legacy sends, then close (the
                    // stream position is unrecoverable)
                    metrics.oversize_frames_total.inc();
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.read_closed = true;
                    conn.closing = true;
                    deliver(
                        conn,
                        seq,
                        Msg::Error {
                            id: 0,
                            code: ErrorCode::TooLarge,
                            message: format!(
                                "frame of {} bytes exceeds the {}-byte cap",
                                o.len, o.cap
                            ),
                        },
                        Instant::now(),
                        // oversize frames never surface a payload to hash
                        // a trace id from; they go untraced
                        None,
                        metrics,
                        opts.server.outbox_limit,
                    );
                }
                Err(PullError::Io(e)) => {
                    if e.kind() != io::ErrorKind::ConnectionReset {
                        eprintln!("c1pd: connection {id}: {e}");
                    }
                    conn.read_closed = true;
                    conn.kill = Some(Vec::new());
                }
            }
        }

        // slow-loris reaper: a partial frame making no progress past the
        // budget gets an exact Timeout frame, then the connection closes
        if let Some(budget) = opts.server.read_timeout {
            for conn in conns.values_mut() {
                if conn.read_closed || conn.kill.is_some() {
                    continue;
                }
                if conn.reader.stalled_since().is_some_and(|since| since.elapsed() >= budget) {
                    metrics.read_timeout_disconnects_total.inc();
                    conn.read_closed = true;
                    conn.kill = Some(frame_of(&Msg::Error {
                        id: 0,
                        code: ErrorCode::Timeout,
                        message: format!(
                            "stalled mid-frame past the {} ms read-timeout budget",
                            budget.as_millis()
                        ),
                    }));
                }
            }
        }

        // drain sweep: at a frame boundary with nothing in flight, a
        // draining server closes the connection (mid-frame connections
        // get to finish the frame they started, mirroring legacy)
        if draining {
            for conn in conns.values_mut() {
                if !conn.reader.mid_frame() && conn.inflight == 0 && conn.parked.is_empty() {
                    conn.read_closed = true;
                    conn.closing = true;
                }
            }
        }

        // flush outboxes (opportunistic first try, POLLOUT next time)
        for conn in conns.values_mut() {
            if conn.outbox.is_empty() || conn.kill.is_some() {
                continue;
            }
            let Conn { outbox, stream, .. } = conn;
            let flushed = if chaos {
                let mut fio = FaultyIo::new(&mut *stream, &opts.fault);
                let r = outbox.flush(&mut fio);
                metrics.faults_injected_total.add(fio.injected);
                r
            } else {
                outbox.flush(stream)
            };
            match flushed {
                Ok((bytes, frames)) => {
                    metrics.bytes_written_total.add(bytes);
                    metrics.frames_written_total.add(frames);
                    metrics.outbox_bytes.add(-(bytes as i64));
                    // a trace finishes when its reply's last byte leaves
                    // the socket: pop one entry per fully-flushed frame
                    for _ in 0..frames {
                        if let Some(Some(f)) = conn.finishing.pop_front() {
                            tracer.finish(f, metrics);
                        }
                    }
                }
                Err(_) => {
                    conn.read_closed = true;
                    conn.kill = Some(Vec::new());
                }
            }
        }

        // close pass
        conns.retain(|_, conn| {
            if let Some(farewell) = conn.kill.take() {
                if !farewell.is_empty() {
                    write_farewell(&mut conn.stream, &farewell);
                }
                metrics.connections_open.dec();
                metrics.disconnects_total.inc();
                metrics.outbox_bytes.add(-(conn.outbox.len() as i64));
                return false;
            }
            if conn.closing && conn.idle() {
                metrics.connections_open.dec();
                metrics.disconnects_total.inc();
                return false;
            }
            true
        });
    }
    drop(ctls); // drops the job senders: ends the workers; scope joins them
    Ok(engines)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts one byte per call and fails every other
    /// call with `Interrupted` — the adversarial schedule any blocking
    /// write path must survive byte-for-byte.
    struct InterruptingWriter {
        got: Vec<u8>,
        calls: usize,
    }

    impl Write for InterruptingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.calls % 2 == 1 {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            if buf.is_empty() {
                return Ok(0);
            }
            self.got.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn farewell_survives_interrupts_and_short_writes() {
        let frame: Vec<u8> = (0..100u8).collect();
        let mut w = InterruptingWriter { got: Vec::new(), calls: 0 };
        write_farewell(&mut w, &frame);
        assert_eq!(w.got, frame, "every byte must land despite EINTR + 1-byte writes");
    }

    #[test]
    fn farewell_gives_up_on_hard_errors_without_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        write_farewell(&mut Broken, &[1, 2, 3]); // must simply return
    }
}

//! The event-driven sharded server: one readiness thread multiplexing
//! every socket over `poll(2)`, N shard workers each owning an engine.
//!
//! ```text
//!            poll(2)                       mpsc per shard
//!  sockets ──────────► event-loop thread ─────────────────► shard worker 0..N
//!     ▲                    │    ▲                                │
//!     │   outbox flush     │    │  completions + wake pipe       │ Engine
//!     └────────────────────┘    └────────────────────────────────┘
//! ```
//!
//! **Sharding.** Each worker owns an [`Engine`] whose LRU covers a
//! consistent-hash slice of canonical keys: solves route by
//! [`route_hash`]/[`pick_shard`] (invariant under column permutation —
//! the same quotient the cache key takes), so one instance always lands
//! on the same shard and shards never contend on a cache lock. Sessions
//! pin to the shard that opened them; the public handle encodes the
//! shard (`public = local·shards + shard`, locals start at 1, so public
//! handles are collision-free and `handle % shards` recovers the owner).
//! With `--wal-dir`, shard `i` logs under `<dir>/shard-i`.
//!
//! **Ordering.** The protocol promises one response per request, in
//! request order, per connection. Shards complete out of order, so every
//! accepted frame gets a per-connection sequence number and replies are
//! released strictly in sequence; early completions park in a BTreeMap.
//!
//! **Back-pressure.** Responses queue in a bounded per-connection
//! [`Outbox`]; write interest is registered only while it is nonempty. A
//! reader that lets the outbox cross `--outbox-kb` is disconnected with
//! one best-effort `Overloaded` ("slow reader") frame. A peer that
//! stalls mid-frame past `--read-timeout-ms` gets an exact `Timeout`
//! error frame, then the connection closes; idle connections *between*
//! frames cost one pollfd and nothing else. Admission mirrors the legacy
//! mode: over `max_conns` connections are refused with `Overloaded`,
//! frames over the byte cap answer `TooLarge` and close, and solves
//! beyond the engine queue depth answer `Overloaded` without ever
//! reaching a shard.
//!
//! **Shutdown.** When `stop` flips: stop accepting, let mid-frame
//! connections finish the frame they started, answer everything already
//! dispatched, flush outboxes, then `flush_durability` on every shard —
//! all bounded by `drain`.

use crate::conn::{FrameReader, Outbox, PullError};
use crate::metrics::Metrics;
use crate::poll::{poll_fds, PollFd, POLLIN, POLLOUT};
use crate::{engine_error, open_reply, pick_shard, route_hash, session_reply, ServerOpts};
use c1p_engine::proto::{decode_msg, encode_msg, ErrorCode, Msg};
use c1p_engine::{Engine, EngineConfig, EngineError};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Event-loop server configuration.
#[derive(Debug, Clone)]
pub struct EventLoopOpts {
    /// Shard (engine) count; each shard is one worker thread + engine.
    pub shards: usize,
    /// The shared flag surface (connection cap, frame cap, timeouts).
    pub server: ServerOpts,
    /// Per-shard engine configuration. `wal_dir` is treated as the base
    /// directory: shard `i` logs under `<wal_dir>/shard-i`.
    pub engine_cfg: EngineConfig,
    /// Graceful-shutdown budget: drain connections, then flush.
    pub drain: Duration,
}

impl Default for EventLoopOpts {
    fn default() -> EventLoopOpts {
        EventLoopOpts {
            shards: 1,
            server: ServerOpts::default(),
            engine_cfg: EngineConfig::default(),
            drain: Duration::from_secs(30),
        }
    }
}

/// One unit of work for a shard worker.
enum Job {
    Solve { conn: u64, seq: u64, t0: Instant, id: u64, ens: c1p_matrix::Ensemble },
    Open { conn: u64, seq: u64, t0: Instant, id: u64, n_atoms: u64 },
    Session { conn: u64, seq: u64, t0: Instant, msg: Msg, local: u64, public: u64 },
}

/// A finished job on its way back to the event loop.
struct Completion {
    conn: u64,
    seq: u64,
    t0: Instant,
    shard: usize,
    reply: Msg,
}

/// Per-connection event-loop state.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    outbox: Outbox,
    /// Next sequence number to assign to an accepted frame.
    next_seq: u64,
    /// Sequence whose reply is released next.
    next_send: u64,
    /// Replies completed ahead of `next_send`.
    parked: BTreeMap<u64, Msg>,
    /// Frames dispatched to shards and not yet completed.
    inflight: usize,
    /// No more reads: EOF, poisoned stream, or a policy close.
    read_closed: bool,
    /// Close once the outbox, parked map and inflight count drain.
    closing: bool,
    /// Immediate close: write this best-effort farewell frame (possibly
    /// empty) directly and drop the connection without waiting for the
    /// outbox — the slow-reader and poisoned-stream path.
    kill: Option<Vec<u8>>,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(max_frame),
            outbox: Outbox::default(),
            next_seq: 0,
            next_send: 0,
            parked: BTreeMap::new(),
            inflight: 0,
            read_closed: false,
            closing: false,
            kill: None,
        }
    }

    fn idle(&self) -> bool {
        self.inflight == 0 && self.parked.is_empty() && self.outbox.is_empty()
    }
}

/// Runs the event-loop server on `listener` until `stop` flips. Returns
/// the per-shard engines (stats drained, durability flushed) so callers
/// — tests, benches — can inspect them.
///
/// The listener must already be nonblocking. `metrics` is shared so the
/// caller can watch the registry live; pass a fresh one otherwise.
pub fn serve(
    listener: TcpListener,
    opts: &EventLoopOpts,
    stop: &AtomicBool,
    metrics: &Arc<Metrics>,
) -> io::Result<Vec<Arc<Engine>>> {
    assert!(opts.shards >= 1, "at least one shard");
    assert_eq!(metrics.shards.len(), opts.shards, "metrics registry sized for the shard count");
    listener.set_nonblocking(true)?;
    let engines: Vec<Arc<Engine>> = (0..opts.shards)
        .map(|i| {
            let mut cfg = opts.engine_cfg.clone();
            cfg.wal_dir = opts.engine_cfg.wal_dir.as_ref().map(|d| d.join(format!("shard-{i}")));
            Arc::new(Engine::new(cfg))
        })
        .collect();
    let completions: Mutex<Vec<Completion>> = Mutex::new(Vec::new());
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;

    let mut senders: Vec<mpsc::Sender<Job>> = Vec::new();
    let mut receivers: Vec<mpsc::Receiver<Job>> = Vec::new();
    for _ in 0..opts.shards {
        let (tx, rx) = mpsc::channel();
        senders.push(tx);
        receivers.push(rx);
    }

    let max_batch = opts.engine_cfg.max_batch.max(1);
    // clone the wake pipe up front so every worker is guaranteed to spawn
    // (a failure mid-spawn would leave senders alive and the scope stuck)
    let wakes: Vec<UnixStream> =
        (0..opts.shards).map(|_| wake_tx.try_clone()).collect::<io::Result<_>>()?;
    std::thread::scope(|scope| {
        for ((shard, rx), wake) in receivers.into_iter().enumerate().zip(wakes) {
            let engine = Arc::clone(&engines[shard]);
            let completions = &completions;
            let shards = opts.shards;
            scope.spawn(move || {
                shard_worker(shard, shards, rx, engine, completions, wake, max_batch)
            });
        }
        // dropping the senders (done inside event_loop when it returns)
        // ends the workers; the scope joins them before we flush below
        event_loop(&listener, opts, stop, metrics, &engines, senders, wake_rx, &completions)
    })?;
    for e in &engines {
        e.flush_durability();
    }
    Ok(engines)
}

/// A shard worker: drain the queue in batches, funnel solves through
/// `solve_batch` so the engine's batching/coalescing still amortizes,
/// run open/push/seal in arrival order, post completions, ring the wake
/// pipe.
fn shard_worker(
    shard: usize,
    shards: usize,
    rx: mpsc::Receiver<Job>,
    engine: Arc<Engine>,
    completions: &Mutex<Vec<Completion>>,
    wake: UnixStream,
    max_batch: usize,
) {
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        let solves: Vec<c1p_matrix::Ensemble> = batch
            .iter()
            .filter_map(|j| match j {
                Job::Solve { ens, .. } => Some(ens.clone()),
                _ => None,
            })
            .collect();
        let mut verdicts =
            if solves.is_empty() { Vec::new() } else { engine.solve_batch(&solves) }.into_iter();
        let mut done: Vec<Completion> = Vec::with_capacity(batch.len());
        for job in batch {
            let completion = match job {
                Job::Solve { conn, seq, t0, id, .. } => {
                    let reply = match verdicts.next().expect("one verdict per solve") {
                        Ok(verdict) => Msg::Verdict { id, verdict: verdict.to_wire() },
                        Err(e) => engine_error(id, e),
                    };
                    Completion { conn, seq, t0, shard, reply }
                }
                Job::Open { conn, seq, t0, id, n_atoms } => {
                    let reply = match engine.open_session(n_atoms as usize) {
                        // locals start at 1, so publics are nonzero and
                        // collision-free across shards
                        Ok(local) => open_reply(id, local * shards as u64 + shard as u64),
                        Err(e) => engine_error(id, e),
                    };
                    Completion { conn, seq, t0, shard, reply }
                }
                Job::Session { conn, seq, t0, msg, local, public } => {
                    let reply = session_reply(&engine, &msg, local, public);
                    Completion { conn, seq, t0, shard, reply }
                }
            };
            done.push(completion);
        }
        completions.lock().expect("completion lock").append(&mut done);
        let _ = (&wake).write(&[1u8]);
    }
}

/// Encodes one message as a ready-to-write frame.
fn frame_of(msg: &Msg) -> Vec<u8> {
    let payload = encode_msg(msg);
    let mut frame = Vec::with_capacity(payload.len() + 4);
    c1p_engine::proto::write_frame(&mut frame, &payload).expect("vec write cannot fail");
    frame
}

/// Best-effort `Overloaded` frame to a refused connection (the accepted
/// socket is still blocking — the write is tiny and mirrors legacy).
fn refuse(stream: TcpStream) {
    let mut w = io::BufWriter::new(stream);
    let msg = Msg::Error {
        id: 0,
        code: ErrorCode::Overloaded,
        message: "connection limit reached".into(),
    };
    let _ = w.write_all(&frame_of(&msg));
    let _ = w.flush();
}

/// Queues `reply` for `seq`, releasing every reply that is now in order,
/// and applies the outbox cap (the slow-reader disconnect).
fn deliver(
    conn: &mut Conn,
    seq: u64,
    reply: Msg,
    t0: Instant,
    metrics: &Metrics,
    outbox_limit: usize,
) {
    metrics.frame_latency_us.observe_us(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
    conn.parked.insert(seq, reply);
    while let Some(msg) = conn.parked.remove(&conn.next_send) {
        let frame = frame_of(&msg);
        metrics.outbox_bytes.add(frame.len() as i64);
        conn.outbox.push_frame(&frame);
        conn.next_send += 1;
    }
    if conn.outbox.len() > outbox_limit && conn.kill.is_none() {
        // the peer stopped draining its socket: there is no way to flush
        // the backlog, so drop it, say why (best effort), and close
        metrics.slow_reader_disconnects_total.inc();
        conn.read_closed = true;
        conn.kill = Some(frame_of(&Msg::Error {
            id: 0,
            code: ErrorCode::Overloaded,
            message: format!("outbox exceeded {outbox_limit} bytes: slow reader disconnected"),
        }));
    }
}

/// Routes one complete frame: inline answers (stats, metrics, admission
/// and decode errors) deliver immediately; solves and session ops become
/// shard jobs.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    conn: &mut Conn,
    conn_id: u64,
    payload: &[u8],
    opts: &EventLoopOpts,
    metrics: &Metrics,
    engines: &[Arc<Engine>],
    senders: &[mpsc::Sender<Job>],
    rr_open: &mut usize,
) {
    let t0 = Instant::now();
    metrics.frames_read_total.inc();
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let shards = opts.shards as u64;
    let send_job = |conn: &mut Conn, shard: usize, job: Job| {
        conn.inflight += 1;
        metrics.queue_depth.inc();
        metrics.shards[shard].queue_depth.inc();
        metrics.shards[shard].jobs_total.inc();
        senders[shard].send(job).expect("shard worker outlives the event loop");
    };
    match decode_msg(payload) {
        Ok(Msg::Solve { id, ens }) => {
            // mirror `Engine::submit` admission, in its order: the atom
            // cap first (TooLarge wins even with a full queue), then —
            // beyond max_queue in-flight jobs — Overloaded, without
            // either touching a shard
            if ens.n_atoms() > opts.engine_cfg.max_atoms {
                deliver(
                    conn,
                    seq,
                    engine_error(
                        id,
                        EngineError::TooLarge {
                            n_atoms: ens.n_atoms(),
                            max_atoms: opts.engine_cfg.max_atoms,
                        },
                    ),
                    t0,
                    metrics,
                    opts.server.outbox_limit,
                );
            } else if metrics.queue_depth.get() >= opts.engine_cfg.max_queue as i64 {
                deliver(
                    conn,
                    seq,
                    engine_error(id, EngineError::Overloaded),
                    t0,
                    metrics,
                    opts.server.outbox_limit,
                );
            } else {
                let shard = pick_shard(route_hash(&ens), opts.shards);
                send_job(conn, shard, Job::Solve { conn: conn_id, seq, t0, id, ens });
            }
        }
        Ok(Msg::OpenSession { id, n_atoms }) => {
            let shard = *rr_open % opts.shards;
            *rr_open += 1;
            send_job(conn, shard, Job::Open { conn: conn_id, seq, t0, id, n_atoms });
        }
        Ok(msg @ (Msg::PushAtoms { .. } | Msg::SealSession { .. })) => {
            let public = match &msg {
                Msg::PushAtoms { session, .. } | Msg::SealSession { session, .. } => *session,
                _ => unreachable!(),
            };
            // public = local·shards + shard (locals start at 1); a bogus
            // handle decodes to some shard whose engine answers NoSession
            let shard = (public % shards) as usize;
            let local = public / shards;
            send_job(conn, shard, Job::Session { conn: conn_id, seq, t0, msg, local, public });
        }
        Ok(Msg::GetStats) => {
            let mut sum = c1p_engine::EngineStats::default();
            for e in engines {
                sum.absorb(&e.stats());
            }
            deliver(
                conn,
                seq,
                Msg::Stats { json: sum.to_json() },
                t0,
                metrics,
                opts.server.outbox_limit,
            );
        }
        Ok(Msg::GetMetrics) => {
            let stats: Vec<c1p_engine::EngineStats> = engines.iter().map(|e| e.stats()).collect();
            deliver(
                conn,
                seq,
                Msg::Metrics { text: metrics.render(&stats) },
                t0,
                metrics,
                opts.server.outbox_limit,
            );
        }
        Ok(_) => deliver(
            conn,
            seq,
            Msg::Error {
                id: 0,
                code: ErrorCode::Malformed,
                message: "unexpected message kind for a server".into(),
            },
            t0,
            metrics,
            opts.server.outbox_limit,
        ),
        Err(e) => {
            metrics.malformed_frames_total.inc();
            deliver(
                conn,
                seq,
                Msg::Error { id: 0, code: ErrorCode::Malformed, message: e.to_string() },
                t0,
                metrics,
                opts.server.outbox_limit,
            );
        }
    }
}

/// The readiness loop proper. Owns the sockets; never blocks on any of
/// them. Returns when `stop` has flipped and every connection drained
/// (or the drain deadline passed).
#[allow(clippy::too_many_arguments)]
fn event_loop(
    listener: &TcpListener,
    opts: &EventLoopOpts,
    stop: &AtomicBool,
    metrics: &Arc<Metrics>,
    engines: &[Arc<Engine>],
    senders: Vec<mpsc::Sender<Job>>,
    wake_rx: UnixStream,
    completions: &Mutex<Vec<Completion>>,
) -> io::Result<()> {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut ids: Vec<u64> = Vec::new();
    let mut next_conn = 0u64;
    let mut rr_open = 0usize;
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if drain_deadline.is_none() && stop.load(Ordering::Acquire) {
            drain_deadline = Some(Instant::now() + opts.drain);
        }
        let draining = drain_deadline.is_some();
        if draining && conns.is_empty() {
            break;
        }
        if let Some(deadline) = drain_deadline {
            if Instant::now() >= deadline {
                for (_, c) in conns.drain() {
                    metrics.connections_open.dec();
                    metrics.disconnects_total.inc();
                    metrics.outbox_bytes.add(-(c.outbox.len() as i64));
                }
                break;
            }
        }

        // one pollfd per socket, rebuilt per iteration (cheap at this
        // scale, and it keeps interest exactly in sync with state)
        ids.clear();
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd::new(if draining { -1 } else { listener.as_raw_fd() }, POLLIN));
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        for (&id, c) in conns.iter() {
            let mut interest = 0i16;
            if !c.read_closed {
                interest |= POLLIN;
            }
            if !c.outbox.is_empty() {
                interest |= POLLOUT;
            }
            ids.push(id);
            fds.push(PollFd::new(c.stream.as_raw_fd(), interest));
        }
        poll_fds(&mut fds, 50)?;

        // drain the wake pipe (level-triggered: one byte per worker batch)
        if fds[1].ready(POLLIN) {
            let mut sink = [0u8; 256];
            loop {
                match (&wake_rx).read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }

        // completions (checked every iteration — the lock is cheap)
        let done = std::mem::take(&mut *completions.lock().expect("completion lock"));
        for c in done {
            metrics.queue_depth.dec();
            metrics.shards[c.shard].queue_depth.dec();
            if let Some(conn) = conns.get_mut(&c.conn) {
                conn.inflight -= 1;
                deliver(conn, c.seq, c.reply, c.t0, metrics, opts.server.outbox_limit);
            }
            // a completion for a closed connection is just dropped — its
            // accounting above still balances the dispatch increments
        }

        // accept burst
        if !draining && fds[0].ready(POLLIN) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if conns.len() >= opts.server.max_conns {
                            metrics.connections_refused_total.inc();
                            refuse(stream);
                            continue;
                        }
                        stream.set_nodelay(true).ok();
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        metrics.connections_accepted_total.inc();
                        metrics.connections_open.inc();
                        conns.insert(next_conn, Conn::new(stream, opts.server.max_frame));
                        next_conn += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => {
                        eprintln!("c1pd: accept failed: {e}");
                        break;
                    }
                }
            }
        }

        // readable sockets: reassemble, dispatch every complete frame
        for (ix, &id) in ids.iter().enumerate() {
            let ready = fds[ix + 2].ready(POLLIN);
            let Some(conn) = conns.get_mut(&id) else { continue };
            if conn.read_closed || !ready {
                continue;
            }
            let pull = {
                let Conn { reader, stream, .. } = conn;
                reader.pull(stream)
            };
            match pull {
                Ok(pull) => {
                    metrics.bytes_read_total.add(pull.bytes);
                    for payload in pull.frames {
                        dispatch(
                            conn,
                            id,
                            &payload,
                            opts,
                            metrics,
                            engines,
                            &senders,
                            &mut rr_open,
                        );
                    }
                    if pull.eof {
                        conn.read_closed = true;
                        conn.closing = true;
                    }
                }
                Err(PullError::Oversize(o)) => {
                    // admission control, not line noise: answer with the
                    // exact TooLarge frame legacy sends, then close (the
                    // stream position is unrecoverable)
                    metrics.oversize_frames_total.inc();
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.read_closed = true;
                    conn.closing = true;
                    deliver(
                        conn,
                        seq,
                        Msg::Error {
                            id: 0,
                            code: ErrorCode::TooLarge,
                            message: format!(
                                "frame of {} bytes exceeds the {}-byte cap",
                                o.len, o.cap
                            ),
                        },
                        Instant::now(),
                        metrics,
                        opts.server.outbox_limit,
                    );
                }
                Err(PullError::Io(e)) => {
                    if e.kind() != io::ErrorKind::ConnectionReset {
                        eprintln!("c1pd: connection {id}: {e}");
                    }
                    conn.read_closed = true;
                    conn.kill = Some(Vec::new());
                }
            }
        }

        // slow-loris reaper: a partial frame making no progress past the
        // budget gets an exact Timeout frame, then the connection closes
        if let Some(budget) = opts.server.read_timeout {
            for conn in conns.values_mut() {
                if conn.read_closed || conn.kill.is_some() {
                    continue;
                }
                if conn.reader.stalled_since().is_some_and(|since| since.elapsed() >= budget) {
                    metrics.read_timeout_disconnects_total.inc();
                    conn.read_closed = true;
                    conn.kill = Some(frame_of(&Msg::Error {
                        id: 0,
                        code: ErrorCode::Timeout,
                        message: format!(
                            "stalled mid-frame past the {} ms read-timeout budget",
                            budget.as_millis()
                        ),
                    }));
                }
            }
        }

        // drain sweep: at a frame boundary with nothing in flight, a
        // draining server closes the connection (mid-frame connections
        // get to finish the frame they started, mirroring legacy)
        if draining {
            for conn in conns.values_mut() {
                if !conn.reader.mid_frame() && conn.inflight == 0 && conn.parked.is_empty() {
                    conn.read_closed = true;
                    conn.closing = true;
                }
            }
        }

        // flush outboxes (opportunistic first try, POLLOUT next time)
        for conn in conns.values_mut() {
            if conn.outbox.is_empty() || conn.kill.is_some() {
                continue;
            }
            match conn.outbox.flush(&mut conn.stream) {
                Ok((bytes, frames)) => {
                    metrics.bytes_written_total.add(bytes);
                    metrics.frames_written_total.add(frames);
                    metrics.outbox_bytes.add(-(bytes as i64));
                }
                Err(_) => {
                    conn.read_closed = true;
                    conn.kill = Some(Vec::new());
                }
            }
        }

        // close pass
        conns.retain(|_, conn| {
            if let Some(farewell) = conn.kill.take() {
                if !farewell.is_empty() {
                    let _ = conn.stream.write(&farewell);
                }
                metrics.connections_open.dec();
                metrics.disconnects_total.inc();
                metrics.outbox_bytes.add(-(conn.outbox.len() as i64));
                return false;
            }
            if conn.closing && conn.idle() {
                metrics.connections_open.dec();
                metrics.disconnects_total.inc();
                return false;
            }
            true
        });
    }
    drop(senders); // ends the shard workers; scope joins them
    Ok(())
}
